//! Incremental equivalence property tests (deterministic randomized,
//! offline — no proptest): random insert/delete batches replayed through
//! [`IncrementalDetector::apply_batch`] must leave the engine's maintained
//! violation report equal to a from-scratch [`DirectDetector`] run after
//! **every** batch, and the non-mutating previews must agree with their
//! from-scratch characterizations:
//!
//! * `detect_insertions(batch)` over a clean instance equals full detection
//!   of `current ∪ batch`;
//! * `detect_deletions(batch)` equals the set difference between the current
//!   report and the report of `current \ batch` (the *resolved* violations).

use cfd_core::{Cfd, PatternTableau, PatternTuple, PatternValue};
use cfd_datagen::rng::StdRng;
use cfd_detect::{BatchOp, DirectDetector, IncrementalDetector, Violations};
use cfd_relation::{Relation, Schema, Tuple, Value};

fn schema() -> Schema {
    Schema::builder("r")
        .text("A")
        .text("B")
        .text("C")
        .text("D")
        .build()
}

/// Collision-heavy alphabet (NULL included) so batches keep creating and
/// resolving violations.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0usize..4) {
        0 => Value::Null,
        i => Value::from(["a", "b", "c"][i - 1]),
    }
}

fn random_tuple(rng: &mut StdRng) -> Tuple {
    Tuple::new((0..4).map(|_| random_value(rng)).collect())
}

fn random_cfd(rng: &mut StdRng) -> Cfd {
    let schema = schema();
    // Variants 0 and 3 share an LHS with different RHS attributes: pairs of
    // them report the *same* QV keys, exercising the merged-report
    // difference semantics of `detect_deletions`.
    let (lhs, rhs) = match rng.gen_range(0usize..4) {
        0 => (
            schema.resolve_all(["A", "B"]).unwrap(),
            schema.resolve_all(["C"]).unwrap(),
        ),
        1 => (
            schema.resolve_all(["A"]).unwrap(),
            schema.resolve_all(["B", "C"]).unwrap(),
        ),
        2 => (
            schema.resolve_all(["B", "C"]).unwrap(),
            schema.resolve_all(["D"]).unwrap(),
        ),
        _ => (
            schema.resolve_all(["A", "B"]).unwrap(),
            schema.resolve_all(["D"]).unwrap(),
        ),
    };
    let mut tableau = PatternTableau::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let cell = |rng: &mut StdRng| {
            if rng.gen_bool(0.6) {
                PatternValue::Wildcard
            } else {
                PatternValue::constant(["a", "b", "c"][rng.gen_range(0usize..3)])
            }
        };
        let l: Vec<PatternValue> = (0..lhs.len()).map(|_| cell(rng)).collect();
        let r: Vec<PatternValue> = (0..rhs.len()).map(|_| cell(rng)).collect();
        tableau.push(PatternTuple::new(l, r));
    }
    Cfd::from_parts(schema, lhs, rhs, tableau).unwrap()
}

/// A mixed batch over the mirror instance: inserts of fresh random tuples,
/// deletes of currently-live tuples (kept in lock-step with the engine).
fn random_batch(rng: &mut StdRng, mirror: &mut Vec<Tuple>) -> Vec<BatchOp> {
    let mut ops = Vec::new();
    for _ in 0..rng.gen_range(1usize..8) {
        let delete = !mirror.is_empty() && rng.gen_bool(0.4);
        if delete {
            let victim = mirror.remove(rng.gen_range(0..mirror.len()));
            ops.push(BatchOp::Delete(victim));
        } else {
            let t = random_tuple(rng);
            mirror.push(t.clone());
            ops.push(BatchOp::Insert(t));
        }
    }
    ops
}

fn from_scratch(cfds: &[Cfd], rows: &[Tuple]) -> Violations {
    let rel = Relation::from_rows(schema(), rows.to_vec()).unwrap();
    DirectDetector::new().detect_set(cfds, &rel)
}

/// The core property: after every applied batch, the engine's report equals
/// a from-scratch detection run over the same instance — byte for byte.
#[test]
fn apply_batch_equals_from_scratch_after_every_batch() {
    let mut rng = StdRng::seed_from_u64(0x57124_u64);
    for case in 0..24 {
        let cfds = vec![random_cfd(&mut rng), random_cfd(&mut rng)];
        let mut mirror: Vec<Tuple> = (0..rng.gen_range(0usize..12))
            .map(|_| random_tuple(&mut rng))
            .collect();
        let base = Relation::from_rows(schema(), mirror.clone()).unwrap();
        let mut engine = IncrementalDetector::new(base, cfds.clone());
        let initial = from_scratch(&cfds, &mirror);
        assert_eq!(engine.violations(), initial, "case {case}: initial state");
        assert_eq!(
            engine.violations().canonical_bytes(),
            initial.canonical_bytes(),
            "case {case}: initial state (rendered bytes)"
        );
        for batch_no in 0..6 {
            let ops = random_batch(&mut rng, &mut mirror);
            let report = engine.apply_batch(&ops).unwrap();
            let expected = from_scratch(&cfds, &mirror);
            assert_eq!(
                report, expected,
                "case {case}, batch {batch_no}: maintained report diverged (ops {ops:?})"
            );
            assert_eq!(
                report.canonical_bytes(),
                expected.canonical_bytes(),
                "case {case}, batch {batch_no}: rendered bytes diverged"
            );
            assert_eq!(engine.len(), mirror.len(), "case {case}, batch {batch_no}");
        }
        // The materialized instance matches the mirror as a bag (the engine
        // deletes the most recent live occurrence of a duplicate value, the
        // mirror a specific position, so only the multiset is comparable).
        let mut got = engine.current_relation().to_tuples();
        let mut want = mirror.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }
}

/// Insertion previews over a *clean* engine equal full detection of the
/// combined instance (the paper-facing contract of `detect_insertions`).
#[test]
fn insertion_preview_equals_full_detection_on_clean_instances() {
    let mut rng = StdRng::seed_from_u64(0xC1EA_u64);
    let mut checked = 0usize;
    for _ in 0..400 {
        let cfds = vec![random_cfd(&mut rng), random_cfd(&mut rng)];
        let rows: Vec<Tuple> = (0..rng.gen_range(0usize..10))
            .map(|_| random_tuple(&mut rng))
            .collect();
        if !from_scratch(&cfds, &rows).is_clean() {
            continue; // the clean-base contract
        }
        checked += 1;
        let batch: Vec<Tuple> = (0..rng.gen_range(1usize..6))
            .map(|_| random_tuple(&mut rng))
            .collect();
        let engine = IncrementalDetector::new(
            Relation::from_rows(schema(), rows.clone()).unwrap(),
            cfds.clone(),
        );
        let preview = engine.detect_insertions(&batch);
        let mut combined = rows.clone();
        combined.extend(batch.iter().cloned());
        let full = from_scratch(&cfds, &combined);
        assert_eq!(
            preview, full,
            "preview must equal full detection of base ∪ batch"
        );
        assert_eq!(preview.canonical_bytes(), full.canonical_bytes());
        // Previews never mutate.
        assert_eq!(engine.len(), rows.len());
    }
    assert!(checked >= 50, "too few clean bases generated ({checked})");
}

/// Deletion previews equal the violations a real deletion would resolve:
/// current report minus the report of the shrunken instance.
#[test]
fn deletion_preview_equals_resolved_difference() {
    let mut rng = StdRng::seed_from_u64(0xDE1E7E_u64);
    for case in 0..40 {
        let cfds = vec![random_cfd(&mut rng), random_cfd(&mut rng)];
        let mut mirror: Vec<Tuple> = (0..rng.gen_range(2usize..14))
            .map(|_| random_tuple(&mut rng))
            .collect();
        let engine = IncrementalDetector::new(
            Relation::from_rows(schema(), mirror.clone()).unwrap(),
            cfds.clone(),
        );
        let before = engine.violations();
        // Delete a random subset (bag semantics, like apply_batch).
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1usize..4) {
            if mirror.is_empty() {
                break;
            }
            batch.push(mirror.remove(rng.gen_range(0..mirror.len())));
        }
        let preview = engine.detect_deletions(&batch);
        let after = from_scratch(&cfds, &mirror);

        let mut resolved = Violations::new();
        for t in before.constant_violations() {
            if !after.constant_violations().contains(t) {
                resolved.add_constant_violation(t.clone());
            }
        }
        for k in before.multi_tuple_keys() {
            if !after.multi_tuple_keys().contains(k) {
                resolved.add_multi_tuple_key(k.clone());
            }
        }
        assert_eq!(
            preview, resolved,
            "case {case}: deletion preview must equal the resolved difference"
        );
        assert_eq!(preview.canonical_bytes(), resolved.canonical_bytes());
    }
}
