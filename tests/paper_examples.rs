//! Cross-crate integration tests replaying the paper's running examples:
//! Fig. 1/2, Example 2.2 (satisfaction), Example 3.1 (consistency),
//! Example 3.2 (implication), Example 3.3 (minimal cover), Example 4.1 and
//! Fig. 5 (detection SQL), and the Fig. 6–8 merged-tableau pipeline.

use cfd::prelude::*;
use cfd_core::NormalCfd;
use cfd_datagen::cust::{phi1, phi2, phi3, phi3_with_fd, phi5};
use cfd_detect::MergedTableaux;
use cfd_relation::Schema as RSchema;
use std::sync::Arc;

#[test]
fn example_2_2_satisfaction_of_fig2_cfds_on_fig1() {
    let data = cust_instance();
    assert!(phi1().satisfied_by(&data), "ϕ1 holds on Fig. 1");
    assert!(phi3().satisfied_by(&data), "ϕ3 holds on Fig. 1");
    assert!(!phi2().satisfied_by(&data), "ϕ2 is violated by t1 and t2");
}

#[test]
fn example_1_1_traditional_fds_hold_but_refinements_fail() {
    let data = cust_instance();
    let f1 = Cfd::fd(cust_schema(), ["CC", "AC", "PN"], ["STR", "CT", "ZIP"]).unwrap();
    let f2 = Cfd::fd(cust_schema(), ["CC", "AC"], ["CT"]).unwrap();
    assert!(f1.satisfied_by(&data));
    assert!(f2.satisfied_by(&data));
    // The refinement ϕ1 of f1 (pattern 01/908 -> MH) is violated.
    assert!(!phi2().satisfied_by(&data));
}

#[test]
fn example_3_1_consistency() {
    let schema = RSchema::builder("R").text("A").text("B").build();
    let p1 = NormalCfd::parse(&schema, ["A"], &["_"], "B", "b").unwrap();
    let p2 = NormalCfd::parse(&schema, ["A"], &["_"], "B", "c").unwrap();
    assert!(cfd_core::is_consistent(std::slice::from_ref(&p1)));
    assert!(!cfd_core::is_consistent(&[p1, p2]));
    // The Fig. 2 constraint set, in contrast, is consistent.
    assert!(cfd_datagen::fig2_cfd_set().is_consistent().unwrap());
}

#[test]
fn example_3_2_implication_and_derivation() {
    let schema = RSchema::builder("R").text("A").text("B").text("C").build();
    let psi1 = NormalCfd::parse(&schema, ["A"], &["_"], "B", "b").unwrap();
    let psi2 = NormalCfd::parse(&schema, ["B"], &["_"], "C", "c").unwrap();
    let sigma = vec![psi1.clone(), psi2.clone()];
    let phi = NormalCfd::parse(&schema, ["A"], &["a"], "C", "_").unwrap();
    assert!(cfd_core::implies(&sigma, &phi));

    // Reconstruct the derivation (1)-(5) of Example 3.2 with the rules of I.
    let step3 = cfd_core::inference::fd3(&[psi1], &psi2).unwrap().unwrap();
    let a = schema.resolve("A").unwrap();
    let step4 = cfd_core::inference::fd5(&step3, a, cfd_relation::Value::from("a"))
        .unwrap()
        .unwrap();
    let step5 = cfd_core::inference::fd6(&step4).unwrap().unwrap();
    assert_eq!(step5, phi);
    // Soundness of every step w.r.t. the semantic implication.
    for step in [step3, step4, step5] {
        assert!(cfd_core::implies(&sigma, &step));
    }
}

#[test]
fn example_3_3_minimal_cover() {
    let schema = RSchema::builder("R").text("A").text("B").text("C").build();
    let psi1 = NormalCfd::parse(&schema, ["A"], &["_"], "B", "b").unwrap();
    let psi2 = NormalCfd::parse(&schema, ["B"], &["_"], "C", "c").unwrap();
    let phi = NormalCfd::parse(&schema, ["A"], &["a"], "C", "_").unwrap();
    let cover = cfd_core::minimal_cover(&[psi1, psi2, phi]);
    assert_eq!(cover.len(), 2);
    assert!(cover.contains(&NormalCfd::parse(&schema, [], &[], "B", "b").unwrap()));
    assert!(cover.contains(&NormalCfd::parse(&schema, [], &[], "C", "c").unwrap()));
}

#[test]
fn example_4_1_detection_queries_on_fig1() {
    let data = cust_instance();
    let detector = Detector::new();
    let report = detector.detect(&phi2(), &data).unwrap();
    // QC returns t1 and t2 (the 908/NYC tuples).
    assert_eq!(report.constant_violations().len(), 2);
    let nm = cust_schema().resolve("NM").unwrap();
    let names: Vec<_> = report
        .constant_violations()
        .iter()
        .map(|t| t[nm.index()].clone())
        .collect();
    assert!(names.contains(&cfd_relation::Value::from("Mike")));
    assert!(names.contains(&cfd_relation::Value::from("Rick")));
    // The generated SQL has the Fig. 5 shape.
    let (qc, qv) = detector.sql_for(&phi2(), "cust");
    assert!(qc
        .to_string()
        .contains("SELECT t.* FROM cust t, Tp tp WHERE"));
    assert!(qv
        .to_string()
        .contains("HAVING count(distinct t.STR, t.CT, t.ZIP) > 1"));
}

#[test]
fn fig6_to_fig8_merged_tableaux_pipeline() {
    // Merge ϕ3 (with the FD row) and ϕ5 as in Fig. 7, then run the merged
    // query pair; ϕ5 ([CT] → [AC]) is violated by the NYC tuples (Fig. 8).
    let cfds = vec![phi3_with_fd(), phi5()];
    let merged = MergedTableaux::build(&cfds).unwrap();
    assert_eq!(merged.x_attrs(), &["CC", "AC", "CT"]);
    assert_eq!(merged.len(), 4);

    let data = Arc::new(cust_instance());
    let report = Detector::new()
        .detect_set_merged(&cfds, Arc::clone(&data))
        .unwrap();
    assert!(
        report
            .multi_tuple_keys()
            .iter()
            .any(|k| k.contains(&cfd_relation::Value::from("NYC"))),
        "the NYC group must be flagged: {report}"
    );
    // The per-CFD validation agrees on whether violations exist at all.
    let per_cfd = Detector::new().detect_set(&cfds, data).unwrap();
    assert_eq!(per_cfd.is_clean(), report.is_clean());
}

#[test]
fn section6_repair_example_requires_lhs_modification() {
    // attr(R) = (A, B, C); I = {(a1, b1, c1), (a1, b2, c2)};
    // Σ = {(A → B, (_ ‖ _)), (C → B, {(c1, b1), (c2, b2)})}.
    let schema = RSchema::builder("R").text("A").text("B").text("C").build();
    let mut rel = cfd_relation::Relation::new(schema.clone());
    rel.push_values(vec!["a1".into(), "b1".into(), "c1".into()])
        .unwrap();
    rel.push_values(vec!["a1".into(), "b2".into(), "c2".into()])
        .unwrap();
    let sigma = vec![
        Cfd::fd(schema.clone(), ["A"], ["B"]).unwrap(),
        Cfd::builder(schema.clone(), ["C"], ["B"])
            .pattern(["c1"], ["b1"])
            .pattern(["c2"], ["b2"])
            .build()
            .unwrap(),
    ];
    assert!(CfdSet::from_cfds(sigma.clone())
        .unwrap()
        .is_consistent()
        .unwrap());
    assert!(!sigma.iter().all(|c| c.satisfied_by(&rel)));

    let result = Repairer::new().repair(&sigma, &rel);
    assert!(result.satisfied);
    let a = schema.resolve("A").unwrap();
    let c = schema.resolve("C").unwrap();
    assert!(
        result
            .modifications
            .iter()
            .any(|m| m.attr == a || m.attr == c),
        "the paper's example cannot be repaired by RHS-only edits"
    );
}
