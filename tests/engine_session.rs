//! Integration tests of the prepared `Engine`/`Session` lifecycle: serving
//! equivalence with the one-shot paths, streaming through `apply_batch`,
//! and the `explain` provenance accessor on the paper's running example.

use cfd::prelude::*;
use cfd_core::{ViolationKind, WitnessCells};
use cfd_datagen::cust::{fig2_cfd_set, phi2};
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_relation::AttrId;
use std::sync::Arc;

fn tax_cfds(seed: u64) -> Vec<Cfd> {
    let w = CfdWorkload::new(seed);
    vec![
        w.single(EmbeddedFd::ZipToState, 100, 100.0),
        w.single(EmbeddedFd::AreaToCity, 80, 60.0),
    ]
}

fn noisy_tax(rows: usize, seed: u64) -> Relation {
    TaxGenerator::new(TaxConfig {
        size: rows,
        noise_percent: 8.0,
        seed,
    })
    .generate()
    .relation
}

#[test]
fn session_detect_matches_one_shot_for_every_detector_kind() {
    let cfds = tax_cfds(21);
    let data = Arc::new(noisy_tax(600, 7));
    for kind in DetectorKind::all(3) {
        let engine = Engine::builder()
            .rules(cfds.iter().cloned())
            .config(EngineConfig::builder().detector(kind).build().unwrap())
            .build()
            .unwrap();
        let mut session = engine.session(Arc::clone(&data)).unwrap();
        let prepared = session.detect().unwrap();
        let oneshot = kind.detect_set(&cfds, Arc::clone(&data)).unwrap();
        assert_eq!(prepared, oneshot, "kind {kind:?}");
        assert_eq!(
            prepared.canonical_bytes(),
            oneshot.canonical_bytes(),
            "kind {kind:?} rendered bytes"
        );
        // A second detect re-uses the prepared state and must not drift.
        assert_eq!(session.detect().unwrap(), oneshot, "kind {kind:?} again");
    }
}

#[test]
fn session_repair_matches_one_shot_and_does_not_mutate() {
    let cfds = tax_cfds(33);
    let data = Arc::new(noisy_tax(400, 13));
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .build()
        .unwrap();
    let mut session = engine.session(Arc::clone(&data)).unwrap();
    let before = session.detect().unwrap();
    assert!(!before.is_clean());
    for kind in [RepairKind::EquivClass, RepairKind::Heuristic] {
        let prepared = session.repair(kind).unwrap();
        let oneshot = cfd::repair_violations(kind, &cfds, Arc::clone(&data)).unwrap();
        assert_eq!(prepared.modifications, oneshot.modifications, "{kind:?}");
        assert_eq!(prepared.repaired, oneshot.repaired, "{kind:?}");
        assert_eq!(prepared.cost, oneshot.cost, "{kind:?}");
        assert_eq!(prepared.passes, oneshot.passes, "{kind:?}");
        assert!(prepared.satisfied, "{kind:?}");
        // The session still serves the *unrepaired* snapshot.
        assert_eq!(session.detect().unwrap(), before, "{kind:?}");
    }
}

#[test]
fn streamed_batches_serve_the_same_reports_as_from_scratch_detection() {
    let cfds = tax_cfds(55);
    let schema = noisy_tax(1, 1).schema().clone();
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .build()
        .unwrap();
    let mut session = engine
        .session(Arc::new(Relation::new(schema.clone())))
        .unwrap();

    let all = noisy_tax(900, 99);
    let tuples = all.to_tuples();
    let mut accumulated = Relation::new(schema);
    for chunk in tuples.chunks(300) {
        let ops: Vec<BatchOp> = chunk.iter().cloned().map(BatchOp::Insert).collect();
        let streamed = session.apply_batch(&ops).unwrap();
        for t in chunk {
            accumulated.push(t.clone()).unwrap();
        }
        let scratch =
            cfd::detect_violations(DetectorKind::Direct, &cfds, Arc::new(accumulated.clone()))
                .unwrap();
        assert_eq!(streamed, scratch, "maintained report after batch");
        // The session's configured detector agrees on the refreshed snapshot.
        assert_eq!(session.detect().unwrap(), scratch);
        assert_eq!(session.len(), accumulated.len());
    }
    assert!(!session.detect().unwrap().is_clean(), "noise must surface");

    // Deletions stream too: removing every tuple empties the report.
    let ops: Vec<BatchOp> = tuples.into_iter().map(BatchOp::Delete).collect();
    let after = session.apply_batch(&ops).unwrap();
    assert!(after.is_clean());
    assert!(session.is_empty());
}

#[test]
fn previews_answer_without_mutating_the_session() {
    let engine = Engine::builder().rule(phi2()).build().unwrap();
    let mut session = engine.session(Arc::new(cust_instance())).unwrap();
    let before = session.detect().unwrap();

    // A tuple violating ϕ2's (01, 908, _ ‖ _, MH, _) pattern.
    let bad = Tuple::new(
        ["01", "908", "9999999", "Eve", "Pine St.", "NYC", "07974"]
            .iter()
            .map(|s| Value::from(*s))
            .collect(),
    );
    let preview = session
        .preview_insertions(std::slice::from_ref(&bad))
        .unwrap();
    assert_eq!(preview.constant_violations().len(), 1);

    // Deleting t1 resolves its QC violation.
    let t1 = cust_instance().row(0).unwrap().to_tuple();
    let resolved = session
        .preview_deletions(std::slice::from_ref(&t1))
        .unwrap();
    assert_eq!(resolved.constant_violations().len(), 1);

    // Neither preview changed the served instance.
    assert_eq!(session.detect().unwrap(), before);
    assert_eq!(session.len(), 6);
}

/// The satellite requirement: `explain` on the Fig. 2 `cust` example —
/// violating pattern tuple, witness cells, and the chosen class target with
/// its cost.
#[test]
fn explain_reports_pattern_cells_and_repair_targets_on_fig2() {
    let engine = Engine::builder().rule_set(fig2_cfd_set()).build().unwrap();
    let mut session = engine.session(Arc::new(cust_instance())).unwrap();
    let report = session.detect().unwrap();
    assert_eq!(report.constant_violations().len(), 2);

    let ct = cust_schema().resolve("CT").unwrap();
    let mut explained = 0usize;
    for item in report.items() {
        let explanations = session.explain(&item).unwrap();
        assert!(!explanations.is_empty(), "every finding has provenance");
        for e in &explanations {
            explained += 1;
            // ϕ2 is the only violated CFD of the Fig. 2 set…
            assert_eq!(e.cfd_index, 1, "only ϕ2 is violated");
            assert_eq!(e.kind, ViolationKind::SingleTuple);
            // …on its (01, 908, _ ‖ _, MH, _) pattern row.
            assert_eq!(e.pattern_index, 0);
            assert_eq!(
                e.pattern.lhs()[1].const_id().unwrap().resolve().to_string(),
                "908"
            );
            assert!(e.rows == vec![0] || e.rows == vec![1], "t1 or t2");
            // Witness cells pin CT to the pattern constant MH.
            let WitnessCells { pins, merges } = &e.cells;
            assert!(merges.is_empty());
            assert!(pins
                .iter()
                .any(|&(_, attr, target)| attr == ct && target.resolve() == &Value::from("MH")));
            // The planned edit: CT → MH at unit cost (the cell reads NYC).
            let edit = e
                .planned
                .iter()
                .find(|p| p.attr == ct)
                .expect("a CT edit is planned");
            assert_eq!(edit.target, Value::from("MH"));
            assert!((edit.cost - 1.0).abs() < 1e-9, "unit distance, weight 1");
        }
    }
    assert_eq!(explained, 2, "one explanation per violating tuple");
}

#[test]
fn explain_reports_class_targets_for_multi_tuple_keys() {
    // Give Rick a different street: the (01, 908, 1111111) group now has two
    // distinct Y projections under ϕ2's wildcard pattern.
    let mut rel = cust_instance();
    rel.set_value(1, AttrId(4), Value::from("Other Ave."));
    let engine = Engine::builder().rule(phi2()).build().unwrap();
    let mut session = engine.session(Arc::new(rel)).unwrap();
    let report = session.detect().unwrap();
    assert_eq!(report.multi_tuple_keys().len(), 1);

    let key = report
        .items()
        .find(|i| matches!(i, ViolationItem::MultiTupleKey(_)))
        .unwrap();
    let explanations = session.explain(&key).unwrap();
    assert!(!explanations.is_empty());
    let e = explanations
        .iter()
        .find(|e| e.kind == ViolationKind::MultiTuple)
        .expect("a multi-tuple witness");
    assert_eq!(e.rows, vec![0, 1], "t1 and t2 form the group");
    // The STR class must merge rows {0, 1}; the cost-minimal target is the
    // smaller resolved value ("Other Ave." < "Tree Ave.") at unit cost 1.
    let str_attr = AttrId(4);
    assert!(e
        .cells
        .merges
        .iter()
        .any(|(a, rows)| *a == str_attr && rows == &vec![0, 1]));
    let edit = e
        .planned
        .iter()
        .find(|p| p.attr == str_attr)
        .expect("a planned STR edit");
    assert_eq!(edit.target, Value::from("Other Ave."));
    assert!((edit.cost - 1.0).abs() < 1e-9);

    // A key produced by no rule explains to nothing.
    let ghost = ViolationItem::MultiTupleKey(vec![Value::from("no"), Value::from("such")]);
    assert!(session.explain(&ghost).unwrap().is_empty());
}

#[test]
fn sessions_move_across_threads_and_share_one_engine() {
    let cfds = tax_cfds(77);
    let data = Arc::new(noisy_tax(500, 3));
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .build()
        .unwrap();
    let reference = engine.session(Arc::clone(&data)).unwrap().detect().unwrap();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let engine = engine.clone();
            let data = Arc::clone(&data);
            std::thread::spawn(move || {
                let mut session = engine.session(data).unwrap();
                session.detect().unwrap()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), reference);
    }
}
