//! Property-style tests (deterministic randomized, offline — no proptest):
//! the SQL-based detector, under every evaluation strategy, agrees with the
//! independent direct detector on arbitrary data and arbitrary CFDs; the
//! interned detection path returns byte-identical reports to the retained
//! value-comparison path; and the paper's invariants about query generation
//! hold (query size independent of tableau size, merged vs per-CFD
//! consistency of the QC component).

use cfd_core::{Cfd, PatternTableau, PatternTuple, PatternValue};
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::rng::StdRng;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{Detector, DirectDetector};
use cfd_relation::{Relation, Schema, Tuple, Value};
use cfd_sql::Strategy as SqlStrategy;
use std::sync::Arc;

const CASES: usize = 64;

/// Small value alphabet: collisions are likely, so FD/CFD violations are too.
fn random_value(rng: &mut StdRng) -> Value {
    Value::from(["a", "b", "c"][rng.gen_range(0usize..3)])
}

fn schema() -> Schema {
    Schema::builder("r")
        .text("A")
        .text("B")
        .text("C")
        .text("D")
        .build()
}

/// A relation with up to 24 rows over the 4-attribute schema.
fn random_relation(rng: &mut StdRng) -> Relation {
    let mut rel = Relation::new(schema());
    for _ in 0..rng.gen_range(0usize..24) {
        let row: Vec<Value> = (0..4).map(|_| random_value(rng)).collect();
        rel.push(Tuple::new(row)).unwrap();
    }
    rel
}

/// A pattern cell: a constant from the alphabet or the unnamed variable.
fn random_cell(rng: &mut StdRng) -> PatternValue {
    if rng.gen_bool(0.6) {
        PatternValue::Wildcard
    } else {
        PatternValue::constant(random_value(rng))
    }
}

/// A CFD over the fixed schema: X = {A, B}, Y = {C} or {C, D}, 1..4 pattern rows.
fn random_cfd(rng: &mut StdRng) -> Cfd {
    let schema = schema();
    let lhs = schema.resolve_all(["A", "B"]).unwrap();
    let wide_rhs = rng.gen_bool(0.5);
    let rhs = if wide_rhs {
        schema.resolve_all(["C", "D"]).unwrap()
    } else {
        schema.resolve_all(["C"]).unwrap()
    };
    let mut tableau = PatternTableau::new();
    for _ in 0..rng.gen_range(1usize..4) {
        let l: Vec<PatternValue> = (0..2).map(|_| random_cell(rng)).collect();
        let r: Vec<PatternValue> = (0..rhs.len()).map(|_| random_cell(rng)).collect();
        tableau.push(PatternTuple::new(l, r));
    }
    Cfd::from_parts(schema, lhs, rhs, tableau).unwrap()
}

/// The SQL detector (any strategy) and the direct detector are identical.
#[test]
fn sql_equals_direct() {
    let mut rng = StdRng::seed_from_u64(0xD7EC7);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let cfd = random_cfd(&mut rng);
        let expected = DirectDetector::new().detect(&cfd, &rel);
        let shared = Arc::new(rel);
        for strategy in [
            SqlStrategy::dnf(),
            SqlStrategy::cnf(),
            SqlStrategy::dnf_unindexed(),
            SqlStrategy::as_written(),
        ] {
            let got = Detector::new()
                .with_strategy(strategy)
                .detect_shared(&cfd, Arc::clone(&shared))
                .unwrap()
                .0;
            assert_eq!(
                got, expected,
                "case {case}, strategy {strategy:?}, cfd {cfd}"
            );
        }
    }
}

/// The interned detection path returns byte-identical `Violations` to the
/// value-comparison path on arbitrary data and CFDs.
#[test]
fn interned_equals_value_path_on_random_cases() {
    let mut rng = StdRng::seed_from_u64(0x1D5);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let cfd = random_cfd(&mut rng);
        let interned = DirectDetector::new().detect(&cfd, &rel);
        let value_path = DirectDetector::new().detect_value_path(&cfd, &rel);
        assert_eq!(
            interned, value_path,
            "case {case}: interned vs value path, cfd {cfd}"
        );
    }
}

/// The acceptance check of the interning refactor: on a ≥10k-tuple generated
/// tax workload, the interned detectors (direct hash path and SQL path)
/// report exactly the same violation sets as the Value-comparison path.
#[test]
fn interned_equals_value_path_on_generated_workload() {
    let noisy = TaxGenerator::new(TaxConfig {
        size: 10_000,
        noise_percent: 6.0,
        seed: 2026,
    })
    .generate()
    .relation;
    assert!(noisy.len() >= 10_000);
    let workload = CfdWorkload::new(77);
    let cfds = [
        workload.zip_state_full(),
        workload.single(EmbeddedFd::ZipCityToState, 150, 100.0),
        workload.single(EmbeddedFd::AreaToCity, 150, 60.0),
        workload.single(EmbeddedFd::StateMaritalToExemption, 60, 100.0),
    ];
    let shared = Arc::new(noisy.clone());
    for cfd in &cfds {
        let value_path = DirectDetector::new().detect_value_path(cfd, &noisy);
        let interned = DirectDetector::new().detect(cfd, &noisy);
        assert_eq!(
            interned,
            value_path,
            "interned direct detection differs from the value path for {:?}",
            cfd.name()
        );
        let sql = Detector::new()
            .detect_shared(cfd, Arc::clone(&shared))
            .unwrap()
            .0;
        assert_eq!(
            sql,
            value_path,
            "interned SQL detection differs from the value path for {:?}",
            cfd.name()
        );
    }
    // The workload as a whole must catch the injected noise.
    let total: usize = cfds
        .iter()
        .map(|c| DirectDetector::new().detect(c, &noisy).total())
        .sum();
    assert!(total > 0, "workload CFDs must catch the injected noise");
}

/// Detection is empty iff the CFD is satisfied (semantics agreement with cfd-core).
#[test]
fn detection_matches_satisfaction() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let cfd = random_cfd(&mut rng);
        let report = Detector::new().detect(&cfd, &rel).unwrap();
        assert_eq!(
            report.is_clean(),
            cfd.satisfied_by(&rel),
            "case {case}, cfd {cfd}"
        );
    }
}

/// The merged query pair finds exactly the same single-tuple (QC)
/// violations as running one query pair per CFD.
#[test]
fn merged_qc_equals_per_cfd_qc() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let cfds = vec![random_cfd(&mut rng), random_cfd(&mut rng)];
        let shared = Arc::new(rel);
        let per_cfd = Detector::new()
            .detect_set(&cfds, Arc::clone(&shared))
            .unwrap();
        let merged = Detector::new()
            .detect_set_merged(&cfds, Arc::clone(&shared))
            .unwrap();
        assert_eq!(
            per_cfd.constant_violations(),
            merged.constant_violations(),
            "case {case}"
        );
        // Multi-tuple violations use different key spaces, but emptiness must
        // agree with the semantic satisfaction of the set.
        let all_satisfied = cfds.iter().all(|c| c.satisfied_by(&shared));
        assert_eq!(merged.is_clean(), all_satisfied, "case {case}");
        assert_eq!(per_cfd.is_clean(), all_satisfied, "case {case}");
    }
}

/// Query size (number of WHERE atoms) does not depend on the tableau size.
#[test]
fn query_size_independent_of_tableau() {
    let mut rng = StdRng::seed_from_u64(0x51CE);
    for _ in 0..CASES {
        let cfd = random_cfd(&mut rng);
        let detector = Detector::new();
        let (qc, qv) = detector.sql_for(&cfd, "r");
        let expected_qc_atoms = cfd.lhs().len() * 3 + cfd.rhs().len() * 3;
        assert_eq!(qc.where_clause.unwrap().atom_count(), expected_qc_atoms);
        assert_eq!(qv.where_clause.unwrap().atom_count(), cfd.lhs().len() * 3);
        assert_eq!(qv.group_by.len(), cfd.lhs().len());
    }
}

/// Parallel set detection returns exactly the same report as serial.
#[test]
fn parallel_equals_serial() {
    let mut rng = StdRng::seed_from_u64(0x9A9A);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let cfds = vec![
            random_cfd(&mut rng),
            random_cfd(&mut rng),
            random_cfd(&mut rng),
        ];
        let shared = Arc::new(rel);
        let serial = Detector::new()
            .detect_set(&cfds, Arc::clone(&shared))
            .unwrap();
        let parallel = Detector::new()
            .detect_set_parallel(&cfds, Arc::clone(&shared), 3)
            .unwrap();
        assert_eq!(serial, parallel, "case {case}");
    }
}
