//! Property-based tests: the SQL-based detector, under every evaluation
//! strategy, agrees with the independent direct detector on arbitrary data
//! and arbitrary CFDs, and the paper's invariants about query generation
//! hold (query size independent of tableau size, merged vs per-CFD
//! consistency of the QC component).

use cfd_core::{Cfd, PatternTableau, PatternTuple, PatternValue};
use cfd_detect::{Detector, DirectDetector};
use cfd_relation::{Relation, Schema, Tuple, Value};
use cfd_sql::Strategy as SqlStrategy;
use proptest::prelude::*;
use std::sync::Arc;

/// Small value alphabet: collisions are likely, so FD/CFD violations are too.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::from("a")), Just(Value::from("b")), Just(Value::from("c"))]
}

fn schema() -> Schema {
    Schema::builder("r").text("A").text("B").text("C").text("D").build()
}

/// A relation with up to 24 rows over the 4-attribute schema.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(value_strategy(), 4), 0..24).prop_map(|rows| {
        let mut rel = Relation::new(schema());
        for row in rows {
            rel.push(Tuple::new(row)).unwrap();
        }
        rel
    })
}

/// A pattern cell: a constant from the alphabet or the unnamed variable.
fn pattern_cell() -> impl Strategy<Value = PatternValue> {
    prop_oneof![
        3 => Just(PatternValue::Wildcard),
        2 => value_strategy().prop_map(PatternValue::Const),
    ]
}

/// A CFD over the fixed schema: X = {A, B}, Y = {C} or {C, D}, 1..4 pattern rows.
fn cfd_strategy() -> impl Strategy<Value = Cfd> {
    let row = (prop::collection::vec(pattern_cell(), 2), prop::collection::vec(pattern_cell(), 2));
    (prop::collection::vec(row, 1..4), any::<bool>()).prop_map(|(rows, wide_rhs)| {
        let schema = schema();
        let lhs = schema.resolve_all(["A", "B"]).unwrap();
        let rhs = if wide_rhs {
            schema.resolve_all(["C", "D"]).unwrap()
        } else {
            schema.resolve_all(["C"]).unwrap()
        };
        let mut tableau = PatternTableau::new();
        for (l, r) in rows {
            let r = if wide_rhs { r } else { r[..1].to_vec() };
            tableau.push(PatternTuple::new(l, r));
        }
        Cfd::from_parts(schema, lhs, rhs, tableau).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SQL detector (any strategy) and the direct detector are identical.
    #[test]
    fn sql_equals_direct(rel in relation_strategy(), cfd in cfd_strategy()) {
        let expected = DirectDetector::new().detect(&cfd, &rel);
        let shared = Arc::new(rel);
        for strategy in [SqlStrategy::dnf(), SqlStrategy::cnf(), SqlStrategy::dnf_unindexed(), SqlStrategy::as_written()] {
            let got = Detector::new()
                .with_strategy(strategy)
                .detect_shared(&cfd, Arc::clone(&shared))
                .unwrap()
                .0;
            prop_assert_eq!(&got, &expected, "strategy {:?}", strategy);
        }
    }

    /// Detection is empty iff the CFD is satisfied (semantics agreement with cfd-core).
    #[test]
    fn detection_matches_satisfaction(rel in relation_strategy(), cfd in cfd_strategy()) {
        let report = Detector::new().detect(&cfd, &rel).unwrap();
        prop_assert_eq!(report.is_clean(), cfd.satisfied_by(&rel));
    }

    /// The merged query pair finds exactly the same single-tuple (QC)
    /// violations as running one query pair per CFD.
    #[test]
    fn merged_qc_equals_per_cfd_qc(
        rel in relation_strategy(),
        cfd_a in cfd_strategy(),
        cfd_b in cfd_strategy(),
    ) {
        let cfds = vec![cfd_a, cfd_b];
        let shared = Arc::new(rel);
        let per_cfd = Detector::new().detect_set(&cfds, Arc::clone(&shared)).unwrap();
        let merged = Detector::new().detect_set_merged(&cfds, Arc::clone(&shared)).unwrap();
        prop_assert_eq!(per_cfd.constant_violations(), merged.constant_violations());
        // Multi-tuple violations use different key spaces, but emptiness must agree
        // with the semantic satisfaction of the set.
        let all_satisfied = cfds.iter().all(|c| c.satisfied_by(&shared));
        prop_assert_eq!(merged.is_clean(), all_satisfied);
        prop_assert_eq!(per_cfd.is_clean(), all_satisfied);
    }

    /// Query size (number of WHERE atoms) does not depend on the tableau size.
    #[test]
    fn query_size_independent_of_tableau(cfd in cfd_strategy()) {
        let detector = Detector::new();
        let (qc, qv) = detector.sql_for(&cfd, "r");
        let expected_qc_atoms = cfd.lhs().len() * 3 + cfd.rhs().len() * 3;
        prop_assert_eq!(qc.where_clause.unwrap().atom_count(), expected_qc_atoms);
        prop_assert_eq!(qv.where_clause.unwrap().atom_count(), cfd.lhs().len() * 3);
        prop_assert_eq!(qv.group_by.len(), cfd.lhs().len());
    }

    /// Parallel set detection returns exactly the same report as serial.
    #[test]
    fn parallel_equals_serial(
        rel in relation_strategy(),
        cfd_a in cfd_strategy(),
        cfd_b in cfd_strategy(),
        cfd_c in cfd_strategy(),
    ) {
        let cfds = vec![cfd_a, cfd_b, cfd_c];
        let shared = Arc::new(rel);
        let serial = Detector::new().detect_set(&cfds, Arc::clone(&shared)).unwrap();
        let parallel = Detector::new().detect_set_parallel(&cfds, Arc::clone(&shared), 3).unwrap();
        prop_assert_eq!(serial, parallel);
    }
}
