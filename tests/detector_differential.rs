//! Differential test harness across all detector paths.
//!
//! Five independent implementations compute the Section 4 violation sets:
//!
//! 1. [`DirectDetector`] — the single-threaded hash-based oracle;
//! 2. the SQL `QC`/`QV` query pair ([`Detector::detect`]);
//! 3. the merged-tableaux SQL path ([`Detector::detect_set_merged`], the
//!    Section 4.2 `CASE`-masked single query pair);
//! 4. [`ShardedDetector`] — hash-partitioned parallel detection;
//! 5. [`DetectorKind::Auto`] — the cost-based adaptive planner, whose every
//!    chosen strategy (direct, sharded, fused-merged, index-driven) must be
//!    invisible in the report.
//!
//! On dozens of seeded randomized workloads (deterministic xoshiro256++
//! [`StdRng`], varying size, noise, constants ratio, tableau size and CFD
//! arity) every path must produce the **identical sorted violation set** —
//! compared byte for byte via [`Violations::canonical_bytes`], not merely up
//! to `Eq`. The merged path is exercised per CFD (where its `QV` key space
//! coincides with the per-CFD paths') and additionally on whole sets for its
//! documented weaker guarantee (identical `QC` component, agreeing
//! emptiness).
//!
//! The randomized workloads additionally run through **both** `cfd-repair`
//! engines (the pass-loop heuristic and the equivalence-class engine), and
//! every detector path must agree byte-for-byte on each repaired instance —
//! so the in-place columnar cell edits are differentially checked across
//! every read path, and whenever an engine reports `satisfied`, all four
//! detector paths must report its instance violation-free.
//!
//! The `#[ignore]`d 100k-row case is the CI-sized version of the same
//! harness (`cargo test --release -- --include-ignored`).

use cfd::{Engine, EngineConfig, Error};
use cfd_core::{Cfd, CfdSet, PatternTableau, PatternTuple, PatternValue};
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::rng::StdRng;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{Detector, DetectorKind, DirectDetector, ShardedDetector, Violations};
use cfd_relation::{Relation, Schema, Tuple, Value};
use cfd_repair::{RepairConfig, RepairKind, RepairResult, Repairer};
use std::sync::Arc;

/// Typed equality (catches value-type divergences Display would erase) plus
/// byte equality of the rendered report (pins the user-visible form).
fn assert_identical(got: &Violations, want: &Violations, what: &str) {
    assert_eq!(got, want, "{what} (typed Eq)");
    assert_eq!(
        got.canonical_bytes(),
        want.canonical_bytes(),
        "{what} (rendered bytes)"
    );
}

/// Runs all four paths on one CFD and asserts byte-identical reports.
fn assert_paths_agree_on_one_cfd(cfd: &Cfd, rel: &Relation, label: &str) -> Violations {
    let direct = DirectDetector::new().detect(cfd, rel);
    let shared = Arc::new(rel.clone());

    let sql = Detector::new()
        .detect_shared(cfd, Arc::clone(&shared))
        .unwrap()
        .0;
    assert_identical(
        &sql,
        &direct,
        &format!("{label}: SQL qc/qv path vs the direct oracle"),
    );

    // A single-CFD merged tableau has the CFD's own X as its attribute
    // union, so even the QV key space must coincide.
    let merged = Detector::new()
        .detect_set_merged(std::slice::from_ref(cfd), Arc::clone(&shared))
        .unwrap();
    assert_identical(
        &merged,
        &direct,
        &format!("{label}: merged-tableaux path vs the direct oracle"),
    );

    for shards in [2, 4] {
        let sharded = ShardedDetector::new(shards).detect(cfd, rel);
        assert_identical(
            &sharded,
            &direct,
            &format!("{label}: sharded path ({shards} shards) vs the direct oracle"),
        );
    }
    assert_prepared_session_agrees(std::slice::from_ref(cfd), rel, label);
    assert_parallel_repair_identical(std::slice::from_ref(cfd), rel, label);
    direct
}

/// Prepared-vs-oneshot differential: the same workload served through a
/// reused `Engine`/`Session` must report byte-identically per configured
/// `DetectorKind`, and session repairs must be byte-identical to the
/// one-shot engines. Inconsistent rule sets (which the randomized sweep
/// does generate) must be *rejected at build time* — that rejection path is
/// asserted instead.
fn assert_prepared_session_agrees(cfds: &[Cfd], rel: &Relation, label: &str) {
    let consistent = CfdSet::from_cfds(cfds.to_vec())
        .expect("differential workloads share a schema")
        .ensure_consistent()
        .is_ok();
    if !consistent {
        let err = Engine::builder()
            .rules(cfds.iter().cloned())
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            Error::InconsistentRules,
            "{label}: inconsistent sets must be rejected at build time"
        );
        return;
    }
    let shared = Arc::new(rel.clone());
    for kind in [
        DetectorKind::Direct,
        DetectorKind::Sql,
        DetectorKind::SqlMerged,
        DetectorKind::SqlParallel { threads: 3 },
        DetectorKind::Sharded { shards: 4 },
        DetectorKind::Auto,
    ] {
        let engine = Engine::builder()
            .rules(cfds.iter().cloned())
            .config(EngineConfig::builder().detector(kind).build().unwrap())
            .build()
            .unwrap();
        let mut session = engine.session(Arc::clone(&shared)).unwrap();
        let prepared = session.detect().unwrap();
        let oneshot = kind.detect_set(cfds, Arc::clone(&shared)).unwrap();
        assert_identical(
            &prepared,
            &oneshot,
            &format!("{label}: prepared session vs one-shot ({kind:?})"),
        );
        // Reuse: a second detect through the cached prepared state.
        let again = session.detect().unwrap();
        assert_identical(
            &again,
            &oneshot,
            &format!("{label}: reused session ({kind:?})"),
        );
    }
    // Both repair engines through one reused session, byte-identical to the
    // one-shot facade path on the same snapshot.
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .build()
        .unwrap();
    let mut session = engine.session(Arc::clone(&shared)).unwrap();
    for kind in [RepairKind::Heuristic, RepairKind::EquivClass] {
        let prepared = session.repair(kind).unwrap();
        let oneshot = kind.repair(cfds, rel);
        assert_eq!(
            prepared.modifications, oneshot.modifications,
            "{label}: session {kind:?} modification log"
        );
        assert_eq!(
            prepared.repaired, oneshot.repaired,
            "{label}: session {kind:?} repaired instance"
        );
        assert_eq!(
            prepared.cost, oneshot.cost,
            "{label}: session {kind:?} cost"
        );
        assert_eq!(
            prepared.satisfied, oneshot.satisfied,
            "{label}: session {kind:?} satisfied"
        );
    }
}

/// Parallel-repair differential: the equivalence-class engine at 2, 4 and
/// 8 worker threads must produce **byte-identical** results to the
/// sequential engine — same modification log, same repaired instance, same
/// cost bits, same placeholder spellings, same satisfaction and pass count.
/// `force_parallel` overrides the spawn-amortization clamps so the
/// component-parallel planning and batched-recheck paths genuinely run on
/// these small instances (without it they would silently fall back to the
/// sequential path and the assertions would be vacuous). Goes through
/// [`Repairer`] directly — no engine consistency gate — so inconsistent
/// sets (which force `PinConflict`s and LHS placeholder edits) are
/// exercised too.
fn assert_parallel_repair_identical(cfds: &[Cfd], rel: &Relation, label: &str) -> RepairResult {
    let repair = |threads: usize, force: bool| {
        Repairer::with_config(RepairConfig {
            kind: RepairKind::EquivClass,
            threads,
            force_parallel: force,
            ..RepairConfig::default()
        })
        .repair(cfds, rel)
    };
    let sequential = repair(1, false);
    for threads in [2, 4, 8] {
        let parallel = repair(threads, true);
        assert_eq!(
            parallel.modifications, sequential.modifications,
            "{label}: modification log at {threads} threads"
        );
        assert_eq!(
            parallel.repaired, sequential.repaired,
            "{label}: repaired instance at {threads} threads"
        );
        assert_eq!(
            parallel.cost.to_bits(),
            sequential.cost.to_bits(),
            "{label}: cost bits at {threads} threads"
        );
        assert_eq!(
            parallel.satisfied, sequential.satisfied,
            "{label}: satisfied at {threads} threads"
        );
        assert_eq!(
            parallel.passes, sequential.passes,
            "{label}: pass count at {threads} threads"
        );
    }
    sequential
}

/// Set-level agreement: the per-CFD paths byte-identically, the merged path
/// on its documented guarantee.
fn assert_paths_agree_on_set(cfds: &[Cfd], rel: &Relation, label: &str) {
    let direct = DirectDetector::new().detect_set(cfds, rel);
    let shared = Arc::new(rel.clone());
    let sql = Detector::new()
        .detect_set(cfds, Arc::clone(&shared))
        .unwrap();
    assert_identical(&sql, &direct, &format!("{label}: SQL set"));
    let sharded = ShardedDetector::new(4).detect_set(cfds, rel);
    assert_identical(&sharded, &direct, &format!("{label}: sharded set"));
    let merged = Detector::new()
        .detect_set_merged(cfds, Arc::clone(&shared))
        .unwrap();
    assert_eq!(
        merged.constant_violations(),
        direct.constant_violations(),
        "{label}: merged set QC"
    );
    assert_eq!(
        merged.is_clean(),
        direct.is_clean(),
        "{label}: merged set emptiness"
    );
    // The DetectorKind dispatch goes through the same engines.
    for kind in [
        DetectorKind::Direct,
        DetectorKind::Sql,
        DetectorKind::SqlParallel { threads: 3 },
        DetectorKind::Sharded { shards: 4 },
        DetectorKind::Auto,
    ] {
        let got = kind.detect_set(cfds, Arc::clone(&shared)).unwrap();
        assert_identical(&got, &direct, &format!("{label}: DetectorKind {kind:?}"));
    }
    assert_prepared_session_agrees(cfds, rel, label);
    assert_parallel_repair_identical(cfds, rel, label);
}

/// ≥20 seeded tax workloads sweeping noise, constants ratio and CFD arity.
#[test]
fn tax_workloads_agree_across_all_paths() {
    // (size, noise%, gen seed) × (embedded FD, tableau size, consts%).
    let fds = [
        EmbeddedFd::ZipToState,              // arity 2
        EmbeddedFd::ZipCityToState,          // arity 3
        EmbeddedFd::AreaToCity,              // arity 3
        EmbeddedFd::AreaCityToState,         // arity 4
        EmbeddedFd::StateMaritalToExemption, // arity 3, tax side
    ];
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let mut cases = 0usize;
    let mut dirty_cases = 0usize;
    for round in 0..8 {
        let size = 300 + rng.gen_range(0usize..500);
        let noise = [0.0, 2.0, 8.0, 15.0][rng.gen_range(0usize..4)];
        let data = TaxGenerator::new(TaxConfig {
            size,
            noise_percent: noise,
            seed: 1000 + round,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(round * 31 + 7);
        for &fd in &fds[..3 + (round as usize % 3)] {
            let tab = 20 + rng.gen_range(0usize..120);
            let consts = [0.0, 40.0, 100.0][rng.gen_range(0usize..3)];
            let cfd = workload.single(fd, tab, consts);
            let label = format!(
                "round {round}, {fd:?}, SZ={size}, NOISE={noise}, TABSZ={tab}, CONSTS={consts}"
            );
            let report = assert_paths_agree_on_one_cfd(&cfd, &data, &label);
            cases += 1;
            if !report.is_clean() {
                dirty_cases += 1;
            }
        }
        // And the whole workload as one set.
        let set: Vec<Cfd> = fds[..3]
            .iter()
            .map(|&fd| workload.single(fd, 40, 60.0))
            .collect();
        assert_paths_agree_on_set(&set, &data, &format!("round {round} set"));
    }
    assert!(
        cases >= 20,
        "harness must sweep at least 20 workloads, got {cases}"
    );
    assert!(
        dirty_cases > 0,
        "the sweep must include workloads with real violations"
    );
}

fn random_schema_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0usize..5) {
        0 => Value::Null,
        i => Value::from(["a", "b", "c", "d"][i - 1]),
    }
}

fn small_schema() -> Schema {
    Schema::builder("r")
        .text("A")
        .text("B")
        .text("C")
        .text("D")
        .build()
}

fn random_cfd(rng: &mut StdRng) -> Cfd {
    let schema = small_schema();
    let (lhs, rhs) = match rng.gen_range(0usize..3) {
        0 => (
            schema.resolve_all(["A"]).unwrap(),
            schema.resolve_all(["C"]).unwrap(),
        ),
        1 => (
            schema.resolve_all(["A", "B"]).unwrap(),
            schema.resolve_all(["C", "D"]).unwrap(),
        ),
        _ => (
            schema.resolve_all(["A", "B", "C"]).unwrap(),
            schema.resolve_all(["D"]).unwrap(),
        ),
    };
    let mut tableau = PatternTableau::new();
    for _ in 0..rng.gen_range(1usize..5) {
        let cell = |rng: &mut StdRng| {
            if rng.gen_bool(0.55) {
                PatternValue::Wildcard
            } else {
                PatternValue::constant(["a", "b", "c", "d"][rng.gen_range(0usize..4)])
            }
        };
        let l: Vec<PatternValue> = (0..lhs.len()).map(|_| cell(rng)).collect();
        let r: Vec<PatternValue> = (0..rhs.len()).map(|_| cell(rng)).collect();
        tableau.push(PatternTuple::new(l, r));
    }
    Cfd::from_parts(schema, lhs, rhs, tableau).unwrap()
}

/// Randomized small relations (NULLs included, collision-heavy alphabet):
/// the adversarial counterpart to the generated workloads. Each workload is
/// additionally pushed through `cfd-repair` once, and every detector path
/// must agree byte-for-byte on the *repaired* instance too — repair edits
/// cells in place through the columnar store, so this differentially checks
/// the post-edit state of the relation across all read paths.
#[test]
fn randomized_relations_agree_across_all_paths() {
    let mut rng = StdRng::seed_from_u64(0x5EED5);
    let mut repaired_clean = 0usize;
    for case in 0..32 {
        let mut rel = Relation::new(small_schema());
        for _ in 0..rng.gen_range(0usize..40) {
            rel.push(Tuple::new(
                (0..4).map(|_| random_schema_value(&mut rng)).collect(),
            ))
            .unwrap();
        }
        let cfd = random_cfd(&mut rng);
        assert_paths_agree_on_one_cfd(&cfd, &rel, &format!("random case {case}"));
        let set = vec![random_cfd(&mut rng), random_cfd(&mut rng)];
        assert_paths_agree_on_set(&set, &rel, &format!("random set {case}"));

        // Repair with both engines, then re-detect on each edited instance:
        // every detector path must agree byte-for-byte on the repaired
        // relations, and a satisfied engine must leave an instance all four
        // paths report as violation-free.
        let mut satisfied_both = true;
        for kind in [RepairKind::Heuristic, RepairKind::EquivClass] {
            let result = kind.repair(&set, &rel);
            assert_eq!(
                result.repaired.len(),
                rel.len(),
                "{kind:?} repair never drops rows"
            );
            assert_paths_agree_on_set(
                &set,
                &result.repaired,
                &format!("random set {case} after {kind:?} repair"),
            );
            satisfied_both &= result.satisfied;
            if result.satisfied {
                assert!(
                    DirectDetector::new()
                        .detect_set(&set, &result.repaired)
                        .is_clean(),
                    "case {case}: satisfied {kind:?} repair must re-detect clean"
                );
            }
        }
        if satisfied_both {
            repaired_clean += 1;
        }
    }
    assert!(
        repaired_clean > 0,
        "the sweep must include workloads both engines fully repair"
    );
}

/// Section 6's motivating shapes, scaled to many groups: workloads whose
/// only resolutions are **LHS placeholder edits** — via structural
/// `PinConflict`s (incompatible pattern constants reaching one merged
/// class) and via cross-CFD oscillation (the `b1→b2→b1` cycle). The
/// parallel planner must reproduce the sequential engine's victim choices
/// and placeholder spellings exactly, at every thread count.
#[test]
fn parallel_repair_agrees_on_pin_conflict_and_lhs_edit_workloads() {
    let schema = Schema::builder("r").text("A").text("B").text("C").build();
    let lhs_a = schema.resolve_all(["A"]).unwrap();
    let lhs_c = schema.resolve_all(["C"]).unwrap();
    let rhs_b = schema.resolve_all(["B"]).unwrap();
    let fd_a_b = Cfd::from_parts(
        schema.clone(),
        lhs_a,
        rhs_b.clone(),
        PatternTableau::from_rows(vec![PatternTuple::new(
            vec![PatternValue::Wildcard],
            vec![PatternValue::Wildcard],
        )]),
    )
    .unwrap();
    let c_pins_b = |pairs: &[(&str, &str)]| {
        Cfd::from_parts(
            schema.clone(),
            lhs_c.clone(),
            rhs_b.clone(),
            PatternTableau::from_rows(
                pairs
                    .iter()
                    .map(|&(c, b)| {
                        PatternTuple::new(
                            vec![PatternValue::constant(c)],
                            vec![PatternValue::constant(b)],
                        )
                    })
                    .collect(),
            ),
        )
        .unwrap()
    };
    let row = |a: String, b: &str, c: &str| {
        Tuple::new(vec![Value::from(a), Value::from(b), Value::from(c)])
    };

    // Shape 1 — structural pin conflicts: each A-group's two rows disagree
    // on B (the FD merges their B-cells into one class) *and* each row
    // violates its own C-pattern (B ≠ the pattern constant), so the merged
    // class is pinned to b1 *and* b2 in the same round. No RHS assignment
    // satisfies both — every group must take an LHS placeholder edit.
    let mut conflicted = Relation::new(schema.clone());
    for i in 0..24 {
        conflicted.push(row(format!("a{i}"), "b8", "c1")).unwrap();
        conflicted.push(row(format!("a{i}"), "b9", "c2")).unwrap();
    }
    let sigma = vec![fd_a_b.clone(), c_pins_b(&[("c1", "b1"), ("c2", "b2")])];
    let result = assert_parallel_repair_identical(&sigma, &conflicted, "pin-conflict workload");
    let lhs_edits = result
        .modifications
        .iter()
        .filter(|m| cfd_relation::placeholder::is_placeholder_value(&m.new))
        .count();
    assert!(
        lhs_edits >= 24,
        "every conflicted group must force an LHS placeholder edit, got {lhs_edits}"
    );
    assert!(result.satisfied, "placeholder edits resolve every conflict");

    // Shape 2 — plain merges with agreeing pins plus noise rows: exercises
    // the parallel planner's pinned and unpinned target selection together
    // (components of very different sizes, balanced-chunk planning).
    let mut mixed = Relation::new(schema.clone());
    for i in 0..30 {
        let b = ["b1", "b2", "b3"][i % 3];
        mixed.push(row(format!("a{}", i / 3), b, "c3")).unwrap();
    }
    for i in 0..6 {
        mixed.push(row(format!("x{i}"), "b9", "c1")).unwrap();
    }
    let sigma = vec![fd_a_b, c_pins_b(&[("c1", "b1")])];
    let result = assert_parallel_repair_identical(&sigma, &mixed, "mixed-merge workload");
    assert!(result.satisfied);
    assert!(
        result.changes() > 0,
        "the mixed workload must require real edits"
    );
}

/// The CI-sized differential run: the 100k-row generated tax workload
/// (`cargo test --release -- --include-ignored`). The SQL paths are bounded
/// to one CFD to keep the job inside minutes; the direct/sharded comparison
/// covers the full set.
#[test]
#[ignore = "100k-row differential sweep; run with --include-ignored (CI job)"]
fn tax_workload_100k_agrees_across_all_paths() {
    let data = TaxGenerator::new(TaxConfig {
        size: 100_000,
        noise_percent: 5.0,
        seed: 424_242,
    })
    .generate()
    .relation;
    assert_eq!(data.len(), 100_000);
    let workload = CfdWorkload::new(99);
    let cfds = vec![
        workload.single(EmbeddedFd::ZipToState, 120, 100.0),
        workload.single(EmbeddedFd::ZipCityToState, 120, 60.0),
        workload.single(EmbeddedFd::AreaToCity, 120, 40.0),
        workload.single(EmbeddedFd::AreaCityToState, 60, 50.0),
    ];
    let direct = DirectDetector::new().detect_set(&cfds, &data);
    assert!(!direct.is_clean(), "5% noise must be detected at 100k rows");
    for shards in [2, 4, 8] {
        let sharded = ShardedDetector::new(shards).detect_set(&cfds, &data);
        assert_identical(
            &sharded,
            &direct,
            &format!("sharded({shards}) vs direct at 100k rows"),
        );
    }
    // The adaptive planner on the full set, one-shot and through a served
    // session (which plans with reusable indexes — potentially a different
    // strategy mix, same report).
    let shared = Arc::new(data.clone());
    let auto = DetectorKind::Auto
        .detect_set(&cfds, Arc::clone(&shared))
        .unwrap();
    assert_identical(&auto, &direct, "Auto one-shot vs direct at 100k rows");
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .config(
            EngineConfig::builder()
                .detector(DetectorKind::Auto)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let mut session = engine.session(Arc::clone(&shared)).unwrap();
    let served = session.detect().unwrap();
    assert_identical(&served, &direct, "Auto session vs direct at 100k rows");
    assert!(
        session.detection_plan().is_some(),
        "an Auto detection must leave its plan for inspection"
    );
    // SQL paths on the first CFD only (bounded runtime).
    assert_paths_agree_on_one_cfd(&cfds[0], &data, "100k ZipToState");

    // Parallel equivalence-class repair at CI scale: 100k rows clear the
    // spawn-amortization floor, so 2/4/8 threads genuinely fan out — and
    // must stay byte-identical to the sequential engine. Two CFDs bound
    // the runtime.
    let repaired = assert_parallel_repair_identical(&cfds[..2], &data, "100k parallel repair");
    assert!(repaired.satisfied, "the 100k tax workload repairs fully");
    assert!(repaired.changes() > 0, "5% noise requires real edits");
}
