//! MinCover wired into the engine (`EngineConfigBuilder::minimize_rules`).
//!
//! Two guarantees, each with the precision it actually has:
//!
//! 1. **Byte-identical reports under same-LHS redundancy.** When every rule
//!    the cover removes shares its LHS with a kept rule — exact duplicates,
//!    or pattern rows already implied by a kept tableau over the same
//!    embedded FD — the violation report of the minimized engine is
//!    byte-for-byte the report of the original Σ (the `QV` key space is
//!    untouched). Checked on seeded randomized tax workloads.
//!
//! 2. **Fewer plan steps on transitively redundant sets.** A rule whose LHS
//!    differs from every other rule's (e.g. `AB → C` alongside `B → C`)
//!    costs the cost-based planner its own `PlanStep`; MinCover removes it
//!    and the compiled plan shrinks. (Same-LHS duplicates would *not* show
//!    this — the planner fuses same-LHS groups into one step anyway, which
//!    is exactly why this test uses distinct-LHS redundancy.)

use cfd::{DetectorKind, Engine, EngineConfig};
use cfd_core::Cfd;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_relation::{Relation, Schema, Tuple, Value};
use std::sync::Arc;

fn minimized_config() -> EngineConfig {
    EngineConfig::builder()
        .minimize_rules(true)
        .build()
        .expect("valid config")
}

/// Engine-built report for `rules` over `data`, optionally minimized.
fn report(rules: &[Cfd], data: &Arc<Relation>, minimize: bool) -> (usize, Vec<u8>) {
    let mut builder = Engine::builder().rules(rules.iter().cloned());
    if minimize {
        builder = builder.config(minimized_config());
    }
    let engine = builder.build().expect("consistent rules");
    let kept = engine.rules().len();
    let bytes = engine
        .detect(Arc::clone(data))
        .expect("detection succeeds")
        .canonical_bytes();
    (kept, bytes)
}

/// Seeded randomized workloads: Σ plus same-LHS redundancy (duplicates and
/// subset tableaux) must minimize to fewer rules while the report stays
/// byte-identical — to the redundant set's own report *and* to plain Σ's.
#[test]
fn minimized_reports_are_byte_identical_on_randomized_workloads() {
    let mut dirty = 0usize;
    for round in 0u64..6 {
        let data = Arc::new(
            TaxGenerator::new(TaxConfig {
                size: 300 + (round as usize) * 110,
                noise_percent: [0.0, 4.0, 9.0][round as usize % 3],
                seed: 40 + round,
            })
            .generate()
            .relation,
        );
        let w = CfdWorkload::new(round * 17 + 3);
        // Independent embedded FDs (zip→state, area→city): neither implies
        // anything about the other, so the cover only ever removes the
        // same-LHS redundancy we add below.
        let phi1 = w.single(EmbeddedFd::ZipToState, 30 + (round as usize) * 9, 70.0);
        let phi2 = w.single(EmbeddedFd::AreaToCity, 25, 40.0);
        let base = vec![phi1.clone(), phi2.clone()];

        // Same-LHS redundancy: exact duplicates, plus a third copy of φ1
        // (every one of its pattern rows is already implied row-for-row).
        let redundant = vec![
            phi1.clone(),
            phi2.clone(),
            phi1.clone(),
            phi2.clone(),
            phi1.clone(),
        ];

        let (n_orig, bytes_orig) = report(&redundant, &data, false);
        let (n_min, bytes_min) = report(&redundant, &data, true);
        let (_, bytes_base) = report(&base, &data, false);

        assert!(
            n_min < n_orig,
            "round {round}: cover must shrink the redundant set ({n_min} !< {n_orig})"
        );
        assert_eq!(
            bytes_min, bytes_orig,
            "round {round}: minimized report must be byte-identical to the redundant set's"
        );
        assert_eq!(
            bytes_min, bytes_base,
            "round {round}: minimized report must be byte-identical to plain Σ's"
        );
        if !bytes_min.is_empty() {
            dirty += 1;
        }
    }
    assert!(dirty > 0, "the sweep must include dirty workloads");
}

fn abc_schema() -> Schema {
    Schema::builder("r").text("A").text("B").text("C").build()
}

fn abc_instance() -> Relation {
    let mut rel = Relation::new(abc_schema());
    for row in [
        ["a1", "b1", "c1"],
        ["a1", "b1", "c1"],
        ["a2", "b2", "c2"],
        ["a2", "b2", "c9"], // violates B→C (and AB→C) in b2's group
        ["a3", "b1", "c1"],
    ] {
        rel.push(Tuple::new(row.iter().map(|&v| Value::from(v)).collect()))
            .expect("row matches schema");
    }
    rel
}

/// `AB → C` is implied by `B → C` but has its own (distinct) LHS, so the
/// unminimized planner pays a step for it; MinCover removes it.
#[test]
fn minimized_rule_set_plans_fewer_steps() {
    let schema = abc_schema();
    let rules = [
        Cfd::fd(schema.clone(), ["A"], ["B"]).expect("valid FD"),
        Cfd::fd(schema.clone(), ["B"], ["C"]).expect("valid FD"),
        Cfd::fd(schema, ["A", "B"], ["C"]).expect("valid FD"),
    ];
    let data = Arc::new(abc_instance());

    let steps = |minimize: bool| {
        let config = EngineConfig::builder()
            .detector(DetectorKind::Auto)
            .minimize_rules(minimize)
            .build()
            .expect("valid config");
        let engine = Engine::builder()
            .rules(rules.iter().cloned())
            .config(config)
            .build()
            .expect("consistent rules");
        let mut session = engine.session(Arc::clone(&data)).expect("session");
        let report = session.detect().expect("detection succeeds");
        let steps = session
            .detection_plan()
            .expect("Auto keeps its plan")
            .steps()
            .len();
        (steps, report.canonical_bytes(), engine.rules().len())
    };

    let (steps_orig, _, n_orig) = steps(false);
    let (steps_min, _, n_min) = steps(true);
    assert_eq!(n_orig, 3);
    assert_eq!(n_min, 2, "cover must drop the implied AB→C");
    assert!(
        steps_min < steps_orig,
        "minimized plan must have fewer steps ({steps_min} !< {steps_orig})"
    );

    // Verdict equivalence (the general guarantee): clean iff clean. The
    // dropped AB→C keys its witnesses differently, so full byte identity is
    // not promised here — emptiness agreement is.
    let clean = Arc::new({
        let mut rel = Relation::new(abc_schema());
        for row in [["a1", "b1", "c1"], ["a2", "b2", "c2"]] {
            rel.push(Tuple::new(row.iter().map(|&v| Value::from(v)).collect()))
                .expect("row matches schema");
        }
        rel
    });
    for minimize in [false, true] {
        let mut builder = Engine::builder().rules(rules.iter().cloned());
        if minimize {
            builder = builder.config(minimized_config());
        }
        let engine = builder.build().expect("consistent rules");
        assert!(
            engine
                .detect(Arc::clone(&clean))
                .expect("detection succeeds")
                .is_clean(),
            "minimize={minimize}: clean instance must stay clean"
        );
    }
}
