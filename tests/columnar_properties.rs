//! Property tests for the columnar storage layer (deterministic randomized,
//! offline — no proptest): a columnar [`Relation`] is driven through random
//! interleavings of `push` / `insert_row` / `remove_row` / `retain_rows` /
//! `set_value` edits while a `Vec<Tuple>` mirror replays the same ops with
//! plain vector operations. After every op the store must agree with the
//! mirror **cell for cell** through every read path: [`RowRef`] views,
//! [`Relation::column`] slices, owned round-trips (`to_tuple`/`to_tuples`),
//! projections, and the id-routed `group_by`/`project`/`active_domain`.

use cfd_datagen::rng::StdRng;
use cfd_relation::{AttrId, Relation, Schema, Tuple, Value};

fn schema() -> Schema {
    Schema::builder("r").text("A").text("B").text("C").build()
}

fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0usize..5) {
        0 => Value::Null,
        i => Value::from(["a", "b", "c", "d"][i - 1]),
    }
}

fn random_tuple(rng: &mut StdRng) -> Tuple {
    Tuple::new((0..3).map(|_| random_value(rng)).collect())
}

/// The full read-path comparison: views vs the owned mirror.
fn assert_store_matches_mirror(rel: &Relation, mirror: &[Tuple], what: &str) {
    assert_eq!(rel.len(), mirror.len(), "{what}: row count");
    assert_eq!(rel.to_tuples(), mirror, "{what}: to_tuples round-trip");
    let attrs: Vec<AttrId> = rel.schema().attr_ids().collect();
    for (i, (idx, view)) in rel.iter().enumerate() {
        assert_eq!(idx, i, "{what}: iter order");
        let owned = &mirror[i];
        // RowRef agrees cell-for-cell with the owned Tuple, via every
        // accessor the workspace uses.
        assert_eq!(view, *owned, "{what}: row {i} view == tuple");
        assert_eq!(view.to_tuple(), *owned, "{what}: row {i} round-trip");
        for &a in &attrs {
            assert_eq!(view.id_at(a), owned.id_at(a), "{what}: row {i} {a}");
            assert_eq!(
                rel.column(a)[i],
                owned.id_at(a),
                "{what}: row {i} column slice {a}"
            );
            assert_eq!(view[a], owned[a], "{what}: row {i} Index {a}");
        }
        assert_eq!(
            view.project_ids(&attrs),
            owned.project_ids(&attrs),
            "{what}: row {i} projection"
        );
        assert_eq!(
            view.to_values(),
            owned.to_values(),
            "{what}: row {i} values"
        );
    }
}

/// Mirror-based reference for `group_by`.
fn mirror_group_by(
    mirror: &[Tuple],
    ids: &[AttrId],
) -> std::collections::HashMap<Vec<Value>, Vec<usize>> {
    let mut groups: std::collections::HashMap<Vec<Value>, Vec<usize>> = Default::default();
    for (i, t) in mirror.iter().enumerate() {
        groups.entry(t.project(ids)).or_default().push(i);
    }
    groups
}

#[test]
fn random_edit_interleavings_agree_with_a_tuple_mirror() {
    let mut rng = StdRng::seed_from_u64(0xC01_u64);
    for case in 0..24 {
        let mut rel = Relation::new(schema());
        let mut mirror: Vec<Tuple> = Vec::new();
        for step in 0..rng.gen_range(10usize..40) {
            let what = format!("case {case}, step {step}");
            match rng.gen_range(0usize..6) {
                // push
                0 | 1 => {
                    let t = random_tuple(&mut rng);
                    rel.push(t.clone()).unwrap();
                    mirror.push(t);
                }
                // insert at a random position (append position included)
                2 => {
                    let t = random_tuple(&mut rng);
                    let at = rng.gen_range(0..mirror.len() + 1);
                    rel.insert_row(at, t.clone()).unwrap();
                    mirror.insert(at, t);
                }
                // remove a random row
                3 => {
                    if mirror.is_empty() {
                        assert!(rel.remove_row(0).is_none());
                    } else {
                        let at = rng.gen_range(0..mirror.len());
                        let removed = rel.remove_row(at).unwrap();
                        assert_eq!(removed, mirror.remove(at), "{what}: removed row");
                    }
                }
                // retain a random subset (keep order)
                4 => {
                    let keep: Vec<usize> =
                        (0..mirror.len()).filter(|_| rng.gen_bool(0.7)).collect();
                    rel.retain_rows(&keep);
                    mirror = keep.iter().map(|&i| mirror[i].clone()).collect();
                }
                // edit one cell in place
                _ => {
                    if !mirror.is_empty() {
                        let row = rng.gen_range(0..mirror.len());
                        let attr = AttrId(rng.gen_range(0usize..3));
                        let v = random_value(&mut rng);
                        assert!(rel.set_value(row, attr, v.clone()));
                        mirror[row].set(attr, v);
                    }
                }
            }
            assert_store_matches_mirror(&rel, &mirror, &what);
        }

        // Derived queries agree with the mirror as well.
        let ids = [AttrId(0), AttrId(2)];
        let groups = rel.group_by(&ids);
        assert_eq!(
            groups,
            mirror_group_by(&mirror, &ids),
            "case {case} group_by"
        );
        let projected: Vec<Vec<Value>> = mirror.iter().map(|t| t.project(&ids)).collect();
        assert_eq!(rel.project(&ids), projected, "case {case} project");
        let mut domain: Vec<Value> = mirror
            .iter()
            .map(|t| t[AttrId(1)].clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        domain.sort();
        assert_eq!(rel.active_domain(AttrId(1)), domain, "case {case} domain");

        // gather_rows round-trips an arbitrary selection.
        let pick: Vec<usize> = (0..mirror.len()).filter(|_| rng.gen_bool(0.5)).collect();
        let gathered = rel.gather_rows(&pick);
        let expected: Vec<Tuple> = pick.iter().map(|&i| mirror[i].clone()).collect();
        assert_eq!(gathered.to_tuples(), expected, "case {case} gather");
    }
}
