//! Property-style tests (deterministic randomized, offline — no proptest)
//! for the reasoning machinery of Section 3: normalization preserves
//! satisfaction, consistency witnesses really satisfy the set, implication is
//! sound on sampled instances, and minimal covers are equivalent to (and
//! never larger than) their input.

use cfd_core::{consistency, Cfd, NormalCfd, PatternValue};
use cfd_datagen::rng::StdRng;
use cfd_relation::{Relation, Schema, Tuple, Value};

const CASES: usize = 64;

fn schema() -> Schema {
    Schema::builder("r").text("A").text("B").text("C").build()
}

fn random_value(rng: &mut StdRng) -> Value {
    Value::from(["x", "y", "z"][rng.gen_range(0usize..3)])
}

fn random_cell(rng: &mut StdRng) -> PatternValue {
    if rng.gen_bool(2.0 / 3.0) {
        PatternValue::Wildcard
    } else {
        PatternValue::constant(random_value(rng))
    }
}

/// A normal-form CFD over the 3-attribute schema with a 1- or 2-attribute LHS.
fn random_normal_cfd(rng: &mut StdRng) -> NormalCfd {
    let schema = schema();
    let attrs: Vec<_> = schema.attr_ids().collect();
    let rhs = attrs[rng.gen_range(0usize..3)];
    let lhs_variant = rng.gen_range(0usize..3);
    let lhs: Vec<_> = attrs
        .iter()
        .copied()
        .filter(|a| *a != rhs)
        .take(1 + lhs_variant % 2)
        .collect();
    let lhs_pattern: Vec<PatternValue> = (0..lhs.len()).map(|_| random_cell(rng)).collect();
    let rhs_pattern = random_cell(rng);
    NormalCfd::new(schema, lhs, lhs_pattern, rhs, rhs_pattern).unwrap()
}

fn random_relation(rng: &mut StdRng) -> Relation {
    let mut rel = Relation::new(schema());
    for _ in 0..rng.gen_range(0usize..16) {
        let row: Vec<Value> = (0..3).map(|_| random_value(rng)).collect();
        rel.push(Tuple::new(row)).unwrap();
    }
    rel
}

/// A general CFD is satisfied iff every CFD of its normalization is.
#[test]
fn normalization_preserves_satisfaction() {
    let mut rng = StdRng::seed_from_u64(0x0401);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let n = random_normal_cfd(&mut rng);
        // Build a general CFD by denormalizing, then compare satisfaction.
        let generals = NormalCfd::denormalize(std::slice::from_ref(&n)).unwrap();
        for general in &generals {
            let renormalized = NormalCfd::normalize(general).unwrap();
            let direct = general.satisfied_by(&rel);
            let via_normal = renormalized
                .iter()
                .all(|m| m.to_cfd().unwrap().satisfied_by(&rel));
            assert_eq!(direct, via_normal, "case {case}");
        }
    }
}

/// If the consistency check produces a witness, the single-tuple instance
/// built from it satisfies every CFD of the set.
#[test]
fn consistency_witness_satisfies_sigma() {
    let mut rng = StdRng::seed_from_u64(0x0402);
    for case in 0..CASES {
        let cfds: Vec<NormalCfd> = (0..rng.gen_range(1usize..5))
            .map(|_| random_normal_cfd(&mut rng))
            .collect();
        match consistency::find_witness(&cfds) {
            None => {
                // Inconsistent: there must be no single-tuple model among the
                // constants mentioned in the CFDs (spot-check a few).
                let schema = schema();
                for v in ["x", "y", "z"] {
                    let mut rel = Relation::new(schema.clone());
                    rel.push(Tuple::new(vec![Value::from(v); 3])).unwrap();
                    let all = cfds.iter().all(|c| c.to_cfd().unwrap().satisfied_by(&rel));
                    assert!(
                        !all,
                        "case {case}: claimed inconsistent but {v}-tuple satisfies all"
                    );
                }
            }
            Some(witness) => {
                let schema = schema();
                let mut tuple = Tuple::nulls(schema.arity());
                for (attr, value) in witness {
                    tuple.set(attr, value);
                }
                let mut rel = Relation::new(schema);
                rel.push(tuple).unwrap();
                for c in &cfds {
                    assert!(
                        c.to_cfd().unwrap().satisfied_by(&rel),
                        "case {case}: witness violates {c}"
                    );
                }
            }
        }
    }
}

/// Soundness of implication: if Σ ⊨ ϕ then every sampled instance that
/// satisfies Σ also satisfies ϕ.
#[test]
fn implication_is_sound_on_samples() {
    let mut rng = StdRng::seed_from_u64(0x0403);
    for case in 0..CASES {
        let sigma: Vec<NormalCfd> = (0..rng.gen_range(0usize..4))
            .map(|_| random_normal_cfd(&mut rng))
            .collect();
        let phi = random_normal_cfd(&mut rng);
        let rel = random_relation(&mut rng);
        if cfd_core::implies(&sigma, &phi) {
            let sigma_holds = sigma.iter().all(|c| c.to_cfd().unwrap().satisfied_by(&rel));
            if sigma_holds {
                assert!(
                    phi.to_cfd().unwrap().satisfied_by(&rel),
                    "case {case}: Σ ⊨ ϕ claimed, but found instance satisfying Σ and violating ϕ"
                );
            }
        }
    }
}

/// The minimal cover is equivalent to its (consistent) input and not larger.
#[test]
fn minimal_cover_is_equivalent_and_no_larger() {
    let mut rng = StdRng::seed_from_u64(0x0404);
    for case in 0..CASES {
        let sigma: Vec<NormalCfd> = (0..rng.gen_range(1usize..5))
            .map(|_| random_normal_cfd(&mut rng))
            .collect();
        let cover = cfd_core::minimal_cover(&sigma);
        if consistency::is_consistent(&sigma) {
            assert!(
                cfd_core::mincover::equivalent(&sigma, &cover),
                "case {case}"
            );
            assert!(cover.len() <= sigma.len(), "case {case}");
        } else {
            assert!(cover.is_empty(), "case {case}");
        }
    }
}

/// Members of Σ are always implied by Σ (reflexivity of implication).
#[test]
fn sigma_implies_its_members() {
    let mut rng = StdRng::seed_from_u64(0x0405);
    for case in 0..CASES {
        let sigma: Vec<NormalCfd> = (0..rng.gen_range(1usize..5))
            .map(|_| random_normal_cfd(&mut rng))
            .collect();
        for phi in &sigma {
            assert!(cfd_core::implies(&sigma, phi), "case {case}: {phi}");
        }
    }
}

/// Repairing always yields an instance satisfying a consistent Σ, and a
/// clean instance is never modified.
#[test]
fn repair_reaches_satisfaction() {
    let mut rng = StdRng::seed_from_u64(0x0406);
    for case in 0..CASES {
        let rel = random_relation(&mut rng);
        let n = random_normal_cfd(&mut rng);
        let generals: Vec<Cfd> = NormalCfd::denormalize(std::slice::from_ref(&n)).unwrap();
        if !consistency::is_consistent(std::slice::from_ref(&n)) {
            continue;
        }
        let result = cfd_repair::Repairer::new().repair(&generals, &rel);
        assert!(
            result.satisfied,
            "case {case}: repair failed for {n} on {rel}"
        );
        if generals.iter().all(|c| c.satisfied_by(&rel)) {
            assert_eq!(result.changes(), 0, "case {case}");
        }
    }
}
