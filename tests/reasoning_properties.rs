//! Property-based tests for the reasoning machinery of Section 3:
//! normalization preserves satisfaction, consistency witnesses really satisfy
//! the set, implication is sound on sampled instances, and minimal covers are
//! equivalent to (and never larger than) their input.

use cfd_core::{consistency, Cfd, NormalCfd, PatternValue};
use cfd_relation::{Relation, Schema, Tuple, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::builder("r").text("A").text("B").text("C").build()
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![Just(Value::from("x")), Just(Value::from("y")), Just(Value::from("z"))]
}

fn pattern_cell() -> impl Strategy<Value = PatternValue> {
    prop_oneof![
        2 => Just(PatternValue::Wildcard),
        1 => value_strategy().prop_map(PatternValue::Const),
    ]
}

/// A normal-form CFD over the 3-attribute schema with a 1- or 2-attribute LHS.
fn normal_cfd_strategy() -> impl Strategy<Value = NormalCfd> {
    (0usize..3, 0usize..3, prop::collection::vec(pattern_cell(), 3))
        .prop_map(|(rhs_idx, lhs_variant, cells)| {
            let schema = schema();
            let attrs: Vec<_> = schema.attr_ids().collect();
            let rhs = attrs[rhs_idx];
            let lhs: Vec<_> = attrs
                .iter()
                .copied()
                .filter(|a| *a != rhs)
                .take(1 + lhs_variant % 2)
                .collect();
            let lhs_pattern = cells[..lhs.len()].to_vec();
            let rhs_pattern = cells[2].clone();
            NormalCfd::new(schema, lhs, lhs_pattern, rhs, rhs_pattern).unwrap()
        })
}

fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(value_strategy(), 3), 0..16).prop_map(|rows| {
        let mut rel = Relation::new(schema());
        for row in rows {
            rel.push(Tuple::new(row)).unwrap();
        }
        rel
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A general CFD is satisfied iff every CFD of its normalization is.
    #[test]
    fn normalization_preserves_satisfaction(rel in relation_strategy(), n in normal_cfd_strategy()) {
        // Build a general CFD by denormalizing a couple of normal ones that
        // share the embedded FD, then compare satisfaction.
        let generals = NormalCfd::denormalize(std::slice::from_ref(&n)).unwrap();
        for general in &generals {
            let renormalized = NormalCfd::normalize(general).unwrap();
            let direct = general.satisfied_by(&rel);
            let via_normal = renormalized.iter().all(|m| m.to_cfd().unwrap().satisfied_by(&rel));
            prop_assert_eq!(direct, via_normal);
        }
    }

    /// If the consistency check produces a witness, the single-tuple instance
    /// built from it satisfies every CFD of the set.
    #[test]
    fn consistency_witness_satisfies_sigma(cfds in prop::collection::vec(normal_cfd_strategy(), 1..5)) {
        match consistency::find_witness(&cfds) {
            None => {
                // Inconsistent: there must be no single-tuple model among the
                // constants mentioned in the CFDs (spot-check a few).
                let schema = schema();
                for v in ["x", "y", "z"] {
                    let mut rel = Relation::new(schema.clone());
                    rel.push(Tuple::new(vec![Value::from(v); 3])).unwrap();
                    let all = cfds.iter().all(|c| c.to_cfd().unwrap().satisfied_by(&rel));
                    prop_assert!(!all, "claimed inconsistent but {v}-tuple satisfies all");
                }
            }
            Some(witness) => {
                let schema = schema();
                let mut tuple = Tuple::nulls(schema.arity());
                for (attr, value) in witness {
                    tuple.set(attr, value);
                }
                let mut rel = Relation::new(schema);
                rel.push(tuple).unwrap();
                for c in &cfds {
                    prop_assert!(c.to_cfd().unwrap().satisfied_by(&rel), "witness violates {c}");
                }
            }
        }
    }

    /// Soundness of implication: if Σ ⊨ ϕ then every sampled instance that
    /// satisfies Σ also satisfies ϕ.
    #[test]
    fn implication_is_sound_on_samples(
        sigma in prop::collection::vec(normal_cfd_strategy(), 0..4),
        phi in normal_cfd_strategy(),
        rel in relation_strategy(),
    ) {
        if cfd_core::implies(&sigma, &phi) {
            let sigma_holds = sigma.iter().all(|c| c.to_cfd().unwrap().satisfied_by(&rel));
            if sigma_holds {
                prop_assert!(
                    phi.to_cfd().unwrap().satisfied_by(&rel),
                    "Σ ⊨ ϕ claimed, but found instance satisfying Σ and violating ϕ"
                );
            }
        }
    }

    /// The minimal cover is equivalent to its (consistent) input and not larger.
    #[test]
    fn minimal_cover_is_equivalent_and_no_larger(
        sigma in prop::collection::vec(normal_cfd_strategy(), 1..5),
    ) {
        let cover = cfd_core::minimal_cover(&sigma);
        if consistency::is_consistent(&sigma) {
            prop_assert!(cfd_core::mincover::equivalent(&sigma, &cover));
            prop_assert!(cover.len() <= sigma.len());
        } else {
            prop_assert!(cover.is_empty());
        }
    }

    /// Members of Σ are always implied by Σ (reflexivity of implication).
    #[test]
    fn sigma_implies_its_members(sigma in prop::collection::vec(normal_cfd_strategy(), 1..5)) {
        for phi in &sigma {
            prop_assert!(cfd_core::implies(&sigma, phi));
        }
    }

    /// Repairing always yields an instance satisfying a consistent Σ, and a
    /// clean instance is never modified.
    #[test]
    fn repair_reaches_satisfaction(
        rel in relation_strategy(),
        n in normal_cfd_strategy(),
    ) {
        let generals: Vec<Cfd> = NormalCfd::denormalize(std::slice::from_ref(&n)).unwrap();
        if !consistency::is_consistent(std::slice::from_ref(&n)) {
            return Ok(());
        }
        let result = cfd_repair::Repairer::new().repair(&generals, &rel);
        prop_assert!(result.satisfied, "repair failed for {n} on {rel}");
        if generals.iter().all(|c| c.satisfied_by(&rel)) {
            prop_assert_eq!(result.changes(), 0);
        }
    }
}
