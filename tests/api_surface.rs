//! Public-API surface snapshot (in-tree, no external deps).
//!
//! This test pins the facade's documented surface **at compile time**: the
//! prelude exports, the `Engine`/`Session` method sets with their exact
//! signatures (as typed function items), the free-function signatures, the
//! unified error type, and the `Send + Sync` sharing contract. Renaming a
//! method, changing a parameter type, or dropping a prelude export breaks
//! this file — which is the point: the README migration table and the
//! rustdoc stay honest because this snapshot compiles against them.

#![allow(dead_code, unused_imports, clippy::type_complexity)]

// Every prelude export, imported individually so a removal is a hard error.
use cfd::prelude::{
    cust_instance, cust_schema, AttrType, BatchOp, Catalog, Cfd, CfdSet, CostModel, Detector,
    DetectorKind, Domain, Engine, EngineBuilder, EngineConfig, EngineConfigBuilder, Error,
    Explanation, IncrementalDetector, PatternTableau, PatternTuple, PatternValue, PlannedEdit,
    PreparedQuery, Relation, RepairConfig, RepairKind, RepairResult, Repairer, Schema, Session,
    ShardedDetector, StorageConfig, Strategy, Tuple, TupleWeights, Value, ViolationItem,
    Violations,
};
use cfd_detect::Violations as DetectViolations;
use cfd_repair::RepairResult as RepairResultAlias;
use std::sync::Arc;

/// The free functions keep their documented signatures, `cfd::Error` being
/// the only error type either can return.
const _FREE_FUNCTIONS: () = {
    let _: fn(DetectorKind, &[Cfd], Arc<Relation>) -> Result<DetectViolations, Error> =
        cfd::detect_violations;
    let _: fn(RepairKind, &[Cfd], Arc<Relation>) -> Result<RepairResultAlias, Error> =
        cfd::repair_violations;
};

/// The `EngineBuilder` → `Engine` → `Session` lifecycle signatures.
const _LIFECYCLE: () = {
    let _: fn() -> EngineBuilder = Engine::builder;
    let _: fn(EngineBuilder, Cfd) -> EngineBuilder = EngineBuilder::rule;
    let _: fn(EngineBuilder, CfdSet) -> EngineBuilder = EngineBuilder::rule_set;
    let _: fn(EngineBuilder, EngineConfig) -> EngineBuilder = EngineBuilder::config;
    let _: fn(EngineBuilder) -> Result<Engine, Error> = EngineBuilder::build;

    let _: fn(&Engine) -> &CfdSet = Engine::rules;
    let _: fn(&Engine) -> &EngineConfig = Engine::config;
    let _: fn(&Engine) -> Option<&Schema> = Engine::schema;
    let _: fn(&Engine, Arc<Relation>) -> Result<Session, Error> = Engine::session;
    let _: fn(&Engine, &std::path::Path) -> Result<Session, Error> =
        |engine, dir| engine.session_on_disk(dir);
    let _: fn(&Engine, Arc<Relation>) -> Result<Violations, Error> = Engine::detect;
    let _: fn(&Engine, Arc<Relation>, RepairKind) -> Result<RepairResult, Error> = Engine::repair;
};

/// The `Session` method set: detect/repair/stream/explain from one handle.
const _SESSION: () = {
    let _: fn(&Session) -> &Engine = Session::engine;
    let _: fn(&Session) -> &Schema = Session::schema;
    let _: fn(&Session) -> usize = Session::len;
    let _: fn(&Session) -> bool = Session::is_empty;
    let _: fn(&mut Session) -> Result<Arc<Relation>, Error> = Session::snapshot;
    let _: fn(&mut Session) -> Result<Violations, Error> = Session::detect;
    let _: fn(&mut Session, RepairKind) -> Result<RepairResult, Error> = Session::repair;
    let _: fn(&mut Session, &[BatchOp]) -> Result<Violations, Error> = Session::apply_batch;
    let _: fn(&mut Session, &[BatchOp]) -> Result<(), Error> = Session::ingest;
    let _: fn(&mut Session, &RepairResult) -> Result<Violations, Error> = Session::commit_repair;
    let _: fn(&Session) -> bool = Session::is_disk_backed;
    let _: fn(&Session) -> Option<cfd::PoolStats> = Session::pool_stats;
    let _: fn(&Session) -> Option<u64> = Session::committed_batches;
    let _: fn(&mut Session) -> Result<(), Error> = Session::checkpoint;
    let _: fn(&mut Session, &[Tuple]) -> Result<Violations, Error> = Session::preview_insertions;
    let _: fn(&mut Session, &[Tuple]) -> Result<Violations, Error> = Session::preview_deletions;
    let _: fn(&mut Session, &ViolationItem) -> Result<Vec<Explanation>, Error> = Session::explain;
};

/// The consolidated configuration builder.
const _CONFIG: () = {
    let _: fn() -> EngineConfigBuilder = EngineConfig::builder;
    let _: fn(EngineConfigBuilder, DetectorKind) -> EngineConfigBuilder =
        EngineConfigBuilder::detector;
    let _: fn(EngineConfigBuilder, Strategy) -> EngineConfigBuilder = EngineConfigBuilder::strategy;
    let _: fn(EngineConfigBuilder, RepairKind) -> EngineConfigBuilder =
        EngineConfigBuilder::repair_kind;
    let _: fn(EngineConfigBuilder, usize) -> EngineConfigBuilder = EngineConfigBuilder::max_passes;
    let _: fn(EngineConfigBuilder, CostModel) -> EngineConfigBuilder =
        EngineConfigBuilder::cost_model;
    let _: fn(EngineConfigBuilder, bool) -> EngineConfigBuilder =
        EngineConfigBuilder::allow_lhs_edits;
    let _: fn(EngineConfigBuilder, bool) -> EngineConfigBuilder =
        EngineConfigBuilder::typed_placeholders;
    let _: fn(EngineConfigBuilder) -> Result<EngineConfig, Error> = EngineConfigBuilder::build;

    let _: fn(&EngineConfig) -> DetectorKind = EngineConfig::detector;
    let _: fn(&EngineConfig) -> Strategy = EngineConfig::strategy;
    let _: fn(&EngineConfig) -> &RepairConfig = EngineConfig::repair;
};

/// Report iteration fuses with explain through `ViolationItem`.
const _REPORT: () = {
    let _: fn(&ViolationItem) -> &[Value] = ViolationItem::values;
};

/// The documented sharing contract: `Engine` is shareable across threads;
/// `Session` is owned per thread but may move between them. `cfd::Error` is
/// a real `std` error.
fn _contracts() {
    fn send_sync<T: Send + Sync>() {}
    fn send<T: Send>() {}
    fn std_error<T: std::error::Error>() {}
    send_sync::<Engine>();
    send_sync::<EngineConfig>();
    send_sync::<PreparedQuery>();
    send::<Session>();
    std_error::<Error>();
}

/// `From` conversions into the unified error (compile-time check).
fn _error_conversions() {
    fn from_sql(e: cfd_sql::SqlError) -> Error {
        e.into()
    }
    fn from_relation(e: cfd_relation::RelationError) -> Error {
        e.into()
    }
    fn from_rules(e: cfd_core::CfdError) -> Error {
        e.into()
    }
    let _ = (from_sql, from_relation, from_rules);
}

/// A documented-lifecycle smoke run: the quickstart flow compiles and works
/// exactly as the README shows it.
#[test]
fn documented_lifecycle_compiles_and_runs() {
    let engine: Engine = Engine::builder()
        .rule_set(cfd::datagen::fig2_cfd_set())
        .config(
            EngineConfig::builder()
                .detector(DetectorKind::Direct)
                .repair_kind(RepairKind::EquivClass)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let mut session: Session = engine.session(Arc::new(cust_instance())).unwrap();
    let report: Violations = session.detect().unwrap();
    assert_eq!(report.constant_violations().len(), 2);
    for item in report.items() {
        let explanations: Vec<Explanation> = session.explain(&item).unwrap();
        assert!(!explanations.is_empty());
    }
    let repair: RepairResult = session.repair(RepairKind::EquivClass).unwrap();
    assert!(repair.satisfied);
}
