//! Integration tests of the disk-backed session path
//! ([`Engine::session_on_disk`]): backend transparency (disk vs. memory,
//! byte-identical reports across every detector kind), failure-atomic
//! batch rejection, bounded page memory on workloads far larger than the
//! buffer pool, and the kill-and-recover harness (a child process
//! `abort()`ed mid-stream must recover to a byte-identical report).

use cfd::prelude::*;
use cfd::{RepairKind, StorageConfig};
use cfd_datagen::cust::{cust_instance, fig2_cfd_set};
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_relation::Relation;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("cfd-store-backend-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tax_cfds(seed: u64) -> Vec<Cfd> {
    let workload = CfdWorkload::new(seed);
    [
        EmbeddedFd::ZipToState,
        EmbeddedFd::AreaToCity,
        EmbeddedFd::StateMaritalToExemption,
    ]
    .iter()
    .map(|&fd| workload.single(fd, 40, 60.0))
    .collect()
}

fn insert_ops(data: &Relation) -> Vec<BatchOp> {
    data.to_tuples().into_iter().map(BatchOp::Insert).collect()
}

/// Satellite regression: a rejected batch must not cost the session its
/// prepared state — in particular the cached detection plan of
/// [`DetectorKind::Auto`] must survive, because validation happens before
/// any mutation or cache invalidation.
#[test]
fn a_rejected_batch_preserves_the_cached_detection_plan() {
    let engine = Engine::builder()
        .rule_set(fig2_cfd_set())
        .config(
            EngineConfig::builder()
                .detector(DetectorKind::Auto)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let mut session = engine.session(Arc::new(cust_instance())).unwrap();
    let before = session.detect().unwrap();
    let plan = session.detection_plan().expect("Auto detect caches a plan");
    let steps_before = plan.steps().len();

    let err = session
        .apply_batch(&[BatchOp::Insert(Tuple::nulls(2))])
        .unwrap_err();
    assert!(matches!(err, Error::Relation(_)), "got {err:?}");

    // The plan (and everything else prepared) survived the rejection.
    let plan = session
        .detection_plan()
        .expect("a rejected batch must not clear the cached plan");
    assert_eq!(plan.steps().len(), steps_before);
    let after = session.detect().unwrap();
    assert_eq!(before.canonical_bytes(), after.canonical_bytes());
}

/// The disk path shares the same contract: rejection commits nothing,
/// invalidates nothing, and the in-memory error variant is raised.
#[test]
fn a_rejected_batch_on_a_disk_session_commits_nothing() {
    let dir = scratch_dir("reject");
    let engine = Engine::builder().rule_set(fig2_cfd_set()).build().unwrap();
    let mut session = engine.session_on_disk(&dir).unwrap();
    session.apply_batch(&insert_ops(&cust_instance())).unwrap();
    let before = session.detect().unwrap();
    assert_eq!(session.committed_batches(), Some(1));

    let err = session
        .apply_batch(&[
            BatchOp::Insert(cust_instance().to_tuples()[0].clone()),
            BatchOp::Insert(Tuple::nulls(3)),
        ])
        .unwrap_err();
    // Identical variant to the in-memory rejection: backend-transparent
    // even in how a malformed batch fails.
    assert!(matches!(err, Error::Relation(_)), "got {err:?}");
    assert_eq!(session.committed_batches(), Some(1));
    assert_eq!(session.len(), cust_instance().len());
    let after = session.detect().unwrap();
    assert_eq!(before.canonical_bytes(), after.canonical_bytes());
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Differential harness over the disk path: for every detector kind, a
/// disk-backed session must report byte-identically to an in-memory
/// session over the same instance — whether the kind scans the store
/// directly (Direct/Sharded/Auto) or materializes first (the SQL kinds).
#[test]
fn disk_and_memory_sessions_agree_across_every_detector_kind() {
    let dir = scratch_dir("differential");
    let data = TaxGenerator::new(TaxConfig {
        size: 1_500,
        noise_percent: 8.0,
        seed: 77,
    })
    .generate()
    .relation;
    let cfds = tax_cfds(7);
    let kinds = [
        DetectorKind::Direct,
        DetectorKind::Sql,
        DetectorKind::SqlParallel { threads: 2 },
        DetectorKind::SqlMerged,
        DetectorKind::Sharded { shards: 4 },
        DetectorKind::Auto,
    ];
    let mut populated = false;
    let mut dirty = false;
    for kind in kinds {
        let engine = Engine::builder()
            .rules(cfds.iter().cloned())
            .config(
                EngineConfig::builder()
                    .detector(kind)
                    .storage(StorageConfig {
                        pool_pages: 8,
                        ..StorageConfig::default()
                    })
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let memory = engine
            .session(Arc::new(data.clone()))
            .unwrap()
            .detect()
            .unwrap();
        // One shared store directory: the first kind populates it, every
        // later kind reopens it — so this also sweeps clean recovery.
        let mut session = engine.session_on_disk(&dir).unwrap();
        if !populated {
            session.apply_batch(&insert_ops(&data)).unwrap();
            populated = true;
        }
        let disk = session.detect().unwrap();
        assert_eq!(
            memory.canonical_bytes(),
            disk.canonical_bytes(),
            "disk vs memory report with {kind:?}"
        );
        dirty |= !disk.is_clean();
    }
    assert!(dirty, "the workload must contain real violations");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: detect + repair on a workload more than 10× the buffer-pool
/// budget, with page memory provably bounded (`peak_resident <= capacity`)
/// and the repaired instance durably committed and clean.
#[test]
fn out_of_core_detect_and_repair_stay_within_the_pool_budget() {
    let dir = scratch_dir("outofcore");
    let data = TaxGenerator::new(TaxConfig {
        size: 3_000,
        noise_percent: 5.0,
        seed: 11,
    })
    .generate()
    .relation;
    let cfds = tax_cfds(3);
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .config(
            EngineConfig::builder()
                .storage(StorageConfig {
                    pool_pages: 2, // clamped pool floor: 2 pages = 8 KiB
                    ..StorageConfig::default()
                })
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let mut session = engine.session_on_disk(&dir).unwrap();
    // 3000 rows × 15 attrs = 45 pages of cells — >20× the 2-page pool.
    session.apply_batch(&insert_ops(&data)).unwrap();
    let report = session.detect().unwrap();
    assert!(!report.is_clean(), "noisy workload must have violations");

    let repair = session.repair(RepairKind::EquivClass).unwrap();
    assert!(repair.satisfied);
    let after = session.commit_repair(&repair).unwrap();
    assert!(after.is_clean(), "committed repair leaves a clean instance");

    let stats = session.pool_stats().expect("disk-backed session");
    assert!(
        stats.peak_resident <= stats.capacity,
        "peak_resident {} exceeded pool capacity {}",
        stats.peak_resident,
        stats.capacity
    );
    assert!(stats.evictions > 0, "an out-of-core scan must evict");

    // The repaired instance is durable: a reopened session is still clean.
    drop(session);
    let mut session = engine.session_on_disk(&dir).unwrap();
    assert!(session.detect().unwrap().is_clean());
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

/// CI-sized (`--include-ignored`) variant: 40k rows against a 16-page pool.
#[test]
#[ignore = "CI-sized; run with --include-ignored in release"]
fn out_of_core_40k_rows_stay_within_a_16_page_pool() {
    let dir = scratch_dir("outofcore40k");
    let data = TaxGenerator::new(TaxConfig {
        size: 40_000,
        noise_percent: 5.0,
        seed: 19,
    })
    .generate()
    .relation;
    let cfds = tax_cfds(5);
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .config(
            EngineConfig::builder()
                .storage(StorageConfig {
                    pool_pages: 16, // 64 KiB of page memory
                    ..StorageConfig::default()
                })
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let mut session = engine.session_on_disk(&dir).unwrap();
    session.apply_batch(&insert_ops(&data)).unwrap();
    let disk = session.detect().unwrap();
    let memory = engine.session(Arc::new(data)).unwrap().detect().unwrap();
    assert_eq!(memory.canonical_bytes(), disk.canonical_bytes());
    let repair = session.repair(RepairKind::EquivClass).unwrap();
    assert!(repair.satisfied);
    assert!(session.commit_repair(&repair).unwrap().is_clean());
    let stats = session.pool_stats().unwrap();
    assert!(
        stats.peak_resident <= stats.capacity,
        "peak_resident {} exceeded pool capacity {}",
        stats.peak_resident,
        stats.capacity
    );
    drop(session);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Kill-and-recover harness
// ---------------------------------------------------------------------------

/// The deterministic batch sequence both the killed child and the in-memory
/// reference apply: five batches of cust-derived rows with per-batch name
/// edits, plus one delete.
fn kill_batches() -> Vec<Vec<BatchOp>> {
    let base = cust_instance().to_tuples();
    let mut batches = Vec::new();
    for k in 0..5u32 {
        let mut ops = Vec::new();
        for (i, t) in base.iter().enumerate() {
            let mut cells = t.to_values();
            cells[3] = Value::from(format!("{}-{k}", ["N", "M", "O"][i % 3]).as_str());
            ops.push(BatchOp::Insert(Tuple::new(cells)));
        }
        if k == 3 {
            // Delete one row inserted by batch 1 (distinct by construction).
            let mut cells = base[0].to_values();
            cells[3] = Value::from("N-1");
            ops.push(BatchOp::Delete(Tuple::new(cells)));
        }
        batches.push(ops);
    }
    batches
}

const KILL_DIR_ENV: &str = "CFD_KILL_AND_RECOVER_DIR";

/// Hidden child half of the harness: only does anything when re-executed by
/// the parent test below with the store directory in the environment.
/// Applies the deterministic batches — every one reporting success, so
/// every one fsynced — then dies the hard way, with no destructors, no
/// checkpoint, no flush.
#[test]
#[ignore = "internal child process of kill_and_recover; no-op when run directly"]
fn kill_and_recover_child() {
    let Ok(dir) = std::env::var(KILL_DIR_ENV) else {
        return; // Not re-executed by the parent: nothing to do.
    };
    let engine = Engine::builder().rule_set(fig2_cfd_set()).build().unwrap();
    let mut session = engine.session_on_disk(&dir).unwrap();
    for ops in kill_batches() {
        session.apply_batch(&ops).unwrap();
    }
    std::process::abort();
}

/// Kill-and-recover: a child process is `abort()`ed immediately after its
/// last successful `apply_batch`. Recovery must (a) count exactly the
/// batches that reported success and (b) produce a violation report
/// byte-identical to an in-memory session that applied the same batches —
/// even with torn garbage appended to the WAL after the kill.
#[test]
#[ignore = "spawns and aborts a child process; run with --include-ignored"]
fn kill_and_recover_reports_byte_identically() {
    use std::io::Write as _;
    let dir = scratch_dir("kill");
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().expect("test binary path");
    let status = std::process::Command::new(exe)
        .args(["--exact", "kill_and_recover_child", "--ignored"])
        .env(KILL_DIR_ENV, &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn child");
    assert!(!status.success(), "the child must die by abort()");

    // A torn half-record at the WAL tail, as a crash mid-append would
    // leave: recovery must truncate it, not fail.
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("wal.log"))
        .expect("child created the store");
    wal.write_all(&[0x77, 0x01, 0x00, 0x00, 0xba, 0xad, 0xf0])
        .unwrap();
    wal.sync_all().unwrap();
    drop(wal);

    let engine = Engine::builder().rule_set(fig2_cfd_set()).build().unwrap();
    let batches = kill_batches();
    let mut recovered = engine.session_on_disk(&dir).unwrap();
    assert_eq!(
        recovered.committed_batches(),
        Some(batches.len() as u64),
        "exactly the batches that reported success are recovered"
    );
    let disk = recovered.detect().unwrap();

    // The uncrashed reference: an in-memory session starting from the same
    // empty instance, applying the same batches.
    let mut reference = engine
        .session(Arc::new(Relation::new(cust_instance().schema().clone())))
        .unwrap();
    for ops in &batches {
        reference.apply_batch(ops).unwrap();
    }
    let want = reference.detect().unwrap();
    assert_eq!(
        disk.canonical_bytes(),
        want.canonical_bytes(),
        "recovered report must be byte-identical to the uncrashed reference"
    );
    assert_eq!(recovered.len(), reference.len());
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dir);
}
