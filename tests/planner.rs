//! Facade-level tests of the cost-based adaptive detection planner
//! (`DetectorKind::Auto`): plan provenance through the session, statistics
//! invalidation across streamed batches, and byte-identity of every adaptive
//! report to the direct oracle.

use cfd::{DetectorKind, Engine, EngineConfig, Session, StepStrategy};
use cfd_core::Cfd;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_detect::{BatchOp, DirectDetector};
use cfd_relation::{Relation, Schema, Tuple, Value};
use std::sync::Arc;

fn abc_schema() -> Schema {
    Schema::builder("r").text("A").text("B").text("C").build()
}

/// `rows` tuples with `A = i mod distinct_a` (the planner's group count),
/// `B` and `C` on small cycles.
fn synthetic(rows: usize, distinct_a: usize) -> Relation {
    let mut rel = Relation::new(abc_schema());
    for i in 0..rows {
        rel.push(Tuple::new(vec![
            Value::from(format!("a{}", i % distinct_a)),
            Value::from(format!("b{}", i % 7)),
            Value::from(format!("c{}", i % 3)),
        ]))
        .unwrap();
    }
    rel
}

fn auto_session(data: Relation) -> (Session, Cfd) {
    let cfd = Cfd::fd(abc_schema(), ["A"], ["B"]).unwrap();
    let engine = Engine::builder()
        .rule(cfd.clone())
        .config(
            EngineConfig::builder()
                .detector(DetectorKind::Auto)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    (engine.session(Arc::new(data)).unwrap(), cfd)
}

/// A served `Auto` session plans index-driven execution on few-group data
/// (its LHS indexes amortize), and exposes the choice through
/// [`Session::detection_plan`].
#[test]
fn session_plans_index_driven_on_few_groups() {
    let (mut session, cfd) = auto_session(synthetic(8_000, 80));
    assert!(
        session.detection_plan().is_none(),
        "no plan before the first Auto detection"
    );
    let report = session.detect().unwrap();
    let plan = session.detection_plan().expect("Auto leaves its plan");
    assert_eq!(plan.strategy_for(0), Some(StepStrategy::IndexDriven));
    let direct = DirectDetector::new().detect(&cfd, &session.snapshot().unwrap());
    assert_eq!(report, direct);
    assert_eq!(report.canonical_bytes(), direct.canonical_bytes());
}

/// The stale-stats regression: a batch that floods the instance with
/// unique LHS keys must invalidate the cached statistics, so the next
/// `Auto` detection re-plans — flipping from index-driven to a direct scan
/// instead of serving the superseded plan. (The flip is core-count
/// independent: both strategies are single-threaded.)
#[test]
fn apply_batch_invalidates_stats_and_replans() {
    let (mut session, cfd) = auto_session(synthetic(8_000, 80));
    session.detect().unwrap();
    assert_eq!(
        session
            .detection_plan()
            .and_then(|plan| plan.strategy_for(0)),
        Some(StepStrategy::IndexDriven),
        "few groups over reusable indexes must start index-driven"
    );

    // 8k inserted rows with globally unique A values: group count jumps
    // from 80 to ~8k, which prices per-group index iteration out.
    let ops: Vec<BatchOp> = (0..8_000)
        .map(|i| {
            BatchOp::Insert(Tuple::new(vec![
                Value::from(format!("u{i}")),
                Value::from(format!("b{}", i % 7)),
                Value::from("c0"),
            ]))
        })
        .collect();
    session.apply_batch(&ops).unwrap();
    assert!(
        session.detection_plan().is_none(),
        "a batch must drop the plan with the stats it was built from"
    );

    let report = session.detect().unwrap();
    let plan = session.detection_plan().expect("re-planned after batch");
    assert_eq!(
        plan.strategy_for(0),
        Some(StepStrategy::Direct),
        "near-unique keys must re-plan to the direct scan"
    );
    assert_eq!(plan.rows(), 16_000, "the new plan prices the new instance");
    let direct = DirectDetector::new().detect(&cfd, &session.snapshot().unwrap());
    assert_eq!(report, direct);
    assert_eq!(report.canonical_bytes(), direct.canonical_bytes());
}

/// Byte-identity of a reused `Auto` session across a stream of mixed
/// batches on the generated tax workload — after every batch the adaptive
/// report must equal a from-scratch direct detection of the new instance.
#[test]
fn streamed_batches_stay_byte_identical_to_direct() {
    let generated = TaxGenerator::new(TaxConfig {
        size: 1_500,
        noise_percent: 6.0,
        seed: 77,
    })
    .generate()
    .relation;
    let workload = cfd_datagen::CfdWorkload::new(5);
    let cfds = vec![
        workload.single(cfd_datagen::EmbeddedFd::ZipToState, 60, 70.0),
        workload.single(cfd_datagen::EmbeddedFd::AreaToCity, 60, 40.0),
    ];
    let extra = TaxGenerator::new(TaxConfig {
        size: 300,
        noise_percent: 25.0,
        seed: 78,
    })
    .generate()
    .relation;

    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .config(
            EngineConfig::builder()
                .detector(DetectorKind::Auto)
                .build()
                .unwrap(),
        )
        .build()
        .unwrap();
    let mut session = engine.session(Arc::new(generated.clone())).unwrap();

    let first = session.detect().unwrap();
    let direct = DirectDetector::new().detect_set(&cfds, &generated);
    assert!(!direct.is_clean(), "the workload must carry violations");
    assert_eq!(first.canonical_bytes(), direct.canonical_bytes());

    let base_tuples = generated.to_tuples();
    for (round, chunk) in extra.to_tuples().chunks(100).enumerate() {
        let mut ops: Vec<BatchOp> = chunk.iter().cloned().map(BatchOp::Insert).collect();
        // Interleave deletions of rows known to be live.
        ops.push(BatchOp::Delete(base_tuples[round * 3].clone()));
        ops.push(BatchOp::Delete(base_tuples[round * 3 + 1].clone()));
        session.apply_batch(&ops).unwrap();
        let adaptive = session.detect().unwrap();
        let oracle = DirectDetector::new().detect_set(&cfds, &session.snapshot().unwrap());
        assert_eq!(adaptive, oracle, "round {round} (typed Eq)");
        assert_eq!(
            adaptive.canonical_bytes(),
            oracle.canonical_bytes(),
            "round {round} (rendered bytes)"
        );
    }
}
