//! Property tests for the repair layer, across both [`RepairKind`] engines.
//!
//! * `repair_idempotence_*` — for seeded random noisy datagen instances,
//!   repairing an already-repaired instance makes **0 modifications** and
//!   `satisfied` stays true, under both engines;
//! * `repairs_are_deterministic_across_runs` — identical inputs yield
//!   byte-identical modification logs, repaired instances and costs;
//! * the `#[ignore]`d heavy variant runs the same idempotence sweep at CI
//!   scale (`cargo test --release -- --include-ignored`).

use cfd_core::Cfd;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::rng::StdRng;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_repair::{RepairKind, RepairResult};

const BOTH: [RepairKind; 2] = [RepairKind::Heuristic, RepairKind::EquivClass];

/// A seeded noisy tax workload plus CFDs both engines can fully repair
/// (constant tableaux pin targets; the plain-FD component exercises merges).
fn workload(size: usize, noise: f64, seed: u64) -> (Vec<Cfd>, cfd_relation::Relation) {
    let noisy = TaxGenerator::new(TaxConfig {
        size,
        noise_percent: noise,
        seed,
    })
    .generate()
    .relation;
    let gen = CfdWorkload::new(seed ^ 0xABCD);
    let cfds = vec![
        gen.zip_state_full(),
        gen.single(EmbeddedFd::AreaToCity, 120, 100.0),
        gen.single(EmbeddedFd::StateMaritalToExemption, 60, 100.0),
    ];
    (cfds, noisy)
}

fn assert_idempotent(kind: RepairKind, cfds: &[Cfd], rel: &cfd_relation::Relation, label: &str) {
    let first: RepairResult = kind.repair(cfds, rel);
    assert!(first.satisfied, "{label}: {kind:?} must converge");
    let second = kind.repair(cfds, &first.repaired);
    assert_eq!(
        second.changes(),
        0,
        "{label}: {kind:?} re-repair must be a no-op, got {:?}",
        second.modifications
    );
    assert!(
        second.satisfied,
        "{label}: {kind:?} satisfaction must persist"
    );
    assert_eq!(second.cost, 0.0, "{label}: a no-op repair costs nothing");
    assert_eq!(
        second.repaired, first.repaired,
        "{label}: re-repair must not move a single cell"
    );
}

#[test]
fn repair_idempotence_on_seeded_noisy_instances() {
    let mut rng = StdRng::seed_from_u64(0x1DE0_7E57);
    for case in 0..6 {
        let size = 200 + rng.gen_range(0usize..400);
        let noise = [2.0, 5.0, 12.0][rng.gen_range(0usize..3)];
        let seed = 9000 + case;
        let (cfds, noisy) = workload(size, noise, seed);
        assert!(
            cfds.iter().any(|c| !c.satisfied_by(&noisy)) || noise == 0.0,
            "case {case}: the workload should usually carry violations"
        );
        for kind in BOTH {
            assert_idempotent(
                kind,
                &cfds,
                &noisy,
                &format!("case {case} (SZ={size}, NOISE={noise})"),
            );
        }
    }
}

#[test]
fn repairs_are_deterministic_across_runs() {
    let (cfds, noisy) = workload(500, 8.0, 777);
    for kind in BOTH {
        let first = kind.repair(&cfds, &noisy);
        assert!(first.satisfied);
        for run in 0..3 {
            let again = kind.repair(&cfds, &noisy);
            assert_eq!(
                again.modifications, first.modifications,
                "{kind:?} run {run}: modification logs diverged"
            );
            assert_eq!(again.repaired, first.repaired, "{kind:?} run {run}");
            assert_eq!(again.cost, first.cost, "{kind:?} run {run}");
            assert_eq!(again.passes, first.passes, "{kind:?} run {run}");
        }
    }
}

#[test]
fn net_cost_never_exceeds_raw_touch_pricing() {
    // The net fold can only drop or collapse per-cell charges.
    let (cfds, noisy) = workload(400, 10.0, 31);
    for kind in BOTH {
        let result = kind.repair(&cfds, &noisy);
        assert!(result.satisfied);
        assert!(result.net_modifications().len() <= result.changes());
        assert!(result.cost <= result.changes() as f64 * 1.5 + 1e-9);
        assert!(result.cost > 0.0, "{kind:?}: real repairs cost something");
    }
}

/// CI-sized idempotence + determinism sweep
/// (`cargo test --release -- --include-ignored`).
#[test]
#[ignore = "large repair property sweep; run with --include-ignored (CI job)"]
fn repair_idempotence_at_ci_scale() {
    for (size, noise, seed) in [(20_000, 5.0, 51), (50_000, 3.0, 52)] {
        let (cfds, noisy) = workload(size, noise, seed);
        for kind in BOTH {
            assert_idempotent(kind, &cfds, &noisy, &format!("SZ={size}, NOISE={noise}"));
        }
    }
    // Determinism at scale for the class engine.
    let (cfds, noisy) = workload(50_000, 5.0, 53);
    let first = RepairKind::EquivClass.repair(&cfds, &noisy);
    let again = RepairKind::EquivClass.repair(&cfds, &noisy);
    assert!(first.satisfied);
    assert_eq!(again.modifications, first.modifications);
    assert_eq!(again.repaired, first.repaired);
}
