//! End-to-end pipeline tests on the tax-records workload:
//! generate → reason about Σ → detect (SQL, merged, parallel) → repair →
//! re-detect, plus discovery on clean data.

use cfd::prelude::*;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::DirectDetector;
use cfd_discovery::{discover_constant_cfds, DiscoveryConfig};
use std::sync::Arc;

fn workload_cfds() -> Vec<Cfd> {
    let w = CfdWorkload::new(101);
    vec![
        w.zip_state_full(),
        w.single(EmbeddedFd::ZipCityToState, 150, 100.0),
        w.single(EmbeddedFd::AreaToCity, 150, 100.0),
        w.single(EmbeddedFd::StateMaritalToExemption, 60, 100.0),
    ]
}

#[test]
fn clean_data_passes_and_noisy_data_fails_validation() {
    let cfds = workload_cfds();
    let clean = TaxGenerator::new(TaxConfig {
        size: 1_500,
        noise_percent: 0.0,
        seed: 5,
    })
    .generate()
    .relation;
    let noisy = TaxGenerator::new(TaxConfig {
        size: 1_500,
        noise_percent: 8.0,
        seed: 5,
    })
    .generate();

    let detector = Detector::new();
    let clean_report = detector.detect_set(&cfds, Arc::new(clean)).unwrap();
    assert!(
        clean_report.is_clean(),
        "clean data must validate: {clean_report}"
    );

    let noisy_report = detector
        .detect_set(&cfds, Arc::new(noisy.relation.clone()))
        .unwrap();
    assert!(!noisy_report.is_clean(), "noise must be detected");

    // Every reported single-tuple violation corresponds to an injected error:
    // its row must be one of the generator's dirty rows.
    let dirty: std::collections::HashSet<cfd_relation::Tuple> = noisy
        .dirty_rows
        .iter()
        .map(|&i| noisy.relation.row(i).unwrap().to_tuple())
        .collect();
    for tuple in noisy_report.constant_violations() {
        let as_tuple = cfd_relation::Tuple::new(tuple.clone());
        assert!(
            dirty.contains(&as_tuple),
            "reported violation is not an injected error: {as_tuple}"
        );
    }
}

#[test]
fn workload_constraint_set_is_consistent_and_coverable() {
    // A scaled-down version of the workload set: MinCover's implication
    // checks are cubic in |Σ| (Section 3.3), so the full 1 200-row zip→state
    // tableau would make this test needlessly slow in debug builds.
    let w = CfdWorkload::new(101);
    let cfds = vec![
        w.single(EmbeddedFd::ZipToState, 40, 100.0),
        w.single(EmbeddedFd::ZipCityToState, 40, 100.0),
        w.single(EmbeddedFd::AreaToCity, 40, 100.0),
        w.single(EmbeddedFd::StateMaritalToExemption, 20, 100.0),
    ];
    let set = CfdSet::from_cfds(cfds).unwrap();
    assert!(set.is_consistent().unwrap());
    let cover = set.minimal_cover().unwrap();
    assert!(set.equivalent_to(&cover).unwrap());
    assert!(cover.total_patterns() <= set.normalize().unwrap().len());
}

#[test]
fn merged_parallel_and_direct_detection_agree_on_findings() {
    let cfds = workload_cfds();
    let noisy = TaxGenerator::new(TaxConfig {
        size: 1_200,
        noise_percent: 6.0,
        seed: 9,
    })
    .generate()
    .relation;
    let shared = Arc::new(noisy.clone());
    let detector = Detector::new();

    let per_cfd = detector.detect_set(&cfds, Arc::clone(&shared)).unwrap();
    let merged = detector
        .detect_set_merged(&cfds, Arc::clone(&shared))
        .unwrap();
    let parallel = detector
        .detect_set_parallel(&cfds, Arc::clone(&shared), 4)
        .unwrap();
    let direct = DirectDetector::new().detect_set(&cfds, &noisy);

    assert_eq!(per_cfd, parallel);
    assert_eq!(per_cfd, direct);
    assert_eq!(per_cfd.constant_violations(), merged.constant_violations());
    assert_eq!(per_cfd.is_clean(), merged.is_clean());
}

#[test]
fn repair_then_revalidate_is_clean() {
    let cfds = workload_cfds();
    let noisy = TaxGenerator::new(TaxConfig {
        size: 800,
        noise_percent: 10.0,
        seed: 13,
    })
    .generate();
    let result = Repairer::new().repair(&cfds, &noisy.relation);
    assert!(result.satisfied, "repair must converge on the tax workload");
    assert!(result.changes() > 0);

    let after = Detector::new()
        .detect_set(&cfds, Arc::new(result.repaired.clone()))
        .unwrap();
    assert!(
        after.is_clean(),
        "no violations may remain after repair: {after}"
    );
    // The repair should not touch vastly more cells than the injected noise
    // (each dirty row has exactly one corrupted cell).
    assert!(result.changes() <= noisy.dirty_rows.len() * 3 + 3);
}

#[test]
fn discovery_rediscovers_workload_rules_and_they_validate_clean_data() {
    let clean = TaxGenerator::new(TaxConfig {
        size: 1_000,
        noise_percent: 0.0,
        seed: 17,
    })
    .generate()
    .relation;
    let config = DiscoveryConfig {
        max_lhs_size: 1,
        min_support: 2,
        min_confidence: 1.0,
    };
    let mined = discover_constant_cfds(&clean, &config);
    let zip_state = mined
        .iter()
        .find(|d| d.cfd.lhs_names() == vec!["ZIP"] && d.cfd.rhs_names() == vec!["ST"])
        .expect("zip -> state patterns rediscovered");
    // The discovered constraint holds on the data it was mined from...
    assert!(Detector::new()
        .detect(&zip_state.cfd, &clean)
        .unwrap()
        .is_clean());
    // ...and flags errors on a noisy instance.
    let noisy = TaxGenerator::new(TaxConfig {
        size: 1_000,
        noise_percent: 10.0,
        seed: 18,
    })
    .generate()
    .relation;
    let report = Detector::new().detect(&zip_state.cfd, &noisy).unwrap();
    assert!(!report.is_clean());
}

#[test]
fn csv_round_trip_preserves_detection_results() {
    let cfds = workload_cfds();
    let noisy = TaxGenerator::new(TaxConfig {
        size: 400,
        noise_percent: 10.0,
        seed: 23,
    })
    .generate()
    .relation;
    let text = cfd_relation::csv::to_csv(&noisy);
    let back = cfd_relation::csv::from_csv(noisy.schema(), &text).unwrap();
    assert_eq!(back, noisy);
    let a = Detector::new().detect_set(&cfds, Arc::new(noisy)).unwrap();
    let b = Detector::new().detect_set(&cfds, Arc::new(back)).unwrap();
    assert_eq!(a, b);
}
