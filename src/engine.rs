//! The prepared engine: compile a rule set once, serve many sessions.
//!
//! The paper's workflow (Sections 4–6) runs detect → incrementally maintain
//! → repair against a *fixed* CFD set Σ. [`Engine`] is that fixed set in
//! compiled form: schema-checked, consistency-validated (Section 3), with
//! the `QC`/`QV` detection queries of Fig. 5 generated once per CFD and the
//! per-CFD keyed/recheck plans decided up front. Serving a dataset is then
//! [`Engine::session`] — all per-dataset state (LHS indexes, prepared query
//! plans, column statistics for the adaptive detection planner, the
//! embedded stream detector) lives in the [`Session`], never in the engine.

use crate::config::EngineConfig;
use crate::error::Result;
use crate::session::Session;
use cfd_core::{Cfd, CfdSet};
use cfd_detect::{merged, single, DetectorKind, MergedTableaux, Violations};
use cfd_relation::{Relation, Schema};
use cfd_repair::{RepairKind, RepairResult};
use cfd_sql::SelectQuery;
use std::sync::Arc;

/// Catalog name the compiled queries bind the session data under.
pub(crate) const DATA_NAME: &str = "__data";
/// Catalog name of the per-CFD pattern-tableau relation.
pub(crate) const TABLEAU_NAME: &str = "__tableau";
/// Catalog name of the merged (pre-joined `T^X_Σ ⋈ T^Y_Σ`) tableau relation.
pub(crate) const JOINED_NAME: &str = "__tableau_xy";

/// One CFD's compiled detection plan: its pattern tableau materialized as a
/// relation, the generated `QC`/`QV` query pair (Fig. 5), and whether the
/// CFD supports keyed (full-LHS index) evaluation.
#[derive(Debug)]
pub(crate) struct CfdPlan {
    /// `false` for tableaux containing the don't-care symbol `@` (merged
    /// artifacts): those group by effective attribute subsets a full-LHS
    /// index cannot reproduce, so sessions fall back to row scans for them.
    pub keyed: bool,
    /// The tableau as a catalog relation named [`TABLEAU_NAME`].
    pub tableau: Arc<Relation>,
    /// The single-tuple (`QC`) violation query.
    pub qc: SelectQuery,
    /// The multi-tuple (`QV`) violation query.
    pub qv: SelectQuery,
}

/// The merged two-pass plan of Section 4.2: the pre-joined
/// `T^X_Σ ⋈ T^Y_Σ` relation plus the `CASE`-masked merged query pair.
#[derive(Debug)]
pub(crate) struct MergedPlan {
    /// The joined tableau as a catalog relation named [`JOINED_NAME`].
    pub joined: Arc<Relation>,
    /// The merged `QC` query.
    pub qc: SelectQuery,
    /// The merged `QV` query.
    pub qv: SelectQuery,
}

#[derive(Debug)]
struct EngineInner {
    rules: CfdSet,
    config: EngineConfig,
    plans: Vec<CfdPlan>,
    merged: Option<MergedPlan>,
}

/// A rule set compiled for serving: immutable, cheap to clone, and shared
/// across threads.
///
/// # Sharing contract
///
/// `Engine` is **immutable** and `Send + Sync`: after [`EngineBuilder::build`]
/// succeeds, nothing about it ever changes — the validated [`CfdSet`], the
/// compiled `QC`/`QV` query plans, the per-CFD keyed/recheck decisions and
/// the [`EngineConfig`] are all frozen. Cloning an `Engine` clones an
/// [`Arc`] handle to that frozen state, so one engine can serve any number
/// of concurrent [`Session`]s, each on its own thread and dataset, with no
/// locking anywhere. Mutable per-dataset state (LHS indexes, prepared query
/// bindings, stream maintenance) lives exclusively in the `Session`.
///
/// # Determinism guarantees
///
/// For a fixed engine, every serving path is deterministic:
/// [`Session::detect`] reports are byte-identical to running the configured
/// [`DetectorKind`] from scratch on the session's current instance (with the
/// documented [`DetectorKind::SqlMerged`] multi-CFD `QV` key-space
/// exception), [`Session::repair`] produces byte-identical modification
/// logs and repaired instances to the one-shot
/// [`repair_violations`](crate::repair_violations) on the same snapshot, and
/// [`Session::apply_batch`] maintains exactly the report a from-scratch
/// detection of the post-batch instance would produce. The root
/// `tests/detector_differential.rs` harness pins all three.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl Engine {
    /// Starts an [`EngineBuilder`].
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The compiled rule set Σ.
    pub fn rules(&self) -> &CfdSet {
        &self.inner.rules
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The schema the rules are compiled against (`None` for an empty rule
    /// set, which accepts any data).
    pub fn schema(&self) -> Option<&Schema> {
        self.inner.rules.schema()
    }

    /// Opens a serving session over `data`.
    ///
    /// Cheap: per-dataset state (LHS indexes, prepared query plans, the
    /// stream detector) is built lazily by the session methods that need it.
    /// Errors with [`Error::SchemaMismatch`](crate::Error::SchemaMismatch) when `data`'s schema differs
    /// from the rules' schema.
    pub fn session(&self, data: Arc<Relation>) -> Result<Session> {
        Session::new(self.clone(), data)
    }

    /// Opens a **disk-backed** serving session over the store directory
    /// `dir`, creating an empty store there on first use and recovering
    /// (WAL replay) from whatever a previous process left behind
    /// otherwise.
    ///
    /// The session serves the store's live tuples exactly as an in-memory
    /// session serves a [`Relation`]: detection reports are byte-identical
    /// to the in-memory path, and [`Session::apply_batch`] is durable —
    /// see the durability contract on [`cfd_store::ColumnStore`]. Storage
    /// knobs come from [`EngineConfig::storage`].
    ///
    /// Errors with [`Error::Config`](crate::Error::Config) for an engine
    /// with no rules (an empty rule set has no schema to create a store
    /// with), and with
    /// [`Error::Store`](crate::Error::Store)`(StoreError::SchemaMismatch)`
    /// when `dir` holds a store created under a different schema.
    pub fn session_on_disk(&self, dir: impl AsRef<std::path::Path>) -> Result<Session> {
        let schema = self.schema().ok_or_else(|| {
            crate::error::Error::Config(
                "session_on_disk needs an engine with rules: an empty rule set has no schema \
                 to create a store with"
                    .into(),
            )
        })?;
        let store = cfd_store::ColumnStore::open_or_create(
            dir.as_ref(),
            schema,
            self.config().storage().to_options(),
        )?;
        Session::on_store(self.clone(), store)
    }

    /// One-shot convenience: open a throwaway session over `data` and
    /// detect with the configured [`DetectorKind`].
    pub fn detect(&self, data: Arc<Relation>) -> Result<Violations> {
        self.session(data)?.detect()
    }

    /// One-shot convenience: open a throwaway session over `data` and
    /// repair with the given engine (remaining repair options from the
    /// engine configuration).
    pub fn repair(&self, data: Arc<Relation>, kind: RepairKind) -> Result<RepairResult> {
        self.session(data)?.repair(kind)
    }

    pub(crate) fn plans(&self) -> &[CfdPlan] {
        &self.inner.plans
    }

    pub(crate) fn merged_plan(&self) -> Option<&MergedPlan> {
        self.inner.merged.as_ref()
    }
}

/// Builder for [`Engine`]: collect rules, pick a configuration, then
/// [`EngineBuilder::build`] validates and compiles everything once.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    rules: Vec<Cfd>,
    config: EngineConfig,
}

impl EngineBuilder {
    /// An empty builder with the default configuration.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Adds one CFD.
    pub fn rule(mut self, cfd: Cfd) -> Self {
        self.rules.push(cfd);
        self
    }

    /// Adds CFDs in order.
    pub fn rules(mut self, cfds: impl IntoIterator<Item = Cfd>) -> Self {
        self.rules.extend(cfds);
        self
    }

    /// Adds every CFD of an existing [`CfdSet`].
    pub fn rule_set(self, set: CfdSet) -> Self {
        self.rules(set)
    }

    /// Sets the engine configuration (defaults otherwise).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Validates the rules and compiles the engine.
    ///
    /// Build-time validation, in order:
    ///
    /// 1. all rules must share one schema ([`Error::Rules`](crate::Error::Rules));
    /// 2. the set must be **consistent** (Section 3.1) — an inconsistent Σ
    ///    admits no nonempty satisfying instance, so it is rejected with
    ///    [`Error::InconsistentRules`](crate::Error::InconsistentRules) before any data is touched
    ///    (don't-care `@` tableaux are exempt; see
    ///    [`CfdSet::ensure_consistent`]);
    /// 3. with [`DetectorKind::SqlMerged`] configured, the tableaux must be
    ///    mergeable (Section 4.2) — surfaced now, as the typed
    ///    [`Error::Rules`](crate::Error::Rules) problem it is, rather than
    ///    at first detect.
    ///
    /// Compilation then generates each CFD's `QC`/`QV` query pair and
    /// tableau relation (plus the merged pair when configured) exactly once;
    /// sessions only ever *bind* these plans to data.
    pub fn build(self) -> Result<Engine> {
        let mut rules = CfdSet::from_cfds(self.rules)?;
        rules.ensure_consistent()?;
        // With minimize_rules configured, compile the minimal cover instead
        // of Σ itself (MINCOVER, Section 3.3): equivalent by implication,
        // fewer plans to compile and fewer steps to execute.
        if self.config.minimize_rules() {
            rules = rules.minimal_cover()?;
        }

        let plans: Vec<CfdPlan> = rules
            .iter()
            .map(|cfd| CfdPlan {
                keyed: !cfd.has_dont_care(),
                tableau: Arc::new(single::tableau_relation(cfd, TABLEAU_NAME)),
                qc: single::qc_query(cfd, DATA_NAME, TABLEAU_NAME),
                qv: single::qv_query(cfd, DATA_NAME, TABLEAU_NAME),
            })
            .collect();

        let merged = if self.config.detector() == DetectorKind::SqlMerged {
            let merged = MergedTableaux::build(rules.cfds())?;
            Some(MergedPlan {
                joined: Arc::new(merged.joined_relation(JOINED_NAME)),
                qc: merged::qc_merged(&merged, DATA_NAME, JOINED_NAME),
                qv: merged::qv_merged(&merged, DATA_NAME, JOINED_NAME),
            })
        } else {
            None
        };

        Ok(Engine {
            inner: Arc::new(EngineInner {
                rules,
                config: self.config,
                plans,
                merged,
            }),
        })
    }
}

/// Compile-time proof of the sharing contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<EngineBuilder>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use cfd_datagen::cust::{cust_instance, fig2_cfd_set, phi2};
    use cfd_relation::Value;

    #[test]
    fn builder_compiles_the_fig2_set() {
        let engine = Engine::builder().rule_set(fig2_cfd_set()).build().unwrap();
        assert_eq!(engine.rules().len(), 3);
        assert_eq!(engine.schema().unwrap().name(), "cust");
        assert_eq!(engine.plans().len(), 3);
        assert!(engine.plans().iter().all(|p| p.keyed));
        assert!(engine.merged_plan().is_none(), "only built for SqlMerged");
        // The compiled queries are the Fig. 5 pair.
        assert!(engine.plans()[1].qc.to_string().contains("SELECT t.*"));
        assert!(engine.plans()[1]
            .qv
            .to_string()
            .contains("HAVING count(distinct"));
    }

    #[test]
    fn engines_are_cheap_to_clone_and_share() {
        let engine = Engine::builder().rule(phi2()).build().unwrap();
        let clone = engine.clone();
        let data = Arc::new(cust_instance());
        let handle = {
            let engine = clone;
            let data = Arc::clone(&data);
            std::thread::spawn(move || engine.detect(data).unwrap())
        };
        let here = engine.detect(data).unwrap();
        assert_eq!(here, handle.join().unwrap());
        assert_eq!(here.constant_violations().len(), 2);
    }

    #[test]
    fn inconsistent_rules_are_rejected_at_build_time() {
        let s = cfd_relation::Schema::builder("r")
            .text("A")
            .text("B")
            .build();
        let to_b = Cfd::builder(s.clone(), ["A"], ["B"])
            .pattern(["_"], ["b"])
            .build()
            .unwrap();
        let to_c = Cfd::builder(s, ["A"], ["B"])
            .pattern(["_"], ["c"])
            .build()
            .unwrap();
        let err = Engine::builder().rule(to_b).rule(to_c).build().unwrap_err();
        assert_eq!(err, Error::InconsistentRules);
    }

    #[test]
    fn mixed_schemas_are_rejected_at_build_time() {
        let s1 = cfd_relation::Schema::builder("r1")
            .text("A")
            .text("B")
            .build();
        let s2 = cfd_relation::Schema::builder("r2")
            .text("A")
            .text("B")
            .build();
        let err = Engine::builder()
            .rule(Cfd::fd(s1, ["A"], ["B"]).unwrap())
            .rule(Cfd::fd(s2, ["A"], ["B"]).unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            Error::Rules(cfd_core::CfdError::MixedSchemas { .. })
        ));
    }

    #[test]
    fn merged_plan_is_compiled_when_configured() {
        let engine = Engine::builder()
            .rule(phi2())
            .config(
                EngineConfig::builder()
                    .detector(DetectorKind::SqlMerged)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap();
        let plan = engine.merged_plan().expect("merged plan compiled");
        assert!(!plan.joined.is_empty());
        assert!(plan.qv.to_string().contains("CASE"), "{}", plan.qv);
    }

    #[test]
    fn unmergeable_rules_under_sql_merged_surface_as_typed_rule_errors() {
        // An empty rule set cannot produce a merged tableau: the build fails
        // with the underlying CfdError, not an opaque SQL error.
        let err = Engine::builder()
            .config(
                EngineConfig::builder()
                    .detector(DetectorKind::SqlMerged)
                    .build()
                    .unwrap(),
            )
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Rules(_)), "got {err:?}");
    }

    #[test]
    fn empty_engine_serves_any_schema_and_reports_clean() {
        let engine = Engine::builder().build().unwrap();
        assert!(engine.schema().is_none());
        let report = engine.detect(Arc::new(cust_instance())).unwrap();
        assert!(report.is_clean());
        let repair = engine
            .repair(Arc::new(cust_instance()), RepairKind::EquivClass)
            .unwrap();
        assert!(repair.satisfied);
        assert_eq!(repair.changes(), 0);
    }

    #[test]
    fn schema_mismatch_is_rejected_at_session_time() {
        let engine = Engine::builder().rule(phi2()).build().unwrap();
        let other = cfd_relation::Schema::builder("other").text("X").build();
        let mut rel = Relation::new(other);
        rel.push_values(vec![Value::from("v")]).unwrap();
        let err = engine.session(Arc::new(rel)).unwrap_err();
        assert!(matches!(err, Error::SchemaMismatch { .. }));
    }
}
