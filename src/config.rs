//! One consolidated engine configuration.
//!
//! Detection and repair options used to be scattered — shard/thread counts
//! on [`DetectorKind`], the SQL strategy on `cfd_detect::Detector`, weights,
//! distances and placeholder typing on `cfd_repair::RepairConfig`.
//! [`EngineConfig`] gathers all of them behind one **validated** builder:
//! invalid combinations (zero shards, a zero round budget, negative weights,
//! …) are rejected at [`EngineConfigBuilder::build`] with
//! [`Error::Config`] instead of panicking or silently misbehaving deep
//! inside a run.

use crate::error::{Error, Result};
use cfd_detect::DetectorKind;
use cfd_repair::{CostModel, RepairConfig, RepairKind};
use cfd_sql::Strategy;
use cfd_store::StoreOptions;

/// Storage-layer knobs of disk-backed sessions
/// ([`Engine::session_on_disk`](crate::Engine::session_on_disk)): the
/// buffer-pool page budget and the WAL size that triggers a checkpoint.
/// Maps onto [`cfd_store::StoreOptions`]; the default matches
/// `StoreOptions::default()` (256 pages = 1 MiB of page cache, 4 MiB WAL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Buffer-pool capacity in pages. The store's page memory never
    /// exceeds this; must be ≥ 1 (the pool itself clamps to 2).
    pub pool_pages: usize,
    /// WAL size in bytes that triggers a checkpoint after a commit.
    pub wal_checkpoint_bytes: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        let opts = StoreOptions::default();
        StorageConfig {
            pool_pages: opts.pool_pages,
            wal_checkpoint_bytes: opts.wal_checkpoint_bytes,
        }
    }
}

impl StorageConfig {
    pub(crate) fn to_options(self) -> StoreOptions {
        StoreOptions {
            pool_pages: self.pool_pages,
            wal_checkpoint_bytes: self.wal_checkpoint_bytes,
        }
    }
}

/// The complete configuration of an [`Engine`](crate::Engine): which
/// detection engine serves [`Session::detect`](crate::Session::detect),
/// which SQL evaluation strategy the compiled query plans use, and the full
/// repair configuration (engine kind, round budget, cost model, LHS-edit
/// policy). Construct via [`EngineConfig::builder`]; the `Default` instance
/// is the validated default configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    detector: DetectorKind,
    strategy: Strategy,
    repair: RepairConfig,
    minimize: bool,
    storage: StorageConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            detector: DetectorKind::Direct,
            strategy: Strategy::default(),
            repair: RepairConfig::default(),
            minimize: false,
            storage: StorageConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Starts a configuration builder from the validated defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::default()
    }

    /// The detection engine [`Session::detect`](crate::Session::detect)
    /// dispatches to.
    pub fn detector(&self) -> DetectorKind {
        self.detector
    }

    /// The SQL evaluation strategy of the compiled detection queries.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The repair configuration (kind, round budget, cost model, LHS-edit
    /// policy, placeholder typing).
    pub fn repair(&self) -> &RepairConfig {
        &self.repair
    }

    /// Whether [`Engine::builder`](crate::Engine::builder) replaces the rule
    /// set with its minimal cover before compiling plans.
    pub fn minimize_rules(&self) -> bool {
        self.minimize
    }

    /// The storage-layer configuration of disk-backed sessions.
    pub fn storage(&self) -> StorageConfig {
        self.storage
    }
}

/// Builder for [`EngineConfig`]; every setter is chainable and
/// [`EngineConfigBuilder::build`] validates the combination.
#[derive(Debug, Clone, Default)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Selects the detection engine (default: [`DetectorKind::Direct`]).
    ///
    /// [`DetectorKind::Auto`] delegates the choice to the cost-based
    /// detection planner: per CFD (or fused same-LHS group), the session
    /// picks direct, sharded, merged or index-driven execution from column
    /// statistics of the served snapshot, with provenance available through
    /// [`Session::detection_plan`](crate::Session::detection_plan).
    pub fn detector(mut self, kind: DetectorKind) -> Self {
        self.config.detector = kind;
        self
    }

    /// Selects the SQL evaluation strategy (default: DNF with index probes).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.config.strategy = strategy;
        self
    }

    /// Selects the default repair engine (default:
    /// [`RepairKind::EquivClass`]).
    pub fn repair_kind(mut self, kind: RepairKind) -> Self {
        self.config.repair.kind = kind;
        self
    }

    /// Maximum repair passes/rounds (default 16; must be ≥ 1).
    pub fn max_passes(mut self, passes: usize) -> Self {
        self.config.repair.max_passes = passes;
        self
    }

    /// The cost model pricing repairs and selecting class targets.
    ///
    /// Per-row `TupleWeights` overrides are positional: they refer to row
    /// indices of the instance a session currently serves, and do not
    /// follow tuples across batches that delete rows (see
    /// [`Session::apply_batch`](crate::Session::apply_batch)).
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.config.repair.cost_model = model;
        self
    }

    /// Whether repairs may fall back to LHS placeholder edits (default
    /// `true`).
    pub fn allow_lhs_edits(mut self, allow: bool) -> Self {
        self.config.repair.allow_lhs_edits = allow;
        self
    }

    /// Whether LHS placeholders respect the column's declared type (default
    /// `true`).
    pub fn typed_placeholders(mut self, typed: bool) -> Self {
        self.config.repair.typed_placeholders = typed;
        self
    }

    /// Whether to replace Σ with its minimal cover (the paper's MINCOVER,
    /// Section 3.3) at [`Engine`](crate::Engine) build time, before plans
    /// are compiled (default `false`).
    ///
    /// The cover is equivalent to Σ — an instance is clean under the cover
    /// iff it is clean under Σ — so detection's *verdict* and repair's
    /// fixpoint are unaffected, while redundant rules stop costing plan
    /// steps and scans. Note the *report* is keyed by the rules that remain:
    /// removing a redundant CFD whose LHS differs from its witnesses'
    /// (e.g. a transitively implied FD) also removes the violation keys only
    /// that CFD produced. Byte-identical reports are guaranteed when every
    /// removed rule shares its LHS with a kept rule (duplicates,
    /// pattern-specialized rows of the same embedded FD).
    pub fn minimize_rules(mut self, minimize: bool) -> Self {
        self.config.minimize = minimize;
        self
    }

    /// Worker-thread budget of the equivalence-class repair engine (default:
    /// the machine's available cores; must be ≥ 1). The engine clamps the
    /// budget by the spawn-amortization rule shared with the detection
    /// planner, so small instances run sequentially regardless; repairs are
    /// byte-identical at any budget.
    pub fn repair_threads(mut self, threads: usize) -> Self {
        self.config.repair.threads = threads;
        self
    }

    /// Sets the storage-layer knobs used by
    /// [`Engine::session_on_disk`](crate::Engine::session_on_disk)
    /// (default: [`StorageConfig::default`]).
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.config.storage = storage;
        self
    }

    /// Validates the combination and returns the configuration.
    ///
    /// Rejected combinations (each with [`Error::Config`]):
    ///
    /// * `DetectorKind::Sharded { shards: 0 }` — a shard count of zero has
    ///   no partition to scan;
    /// * `DetectorKind::SqlParallel { threads: 0 }` — likewise for worker
    ///   threads;
    /// * `max_passes == 0` — a zero round budget cannot repair anything
    ///   while still reporting `satisfied = false` on dirty data;
    /// * `storage.pool_pages == 0` — a disk-backed session needs at least
    ///   one buffer-pool frame;
    /// * `repair_threads == 0` — the repair engine needs at least one
    ///   worker (one means the sequential path);
    /// * non-finite or negative `replace_distance`/`placeholder_distance` —
    ///   cost minimization over such prices is meaningless;
    /// * a non-finite or negative tuple weight (default or override) — same.
    pub fn build(self) -> Result<EngineConfig> {
        let config = self.config;
        match config.detector {
            DetectorKind::Sharded { shards: 0 } => {
                return Err(Error::Config("shard count must be at least 1".into()));
            }
            DetectorKind::SqlParallel { threads: 0 } => {
                return Err(Error::Config("thread count must be at least 1".into()));
            }
            _ => {}
        }
        if config.repair.max_passes == 0 {
            return Err(Error::Config("max_passes must be at least 1".into()));
        }
        if config.storage.pool_pages == 0 {
            return Err(Error::Config(
                "storage pool_pages must be at least 1".into(),
            ));
        }
        if config.repair.threads == 0 {
            return Err(Error::Config(
                "repair_threads must be at least 1 (1 selects the sequential path)".into(),
            ));
        }
        let model = &config.repair.cost_model;
        for (name, d) in [
            ("replace_distance", model.replace_distance),
            ("placeholder_distance", model.placeholder_distance),
        ] {
            if !d.is_finite() || d < 0.0 {
                return Err(Error::Config(format!(
                    "{name} must be finite and non-negative, got {d}"
                )));
            }
        }
        let weights = &model.weights;
        let valid = |w: f64| w.is_finite() && w >= 0.0;
        if !valid(weights.default_weight()) {
            return Err(Error::Config(format!(
                "default tuple weight must be finite and non-negative, got {}",
                weights.default_weight()
            )));
        }
        if let Some(row) = (0..weights.override_len()).find(|&r| !valid(weights.get(r))) {
            return Err(Error::Config(format!(
                "tuple weight of row {row} must be finite and non-negative, got {}",
                weights.get(row)
            )));
        }
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::TupleWeights;

    #[test]
    fn defaults_validate() {
        let config = EngineConfig::builder().build().unwrap();
        assert_eq!(config.detector(), DetectorKind::Direct);
        assert_eq!(config.strategy(), Strategy::dnf());
        assert_eq!(config.repair().kind, RepairKind::EquivClass);
        assert_eq!(config.repair().max_passes, 16);
        assert!(config.repair().allow_lhs_edits);
        assert!(config.repair().typed_placeholders);
        assert_eq!(config.repair().threads, cfd_detect::available_cores());
        assert!(!config.repair().force_parallel);
    }

    #[test]
    fn every_setter_reaches_the_config() {
        let config = EngineConfig::builder()
            .detector(DetectorKind::Sharded { shards: 4 })
            .strategy(Strategy::cnf())
            .repair_kind(RepairKind::Heuristic)
            .max_passes(5)
            .cost_model(CostModel::with_edit_distance())
            .allow_lhs_edits(false)
            .typed_placeholders(false)
            .repair_threads(3)
            .build()
            .unwrap();
        assert_eq!(config.detector(), DetectorKind::Sharded { shards: 4 });
        assert_eq!(config.strategy(), Strategy::cnf());
        assert_eq!(config.repair().kind, RepairKind::Heuristic);
        assert_eq!(config.repair().max_passes, 5);
        assert!(!config.repair().allow_lhs_edits);
        assert!(!config.repair().typed_placeholders);
        assert_eq!(config.repair().threads, 3);
    }

    #[test]
    fn zero_shards_are_rejected() {
        let err = EngineConfig::builder()
            .detector(DetectorKind::Sharded { shards: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("shard")));
    }

    #[test]
    fn zero_parallel_threads_are_rejected() {
        let err = EngineConfig::builder()
            .detector(DetectorKind::SqlParallel { threads: 0 })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("thread")));
    }

    #[test]
    fn zero_max_passes_is_rejected() {
        let err = EngineConfig::builder().max_passes(0).build().unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("max_passes")));
    }

    #[test]
    fn zero_storage_pool_pages_are_rejected() {
        let err = EngineConfig::builder()
            .storage(StorageConfig {
                pool_pages: 0,
                ..StorageConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("pool_pages")));
    }

    #[test]
    fn storage_config_reaches_the_config() {
        let storage = StorageConfig {
            pool_pages: 8,
            wal_checkpoint_bytes: 1024,
        };
        let config = EngineConfig::builder().storage(storage).build().unwrap();
        assert_eq!(config.storage(), storage);
        assert_eq!(
            EngineConfig::default().storage(),
            StorageConfig::default(),
            "default matches StoreOptions::default()"
        );
    }

    #[test]
    fn zero_repair_threads_are_rejected() {
        let err = EngineConfig::builder()
            .repair_threads(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("repair_threads")));
    }

    #[test]
    fn non_finite_replace_distance_is_rejected() {
        let err = EngineConfig::builder()
            .cost_model(CostModel {
                replace_distance: f64::NAN,
                ..CostModel::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("replace_distance")));
    }

    #[test]
    fn negative_placeholder_distance_is_rejected() {
        let err = EngineConfig::builder()
            .cost_model(CostModel {
                placeholder_distance: -1.0,
                ..CostModel::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("placeholder_distance")));
    }

    #[test]
    fn invalid_tuple_weights_are_rejected() {
        // A negative default weight.
        let err = EngineConfig::builder()
            .cost_model(CostModel {
                weights: TupleWeights::uniform(-2.0),
                ..CostModel::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("default tuple weight")));
        // A non-finite per-row override.
        let mut weights = TupleWeights::default();
        weights.set(3, f64::INFINITY);
        let err = EngineConfig::builder()
            .cost_model(CostModel {
                weights,
                ..CostModel::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(msg) if msg.contains("row 3")));
    }

    #[test]
    fn valid_nonzero_combinations_pass() {
        for kind in [
            DetectorKind::Direct,
            DetectorKind::Sql,
            DetectorKind::SqlMerged,
            DetectorKind::SqlParallel { threads: 2 },
            DetectorKind::Sharded { shards: 8 },
            DetectorKind::Auto,
        ] {
            EngineConfig::builder().detector(kind).build().unwrap();
        }
    }
}
