//! The serving session: one dataset, one engine, all prepared state.
//!
//! A [`Session`] owns everything about serving one evolving dataset against
//! a compiled [`Engine`]:
//!
//! * the **current instance** (an [`Arc<Relation>`] snapshot, re-gathered
//!   lazily after stream batches);
//! * the per-CFD **LHS indexes**, built once per snapshot and *shared*
//!   between the detector ([`cfd_detect::detect_with_index`]) and the repair
//!   engine's dirty-group tracking
//!   ([`Repairer::repair_with_indexes`](cfd_repair::Repairer::repair_with_indexes));
//! * the **prepared SQL plans** ([`cfd_sql::PreparedQuery`]) binding the
//!   engine's compiled `QC`/`QV` queries to the snapshot — compiled
//!   expressions and derived probe indexes persist across `detect` calls;
//! * an embedded [`IncrementalDetector`] so [`Session::apply_batch`] streams
//!   mixed insert/delete batches against the same handle with group-local
//!   maintenance instead of rescans.
//!
//! Everything is built lazily by the first method that needs it, so opening
//! a session is cheap, and a pure streaming session never materializes
//! prepared SQL it does not use.

use crate::engine::{Engine, DATA_NAME, JOINED_NAME, TABLEAU_NAME};
use crate::error::{Error, Result};
use cfd_core::{Cfd, PatternTuple, ViolationKind, ViolationWitness, WitnessCells};
use cfd_detect::{
    detect_with_index, BatchOp, DetectionPlan, DirectDetector, Planner, ShardedDetector,
    ViolationItem, Violations,
};
use cfd_relation::{
    project_cols, AttrId, Index, Relation, RelationStats, Schema, Tuple, Value, ValueId,
};
use cfd_repair::{RepairKind, RepairResult, Repairer};
use cfd_sql::{Catalog, Executor, PreparedQuery};
use cfd_sql::{ResultSet, SelectQuery};
use cfd_store::{ColumnStore, PoolStats};
use std::sync::Arc;

use cfd_detect::DetectorKind;

/// A serving session over one dataset (see the crate docs for the
/// lifecycle).
///
/// Obtained from [`Engine::session`]. Methods take `&mut self` because the
/// session caches prepared per-snapshot state internally; for concurrent
/// serving, open one session per thread over the same shared `Engine` and
/// `Arc<Relation>`.
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    /// The disk-backed store of a session opened via
    /// [`Engine::session_on_disk`]; `None` for in-memory sessions. When
    /// present it is the authoritative instance — the snapshot is a
    /// materialized view of it, and batches commit through its WAL.
    store: Option<ColumnStore>,
    /// Stream maintenance state; created by the first preview/batch call.
    stream: Option<cfd_detect::IncrementalDetector>,
    /// Materialized snapshot of the current instance. `None` only while
    /// stale after a batch (re-gathered lazily from `stream`).
    snapshot: Option<Arc<Relation>>,
    /// Per-CFD LHS indexes over the snapshot (`None` slots for don't-care
    /// CFDs), built once per snapshot.
    indexes: Option<Vec<Option<Index>>>,
    /// Per-CFD prepared `QC`/`QV` plans bound to the snapshot.
    prepared: Option<Vec<(PreparedQuery, PreparedQuery)>>,
    /// The prepared merged pair (Section 4.2), when the engine compiled one.
    prepared_merged: Option<(PreparedQuery, PreparedQuery)>,
    /// Column/group statistics of the snapshot, collected lazily by the
    /// first [`DetectorKind::Auto`] detection and grown on demand as the
    /// planner asks about new attribute sets. Bound to the snapshot:
    /// invalidated (with [`Session::detection_plan`]) by every applied batch.
    stats: Option<RelationStats>,
    /// The detection plan of the most recent [`DetectorKind::Auto`] run.
    plan: Option<DetectionPlan>,
}

impl Session {
    pub(crate) fn new(engine: Engine, data: Arc<Relation>) -> Result<Self> {
        if let Some(rules_schema) = engine.schema() {
            if data.schema() != rules_schema {
                return Err(Error::SchemaMismatch {
                    rules: rules_schema.name().to_owned(),
                    data: data.schema().name().to_owned(),
                });
            }
        }
        Ok(Session {
            engine,
            store: None,
            stream: None,
            snapshot: Some(data),
            indexes: None,
            prepared: None,
            prepared_merged: None,
            stats: None,
            plan: None,
        })
    }

    /// Opens a session over an already-recovered [`ColumnStore`] (the
    /// store's schema was checked against the engine's when it was opened).
    pub(crate) fn on_store(engine: Engine, store: ColumnStore) -> Result<Self> {
        Ok(Session {
            engine,
            store: Some(store),
            stream: None,
            snapshot: None,
            indexes: None,
            prepared: None,
            prepared_merged: None,
            stats: None,
            plan: None,
        })
    }

    /// Whether this session serves a disk-backed store
    /// ([`Engine::session_on_disk`]) rather than an in-memory relation.
    pub fn is_disk_backed(&self) -> bool {
        self.store.is_some()
    }

    /// Buffer-pool accounting of the disk-backed store (`None` for
    /// in-memory sessions). `peak_resident` is the page-memory high-water
    /// mark — bounded by the configured
    /// [`StorageConfig::pool_pages`](crate::StorageConfig) however large
    /// the instance is.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.store.as_ref().map(ColumnStore::pool_stats)
    }

    /// Batches durably committed by the disk-backed store (`None` for
    /// in-memory sessions). After a crash and reopen, exactly the batches
    /// whose [`Session::apply_batch`]/[`Session::ingest`] call reported
    /// success are counted — the kill-and-recover harness asserts this.
    pub fn committed_batches(&self) -> Option<u64> {
        self.store.as_ref().map(ColumnStore::committed_batches)
    }

    /// Forces the disk-backed store to checkpoint now (no-op result on
    /// in-memory sessions): dirty pages, dictionary and metadata are made
    /// durable and the WAL is truncated.
    pub fn checkpoint(&mut self) -> Result<()> {
        if let Some(store) = self.store.as_mut() {
            store.checkpoint()?;
        }
        Ok(())
    }

    /// The engine this session serves.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The schema of the served instance.
    pub fn schema(&self) -> &Schema {
        if let Some(store) = &self.store {
            return store.schema();
        }
        match (&self.snapshot, &self.stream) {
            (Some(snap), _) => snap.schema(),
            (None, Some(stream)) => stream.schema(),
            (None, None) => unreachable!("session always holds a snapshot, stream or store"),
        }
    }

    /// Number of live rows in the served instance.
    pub fn len(&self) -> usize {
        if let Some(store) = &self.store {
            return store.len();
        }
        match (&self.snapshot, &self.stream) {
            (Some(snap), None) => snap.len(),
            (_, Some(stream)) => stream.len(),
            (None, None) => unreachable!("session always holds a snapshot, stream or store"),
        }
    }

    /// Whether the served instance is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current instance as a shared snapshot: re-gathered from the
    /// stream state when batches have been applied since the last call, and
    /// **materialized from the store** (in live-slot order) on disk-backed
    /// sessions — which is the only way this can fail.
    pub fn snapshot(&mut self) -> Result<Arc<Relation>> {
        if self.snapshot.is_none() {
            let gathered = if let Some(stream) = &self.stream {
                stream.current_relation()
            } else if let Some(store) = self.store.as_mut() {
                store.materialize()?
            } else {
                unreachable!("a stale snapshot implies stream or store state")
            };
            self.snapshot = Some(Arc::new(gathered));
        }
        Ok(Arc::clone(self.snapshot.as_ref().expect("just ensured")))
    }

    /// Detects the violations of the current instance with the engine's
    /// configured [`DetectorKind`], through the prepared state:
    ///
    /// * `Direct` — the group-driven scan over the session's shared LHS
    ///   indexes (don't-care CFDs fall back to the row scan);
    /// * `Sql` / `SqlParallel` — the prepared `QC`/`QV` plans, sequential or
    ///   spread over scoped worker threads;
    /// * `SqlMerged` — the prepared merged pair (Section 4.2);
    /// * `Sharded` — hash-partitioned parallel scan of the snapshot;
    /// * `Auto` — the cost-based [`Planner`](cfd_detect::Planner): per-CFD
    ///   strategies chosen from cached column statistics of the snapshot
    ///   (index-driven steps reuse the session's shared LHS indexes); the
    ///   chosen plan is kept for inspection via [`Session::detection_plan`].
    ///
    /// Reports are byte-identical to running the same [`DetectorKind`] from
    /// scratch on [`Session::snapshot`] — the differential harness pins
    /// this across every engine.
    ///
    /// On a **disk-backed** session, the scan-based kinds (`Direct`,
    /// `Sharded`, `Auto`) run as a streaming scan over the store whose page
    /// memory is bounded by the buffer pool — byte-identical to the direct
    /// scan, as all three contractually are — without materializing the
    /// instance. The SQL kinds materialize a snapshot first (the prepared
    /// plans need a bound relation).
    pub fn detect(&mut self) -> Result<Violations> {
        if let Some(store) = self.store.as_mut() {
            if matches!(
                self.engine.config().detector(),
                DetectorKind::Direct | DetectorKind::Sharded { .. } | DetectorKind::Auto
            ) {
                return Ok(store.detect(self.engine.rules().cfds())?);
            }
        }
        match self.engine.config().detector() {
            DetectorKind::Direct => self.detect_direct(),
            DetectorKind::Sql => {
                self.ensure_prepared()?;
                let mut out = Violations::new();
                for pair in self.prepared.as_ref().expect("just ensured") {
                    out.merge(run_pair(pair)?);
                }
                Ok(out)
            }
            DetectorKind::SqlParallel { threads } => {
                self.ensure_prepared()?;
                let pairs = self.prepared.as_ref().expect("just ensured");
                if pairs.is_empty() {
                    return Ok(Violations::new());
                }
                let threads = threads.max(1).min(pairs.len());
                let chunk_size = pairs.len().div_ceil(threads);
                let results = std::thread::scope(|scope| {
                    let mut handles = Vec::new();
                    for chunk in pairs.chunks(chunk_size) {
                        handles.push(scope.spawn(move || {
                            let mut out = Violations::new();
                            for pair in chunk {
                                out.merge(run_pair(pair)?);
                            }
                            Ok::<_, Error>(out)
                        }));
                    }
                    handles.into_iter().map(join_worker).collect::<Vec<_>>()
                });
                let mut out = Violations::new();
                for r in results {
                    out.merge(r?);
                }
                Ok(out)
            }
            DetectorKind::SqlMerged => {
                self.ensure_prepared_merged()?;
                run_pair(self.prepared_merged.as_ref().expect("just ensured"))
            }
            DetectorKind::Sharded { shards } => {
                let snapshot = self.snapshot()?;
                Ok(ShardedDetector::new(shards).detect_set(self.engine.rules().cfds(), &snapshot))
            }
            DetectorKind::Auto => {
                let snapshot = self.snapshot()?;
                let planner = Planner::new();
                // The plan is prepared state like the indexes and compiled
                // SQL: computed once per snapshot (batches invalidate it
                // with the statistics it came from) and served from cache
                // on repeated detections.
                if self.plan.is_none() {
                    if self.stats.is_none() {
                        self.stats = Some(RelationStats::new(&snapshot));
                    }
                    // Indexes amortize across detections on a served
                    // snapshot, so plan with `index_reusable = true`.
                    self.plan = Some(planner.plan(
                        self.engine.rules().cfds(),
                        &snapshot,
                        self.stats.as_mut().expect("just ensured"),
                        true,
                    ));
                }
                if self.plan.as_ref().expect("just ensured").needs_indexes() {
                    self.ensure_indexes()?;
                }
                Ok(planner.execute(
                    self.plan.as_ref().expect("just ensured"),
                    self.engine.rules().cfds(),
                    &snapshot,
                    self.indexes.as_deref(),
                ))
            }
        }
    }

    /// The plan chosen by the most recent [`DetectorKind::Auto`] detection
    /// on this session: per fused step, the strategy the cost model picked,
    /// every scored candidate, and the group-cardinality estimate it was
    /// based on. `None` before the first `Auto` detection and after every
    /// applied batch (a batch invalidates the statistics the plan was built
    /// from). Disk-backed sessions run `Auto` as the streaming store scan
    /// and never populate a plan.
    pub fn detection_plan(&self) -> Option<&DetectionPlan> {
        self.plan.as_ref()
    }

    /// Repairs the current instance with the given engine kind (all other
    /// repair options from the engine configuration), handing the
    /// equivalence-class engine the session's shared LHS indexes.
    ///
    /// The session itself is **not** mutated — the result carries the
    /// repaired instance, byte-identical to the one-shot
    /// [`repair_violations`](crate::repair_violations) on
    /// [`Session::snapshot`]. To keep serving the repaired data, open a
    /// session over `result.repaired`, or feed the changes back as a
    /// delete/insert batch via [`Session::apply_batch`].
    pub fn repair(&mut self, kind: RepairKind) -> Result<RepairResult> {
        let threads = self.engine.config().repair().threads;
        self.repair_with_threads(kind, threads)
    }

    /// [`Session::repair`] with an explicit worker-thread budget for the
    /// equivalence-class engine, overriding the configured
    /// `repair_threads` (clamped to ≥ 1; the engine further clamps by its
    /// spawn-amortization rule). Results are **byte-identical at any
    /// budget** — this knob only trades wall-clock for cores, which is how
    /// the serving layer caps a tenant's repair fan-out without changing
    /// its answers.
    pub fn repair_with_threads(
        &mut self,
        kind: RepairKind,
        threads: usize,
    ) -> Result<RepairResult> {
        let snapshot = self.snapshot()?;
        let mut config = self.engine.config().repair().clone();
        config.kind = kind;
        config.threads = threads.max(1);
        let repairer = Repairer::with_config(config);
        // Only the class engine consumes LHS indexes; the pass-loop
        // heuristic re-detects from scratch, so don't build or clone any
        // for it.
        if kind == RepairKind::Heuristic {
            return Ok(repairer.repair(self.engine.rules().cfds(), &snapshot));
        }
        self.ensure_indexes()?;
        let indexes = self.indexes.as_ref().expect("just ensured").clone();
        Ok(repairer.repair_with_indexes(self.engine.rules().cfds(), &snapshot, indexes))
    }

    /// Applies a mixed insert/delete batch to the served instance through
    /// the embedded [`IncrementalDetector`](cfd_detect::IncrementalDetector)
    /// and returns the complete violation report of the **new** instance —
    /// equal to a from-scratch detection, at group-local maintenance cost
    /// (`O(batch + touched groups)` instead of `O(|I|)`).
    ///
    /// Note on per-row cost-model weights: `TupleWeights` overrides in the
    /// engine's [`CostModel`](cfd_repair::CostModel) are bound to **row
    /// positions of the current snapshot**. Deletions renumber subsequent
    /// rows, so positional weight overrides do not follow tuples across
    /// batches that delete — use uniform weights (the default) on streaming
    /// sessions, or re-open a session with re-derived weights after
    /// deletions.
    ///
    /// # Failure atomicity
    ///
    /// A **rejected** batch (e.g. an op whose arity does not match the
    /// schema) leaves the session exactly as it was: the instance is
    /// untouched *and* every piece of prepared per-snapshot state — LHS
    /// indexes, prepared SQL plans, column statistics, the cached
    /// [`Session::detection_plan`] — remains valid and is **not**
    /// invalidated. Validation happens before any mutation, and caches are
    /// only cleared after the batch succeeds, so an error never costs the
    /// session its prepared state (the root regression test pins this).
    ///
    /// On a **disk-backed** session the batch additionally commits through
    /// the store's WAL before this returns — see the durability contract
    /// on [`cfd_store::ColumnStore`].
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<Violations> {
        if self.store.is_some() {
            // Validation happens inside the store before any mutation; on
            // error nothing below runs and all caches stay valid.
            self.store
                .as_mut()
                .expect("just matched")
                .apply_batch(ops)?;
            self.invalidate_after_batch();
            // Stream state (previews) was derived from the superseded
            // materialization.
            self.stream = None;
            return self.detect();
        }
        self.ensure_stream()?;
        let report = self
            .stream
            .as_mut()
            .expect("just ensured")
            .apply_batch(ops)?;
        // The snapshot and everything bound to it are now stale — including
        // the column statistics and the detection plan derived from them:
        // the planner must never choose a strategy against counts of a
        // superseded instance.
        self.invalidate_after_batch();
        Ok(report)
    }

    /// Durably applies a batch to a **disk-backed** session without
    /// computing a violation report — the bulk-load path: the WAL commit
    /// (one fsync) is the whole cost, detection is deferred until the next
    /// [`Session::detect`]. Errors with
    /// [`Error::Config`](crate::Error::Config) on in-memory sessions
    /// (whose `apply_batch` always maintains a report anyway).
    ///
    /// Shares [`Session::apply_batch`]'s failure atomicity: a rejected
    /// batch mutates nothing and invalidates nothing.
    pub fn ingest(&mut self, ops: &[BatchOp]) -> Result<()> {
        let Some(store) = self.store.as_mut() else {
            return Err(Error::Config(
                "ingest requires a disk-backed session (use apply_batch on in-memory sessions)"
                    .into(),
            ));
        };
        store.apply_batch(ops)?;
        self.invalidate_after_batch();
        self.stream = None;
        Ok(())
    }

    /// Applies a [`RepairResult`] (from [`Session::repair`] on **this**
    /// session, unmodified) back to the served instance and returns the
    /// report of the repaired instance.
    ///
    /// On a disk-backed session the modifications become one durably
    /// logged cell-edit batch ([`cfd_store::ColumnStore::set_cells`] —
    /// one WAL fsync), translated from the result's live-row indices to
    /// store slots; on an in-memory session the session simply adopts
    /// `result.repaired` as its new snapshot. Either way the session
    /// serves the repaired data afterwards.
    ///
    /// The result must come from this session's current instance: row
    /// indices are positions of the snapshot the repair ran over, so
    /// applying a stale result (after an intervening batch) errors on
    /// out-of-range rows or silently edits the wrong tuples.
    pub fn commit_repair(&mut self, result: &RepairResult) -> Result<Violations> {
        if let Some(store) = self.store.as_mut() {
            let live = store.live_slots();
            let mut edits = Vec::with_capacity(result.modifications.len());
            for m in &result.modifications {
                let slot = *live.get(m.row).ok_or_else(|| {
                    Error::Config(format!(
                        "repair result row {} is out of range for this instance ({} live rows); \
                         was the result produced by an earlier snapshot?",
                        m.row,
                        live.len()
                    ))
                })?;
                edits.push((slot, m.attr.index() as u32, m.new.clone()));
            }
            store.set_cells(&edits)?;
            self.invalidate_after_batch();
            self.stream = None;
        } else {
            // Invalidate first: the repaired relation *is* the new snapshot
            // and must survive the cache clear.
            self.invalidate_after_batch();
            self.snapshot = Some(Arc::new(result.repaired.clone()));
            self.stream = None;
        }
        self.detect()
    }

    /// Drops every cache bound to the superseded snapshot. Callers decide
    /// what happens to the stream state (the in-memory batch path keeps it
    /// — it *is* the instance there).
    fn invalidate_after_batch(&mut self) {
        self.snapshot = None;
        self.indexes = None;
        self.prepared = None;
        self.prepared_merged = None;
        self.stats = None;
        self.plan = None;
    }

    /// Previews the violations `batch` would introduce if inserted — the
    /// violations of `current ∪ batch` involving at least one batch tuple —
    /// without changing the session.
    pub fn preview_insertions(&mut self, batch: &[Tuple]) -> Result<Violations> {
        self.ensure_stream()?;
        Ok(self
            .stream
            .as_ref()
            .expect("just ensured")
            .detect_insertions(batch))
    }

    /// Previews the currently-reported violations that deleting `batch`
    /// (bag semantics) would resolve, without changing the session.
    pub fn preview_deletions(&mut self, batch: &[Tuple]) -> Result<Violations> {
        self.ensure_stream()?;
        Ok(self
            .stream
            .as_ref()
            .expect("just ensured")
            .detect_deletions(batch))
    }

    /// Explains one report finding: which CFDs and pattern tuples it
    /// violates, on which rows, with the witness-cell obligations and the
    /// repair plan the cost model would choose.
    ///
    /// Takes the [`ViolationItem`]s yielded by
    /// [`Violations::items`](cfd_detect::Violations::items), fusing report
    /// iteration with provenance lookup. Each returned [`Explanation`]
    /// carries the violated pattern tuple, the involved row indices, the
    /// cell-level obligations ([`Cfd::witness_cells`]) and — for every RHS
    /// obligation — the [`PlannedEdit`] with the chosen class target and its
    /// weighted cost. Findings that no longer exist on the current instance
    /// (or were produced by other rules) explain to an empty list.
    ///
    /// Multi-tuple keys are interpreted in each same-arity CFD's own LHS
    /// attribute order — the key space of every per-CFD detector. The
    /// multi-CFD [`DetectorKind::SqlMerged`] path reports `QV` keys over the
    /// *merged* `X`-attribute union instead (its long-documented exception),
    /// and those union keys generally resolve to no per-CFD group here;
    /// explain per-CFD findings (any other detector kind, or a single-CFD
    /// merged engine) when key provenance matters.
    ///
    /// Planned edits apply the cost model's selection rule to **this
    /// witness's cells in isolation**. The equivalence-class repair engine
    /// additionally unions cells across *all* witnesses of a round, so when
    /// witnesses overlap (a row shared by several patterns or CFDs) the
    /// larger merged class can settle on a different target than the
    /// per-witness preview shows — [`Session::repair`] is the authority on
    /// what actually gets applied.
    ///
    /// Results are ordered by `(CFD index, rows, pattern index)` and are
    /// deterministic.
    pub fn explain(&mut self, item: &ViolationItem) -> Result<Vec<Explanation>> {
        let snapshot = self.snapshot()?;
        self.ensure_indexes()?;
        // A value never interned cannot occur in any relation: no provenance.
        let ids: Option<Vec<ValueId>> = item.values().iter().map(ValueId::get).collect();
        let Some(ids) = ids else {
            return Ok(Vec::new());
        };
        let mut out = Vec::new();
        match item {
            ViolationItem::Constant(_) => {
                if ids.len() != snapshot.schema().arity() {
                    return Ok(Vec::new());
                }
                let cols: Vec<&[ValueId]> = snapshot
                    .schema()
                    .attr_ids()
                    .map(|a| snapshot.column(a))
                    .collect();
                let full_match = |i: usize| cols.iter().zip(&ids).all(|(col, id)| col[i] == *id);
                // Locate the tuple's rows through any shared LHS index: the
                // tuple fixes its projection onto every CFD's LHS, so one
                // group lookup narrows the candidates to a single group
                // instead of scanning the instance (full scan only when no
                // keyed CFD exists).
                let indexes = self.indexes.as_ref().expect("just ensured");
                let keyed = self
                    .engine
                    .rules()
                    .iter()
                    .zip(indexes)
                    .find_map(|(cfd, index)| index.as_ref().map(|i| (cfd, i)));
                let rows: Vec<usize> = match keyed {
                    Some((cfd, index)) => {
                        let key: Vec<ValueId> = cfd.lhs().iter().map(|a| ids[a.index()]).collect();
                        let mut rows: Vec<usize> = index
                            .lookup_ids(&key)
                            .iter()
                            .copied()
                            .filter(|&i| full_match(i))
                            .collect();
                        rows.sort_unstable();
                        rows
                    }
                    None => (0..snapshot.len()).filter(|&i| full_match(i)).collect(),
                };
                for (cfd_index, cfd) in self.engine.rules().iter().enumerate() {
                    let xcols = snapshot.columns_for(cfd.lhs());
                    let ycols = snapshot.columns_for(cfd.rhs());
                    for &row in &rows {
                        let x = project_cols(&xcols, row);
                        let y = project_cols(&ycols, row);
                        for (pattern_index, pattern) in cfd.tableau().iter().enumerate() {
                            if pattern.lhs_matches_ids(&x) && !pattern.rhs_matches_ids(&y) {
                                let witness = ViolationWitness {
                                    pattern_index,
                                    kind: ViolationKind::SingleTuple,
                                    rows: vec![row],
                                };
                                out.push(self.explanation(cfd_index, cfd, &snapshot, witness));
                            }
                        }
                    }
                }
            }
            ViolationItem::MultiTupleKey(_) => {
                for (cfd_index, cfd) in self.engine.rules().iter().enumerate() {
                    if cfd.lhs().len() != ids.len() {
                        continue;
                    }
                    let rows = self.group_rows(cfd_index, cfd, &snapshot, &ids);
                    if rows.len() < 2 {
                        continue;
                    }
                    let ycols = snapshot.columns_for(cfd.rhs());
                    for (pattern_index, pattern) in cfd.tableau().iter().enumerate() {
                        if !pattern.lhs_matches_ids(&ids) {
                            continue;
                        }
                        let first = project_cols(&ycols, rows[0]);
                        if rows[1..].iter().any(|&r| project_cols(&ycols, r) != first) {
                            let witness = ViolationWitness {
                                pattern_index,
                                kind: ViolationKind::MultiTuple,
                                rows: rows.clone(),
                            };
                            out.push(self.explanation(cfd_index, cfd, &snapshot, witness));
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The rows whose full-LHS projection under `cfd` equals `key`: an index
    /// lookup for keyed CFDs, a column scan for don't-care ones (whose `QV`
    /// keys the direct detector also reports over the full LHS).
    fn group_rows(
        &self,
        cfd_index: usize,
        cfd: &Cfd,
        snapshot: &Relation,
        key: &[ValueId],
    ) -> Vec<usize> {
        let indexes = self.indexes.as_ref().expect("ensured by caller");
        if let Some(index) = &indexes[cfd_index] {
            let mut rows = index.lookup_ids(key).to_vec();
            rows.sort_unstable();
            return rows;
        }
        let xcols = snapshot.columns_for(cfd.lhs());
        (0..snapshot.len())
            .filter(|&i| xcols.iter().zip(key).all(|(col, id)| col[i] == *id))
            .collect()
    }

    /// Packages one witness into an [`Explanation`] with its planned edits.
    fn explanation(
        &self,
        cfd_index: usize,
        cfd: &Cfd,
        snapshot: &Relation,
        witness: ViolationWitness,
    ) -> Explanation {
        let cells = cfd.witness_cells(&witness);
        let model = &self.engine.config().repair().cost_model;
        let mut planned = Vec::new();
        // Pin obligations: one edit per pinned RHS attribute (all pins of
        // one attribute share the pattern constant), priced over the
        // disagreeing cells.
        let mut pinned_attrs: Vec<(AttrId, ValueId)> = Vec::new();
        for &(_, attr, target) in &cells.pins {
            if !pinned_attrs.contains(&(attr, target)) {
                pinned_attrs.push((attr, target));
            }
        }
        for (attr, target) in pinned_attrs {
            let rows: Vec<usize> = cells
                .pins
                .iter()
                .filter(|&&(_, a, t)| a == attr && t == target)
                .map(|&(row, _, _)| row)
                .collect();
            let target_value = target.resolve();
            let cost: f64 = rows
                .iter()
                .filter(|&&row| snapshot.column(attr)[row] != target)
                .map(|&row| {
                    model.weight(row)
                        * model
                            .distance
                            .distance(snapshot.column(attr)[row].resolve(), target_value)
                })
                .sum();
            planned.push(PlannedEdit {
                attr,
                rows,
                target: target_value.clone(),
                cost,
            });
        }
        // Merge obligations: the class target the cost model would choose.
        for (attr, rows) in &cells.merges {
            let class: Vec<(usize, AttrId)> = rows.iter().map(|&r| (r, *attr)).collect();
            if let Some((target, cost)) = model.class_target(snapshot, &class) {
                planned.push(PlannedEdit {
                    attr: *attr,
                    rows: rows.clone(),
                    target: target.resolve().clone(),
                    cost,
                });
            }
        }
        Explanation {
            cfd_index,
            cfd_name: cfd.name().map(str::to_owned),
            pattern_index: witness.pattern_index,
            pattern: cfd.tableau().rows()[witness.pattern_index].clone(),
            kind: witness.kind,
            rows: witness.rows,
            cells,
            planned,
        }
    }

    /// The `Direct` path: group-driven detection over the shared indexes.
    fn detect_direct(&mut self) -> Result<Violations> {
        let snapshot = self.snapshot()?;
        self.ensure_indexes()?;
        let indexes = self.indexes.as_ref().expect("just ensured");
        let mut out = Violations::new();
        for (cfd, index) in self.engine.rules().iter().zip(indexes) {
            match index {
                Some(index) => out.merge(detect_with_index(cfd, &snapshot, index)),
                None => out.merge(DirectDetector::new().detect(cfd, &snapshot)),
            }
        }
        Ok(out)
    }

    fn ensure_indexes(&mut self) -> Result<()> {
        if self.indexes.is_some() {
            return Ok(());
        }
        let snapshot = self.snapshot()?;
        self.indexes = Some(
            self.engine
                .plans()
                .iter()
                .zip(self.engine.rules().iter())
                .map(|(plan, cfd)| plan.keyed.then(|| snapshot.build_index(cfd.lhs())))
                .collect(),
        );
        Ok(())
    }

    fn ensure_prepared(&mut self) -> Result<()> {
        if self.prepared.is_some() {
            return Ok(());
        }
        let snapshot = self.snapshot()?;
        let strategy = self.engine.config().strategy();
        let mut prepared = Vec::with_capacity(self.engine.plans().len());
        for plan in self.engine.plans() {
            prepared.push(prepare_pair(
                &snapshot,
                TABLEAU_NAME,
                &plan.tableau,
                &plan.qc,
                &plan.qv,
                strategy,
            )?);
        }
        self.prepared = Some(prepared);
        Ok(())
    }

    fn ensure_prepared_merged(&mut self) -> Result<()> {
        if self.prepared_merged.is_some() {
            return Ok(());
        }
        let plan = self.engine.merged_plan().ok_or_else(|| {
            Error::Sql(cfd_sql::SqlError::Unsupported(
                "engine compiled without a merged plan".into(),
            ))
        })?;
        let (joined, qc, qv) = (Arc::clone(&plan.joined), plan.qc.clone(), plan.qv.clone());
        let snapshot = self.snapshot()?;
        let strategy = self.engine.config().strategy();
        self.prepared_merged = Some(prepare_pair(
            &snapshot,
            JOINED_NAME,
            &joined,
            &qc,
            &qv,
            strategy,
        )?);
        Ok(())
    }

    fn ensure_stream(&mut self) -> Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        let base = self.snapshot()?;
        self.stream = Some(cfd_detect::IncrementalDetector::new(
            (*base).clone(),
            self.engine.rules().cfds().to_vec(),
        ));
        Ok(())
    }
}

/// Joins one scoped detection worker, converting a worker panic into
/// [`Error::WorkerPanicked`] instead of re-panicking on the serving thread.
/// The session's prepared state is only ever *read* by workers, so after a
/// contained panic the session stays fully usable — the next `detect()`
/// re-runs the same prepared plans.
fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, Result<T>>) -> Result<T> {
    handle.join().map_err(|_| Error::WorkerPanicked)?
}

/// Binds one compiled `QC`/`QV` pair to a data snapshot: an ephemeral
/// catalog + executor compile the plans once; the returned
/// [`PreparedQuery`]s own `Arc`s of both relations and outlive the catalog.
fn prepare_pair(
    data: &Arc<Relation>,
    tableau_name: &str,
    tableau: &Arc<Relation>,
    qc: &SelectQuery,
    qv: &SelectQuery,
    strategy: cfd_sql::Strategy,
) -> Result<(PreparedQuery, PreparedQuery)> {
    let mut catalog = Catalog::new();
    catalog.register_arc(DATA_NAME, Arc::clone(data));
    catalog.register_arc(tableau_name, Arc::clone(tableau));
    let executor = Executor::new(&catalog).with_strategy(strategy);
    Ok((executor.prepare(qc)?, executor.prepare(qv)?))
}

/// Runs one prepared `QC`/`QV` pair into a [`Violations`] report (the same
/// folding as `cfd_detect::Detector::detect_shared`).
fn run_pair(pair: &(PreparedQuery, PreparedQuery)) -> Result<Violations> {
    let mut out = Violations::new();
    let qc: ResultSet = pair.0.run()?;
    for row in qc.rows() {
        out.add_constant_violation(row.clone());
    }
    let qv: ResultSet = pair.1.run()?;
    for row in qv.rows() {
        out.add_multi_tuple_key(row.clone());
    }
    Ok(out)
}

/// The provenance of one report finding (see [`Session::explain`]): the
/// violated CFD and pattern tuple, the involved rows, the witness-cell
/// obligations, and the repair plan the cost model would choose.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// Index of the violated CFD within [`Engine::rules`].
    pub cfd_index: usize,
    /// The CFD's name, when it has one.
    pub cfd_name: Option<String>,
    /// Index of the violated pattern tuple within the CFD's tableau.
    pub pattern_index: usize,
    /// The violated pattern tuple itself.
    pub pattern: PatternTuple,
    /// Single- or multi-tuple violation.
    pub kind: ViolationKind,
    /// The involved row indices (sorted).
    pub rows: Vec<usize>,
    /// The cell-level repair obligations ([`Cfd::witness_cells`]): which
    /// cells must agree, which are pinned to pattern constants.
    pub cells: WitnessCells,
    /// Per RHS obligation, the edit a repair would apply.
    pub planned: Vec<PlannedEdit>,
}

/// One planned repair edit of an [`Explanation`]: the target value the cost
/// model selects for an equivalence class (or the pattern constant a pin
/// demands) and its weighted cost over the disagreeing cells — the same
/// selection rule as [`cfd_repair::CostModel::class_target`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedEdit {
    /// The edited attribute.
    pub attr: AttrId,
    /// The rows of the obligation's cells.
    pub rows: Vec<usize>,
    /// The chosen target value.
    pub target: Value,
    /// `Σ weight(row) × dist(current, target)` over the disagreeing cells.
    pub cost: f64,
}

/// Sessions hold only owned state and can move across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Session>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use cfd_datagen::cust::{cust_instance, phi2};

    #[test]
    fn worker_panics_surface_as_errors_and_leave_the_session_usable() {
        // The exact join the SqlParallel path performs, against a worker
        // that panics: the panic must come back as Error::WorkerPanicked,
        // not abort the joining (serving) thread.
        let joined: Result<Violations> = std::thread::scope(|scope| {
            let ok = scope.spawn(|| Ok(Violations::new()));
            let bad = scope.spawn(|| -> Result<Violations> { panic!("worker bug") });
            let first = join_worker(ok);
            assert!(first.is_ok());
            join_worker(bad)
        });
        assert_eq!(joined.unwrap_err(), Error::WorkerPanicked);

        // A session on the same thread keeps serving afterwards: prepared
        // state is read-only to workers, so nothing was corrupted.
        let engine = Engine::builder().rule(phi2()).build().unwrap();
        let mut session = engine.session(Arc::new(cust_instance())).unwrap();
        let report = session.detect().unwrap();
        assert_eq!(report.constant_violations().len(), 2);
    }
}
