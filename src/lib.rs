//! # cfd — Conditional Functional Dependencies for Data Cleaning
//!
//! Facade crate for the reproduction of *Conditional Functional Dependencies
//! for Data Cleaning* (Bohannon, Fan, Geerts, Jia, Kementsietsidis,
//! ICDE 2007). It re-exports the workspace crates so applications can depend
//! on a single crate:
//!
//! * [`relation`] — values, schemas, tuples, in-memory relations.
//! * [`sql`] — the SQL AST/executor used by the detection queries.
//! * [`core`] — CFDs, pattern tableaux, satisfaction, consistency, the
//!   inference system and minimal covers.
//! * [`detect`] — SQL-based and direct violation detection.
//! * [`repair`] — heuristic, cost-based repair (Section 6).
//! * [`discovery`] — FD / constant-CFD discovery (future work in the paper).
//! * [`datagen`] — the `cust` running example and the synthetic tax-records
//!   workload used by the evaluation.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use cfd_core as core;
pub use cfd_datagen as datagen;
pub use cfd_detect as detect;
pub use cfd_discovery as discovery;
pub use cfd_relation as relation;
pub use cfd_repair as repair;
pub use cfd_sql as sql;

/// Commonly used items, importable with `use cfd::prelude::*;`.
pub mod prelude {
    pub use cfd_core::{Cfd, CfdSet, PatternTableau, PatternTuple, PatternValue};
    pub use cfd_datagen::cust::{cust_instance, cust_schema};
    pub use cfd_detect::{Detector, Violations};
    pub use cfd_relation::{AttrType, Domain, Relation, Schema, Tuple, Value};
    pub use cfd_repair::Repairer;
    pub use cfd_sql::{Catalog, Executor, Strategy};
}
