//! # cfd — Conditional Functional Dependencies for Data Cleaning
//!
//! Facade crate for the reproduction of *Conditional Functional Dependencies
//! for Data Cleaning* (Bohannon, Fan, Geerts, Jia, Kementsietsidis,
//! ICDE 2007). It re-exports the workspace crates so applications can depend
//! on a single crate:
//!
//! * [`relation`] — values, schemas, tuples, in-memory relations.
//! * [`sql`] — the SQL AST/executor used by the detection queries.
//! * [`core`] — CFDs, pattern tableaux, satisfaction, consistency, the
//!   inference system and minimal covers.
//! * [`detect`] — SQL-based, direct, hash-sharded parallel and incremental
//!   (streaming) violation detection, selectable via [`DetectorKind`].
//! * [`repair`] — cost-based repair (Section 6): the equivalence-class
//!   engine with incremental violation maintenance, plus the pass-loop
//!   reference heuristic, selectable via [`RepairKind`].
//! * [`discovery`] — FD / constant-CFD discovery (future work in the paper).
//! * [`datagen`] — the `cust` running example and the synthetic tax-records
//!   workload used by the evaluation.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use cfd_core as core;
pub use cfd_datagen as datagen;
pub use cfd_detect as detect;
pub use cfd_discovery as discovery;
pub use cfd_relation as relation;
pub use cfd_repair as repair;
pub use cfd_sql as sql;

pub use cfd_detect::DetectorKind;
pub use cfd_repair::RepairKind;

use std::sync::Arc;

/// Detects the violations of `cfds` on `data` with the selected engine —
/// the facade-level entry point over every detection path of the workspace.
///
/// ```
/// use cfd::prelude::*;
/// use std::sync::Arc;
///
/// let data = Arc::new(cust_instance());
/// let cfds = cfd::datagen::fig2_cfd_set();
/// let direct =
///     cfd::detect_violations(DetectorKind::Direct, cfds.cfds(), Arc::clone(&data)).unwrap();
/// let sharded =
///     cfd::detect_violations(DetectorKind::Sharded { shards: 4 }, cfds.cfds(), data).unwrap();
/// assert_eq!(direct, sharded);
/// ```
pub fn detect_violations(
    kind: DetectorKind,
    cfds: &[cfd_core::Cfd],
    data: Arc<cfd_relation::Relation>,
) -> Result<cfd_detect::Violations, cfd_sql::SqlError> {
    kind.detect_set(cfds, data)
}

/// Repairs `rel` with respect to `cfds` using the selected engine — the
/// facade-level entry point over both repair paths of the workspace.
///
/// ```
/// use cfd::prelude::*;
///
/// let data = cust_instance();
/// let cfds: Vec<Cfd> = cfd::datagen::fig2_cfd_set().into_iter().collect();
/// let by_classes = cfd::repair_violations(RepairKind::EquivClass, &cfds, &data);
/// let by_passes = cfd::repair_violations(RepairKind::Heuristic, &cfds, &data);
/// assert!(by_classes.satisfied && by_passes.satisfied);
/// ```
pub fn repair_violations(
    kind: RepairKind,
    cfds: &[cfd_core::Cfd],
    rel: &cfd_relation::Relation,
) -> cfd_repair::RepairResult {
    kind.repair(cfds, rel)
}

/// Commonly used items, importable with `use cfd::prelude::*;`.
pub mod prelude {
    pub use cfd_core::{Cfd, CfdSet, PatternTableau, PatternTuple, PatternValue};
    pub use cfd_datagen::cust::{cust_instance, cust_schema};
    pub use cfd_detect::{
        BatchOp, Detector, DetectorKind, IncrementalDetector, ShardedDetector, Violations,
    };
    pub use cfd_relation::{AttrType, Domain, Relation, Schema, Tuple, TupleWeights, Value};
    pub use cfd_repair::{CostModel, RepairKind, RepairResult, Repairer};
    pub use cfd_sql::{Catalog, Executor, Strategy};
}
