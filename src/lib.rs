//! # cfd — Conditional Functional Dependencies for Data Cleaning
//!
//! Facade crate for the reproduction of *Conditional Functional Dependencies
//! for Data Cleaning* (Bohannon, Fan, Geerts, Jia, Kementsietsidis,
//! ICDE 2007), built around a two-level **prepared-state** model:
//!
//! 1. **[`Engine`]** — a rule set compiled once: schema-checked,
//!    consistency-validated (Section 3), `QC`/`QV` detection queries
//!    generated (Section 4), per-CFD recheck plans decided. Immutable,
//!    `Send + Sync`, cheap to clone — built via [`EngineBuilder`] with an
//!    [`EngineConfig`].
//! 2. **[`Session`]** — one dataset served against that engine:
//!    [`Session::detect`], [`Session::repair`] (Section 6),
//!    [`Session::apply_batch`] streaming with incremental maintenance, and
//!    [`Session::explain`] provenance for every finding. The per-dataset
//!    LHS indexes are built once and shared between detection and repair.
//!
//! ```
//! use cfd::prelude::*;
//! use std::sync::Arc;
//!
//! let engine = Engine::builder()
//!     .rule_set(cfd::datagen::fig2_cfd_set())
//!     .build()
//!     .unwrap();
//! let mut session = engine.session(Arc::new(cust_instance())).unwrap();
//! let report = session.detect().unwrap();
//! assert_eq!(report.constant_violations().len(), 2);
//! let repair = session.repair(RepairKind::EquivClass).unwrap();
//! assert!(repair.satisfied);
//! ```
//!
//! Every fallible facade call returns the single [`Error`] enum. The free
//! functions [`detect_violations`] / [`repair_violations`] remain as thin
//! one-shot wrappers over a throwaway engine.
//!
//! The workspace crates stay importable for lower-level use:
//!
//! * [`relation`] — values, schemas, tuples, in-memory columnar relations.
//! * [`sql`] — the SQL AST/executor used by the detection queries.
//! * [`core`] — CFDs, pattern tableaux, satisfaction, consistency, the
//!   inference system and minimal covers.
//! * [`detect`] — SQL-based, direct, hash-sharded parallel and incremental
//!   (streaming) violation detection, selectable via [`DetectorKind`] —
//!   including [`DetectorKind::Auto`], the cost-based adaptive planner over
//!   vectorized columnar scan kernels.
//! * [`repair`] — cost-based repair (Section 6) behind [`RepairKind`].
//! * [`store`] — the durable storage layer behind
//!   [`Engine::session_on_disk`]: pager, bounded buffer pool, persisted
//!   value dictionary and a group-commit write-ahead log, serving
//!   detection over instances larger than memory with crash recovery.
//! * [`discovery`] — FD / constant-CFD discovery (future work in the paper).
//! * [`datagen`] — the `cust` running example and the synthetic tax-records
//!   workload used by the evaluation.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use cfd_core as core;
pub use cfd_datagen as datagen;
pub use cfd_detect as detect;
pub use cfd_discovery as discovery;
pub use cfd_relation as relation;
pub use cfd_repair as repair;
pub use cfd_sql as sql;
pub use cfd_store as store;

mod config;
mod engine;
mod error;
mod session;

pub use cfd_detect::{DetectionPlan, DetectorKind, PlanStep, Planner, StepStrategy, ViolationItem};
pub use cfd_repair::RepairKind;
pub use cfd_store::{PoolStats, StoreError, StoreOptions};
pub use config::{EngineConfig, EngineConfigBuilder, StorageConfig};
pub use engine::{Engine, EngineBuilder};
pub use error::{Error, Result};
pub use session::{Explanation, PlannedEdit, Session};

use std::sync::Arc;

/// One-shot detection: compiles `cfds` into a throwaway [`Engine`]
/// configured for `kind` and detects on `data`.
///
/// Prefer building an [`Engine`] once when the same rules serve repeated
/// calls — this wrapper re-validates and re-compiles the rule set every
/// time (and, like the builder, rejects inconsistent rule sets).
///
/// ```
/// use cfd::prelude::*;
/// use std::sync::Arc;
///
/// let data = Arc::new(cust_instance());
/// let cfds = cfd::datagen::fig2_cfd_set();
/// let direct =
///     cfd::detect_violations(DetectorKind::Direct, cfds.cfds(), Arc::clone(&data)).unwrap();
/// let sharded =
///     cfd::detect_violations(DetectorKind::Sharded { shards: 4 }, cfds.cfds(), data).unwrap();
/// assert_eq!(direct, sharded);
/// ```
pub fn detect_violations(
    kind: DetectorKind,
    cfds: &[cfd_core::Cfd],
    data: Arc<cfd_relation::Relation>,
) -> Result<cfd_detect::Violations> {
    Engine::builder()
        .rules(cfds.iter().cloned())
        .config(EngineConfig::builder().detector(kind).build()?)
        .build()?
        .detect(data)
}

/// One-shot repair: compiles `cfds` into a throwaway [`Engine`] and repairs
/// `data` with the selected engine kind.
///
/// Configuration and rule problems surface as [`Error`]s instead of
/// panicking; prefer a long-lived [`Engine`] for repeated repairs.
///
/// ```
/// use cfd::prelude::*;
/// use std::sync::Arc;
///
/// let data = Arc::new(cust_instance());
/// let cfds: Vec<Cfd> = cfd::datagen::fig2_cfd_set().into_iter().collect();
/// let by_classes =
///     cfd::repair_violations(RepairKind::EquivClass, &cfds, Arc::clone(&data)).unwrap();
/// let by_passes = cfd::repair_violations(RepairKind::Heuristic, &cfds, data).unwrap();
/// assert!(by_classes.satisfied && by_passes.satisfied);
/// ```
pub fn repair_violations(
    kind: RepairKind,
    cfds: &[cfd_core::Cfd],
    data: Arc<cfd_relation::Relation>,
) -> Result<cfd_repair::RepairResult> {
    Engine::builder()
        .rules(cfds.iter().cloned())
        .build()?
        .repair(data, kind)
}

/// Commonly used items, importable with `use cfd::prelude::*;`.
pub mod prelude {
    pub use crate::{
        Engine, EngineBuilder, EngineConfig, EngineConfigBuilder, Error, Explanation, PlannedEdit,
        Session, StorageConfig,
    };
    pub use cfd_core::{Cfd, CfdSet, PatternTableau, PatternTuple, PatternValue};
    pub use cfd_datagen::cust::{cust_instance, cust_schema};
    pub use cfd_detect::{
        BatchOp, DetectionPlan, Detector, DetectorKind, IncrementalDetector, Planner,
        ShardedDetector, StepStrategy, ViolationItem, Violations,
    };
    pub use cfd_relation::{AttrType, Domain, Relation, Schema, Tuple, TupleWeights, Value};
    pub use cfd_repair::{CostModel, RepairConfig, RepairKind, RepairResult, Repairer};
    pub use cfd_sql::{Catalog, Executor, PreparedQuery, Strategy};
}
