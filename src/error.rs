//! The unified facade error type.
//!
//! Every fallible facade entry point — [`EngineBuilder::build`],
//! [`Engine::session`], [`Session`] methods, and the one-shot free functions
//! — returns [`Error`], so applications match on **one** enum instead of
//! juggling `cfd_sql::SqlError`, `cfd_relation::RelationError` and
//! `cfd_core::CfdError` per call site. The layer-specific errors convert in
//! via `From` and remain inspectable through the corresponding variants (and
//! [`std::error::Error::source`]).
//!
//! [`EngineBuilder::build`]: crate::EngineBuilder::build
//! [`Engine::session`]: crate::Engine::session
//! [`Session`]: crate::Session

use cfd_core::CfdError;
use cfd_relation::RelationError;
use cfd_sql::SqlError;
use cfd_store::StoreError;
use std::fmt;

/// Convenient result alias for facade operations.
pub type Result<T> = std::result::Result<T, Error>;

/// The single error type of the facade API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Building or reasoning about the rule set failed (pattern arity,
    /// mixed schemas, normalization, …).
    Rules(CfdError),
    /// The rule set is inconsistent: no nonempty instance satisfies it
    /// (Section 3.1). Raised at **builder time**, before any data is
    /// touched — an engine serving such rules would flag every tuple.
    InconsistentRules,
    /// An invalid engine configuration (see
    /// [`EngineConfigBuilder::build`](crate::EngineConfigBuilder::build)
    /// for the validated combinations).
    Config(String),
    /// The session data's schema differs from the schema the rules were
    /// compiled against.
    SchemaMismatch {
        /// Schema name of the compiled rules.
        rules: String,
        /// Schema name of the offered data.
        data: String,
    },
    /// A detection worker thread panicked. The panic was contained at the
    /// thread join — the session (and every other session of the process)
    /// remains usable; re-running the request re-executes the work from the
    /// prepared state. In a multi-tenant deployment this is the variant that
    /// keeps one tenant's fault from taking down the others.
    WorkerPanicked,
    /// An error bubbled up from the SQL substrate.
    Sql(SqlError),
    /// An error bubbled up from the relational substrate.
    Relation(RelationError),
    /// An error bubbled up from the disk-backed storage layer (I/O,
    /// corruption, pool exhaustion, stored-schema mismatch).
    Store(StoreError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Rules(e) => write!(f, "rule error: {e}"),
            Error::InconsistentRules => write!(
                f,
                "inconsistent rule set: no nonempty instance satisfies it (Section 3.1)"
            ),
            Error::Config(msg) => write!(f, "invalid engine configuration: {msg}"),
            Error::SchemaMismatch { rules, data } => write!(
                f,
                "schema mismatch: rules compiled for `{rules}`, data is `{data}`"
            ),
            Error::WorkerPanicked => write!(
                f,
                "a detection worker thread panicked; the session remains usable"
            ),
            Error::Sql(e) => write!(f, "sql error: {e}"),
            Error::Relation(e) => write!(f, "relation error: {e}"),
            Error::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Rules(e) => Some(e),
            Error::Sql(e) => Some(e),
            Error::Relation(e) => Some(e),
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CfdError> for Error {
    fn from(e: CfdError) -> Self {
        match e {
            CfdError::Inconsistent => Error::InconsistentRules,
            // A relation error is the same problem wherever it was raised:
            // it always surfaces as `Error::Relation`, never nested inside
            // the rules variant.
            CfdError::Relation(e) => Error::Relation(e),
            other => Error::Rules(other),
        }
    }
}

impl From<SqlError> for Error {
    fn from(e: SqlError) -> Self {
        Error::Sql(e)
    }
}

impl From<RelationError> for Error {
    fn from(e: RelationError) -> Self {
        Error::Relation(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        // A relation error is the same problem wherever it was raised.
        match e {
            StoreError::Relation(e) => Error::Relation(e),
            other => Error::Store(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_sources() {
        let rules: Error = CfdError::EmptyRhs.into();
        assert!(matches!(rules, Error::Rules(_)));
        assert!(rules.to_string().contains("right-hand side"));
        assert!(rules.source().is_some());

        let inconsistent: Error = CfdError::Inconsistent.into();
        assert_eq!(inconsistent, Error::InconsistentRules);
        assert!(inconsistent.to_string().contains("inconsistent"));
        assert!(inconsistent.source().is_none());

        // A relation error surfaces as Error::Relation no matter which
        // layer raised it.
        let via_core: Error = CfdError::Relation(RelationError::Parse("bad".into())).into();
        let direct: Error = RelationError::Parse("bad".into()).into();
        assert_eq!(via_core, direct);
        assert!(matches!(via_core, Error::Relation(_)));

        let sql: Error = SqlError::UnknownTable("T".into()).into();
        assert!(sql.to_string().contains("T"));
        assert!(sql.source().is_some());

        let rel: Error = RelationError::Parse("bad".into()).into();
        assert!(rel.to_string().contains("bad"));
        assert!(rel.source().is_some());

        let cfg = Error::Config("shards must be > 0".into());
        assert!(cfg.to_string().contains("shards"));

        let mismatch = Error::SchemaMismatch {
            rules: "cust".into(),
            data: "tax".into(),
        };
        assert!(mismatch.to_string().contains("cust"));
        assert!(mismatch.to_string().contains("tax"));

        let panicked = Error::WorkerPanicked;
        assert!(panicked.to_string().contains("panicked"));
        assert!(panicked.source().is_none());

        let store: Error = StoreError::InvalidOp {
            detail: "bad slot".into(),
        }
        .into();
        assert!(matches!(store, Error::Store(_)));
        assert!(store.to_string().contains("bad slot"));
        assert!(store.source().is_some());

        // A relation error surfaces as Error::Relation even via the store.
        let via_store: Error = StoreError::Relation(RelationError::Parse("bad".into())).into();
        assert!(matches!(via_store, Error::Relation(_)));
    }
}
