//! Levelwise discovery of FDs and constant CFD patterns.

use cfd_core::{Cfd, PatternTableau, PatternTuple, PatternValue};
use cfd_relation::{AttrId, Relation, ValueId};
use std::collections::HashMap;

/// Parameters of the discovery search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscoveryConfig {
    /// Maximum number of LHS attributes considered (levelwise bound).
    pub max_lhs_size: usize,
    /// Minimum number of supporting tuples for a constant pattern row.
    pub min_support: usize,
    /// Minimum fraction (0–1) of tuples that must conform for an *approximate*
    /// FD to be reported; `1.0` keeps only exact FDs.
    pub min_confidence: f64,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            max_lhs_size: 2,
            min_support: 3,
            min_confidence: 1.0,
        }
    }
}

/// A discovered dependency with its quality measures.
#[derive(Debug, Clone)]
pub struct DiscoveredCfd {
    /// The dependency, as a CFD (all-wildcard pattern for plain FDs,
    /// all-constant rows for mined constant patterns).
    pub cfd: Cfd,
    /// Fraction of tuples conforming to the embedded FD.
    pub confidence: f64,
    /// Number of tuples supporting the reported pattern rows (equals the
    /// relation size for plain FDs).
    pub support: usize,
}

/// Discovers embedded FDs `X → A` with `|X| ≤ max_lhs_size` whose confidence
/// reaches `min_confidence`. Exact FDs (confidence 1.0) are returned as
/// plain-FD CFDs; approximate ones are still reported with their confidence
/// so callers can inspect them.
pub fn discover_fds(rel: &Relation, config: &DiscoveryConfig) -> Vec<DiscoveredCfd> {
    let mut out = Vec::new();
    if rel.is_empty() {
        return out;
    }
    let schema = rel.schema();
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    for lhs in attribute_subsets(&attrs, config.max_lhs_size) {
        for &rhs in &attrs {
            if lhs.contains(&rhs) {
                continue;
            }
            let (confidence, _) = fd_confidence(rel, &lhs, rhs);
            if confidence >= config.min_confidence {
                let cfd = Cfd::from_parts(
                    schema.clone(),
                    lhs.clone(),
                    vec![rhs],
                    PatternTableau::from_rows(vec![PatternTuple::all_wildcards(lhs.len(), 1)]),
                )
                .expect("discovered FD is well-formed");
                out.push(DiscoveredCfd {
                    cfd,
                    confidence,
                    support: rel.len(),
                });
            }
        }
    }
    out
}

/// Mines constant CFD pattern rows: for every LHS set and RHS attribute, every
/// LHS value combination seen at least `min_support` times whose RHS value is
/// unique becomes an all-constant pattern row. Rows for the same embedded FD
/// are collected into a single CFD.
pub fn discover_constant_cfds(rel: &Relation, config: &DiscoveryConfig) -> Vec<DiscoveredCfd> {
    let mut out = Vec::new();
    if rel.is_empty() {
        return out;
    }
    let schema = rel.schema();
    let attrs: Vec<AttrId> = schema.attr_ids().collect();
    for lhs in attribute_subsets(&attrs, config.max_lhs_size) {
        if lhs.is_empty() {
            continue;
        }
        for &rhs in &attrs {
            if lhs.contains(&rhs) {
                continue;
            }
            // Columnar: group on interned LHS keys, read the RHS column
            // directly, and resolve constants only for the reported rows.
            let groups = rel.group_by_ids(&lhs);
            let rhs_col = rel.column(rhs);
            let mut rows = Vec::new();
            let mut support = 0usize;
            for (key, members) in &groups {
                if members.len() < config.min_support {
                    continue;
                }
                let mut rhs_ids: Vec<ValueId> = members.iter().map(|&i| rhs_col[i]).collect();
                rhs_ids.sort_unstable();
                rhs_ids.dedup();
                if rhs_ids.len() == 1 {
                    rows.push(PatternTuple::new(
                        key.iter().map(|v| PatternValue::Const(*v)).collect(),
                        vec![PatternValue::Const(rhs_ids[0])],
                    ));
                    support += members.len();
                }
            }
            if rows.is_empty() {
                continue;
            }
            rows.sort_by_key(|r| format!("{r}"));
            let (confidence, _) = fd_confidence(rel, &lhs, rhs);
            let cfd = Cfd::from_parts(
                schema.clone(),
                lhs.clone(),
                vec![rhs],
                PatternTableau::from_rows(rows),
            )
            .expect("discovered constant CFD is well-formed");
            out.push(DiscoveredCfd {
                cfd,
                confidence,
                support,
            });
        }
    }
    out
}

/// Confidence of `X → A`: the fraction of tuples that would remain after
/// keeping, in every `X`-group, only the tuples with the plurality `A` value.
/// Returns `(confidence, number of X-groups)`. Entirely id-based: grouping
/// and plurality counting touch only the `X ∪ {A}` columns.
fn fd_confidence(rel: &Relation, lhs: &[AttrId], rhs: AttrId) -> (f64, usize) {
    let groups = rel.group_by_ids(lhs);
    let rhs_col = rel.column(rhs);
    let mut kept = 0usize;
    for members in groups.values() {
        let mut counts: HashMap<ValueId, usize> = HashMap::new();
        for &i in members {
            *counts.entry(rhs_col[i]).or_insert(0) += 1;
        }
        kept += counts.values().copied().max().unwrap_or(0);
    }
    (kept as f64 / rel.len() as f64, groups.len())
}

/// All non-empty subsets of `attrs` of size at most `max_size`, in a
/// deterministic order (plus the empty set when `max_size == 0` is never
/// requested — LHS sets of discovered dependencies are non-empty).
fn attribute_subsets(attrs: &[AttrId], max_size: usize) -> Vec<Vec<AttrId>> {
    let mut out: Vec<Vec<AttrId>> = Vec::new();
    let mut current: Vec<Vec<AttrId>> = vec![Vec::new()];
    for _ in 0..max_size {
        let mut next = Vec::new();
        for subset in &current {
            let start = subset.last().map(|a| a.index() + 1).unwrap_or(0);
            for attr in attrs.iter().filter(|a| a.index() >= start) {
                let mut grown = subset.clone();
                grown.push(*attr);
                next.push(grown);
            }
        }
        out.extend(next.iter().cloned());
        current = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::cust_instance;
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_relation::Schema;

    #[test]
    fn subsets_enumeration() {
        let attrs = vec![AttrId(0), AttrId(1), AttrId(2)];
        let subsets = attribute_subsets(&attrs, 2);
        // 3 singletons + 3 pairs.
        assert_eq!(subsets.len(), 6);
        assert!(subsets.contains(&vec![AttrId(0), AttrId(2)]));
        let singletons = attribute_subsets(&attrs, 1);
        assert_eq!(singletons.len(), 3);
    }

    #[test]
    fn exact_fds_are_discovered_on_fig1() {
        let rel = cust_instance();
        let config = DiscoveryConfig {
            max_lhs_size: 2,
            min_support: 1,
            min_confidence: 1.0,
        };
        let fds = discover_fds(&rel, &config);
        let has = |lhs: &[&str], rhs: &str| {
            fds.iter()
                .any(|d| d.cfd.lhs_names() == lhs.to_vec() && d.cfd.rhs_names() == vec![rhs])
        };
        // f2: [CC, AC] -> [CT] holds on Fig. 1.
        assert!(has(&["CC", "AC"], "CT"));
        // ZIP -> CT holds as well.
        assert!(has(&["ZIP"], "CT"));
        // NM -> CT holds trivially (names are unique); PN -> NM does not.
        assert!(has(&["NM"], "CT"));
        assert!(!has(&["PN"], "NM"));
        // Every reported exact FD is indeed satisfied.
        for d in &fds {
            assert!(d.cfd.satisfied_by(&rel), "{} reported but violated", d.cfd);
            assert!(d.confidence >= 1.0);
        }
    }

    #[test]
    fn approximate_fds_respect_the_confidence_threshold() {
        // A -> B holds for 3 of 4 tuples (confidence 0.75).
        let schema = Schema::builder("r").text("A").text("B").build();
        let mut rel = Relation::new(schema);
        for (a, b) in [("x", "1"), ("x", "1"), ("x", "2"), ("y", "3")] {
            rel.push_values(vec![a.into(), b.into()]).unwrap();
        }
        let strict = DiscoveryConfig {
            max_lhs_size: 1,
            min_support: 1,
            min_confidence: 1.0,
        };
        assert!(discover_fds(&rel, &strict)
            .iter()
            .all(|d| !(d.cfd.lhs_names() == vec!["A"] && d.cfd.rhs_names() == vec!["B"])));
        let relaxed = DiscoveryConfig {
            min_confidence: 0.7,
            ..strict
        };
        let found = discover_fds(&rel, &relaxed);
        let ab = found
            .iter()
            .find(|d| d.cfd.lhs_names() == vec!["A"] && d.cfd.rhs_names() == vec!["B"])
            .expect("approximate FD reported");
        assert!((ab.confidence - 0.75).abs() < 1e-9);
    }

    #[test]
    fn constant_patterns_are_mined_with_support() {
        let rel = cust_instance();
        let config = DiscoveryConfig {
            max_lhs_size: 2,
            min_support: 2,
            min_confidence: 0.0,
        };
        let mined = discover_constant_cfds(&rel, &config);
        // The (CC=01, AC=908 ‖ CT=NYC) pattern has support 2 on Fig. 1.
        let found = mined
            .iter()
            .find(|d| d.cfd.lhs_names() == vec!["CC", "AC"] && d.cfd.rhs_names() == vec!["CT"]);
        let found = found.expect("[CC, AC] -> CT constant patterns mined");
        assert!(found.cfd.tableau().iter().any(|row| {
            row.lhs()[1] == PatternValue::constant("908")
                && row.rhs()[0] == PatternValue::constant("NYC")
        }));
        // All mined patterns hold on the data they were mined from.
        for d in &mined {
            assert!(d.cfd.satisfied_by(&rel), "{} mined but violated", d.cfd);
            assert!(d.support >= config.min_support);
        }
    }

    #[test]
    fn zip_to_state_is_rediscovered_from_clean_tax_data() {
        let data = TaxGenerator::new(TaxConfig {
            size: 600,
            noise_percent: 0.0,
            seed: 5,
        })
        .generate();
        let config = DiscoveryConfig {
            max_lhs_size: 1,
            min_support: 2,
            min_confidence: 1.0,
        };
        let fds = discover_fds(&data.relation, &config);
        assert!(
            fds.iter()
                .any(|d| d.cfd.lhs_names() == vec!["ZIP"] && d.cfd.rhs_names() == vec!["ST"]),
            "ZIP -> ST must be rediscovered from clean data"
        );
        let mined = discover_constant_cfds(&data.relation, &config);
        let zip_st = mined
            .iter()
            .find(|d| d.cfd.lhs_names() == vec!["ZIP"] && d.cfd.rhs_names() == vec!["ST"])
            .expect("constant zip->state patterns mined");
        assert!(zip_st.cfd.tableau().len() > 10);
    }

    #[test]
    fn empty_relation_discovers_nothing() {
        let schema = Schema::builder("r").text("A").text("B").build();
        let rel = Relation::new(schema);
        let config = DiscoveryConfig::default();
        assert!(discover_fds(&rel, &config).is_empty());
        assert!(discover_constant_cfds(&rel, &config).is_empty());
    }
}
