//! # cfd-discovery — discovering FDs and constant CFDs from data
//!
//! Section 7 of the paper lists "automated methods for discovering CFDs" as
//! future work. This crate implements the natural baseline: a levelwise
//! search over small LHS attribute sets that
//!
//! * reports embedded **FDs** `X → A` that hold exactly on the instance, and
//! * mines **constant CFD patterns**: LHS value combinations with enough
//!   support whose `A` value is unique, which become all-constant pattern
//!   rows `(x̄ ‖ a)` of a CFD on `X → A`.
//!
//! The discovered constraints are, by construction, satisfied by the input
//! instance; the tests verify that and also that the Fig. 2 constraints are
//! re-discovered from (clean) generated data.

pub mod discover;

pub use discover::{discover_constant_cfds, discover_fds, DiscoveredCfd, DiscoveryConfig};
