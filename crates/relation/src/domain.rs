//! Attribute domains.
//!
//! Section 3 of the paper distinguishes attributes with *finite* domains
//! (e.g. `bool`, enumerations such as marital status) from attributes with
//! effectively infinite domains (names, free-form strings, integers). The
//! distinction is load-bearing: consistency and implication of CFDs are
//! NP-complete / coNP-complete precisely because finite-domain attributes can
//! be "used up" by pattern tuples (Example 3.1), and inference rules FD7/FD8
//! only fire for finite-domain attributes.

use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// The primitive type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Free-form text (infinite domain).
    Text,
    /// 64-bit integers (treated as an infinite domain).
    Integer,
    /// Booleans (finite domain of size 2).
    Boolean,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Text => write!(f, "TEXT"),
            AttrType::Integer => write!(f, "INTEGER"),
            AttrType::Boolean => write!(f, "BOOLEAN"),
        }
    }
}

/// The domain of an attribute: either unrestricted values of a primitive type
/// or an explicit finite set of admissible values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Domain {
    /// All values of the given primitive type are admissible.
    Unrestricted(AttrType),
    /// Only the listed values are admissible. The set is kept ordered so
    /// enumeration (needed by inference rules FD7/FD8) is deterministic.
    Finite(BTreeSet<Value>),
}

impl Domain {
    /// Unrestricted text domain.
    pub fn text() -> Self {
        Domain::Unrestricted(AttrType::Text)
    }

    /// Unrestricted integer domain.
    pub fn integer() -> Self {
        Domain::Unrestricted(AttrType::Integer)
    }

    /// The boolean domain `{false, true}`. Booleans are always finite.
    pub fn boolean() -> Self {
        Domain::Finite(
            [Value::Bool(false), Value::Bool(true)]
                .into_iter()
                .collect(),
        )
    }

    /// A finite domain over the given values. Duplicates are collapsed.
    pub fn finite<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Domain::Finite(values.into_iter().map(Into::into).collect())
    }

    /// Returns `true` iff this is a finite domain (including booleans).
    pub fn is_finite(&self) -> bool {
        matches!(self, Domain::Finite(_))
    }

    /// Number of admissible values, or `None` when the domain is infinite.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Unrestricted(_) => None,
            Domain::Finite(vs) => Some(vs.len()),
        }
    }

    /// Iterates the admissible values of a finite domain in sorted order.
    /// Returns an empty iterator for unrestricted domains.
    pub fn values(&self) -> impl Iterator<Item = &Value> + '_ {
        match self {
            Domain::Unrestricted(_) => None,
            Domain::Finite(vs) => Some(vs.iter()),
        }
        .into_iter()
        .flatten()
    }

    /// Checks whether `v` belongs to the domain. `Null` is always admitted so
    /// partially-populated rows can be represented while loading.
    pub fn contains(&self, v: &Value) -> bool {
        if v.is_null() {
            return true;
        }
        match self {
            Domain::Unrestricted(AttrType::Text) => matches!(v, Value::Str(_)),
            Domain::Unrestricted(AttrType::Integer) => matches!(v, Value::Int(_)),
            Domain::Unrestricted(AttrType::Boolean) => matches!(v, Value::Bool(_)),
            Domain::Finite(vs) => vs.contains(v),
        }
    }

    /// The primitive type underlying the domain, when it is unambiguous.
    ///
    /// A finite domain reports the type of its first element; an empty finite
    /// domain defaults to [`AttrType::Text`].
    pub fn attr_type(&self) -> AttrType {
        match self {
            Domain::Unrestricted(t) => *t,
            Domain::Finite(vs) => match vs.iter().next() {
                Some(Value::Bool(_)) => AttrType::Boolean,
                Some(Value::Int(_)) => AttrType::Integer,
                _ => AttrType::Text,
            },
        }
    }

    /// Picks some value that belongs to the domain and differs from every
    /// value in `avoid`, if one exists. Used by the chase-based consistency
    /// algorithm to witness "a fresh constant exists".
    pub fn fresh_value_avoiding(&self, avoid: &[Value]) -> Option<Value> {
        match self {
            Domain::Finite(vs) => vs.iter().find(|v| !avoid.contains(v)).cloned(),
            Domain::Unrestricted(AttrType::Boolean) => [Value::Bool(false), Value::Bool(true)]
                .into_iter()
                .find(|v| !avoid.contains(v)),
            Domain::Unrestricted(AttrType::Integer) => {
                // Infinite domain: one more than the max avoided integer is fresh.
                let max = avoid.iter().filter_map(Value::as_int).max().unwrap_or(0);
                Some(Value::Int(max.saturating_add(1)))
            }
            Domain::Unrestricted(AttrType::Text) => {
                let mut candidate = String::from("#fresh");
                while avoid.iter().any(|v| v.as_str() == Some(candidate.as_str())) {
                    candidate.push('_');
                }
                Some(Value::Str(candidate))
            }
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Unrestricted(t) => write!(f, "{t}"),
            Domain::Finite(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_domain_admits_strings_only() {
        let d = Domain::text();
        assert!(d.contains(&Value::from("NYC")));
        assert!(!d.contains(&Value::Int(1)));
        assert!(d.contains(&Value::Null));
        assert!(!d.is_finite());
        assert_eq!(d.cardinality(), None);
    }

    #[test]
    fn boolean_domain_is_finite_of_two() {
        let d = Domain::boolean();
        assert!(d.is_finite());
        assert_eq!(d.cardinality(), Some(2));
        assert!(d.contains(&Value::Bool(true)));
        assert!(!d.contains(&Value::Int(1)));
        assert_eq!(d.attr_type(), AttrType::Boolean);
    }

    #[test]
    fn finite_domain_membership_and_values() {
        let d = Domain::finite(["single", "married"]);
        assert!(d.contains(&Value::from("single")));
        assert!(!d.contains(&Value::from("divorced")));
        let vals: Vec<_> = d.values().cloned().collect();
        assert_eq!(vals, vec![Value::from("married"), Value::from("single")]);
    }

    #[test]
    fn finite_domain_collapses_duplicates() {
        let d = Domain::finite(["a", "a", "b"]);
        assert_eq!(d.cardinality(), Some(2));
    }

    #[test]
    fn fresh_value_in_finite_domain() {
        let d = Domain::finite(["a", "b", "c"]);
        let fresh = d
            .fresh_value_avoiding(&[Value::from("a"), Value::from("b")])
            .unwrap();
        assert_eq!(fresh, Value::from("c"));
        assert!(d
            .fresh_value_avoiding(&[Value::from("a"), Value::from("b"), Value::from("c")])
            .is_none());
    }

    #[test]
    fn fresh_value_in_infinite_domains_always_exists() {
        let ints = Domain::integer();
        let avoid: Vec<Value> = (0..100).map(Value::Int).collect();
        let fresh = ints.fresh_value_avoiding(&avoid).unwrap();
        assert!(!avoid.contains(&fresh));

        let text = Domain::text();
        let avoid = vec![Value::from("#fresh"), Value::from("#fresh_")];
        let fresh = text.fresh_value_avoiding(&avoid).unwrap();
        assert!(!avoid.contains(&fresh));
    }

    #[test]
    fn boolean_fresh_value_respects_avoid() {
        let d = Domain::boolean();
        assert_eq!(
            d.fresh_value_avoiding(&[Value::Bool(false)]),
            Some(Value::Bool(true))
        );
        assert_eq!(
            d.fresh_value_avoiding(&[Value::Bool(false), Value::Bool(true)]),
            None
        );
    }

    #[test]
    fn attr_type_of_finite_domains() {
        assert_eq!(Domain::finite([1i64, 2]).attr_type(), AttrType::Integer);
        assert_eq!(Domain::finite(["x"]).attr_type(), AttrType::Text);
        assert_eq!(
            Domain::Finite(Default::default()).attr_type(),
            AttrType::Text
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Domain::text().to_string(), "TEXT");
        assert_eq!(Domain::finite(["a", "b"]).to_string(), "{a, b}");
    }
}
