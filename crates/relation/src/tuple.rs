//! Data tuples.
//!
//! A [`Tuple`] is a fixed-arity vector of [`Value`]s aligned with a
//! [`Schema`](crate::Schema). Projection onto attribute lists (`t[X]` in the
//! paper) is the operation used everywhere: CFD satisfaction, grouping,
//! detection and repair.

use crate::schema::AttrId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// A row of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from the given values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Creates a tuple of `arity` NULLs.
    pub fn nulls(arity: usize) -> Self {
        Tuple { values: vec![Value::Null; arity] }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Immutable access to all values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// The value at attribute `id`, if in range.
    pub fn get(&self, id: AttrId) -> Option<&Value> {
        self.values.get(id.index())
    }

    /// Sets the value at attribute `id`. Returns `false` when out of range.
    pub fn set(&mut self, id: AttrId, v: Value) -> bool {
        match self.values.get_mut(id.index()) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Projects the tuple onto the given attributes (the paper's `t[X]`),
    /// preserving the order of `ids`.
    pub fn project(&self, ids: &[AttrId]) -> Vec<Value> {
        ids.iter().map(|id| self.values[id.index()].clone()).collect()
    }

    /// Borrowing variant of [`Tuple::project`]: no cloning, returns references.
    pub fn project_ref<'a>(&'a self, ids: &[AttrId]) -> Vec<&'a Value> {
        ids.iter().map(|id| &self.values[id.index()]).collect()
    }

    /// Returns `true` iff the projections of `self` and `other` onto `ids`
    /// are equal field-by-field (the paper's `t1[X] = t2[X]`).
    pub fn agree_on(&self, other: &Tuple, ids: &[AttrId]) -> bool {
        ids.iter().all(|id| self.values.get(id.index()) == other.values.get(id.index()))
    }

    /// Iterates over `(AttrId, &Value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Value)> + '_ {
        self.values.iter().enumerate().map(|(i, v)| (AttrId(i), v))
    }
}

impl Index<AttrId> for Tuple {
    type Output = Value;

    fn index(&self, id: AttrId) -> &Value {
        &self.values[id.index()]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[&str]) -> Tuple {
        Tuple::new(vals.iter().map(|s| Value::from(*s)).collect())
    }

    #[test]
    fn projection_preserves_order() {
        let tup = t(&["01", "908", "1111111"]);
        let proj = tup.project(&[AttrId(2), AttrId(0)]);
        assert_eq!(proj, vec![Value::from("1111111"), Value::from("01")]);
    }

    #[test]
    fn agree_on_subset_of_attributes() {
        let a = t(&["01", "908", "NYC"]);
        let b = t(&["01", "908", "MH"]);
        assert!(a.agree_on(&b, &[AttrId(0), AttrId(1)]));
        assert!(!a.agree_on(&b, &[AttrId(0), AttrId(2)]));
        assert!(a.agree_on(&b, &[]));
    }

    #[test]
    fn set_and_get() {
        let mut tup = Tuple::nulls(3);
        assert!(tup.set(AttrId(1), Value::from("x")));
        assert_eq!(tup.get(AttrId(1)), Some(&Value::from("x")));
        assert_eq!(tup.get(AttrId(0)), Some(&Value::Null));
        assert!(!tup.set(AttrId(9), Value::from("y")));
        assert!(tup.get(AttrId(9)).is_none());
    }

    #[test]
    fn index_operator_and_display() {
        let tup = t(&["a", "b"]);
        assert_eq!(tup[AttrId(1)], Value::from("b"));
        assert_eq!(tup.to_string(), "(a, b)");
    }

    #[test]
    fn agree_on_out_of_range_is_false_unless_both_missing() {
        let a = t(&["x"]);
        let b = t(&["x"]);
        // Both out of range -> both None -> equal; that's fine, callers never
        // pass out-of-range ids for well-formed schemas.
        assert!(a.agree_on(&b, &[AttrId(5)]));
    }

    #[test]
    fn from_iterator_and_into_values() {
        let tup: Tuple = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(tup.arity(), 2);
        assert_eq!(tup.into_values(), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn project_ref_matches_project() {
        let tup = t(&["p", "q", "r"]);
        let ids = [AttrId(1), AttrId(2)];
        let owned = tup.project(&ids);
        let borrowed: Vec<Value> = tup.project_ref(&ids).into_iter().cloned().collect();
        assert_eq!(owned, borrowed);
    }
}
