//! Data tuples — the *owned* row boundary type.
//!
//! A [`Tuple`] is a fixed-arity vector of interned cell ids ([`ValueId`])
//! aligned with a [`Schema`](crate::Schema). Projection onto attribute lists
//! (`t[X]` in the paper) is the operation used everywhere: CFD satisfaction,
//! grouping, detection and repair. Cells are stored as dictionary ids so all
//! of those reduce to `u32` compares; the [`Value`]-typed accessors resolve
//! through the global interner at the API boundary.
//!
//! Since the storage layer went columnar ([`crate::relation`]), relations no
//! longer *store* tuples: `Tuple` is the owned boundary form — what builders
//! push, batch edits carry, and [`crate::RowRef::to_tuple`] materializes —
//! while in-store rows are read through copy-free [`crate::RowRef`] views.

use crate::interner::ValueId;
use crate::schema::AttrId;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;
use std::ops::Index;

/// A row of a relation: one interned cell per attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    cells: Vec<ValueId>,
}

impl Tuple {
    /// Creates a tuple from the given values, interning each cell.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            cells: values.into_iter().map(ValueId::from_value).collect(),
        }
    }

    /// Creates a tuple directly from interned cell ids.
    pub fn from_ids(cells: Vec<ValueId>) -> Self {
        Tuple { cells }
    }

    /// Creates a tuple of `arity` NULLs.
    pub fn nulls(arity: usize) -> Self {
        Tuple {
            cells: vec![ValueId::NULL; arity],
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.cells.len()
    }

    /// The interned cell ids, in attribute order. This is the hot-path view:
    /// comparing two cells is comparing two `u32`s.
    pub fn ids(&self) -> &[ValueId] {
        &self.cells
    }

    /// Iterates the cell values (resolved through the interner).
    pub fn values(&self) -> impl Iterator<Item = &'static Value> + '_ {
        self.cells.iter().map(|id| id.resolve())
    }

    /// The cells as owned values (boundary/serialization use).
    pub fn to_values(&self) -> Vec<Value> {
        self.cells.iter().map(|id| id.resolve().clone()).collect()
    }

    /// Consumes the tuple, returning its cells as owned values.
    pub fn into_values(self) -> Vec<Value> {
        self.to_values()
    }

    /// The value at attribute `id`, if in range.
    pub fn get(&self, id: AttrId) -> Option<&'static Value> {
        self.cells.get(id.index()).map(|c| c.resolve())
    }

    /// The interned cell id at attribute `id`, if in range.
    pub fn id(&self, id: AttrId) -> Option<ValueId> {
        self.cells.get(id.index()).copied()
    }

    /// The interned cell id at attribute `id` (panics when out of range).
    pub fn id_at(&self, id: AttrId) -> ValueId {
        self.cells[id.index()]
    }

    /// Sets the value at attribute `id`. Returns `false` when out of range.
    pub fn set(&mut self, id: AttrId, v: Value) -> bool {
        self.set_id(id, ValueId::from_value(v))
    }

    /// Sets the interned cell at attribute `id`. Returns `false` when out of
    /// range.
    pub fn set_id(&mut self, id: AttrId, v: ValueId) -> bool {
        match self.cells.get_mut(id.index()) {
            Some(slot) => {
                *slot = v;
                true
            }
            None => false,
        }
    }

    /// Projects the tuple onto the given attributes (the paper's `t[X]`),
    /// preserving the order of `ids`, as owned values.
    pub fn project(&self, ids: &[AttrId]) -> Vec<Value> {
        ids.iter()
            .map(|id| self.cells[id.index()].resolve().clone())
            .collect()
    }

    /// Interned projection: the hot-path variant of [`Tuple::project`]. The
    /// result is directly usable as a hash key (`u32`s, no cloning).
    pub fn project_ids(&self, ids: &[AttrId]) -> Vec<ValueId> {
        ids.iter().map(|id| self.cells[id.index()]).collect()
    }

    /// Borrowing variant of [`Tuple::project`]: no cloning, returns
    /// interner-resolved references.
    pub fn project_ref(&self, ids: &[AttrId]) -> Vec<&'static Value> {
        ids.iter()
            .map(|id| self.cells[id.index()].resolve())
            .collect()
    }

    /// Returns `true` iff the projections of `self` and `other` onto `ids`
    /// are equal field-by-field (the paper's `t1[X] = t2[X]`). Interned:
    /// each field check is one `u32` compare.
    pub fn agree_on(&self, other: &Tuple, ids: &[AttrId]) -> bool {
        ids.iter()
            .all(|id| self.cells.get(id.index()) == other.cells.get(id.index()))
    }

    /// Iterates over `(AttrId, &Value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &'static Value)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (AttrId(i), c.resolve()))
    }
}

impl Index<AttrId> for Tuple {
    type Output = Value;

    fn index(&self, id: AttrId) -> &Value {
        self.cells[id.index()].resolve()
    }
}

impl PartialOrd for Tuple {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    /// Orders by the resolved [`Value`]s, not by dictionary ids: id order is
    /// first-intern order and would not be deterministic across runs.
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self.cells.iter().map(|c| c.resolve());
        let rhs = other.cells.iter().map(|c| c.resolve());
        lhs.cmp(rhs)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl FromIterator<ValueId> for Tuple {
    fn from_iter<T: IntoIterator<Item = ValueId>>(iter: T) -> Self {
        Tuple::from_ids(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[&str]) -> Tuple {
        Tuple::new(vals.iter().map(|s| Value::from(*s)).collect())
    }

    #[test]
    fn projection_preserves_order() {
        let tup = t(&["01", "908", "1111111"]);
        let proj = tup.project(&[AttrId(2), AttrId(0)]);
        assert_eq!(proj, vec![Value::from("1111111"), Value::from("01")]);
    }

    #[test]
    fn agree_on_subset_of_attributes() {
        let a = t(&["01", "908", "NYC"]);
        let b = t(&["01", "908", "MH"]);
        assert!(a.agree_on(&b, &[AttrId(0), AttrId(1)]));
        assert!(!a.agree_on(&b, &[AttrId(0), AttrId(2)]));
        assert!(a.agree_on(&b, &[]));
    }

    #[test]
    fn set_and_get() {
        let mut tup = Tuple::nulls(3);
        assert!(tup.set(AttrId(1), Value::from("x")));
        assert_eq!(tup.get(AttrId(1)), Some(&Value::from("x")));
        assert_eq!(tup.get(AttrId(0)), Some(&Value::Null));
        assert!(!tup.set(AttrId(9), Value::from("y")));
        assert!(tup.get(AttrId(9)).is_none());
    }

    #[test]
    fn index_operator_and_display() {
        let tup = t(&["a", "b"]);
        assert_eq!(tup[AttrId(1)], Value::from("b"));
        assert_eq!(tup.to_string(), "(a, b)");
    }

    #[test]
    fn agree_on_out_of_range_is_false_unless_both_missing() {
        let a = t(&["x"]);
        let b = t(&["x"]);
        // Both out of range -> both None -> equal; that's fine, callers never
        // pass out-of-range ids for well-formed schemas.
        assert!(a.agree_on(&b, &[AttrId(5)]));
    }

    #[test]
    fn from_iterator_and_into_values() {
        let tup: Tuple = vec![Value::Int(1), Value::Int(2)].into_iter().collect();
        assert_eq!(tup.arity(), 2);
        assert_eq!(tup.into_values(), vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn project_ref_matches_project() {
        let tup = t(&["p", "q", "r"]);
        let ids = [AttrId(1), AttrId(2)];
        let owned = tup.project(&ids);
        let borrowed: Vec<Value> = tup.project_ref(&ids).into_iter().cloned().collect();
        assert_eq!(owned, borrowed);
    }

    #[test]
    fn interned_projection_agrees_with_value_projection() {
        let tup = t(&["p", "q", "r"]);
        let ids = [AttrId(0), AttrId(2)];
        let by_id: Vec<Value> = tup
            .project_ids(&ids)
            .into_iter()
            .map(|c| c.resolve().clone())
            .collect();
        assert_eq!(by_id, tup.project(&ids));
    }

    #[test]
    fn equality_and_hash_are_by_value() {
        use std::collections::HashSet;
        let a = t(&["x", "y"]);
        let b = Tuple::new(vec![Value::from("x"), Value::from("y")]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn ordering_is_by_resolved_values() {
        // Intern "zz" before "aa" so dictionary ids and value order disagree.
        let z = t(&["zz-ordering-test"]);
        let a = t(&["aa-ordering-test"]);
        assert!(
            a < z,
            "Tuple order must follow Value order, not intern order"
        );
    }
}
