//! Lightweight per-snapshot data statistics for the detection planner.
//!
//! The adaptive planner in `cfd-detect` chooses a detection strategy per CFD
//! from two data-side inputs: how many **distinct values** each column holds
//! (pattern-constant selectivity) and how many **groups** a `GROUP BY X`
//! over an LHS attribute set produces (per-group vs per-row work split).
//! Both must be much cheaper than detection itself, so [`RelationStats`]
//! computes them lazily, caches every answer, and switches from exact
//! counting to a KMV (k-minimum-values) sketch past a row threshold:
//!
//! * **small snapshots** (≤ [`EXACT_ROWS`] rows) are counted exactly with a
//!   hash set — the snapshot is tiny, so the count costs less than the plan
//!   decision it informs;
//! * **large snapshots** keep the `k` smallest distinct 64-bit hashes seen
//!   while streaming the column (or the composite key) once; with `kth` the
//!   largest retained hash, the classic KMV estimator
//!   `(k − 1) / (kth / 2^64)` approximates the distinct count within a few
//!   percent at `k = 256`, reading each cell exactly once and allocating
//!   nothing per row.
//!
//! Everything operates on interned [`ValueId`]s: hashing a cell is hashing
//! one `u32`, and because the interner is injective, id equality is value
//! equality — exact counts are truly exact. All estimates are deterministic
//! (fixed FNV-1a hashing, no `RandomState`), so a planner re-run over the
//! same snapshot reproduces the same plan.
//!
//! Stats are bound to one snapshot, and that binding is enforced at
//! **runtime**: every accessor keys the cache by the relation's row count
//! and discards all cached answers when the offered relation's count
//! differs — so a caller that misses an invalidation gets fresh (correct)
//! statistics instead of silently planning from a superseded instance.
//! This replaced a debug-only assertion: release builds (the only builds
//! that serve traffic) were previously unprotected. The row count cannot
//! distinguish two *different* same-sized instances, so callers that swap
//! content without changing the size (the `Session` facade invalidates on
//! every applied batch, covering this) must still drop the cache
//! explicitly.

use crate::interner::ValueId;
use crate::relation::Relation;
use crate::schema::AttrId;
use std::collections::{HashMap, HashSet};

/// Snapshots up to this many rows are counted exactly; larger ones are
/// sketched.
pub const EXACT_ROWS: usize = 16_384;

/// Sketch size: the number of minimum hashes a [`NdvSketch`] retains.
/// Standard error of the KMV estimator is ≈ `1/√(k−2)` ≈ 6% at 256.
pub const SKETCH_K: usize = 256;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over the little-endian bytes of one interned cell, continuing a
/// running hash — the same construction the sharded detector partitions
/// with, fixed offset and prime, reproducible across runs and platforms.
#[inline]
fn fnv1a_cell(mut h: u64, id: ValueId) -> u64 {
    for byte in id.raw().to_le_bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A KMV (k-minimum-values) distinct-count sketch: retains the `k` smallest
/// **distinct** hashes observed and estimates the number of distinct inputs
/// from how densely they pack the low end of the hash space.
#[derive(Debug, Clone)]
pub struct NdvSketch {
    k: usize,
    /// Sorted ascending, distinct, at most `k` entries.
    mins: Vec<u64>,
}

impl NdvSketch {
    /// An empty sketch retaining the `k` smallest distinct hashes
    /// (`k ≥ 2`; estimates degrade below ~16).
    pub fn new(k: usize) -> Self {
        let k = k.max(2);
        NdvSketch {
            k,
            mins: Vec::with_capacity(k),
        }
    }

    /// Feeds one observation hash.
    pub fn observe(&mut self, h: u64) {
        match self.mins.binary_search(&h) {
            Ok(_) => {} // already retained
            Err(pos) => {
                if self.mins.len() < self.k {
                    self.mins.insert(pos, h);
                } else if pos < self.k {
                    // Smaller than the current kth minimum: displace it.
                    self.mins.pop();
                    self.mins.insert(pos, h);
                }
            }
        }
    }

    /// The estimated distinct count. Exact while fewer than `k` distinct
    /// hashes have been seen.
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64;
        }
        // wslint: allow(panic_path, "guarded by the mins.len() < k early return above; k >= 2 by construction")
        let kth = *self.mins.last().expect("k >= 2 entries");
        // (k − 1) / fraction-of-hash-space covered by the k minima.
        let fraction = (kth as f64 + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / fraction
    }

    /// Whether the sketch still holds every distinct hash it has seen
    /// (estimate is exact).
    pub fn is_exact(&self) -> bool {
        self.mins.len() < self.k
    }
}

/// Distinct-value statistics of one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Rows of the snapshot the count was taken over.
    pub rows: usize,
    /// (Estimated) number of distinct values in the column.
    pub ndv: f64,
    /// `true` when `ndv` is an exact count rather than a sketch estimate.
    pub exact: bool,
}

/// Group-cardinality statistics of one attribute set (the `GROUP BY X` the
/// `QV` detection query performs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupStats {
    /// Rows of the snapshot the count was taken over.
    pub rows: usize,
    /// (Estimated) number of distinct composite keys.
    pub keys: f64,
    /// `true` when `keys` is an exact count rather than a sketch estimate.
    pub exact: bool,
}

impl GroupStats {
    /// Mean rows per group — the quantity that decides whether per-group
    /// work (pattern matching, index iteration) amortizes.
    pub fn mean_group_size(&self) -> f64 {
        if self.keys > 0.0 {
            self.rows as f64 / self.keys
        } else {
            0.0
        }
    }
}

/// Lazily-computed, cached statistics over **one** relation snapshot.
///
/// Every accessor takes the relation again because the stats never hold a
/// borrow (the `Session` owns both and hands them out independently); the
/// row count recorded at construction guards against mixing snapshots.
#[derive(Debug, Clone)]
pub struct RelationStats {
    rows: usize,
    columns: HashMap<AttrId, ColumnStats>,
    groups: HashMap<Vec<AttrId>, GroupStats>,
}

impl RelationStats {
    /// Empty cache bound to `rel`'s current row count.
    pub fn new(rel: &Relation) -> Self {
        RelationStats {
            rows: rel.len(),
            columns: HashMap::new(),
            groups: HashMap::new(),
        }
    }

    /// Rows of the snapshot these stats describe.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The runtime staleness guard: when the offered relation's row count
    /// differs from the one the cache is keyed by, every cached answer
    /// describes a superseded instance — drop them all and re-key. A real
    /// check (not a `debug_assert`) because stale stats in a release build
    /// would silently mis-plan detection.
    fn rebind_if_stale(&mut self, rel: &Relation) {
        if rel.len() != self.rows {
            *self = RelationStats::new(rel);
        }
    }

    /// Distinct-value statistics of one column (computed on first request,
    /// cached after).
    pub fn column_stats(&mut self, rel: &Relation, attr: AttrId) -> ColumnStats {
        self.rebind_if_stale(rel);
        if let Some(stats) = self.columns.get(&attr) {
            return *stats;
        }
        let col = rel.column(attr);
        let stats = if col.len() <= EXACT_ROWS {
            let distinct: HashSet<ValueId> = col.iter().copied().collect();
            ColumnStats {
                rows: col.len(),
                ndv: distinct.len() as f64,
                exact: true,
            }
        } else {
            let mut sketch = NdvSketch::new(SKETCH_K);
            for &id in col {
                sketch.observe(fnv1a_cell(FNV_OFFSET, id));
            }
            ColumnStats {
                rows: col.len(),
                ndv: sketch.estimate().min(col.len() as f64),
                exact: sketch.is_exact(),
            }
        };
        self.columns.insert(attr, stats);
        stats
    }

    /// Group-cardinality statistics of an attribute set — how many distinct
    /// composite keys a `GROUP BY attrs` produces (computed on first
    /// request, cached per attribute set).
    pub fn group_stats(&mut self, rel: &Relation, attrs: &[AttrId]) -> GroupStats {
        self.rebind_if_stale(rel);
        if let Some(stats) = self.groups.get(attrs) {
            return *stats;
        }
        let stats = if attrs.len() == 1 {
            let c = self.column_stats(rel, attrs[0]);
            GroupStats {
                rows: c.rows,
                keys: c.ndv,
                exact: c.exact,
            }
        } else {
            let cols = rel.columns_for(attrs);
            if rel.len() <= EXACT_ROWS {
                let mut distinct: HashSet<Vec<ValueId>> = HashSet::new();
                let mut key = Vec::with_capacity(cols.len());
                for i in 0..rel.len() {
                    key.clear();
                    key.extend(cols.iter().map(|col| col[i]));
                    if !distinct.contains(&key) {
                        distinct.insert(key.clone());
                    }
                }
                GroupStats {
                    rows: rel.len(),
                    keys: distinct.len() as f64,
                    exact: true,
                }
            } else {
                let mut sketch = NdvSketch::new(SKETCH_K);
                for i in 0..rel.len() {
                    let mut h = FNV_OFFSET;
                    for col in &cols {
                        h = fnv1a_cell(h, col[i]);
                    }
                    sketch.observe(h);
                }
                GroupStats {
                    rows: rel.len(),
                    keys: sketch.estimate().min(rel.len() as f64),
                    exact: sketch.is_exact(),
                }
            }
        };
        self.groups.insert(attrs.to_vec(), stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    fn relation_with(rows: usize, distinct_a: usize, distinct_b: usize) -> Relation {
        let schema = Schema::builder("r").text("A").text("B").build();
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_values(vec![
                Value::from(format!("a{}", i % distinct_a)),
                Value::from(format!("b{}", i % distinct_b)),
            ])
            .unwrap();
        }
        rel
    }

    #[test]
    fn small_snapshots_are_counted_exactly() {
        let rel = relation_with(1_000, 17, 5);
        let mut stats = RelationStats::new(&rel);
        let a = stats.column_stats(&rel, AttrId(0));
        assert!(a.exact);
        assert_eq!(a.ndv, 17.0);
        let b = stats.column_stats(&rel, AttrId(1));
        assert_eq!(b.ndv, 5.0);
        // Composite keys: lcm(17, 5) = 85 distinct pairs.
        let g = stats.group_stats(&rel, &[AttrId(0), AttrId(1)]);
        assert!(g.exact);
        assert_eq!(g.keys, 85.0);
        assert!((g.mean_group_size() - 1000.0 / 85.0).abs() < 1e-9);
    }

    #[test]
    fn single_attr_group_stats_reuse_the_column_count() {
        let rel = relation_with(500, 9, 3);
        let mut stats = RelationStats::new(&rel);
        let g = stats.group_stats(&rel, &[AttrId(0)]);
        assert_eq!(g.keys, 9.0);
        assert_eq!(g.rows, 500);
    }

    #[test]
    fn sketch_estimates_large_columns_within_tolerance() {
        let rel = relation_with(40_000, 3_000, 2);
        let mut stats = RelationStats::new(&rel);
        let a = stats.column_stats(&rel, AttrId(0));
        assert!(!a.exact, "40k rows must go through the sketch");
        let err = (a.ndv - 3_000.0).abs() / 3_000.0;
        assert!(err < 0.15, "estimate {} off by {:.1}%", a.ndv, err * 100.0);
        // Few distinct values stay exact even on the sketch path: the sketch
        // never fills.
        let b = stats.column_stats(&rel, AttrId(1));
        assert!(b.exact);
        assert_eq!(b.ndv, 2.0);
    }

    #[test]
    fn sketch_estimates_composite_keys() {
        // 40k rows, lcm(2499, 2) = 4998 distinct pairs.
        let rel = relation_with(40_000, 2_499, 2);
        let mut stats = RelationStats::new(&rel);
        let g = stats.group_stats(&rel, &[AttrId(0), AttrId(1)]);
        assert!(!g.exact);
        let err = (g.keys - 4_998.0).abs() / 4_998.0;
        assert!(err < 0.15, "estimate {} off by {:.1}%", g.keys, err * 100.0);
    }

    #[test]
    fn estimates_are_deterministic_and_cached() {
        let rel = relation_with(20_000, 700, 11);
        let mut first = RelationStats::new(&rel);
        let mut second = RelationStats::new(&rel);
        assert_eq!(
            first.column_stats(&rel, AttrId(0)),
            second.column_stats(&rel, AttrId(0))
        );
        // Cached: asking again returns the identical answer.
        assert_eq!(
            first.column_stats(&rel, AttrId(0)),
            first.column_stats(&rel, AttrId(0))
        );
        assert_eq!(
            first.group_stats(&rel, &[AttrId(0), AttrId(1)]),
            second.group_stats(&rel, &[AttrId(0), AttrId(1)])
        );
    }

    #[test]
    fn estimates_never_exceed_the_row_count() {
        // Every row distinct: the estimator must clamp at n.
        let schema = Schema::builder("r").text("A").build();
        let mut rel = Relation::new(schema);
        for i in 0..20_000 {
            rel.push_values(vec![Value::from(format!("v{i}"))]).unwrap();
        }
        let mut stats = RelationStats::new(&rel);
        let a = stats.column_stats(&rel, AttrId(0));
        assert!(a.ndv <= 20_000.0);
        assert!(a.ndv > 15_000.0, "estimate {} far too low", a.ndv);
    }

    #[test]
    fn stale_reuse_rebinds_instead_of_serving_superseded_counts() {
        // Regression for the release-mode staleness hole: reusing a stats
        // cache against a grown instance used to be guarded only by a
        // debug_assert, so release builds silently planned from stale
        // counts. This test is meaningful in BOTH profiles — it asserts the
        // *answers*, not the assertion.
        let small = relation_with(100, 4, 2);
        let mut stats = RelationStats::new(&small);
        assert_eq!(stats.column_stats(&small, AttrId(0)).ndv, 4.0);
        assert_eq!(stats.group_stats(&small, &[AttrId(0), AttrId(1)]).keys, 4.0);

        // Same attribute, different (bigger) instance through the SAME
        // cache: the runtime key must invalidate and recount.
        let grown = relation_with(1_000, 17, 5);
        let a = stats.column_stats(&grown, AttrId(0));
        assert_eq!(a.rows, 1_000, "stats must describe the offered instance");
        assert_eq!(a.ndv, 17.0, "stale cached count must not survive");
        assert_eq!(stats.rows(), 1_000, "cache re-keys to the new snapshot");
        let g = stats.group_stats(&grown, &[AttrId(0), AttrId(1)]);
        assert_eq!(g.keys, 85.0);

        // Shrinking works too (deletion-heavy batches).
        let shrunk = relation_with(50, 3, 3);
        assert_eq!(stats.column_stats(&shrunk, AttrId(0)).ndv, 3.0);
        assert_eq!(stats.rows(), 50);
    }

    #[test]
    fn sketch_handles_duplicate_hashes() {
        let mut sketch = NdvSketch::new(8);
        for h in [10, 10, 7, 7, 3, 99, 3] {
            sketch.observe(h);
        }
        assert!(sketch.is_exact());
        assert_eq!(sketch.estimate(), 4.0);
    }
}
