//! Per-row tuple weights — the `w(t)` of the cost-based repair framework.
//!
//! Bohannon et al. (SIGMOD 2005), whose framework the paper's Section 6
//! builds on, price a repair as `Σ w(t) · dist(v, v')` over modified cells:
//! tuples with high confidence (provenance, curation) get large weights and
//! are expensive to touch, dubious tuples are cheap. This sidecar keeps those
//! weights *next to* a [`Relation`](crate::Relation) without widening the
//! columnar store: a dense `Vec<f64>` prefix of explicit overrides plus a
//! default weight for every row beyond it. The default instance weighs every
//! row `1.0`, which degrades the weighted cost model to plain edit counting.

use std::fmt;

/// A per-row weight sidecar: explicit overrides for a prefix of rows, a
/// shared default for the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleWeights {
    overrides: Vec<f64>,
    default_weight: f64,
}

impl Default for TupleWeights {
    fn default() -> Self {
        TupleWeights::uniform(1.0)
    }
}

impl TupleWeights {
    /// Every row weighs `w`.
    pub fn uniform(w: f64) -> Self {
        TupleWeights {
            overrides: Vec::new(),
            default_weight: w,
        }
    }

    /// Explicit weights for rows `0..weights.len()`; rows beyond weigh 1.0.
    pub fn from_vec(weights: Vec<f64>) -> Self {
        TupleWeights {
            overrides: weights,
            default_weight: 1.0,
        }
    }

    /// The weight of `row`: its override if set, the default otherwise.
    pub fn get(&self, row: usize) -> f64 {
        self.overrides
            .get(row)
            .copied()
            .unwrap_or(self.default_weight)
    }

    /// Sets the weight of one row, padding the override prefix with the
    /// default weight if needed.
    pub fn set(&mut self, row: usize, w: f64) {
        if self.overrides.len() <= row {
            self.overrides.resize(row + 1, self.default_weight);
        }
        self.overrides[row] = w;
    }

    /// The weight rows without an explicit override receive.
    pub fn default_weight(&self) -> f64 {
        self.default_weight
    }

    /// Number of rows with an explicit override.
    pub fn override_len(&self) -> usize {
        self.overrides.len()
    }
}

impl fmt::Display for TupleWeights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weights({} override(s), default {})",
            self.overrides.len(),
            self.default_weight
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_uniform_one() {
        let w = TupleWeights::default();
        assert_eq!(w.get(0), 1.0);
        assert_eq!(w.get(123_456), 1.0);
        assert_eq!(w.override_len(), 0);
    }

    #[test]
    fn from_vec_overrides_a_prefix() {
        let w = TupleWeights::from_vec(vec![2.0, 0.5]);
        assert_eq!(w.get(0), 2.0);
        assert_eq!(w.get(1), 0.5);
        assert_eq!(w.get(2), 1.0, "rows beyond the prefix use the default");
    }

    #[test]
    fn set_pads_with_the_default() {
        let mut w = TupleWeights::uniform(3.0);
        w.set(2, 9.0);
        assert_eq!(w.get(0), 3.0);
        assert_eq!(w.get(1), 3.0);
        assert_eq!(w.get(2), 9.0);
        assert_eq!(w.get(3), 3.0);
        assert_eq!(w.override_len(), 3);
    }

    #[test]
    fn display_summarizes() {
        let w = TupleWeights::from_vec(vec![2.0]);
        assert_eq!(w.to_string(), "weights(1 override(s), default 1)");
    }
}
