//! Hash indexes over relation instances.
//!
//! The paper observes (Section 5, "Scalability in NUMCONSTs") that pattern
//! variables restrict index use while joining the relation with the tableau.
//! Our SQL executor mirrors that behaviour: an [`Index`] maps the projection
//! of a row onto a fixed attribute list to the list of row indices with that
//! projection, and is only usable for equality predicates on *constants*.
//!
//! Keys are stored as interned [`ValueId`]s, so building the index hashes
//! `u32`s rather than strings, and a probe whose value has never been
//! interned (hence cannot occur in any relation) short-circuits to "empty".

use crate::interner::ValueId;
use crate::relation::Relation;
use crate::row::{project_attrs, project_cols};
use crate::schema::AttrId;
use crate::value::Value;
use std::collections::HashMap;

/// A hash index on a fixed list of attributes of one relation instance.
#[derive(Debug, Clone)]
pub struct Index {
    attrs: Vec<AttrId>,
    map: HashMap<Vec<ValueId>, Vec<usize>>,
}

impl Index {
    /// Builds the index by a single column-wise scan of `rel`: only the
    /// indexed columns are touched, one contiguous slice each.
    pub fn build(rel: &Relation, attrs: &[AttrId]) -> Self {
        let cols = rel.columns_for(attrs);
        let mut map: HashMap<Vec<ValueId>, Vec<usize>> = HashMap::new();
        for i in 0..rel.len() {
            map.entry(project_cols(&cols, i)).or_default().push(i);
        }
        Index {
            attrs: attrs.to_vec(),
            map,
        }
    }

    /// Registers `row` (identified by its slot number) under the key obtained
    /// by projecting the schema-ordered `cells` onto this index's attributes.
    /// Used by the incremental detection engine to keep per-CFD indexes in
    /// sync with inserted tuples without rebuilding. `cells` is the row's
    /// full cell vector ([`crate::Tuple::ids`] or [`crate::RowRef::to_ids`]).
    pub fn insert_row(&mut self, row: usize, cells: &[ValueId]) {
        self.map
            .entry(project_attrs(cells, &self.attrs))
            .or_default()
            .push(row);
    }

    /// Unregisters `row` from the key obtained by projecting the
    /// schema-ordered `cells` onto this index's attributes, dropping the key
    /// when its posting list empties. Returns `false` if the row was not
    /// present under that key.
    ///
    /// `cells` must be the same cells the row was inserted with: the index
    /// stores no back-pointers, so the caller supplies the key material.
    pub fn remove_row(&mut self, row: usize, cells: &[ValueId]) -> bool {
        let key = project_attrs(cells, &self.attrs);
        let Some(rows) = self.map.get_mut(&key) else {
            return false;
        };
        let Some(pos) = rows.iter().position(|&r| r == row) else {
            return false;
        };
        rows.remove(pos);
        if rows.is_empty() {
            self.map.remove(&key);
        }
        true
    }

    /// The attributes this index covers, in key order.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Row indices whose projection equals the interned `key` (empty slice
    /// when absent). This is the hot probe path.
    pub fn lookup_ids(&self, key: &[ValueId]) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Row indices whose projection equals `key` (empty slice when absent).
    /// A key value that was never interned cannot match any row.
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        let mut ids = Vec::with_capacity(key.len());
        for v in key {
            match ValueId::get(v) {
                Some(id) => ids.push(id),
                None => return &[],
            }
        }
        self.lookup_ids(&ids)
    }

    /// Returns `true` iff this index can serve an equality probe on exactly
    /// the given attributes (order-insensitive).
    pub fn covers(&self, attrs: &[AttrId]) -> bool {
        if attrs.len() != self.attrs.len() {
            return false;
        }
        let mut a: Vec<AttrId> = attrs.to_vec();
        let mut b: Vec<AttrId> = self.attrs.clone();
        a.sort();
        b.sort();
        a == b
    }

    /// Reorders `key_values` given in the order of `attrs` into this index's
    /// key order, returning `None` if the attribute sets differ.
    pub fn reorder_key(&self, attrs: &[AttrId], key_values: &[Value]) -> Option<Vec<Value>> {
        if attrs.len() != self.attrs.len() || attrs.len() != key_values.len() {
            return None;
        }
        let mut key = Vec::with_capacity(self.attrs.len());
        for want in &self.attrs {
            let pos = attrs.iter().position(|a| a == want)?;
            key.push(key_values[pos].clone());
        }
        Some(key)
    }

    /// Interned variant of [`Index::reorder_key`].
    pub fn reorder_key_ids(&self, attrs: &[AttrId], key: &[ValueId]) -> Option<Vec<ValueId>> {
        if attrs.len() != self.attrs.len() || attrs.len() != key.len() {
            return None;
        }
        let mut out = Vec::with_capacity(self.attrs.len());
        for want in &self.attrs {
            let pos = attrs.iter().position(|a| a == want)?;
            out.push(key[pos]);
        }
        Some(out)
    }

    /// Iterates all `(key, row_indices)` pairs (interned keys).
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<ValueId>, &Vec<usize>)> + '_ {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::tuple::Tuple;

    fn rel() -> Relation {
        let schema = Schema::builder("r").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema);
        for (a, b, c) in [("1", "x", "p"), ("1", "y", "q"), ("2", "x", "r")] {
            rel.push(Tuple::new(vec![a.into(), b.into(), c.into()]))
                .unwrap();
        }
        rel
    }

    #[test]
    fn lookup_returns_matching_rows() {
        let r = rel();
        let idx = r.build_index(&[AttrId(0)]);
        assert_eq!(idx.lookup(&[Value::from("1")]), &[0, 1]);
        assert_eq!(idx.lookup(&[Value::from("2")]), &[2]);
        assert!(idx.lookup(&[Value::from("3")]).is_empty());
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn lookup_of_never_interned_value_is_empty() {
        let r = rel();
        let idx = r.build_index(&[AttrId(0)]);
        assert!(idx
            .lookup(&[Value::from("__never_interned_index_probe__")])
            .is_empty());
    }

    #[test]
    fn interned_lookup_agrees_with_value_lookup() {
        let r = rel();
        let idx = r.build_index(&[AttrId(0), AttrId(1)]);
        let key = [Value::from("1"), Value::from("y")];
        let ids: Vec<ValueId> = key.iter().map(ValueId::of).collect();
        assert_eq!(idx.lookup(&key), idx.lookup_ids(&ids));
    }

    #[test]
    fn composite_key_lookup() {
        let r = rel();
        let idx = r.build_index(&[AttrId(0), AttrId(1)]);
        assert_eq!(idx.lookup(&[Value::from("1"), Value::from("y")]), &[1]);
        assert!(idx.lookup(&[Value::from("2"), Value::from("y")]).is_empty());
    }

    #[test]
    fn covers_is_order_insensitive() {
        let r = rel();
        let idx = r.build_index(&[AttrId(0), AttrId(2)]);
        assert!(idx.covers(&[AttrId(2), AttrId(0)]));
        assert!(!idx.covers(&[AttrId(0)]));
        assert!(!idx.covers(&[AttrId(0), AttrId(1)]));
    }

    #[test]
    fn reorder_key_maps_probe_order_to_index_order() {
        let r = rel();
        let idx = r.build_index(&[AttrId(0), AttrId(1)]);
        let key = idx
            .reorder_key(
                &[AttrId(1), AttrId(0)],
                &[Value::from("x"), Value::from("2")],
            )
            .unwrap();
        assert_eq!(key, vec![Value::from("2"), Value::from("x")]);
        assert_eq!(idx.lookup(&key), &[2]);
        assert!(idx.reorder_key(&[AttrId(1)], &[Value::from("x")]).is_none());
    }

    #[test]
    fn incremental_maintenance_matches_a_rebuild() {
        let r = rel();
        let attrs = [AttrId(0)];
        let rebuilt = r.build_index(&attrs);
        let mut maintained = Relation::new(r.schema().clone()).build_index(&attrs);
        for (i, t) in r.iter() {
            maintained.insert_row(i, &t.to_ids());
        }
        for (key, rows) in rebuilt.iter() {
            assert_eq!(maintained.lookup_ids(key), rows.as_slice());
        }
        assert_eq!(maintained.distinct_keys(), rebuilt.distinct_keys());

        // Removing row 0 keeps row 1 reachable under the shared key.
        assert!(maintained.remove_row(0, &r.row(0).unwrap().to_ids()));
        assert_eq!(maintained.lookup(&[Value::from("1")]), &[1]);
        // Removing the last row of a key drops the key entirely.
        assert!(maintained.remove_row(2, &r.row(2).unwrap().to_ids()));
        assert!(maintained.lookup(&[Value::from("2")]).is_empty());
        assert_eq!(maintained.distinct_keys(), 1);
        // Double-remove and unknown rows report false.
        assert!(!maintained.remove_row(2, &r.row(2).unwrap().to_ids()));
        assert!(!maintained.remove_row(7, &r.row(0).unwrap().to_ids()));
    }

    #[test]
    fn iter_visits_all_groups() {
        let r = rel();
        let idx = r.build_index(&[AttrId(1)]);
        let total: usize = idx.iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, 3);
    }
}
