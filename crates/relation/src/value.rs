//! Atomic attribute values.
//!
//! The paper's data model only needs equality over attribute values (pattern
//! matching, FD/CFD semantics, GROUP BY). We additionally provide a total
//! order so values can be sorted and used as B-tree keys, and integers so the
//! tax-records workload (salary brackets, rates) can be expressed naturally.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

/// An atomic value stored in a relation cell.
///
/// `Null` is included for completeness (the SQL layer needs a placeholder for
/// missing cells) but CFD semantics in this workspace treat `Null` as an
/// ordinary constant that is only equal to itself, which matches how the
/// paper's detection queries behave on non-null data. The interner
/// ([`crate::interner`]) preserves this: `Null` has a dedicated dictionary id
/// equal only to itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// The SQL NULL / missing value.
    Null,
    /// Boolean constant. Booleans give attributes an intrinsically finite
    /// domain, which matters for the consistency analysis of Section 3.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Interned-free UTF-8 string.
    Str(String),
}

impl Value {
    /// Returns `true` iff the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an integer when it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a boolean when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders the value the way the SQL layer prints literals.
    pub fn render_sql(&self) -> Cow<'static, str> {
        match self {
            Value::Null => Cow::Borrowed("NULL"),
            Value::Bool(true) => Cow::Borrowed("TRUE"),
            Value::Bool(false) => Cow::Borrowed("FALSE"),
            Value::Int(i) => Cow::Owned(i.to_string()),
            Value::Str(s) => Cow::Owned(format!("'{}'", s.replace('\'', "''"))),
        }
    }

    /// A small integer tag giving each variant a rank; used for the cross-type
    /// total order below (NULL < Bool < Int < Str).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_is_by_value() {
        assert_eq!(Value::from("NYC"), Value::Str("NYC".to_owned()));
        assert_ne!(Value::from("NYC"), Value::from("MH"));
        assert_eq!(Value::from(42), Value::Int(42));
        assert_ne!(Value::Int(42), Value::Str("42".into()));
    }

    #[test]
    fn null_equals_only_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::Str(String::new()));
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::from("a") < Value::from("b"));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn ordering_across_types_is_total() {
        let mut vals = [
            Value::from("x"),
            Value::Int(7),
            Value::Null,
            Value::Bool(true),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[3], Value::from("x"));
    }

    #[test]
    fn render_sql_escapes_quotes() {
        assert_eq!(Value::from("O'Hare").render_sql(), "'O''Hare'");
        assert_eq!(Value::Int(5).render_sql(), "5");
        assert_eq!(Value::Null.render_sql(), "NULL");
        assert_eq!(Value::Bool(true).render_sql(), "TRUE");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::from("hi").as_str(), Some("hi"));
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Int(3).as_str().is_none());
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::from("EDI").to_string(), "EDI");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Bool(false).to_string(), "false");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
