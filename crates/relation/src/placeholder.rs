//! Typed placeholder values for repair-time LHS edits.
//!
//! The repair algorithm of Section 6 sometimes has to overwrite an attribute
//! on the *left-hand side* of an embedded FD with a fresh value, taking the
//! tuple out of a pattern's scope. Two properties make such a value a usable
//! placeholder:
//!
//! 1. **Freshness** — it must differ from every value occurring in any
//!    interned relation or pattern tableau, or the "fresh" value could land
//!    the tuple in *another* group and create new violations. Minting goes
//!    through the global interner: a candidate is only accepted when
//!    [`ValueId::get`] reports it has never been interned, which proves it
//!    cannot occur in any interned data loaded so far. Data that merely
//!    *looks* like a placeholder (e.g. a real string starting with
//!    `__unknown_`) was interned before the mint, so the mint skips past it —
//!    no string prefix is ever trusted.
//! 2. **Type fidelity** — the placeholder should respect the column's
//!    declared [`AttrType`], so an `INTEGER` column never receives a stray
//!    `Value::Str`. Text columns receive fresh strings, integer columns fresh
//!    negative sentinels counting up from `i64::MIN`. Boolean columns have no
//!    fresh value at all (the domain is finite), so they fall back to a text
//!    placeholder — the one documented, explicit bypass; callers that prefer
//!    untyped placeholders everywhere can request [`AttrType::Text`]
//!    directly.
//!
//! Placeholder-ness is tracked in a registry of minted [`ValueId`]s, **not**
//! by inspecting the value: [`is_placeholder`] is an id-set membership test.
//! Real data that happens to share a placeholder's spelling and was interned
//! **before** the mint is therefore never misclassified — the mint skips
//! every already-interned spelling, so such data keeps its own,
//! never-registered id. The one residual ambiguity is inherent to a
//! value-identity registry: data first interned **after** a mint that
//! exactly spells an existing placeholder dedups to the placeholder's id and
//! is indistinguishable from it (the spellings — `__unknown_N`,
//! `i64::MIN + N` — are chosen to make that practically impossible for
//! organic data).

use crate::domain::AttrType;
use crate::interner::ValueId;
use crate::value::Value;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, PoisonError, RwLock};

/// Global mint counter: every candidate uses a number never tried before, so
/// minting is lock-free until the final registry insert.
static COUNTER: AtomicU64 = AtomicU64::new(0);

/// The registry is append-only (ids are inserted, never removed), so it is
/// valid after any panic; lock poisoning is recovered with
/// [`PoisonError::into_inner`] — one panicked thread must never wedge every
/// other tenant of the process (same contract as the interner).
fn registry() -> &'static RwLock<HashSet<ValueId>> {
    static REGISTRY: OnceLock<RwLock<HashSet<ValueId>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(HashSet::new()))
}

/// The deterministic spelling of the `n`-th placeholder candidate for a
/// column of primitive type `ty`: fresh strings for text (and boolean, see
/// the module docs for the bypass), `i64::MIN`-anchored sentinels for
/// integers. Callers that need reproducible placeholder sequences (the
/// repair engines number candidates per run) enumerate these and decide
/// per candidate whether it is usable against *their* data.
pub fn candidate(ty: AttrType, n: u64) -> Value {
    match ty {
        AttrType::Text | AttrType::Boolean => Value::Str(format!("__unknown_{n}")),
        AttrType::Integer => Value::Int(i64::MIN.wrapping_add(n as i64)),
    }
}

/// Interns `v` and registers its id as a placeholder. The caller guarantees
/// freshness with respect to its data (the usual proof: [`ValueId::get`]
/// returned `None` just before the call).
pub fn register(v: Value) -> ValueId {
    let id = ValueId::from_value(v);
    registry()
        .write()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(id);
    id
}

/// Mints a globally fresh placeholder for a column of primitive type `ty`.
///
/// The returned id denotes a value that had never been interned before the
/// call — hence occurs in no interned relation — and is registered as a
/// placeholder for [`is_placeholder`]. The global counter makes successive
/// mints distinct but **not reproducible across repeated runs in one
/// process**; reproducible consumers use [`candidate`]/[`register`] with
/// their own numbering instead.
pub fn mint(ty: AttrType) -> ValueId {
    loop {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let cand = candidate(ty, n);
        if ValueId::get(&cand).is_some() {
            // Already interned: the spelling exists in real data (or a
            // previous mint); skip it — freshness over recognizability.
            continue;
        }
        return register(cand);
    }
}

/// Whether `id` denotes a minted placeholder. Pure registry membership: a
/// real data value spelled like a placeholder but interned before the mint
/// is *not* one (see the module docs for the post-mint aliasing caveat).
pub fn is_placeholder(id: ValueId) -> bool {
    registry()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .contains(&id)
}

/// Value-typed form of [`is_placeholder`] for boundary code that holds a
/// resolved [`Value`]. A value that was never interned cannot be a
/// placeholder (placeholders are interned at mint time).
pub fn is_placeholder_value(v: &Value) -> bool {
    ValueId::get(v).is_some_and(is_placeholder)
}

/// Number of placeholders minted so far (diagnostics).
pub fn minted_count() -> usize {
    registry()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mint_is_fresh_and_registered() {
        let a = mint(AttrType::Text);
        let b = mint(AttrType::Text);
        assert_ne!(a, b, "every mint is fresh");
        assert!(is_placeholder(a));
        assert!(is_placeholder(b));
        assert!(is_placeholder_value(a.resolve()));
    }

    #[test]
    fn typed_mints_respect_the_column_type() {
        let t = mint(AttrType::Text);
        assert!(matches!(t.resolve(), Value::Str(_)));
        let i = mint(AttrType::Integer);
        assert!(matches!(i.resolve(), Value::Int(_)));
        // Boolean has no fresh value: documented bypass to text.
        let b = mint(AttrType::Boolean);
        assert!(matches!(b.resolve(), Value::Str(_)));
    }

    #[test]
    fn lookalike_data_is_not_a_placeholder() {
        // Real data that *spells* like a placeholder: interned before any
        // mint would pick that number, so the registry never contains it.
        let fake = Value::from("__unknown_999999999");
        let fake_id = ValueId::from_value(fake.clone());
        assert!(!is_placeholder(fake_id));
        assert!(!is_placeholder_value(&fake));
        // And minting skips every already-interned spelling.
        for _ in 0..4 {
            let m = mint(AttrType::Text);
            assert_ne!(m, fake_id);
        }
    }

    #[test]
    fn never_interned_values_are_not_placeholders() {
        assert!(!is_placeholder_value(&Value::from(
            "__placeholder_probe_never_interned__"
        )));
        assert!(!is_placeholder_value(&Value::Null));
    }

    #[test]
    fn minting_survives_a_panicked_thread_holding_the_registry() {
        // Same contract as the interner: the registry is append-only and
        // valid after a panic, so poisoning is recovered, never propagated.
        let before = mint(AttrType::Text);
        let panicked = std::thread::spawn(|| {
            let _guard = registry().write().unwrap_or_else(PoisonError::into_inner);
            panic!("deliberate panic while holding the placeholder registry");
        })
        .join();
        assert!(panicked.is_err(), "the thread must actually panic");
        assert!(is_placeholder(before), "pre-panic mints stay registered");
        let after = mint(AttrType::Integer);
        assert!(is_placeholder(after));
        assert_ne!(after, before);
        let from_thread = std::thread::spawn(|| mint(AttrType::Text))
            .join()
            .expect("minting on a new thread succeeds after poisoning");
        assert!(is_placeholder(from_thread));
    }

    #[test]
    fn minted_count_grows() {
        let before = minted_count();
        mint(AttrType::Integer);
        assert!(minted_count() > before);
    }
}
