//! Global value interning: the dictionary behind every relation cell.
//!
//! # Why interning
//!
//! Every hot path of the CFD pipeline — pattern matching, the `QC`/`QV`
//! detection joins, hash indexes, `GROUP BY` keys — ultimately reduces to
//! *equality* of attribute values. The seed implementation compared and
//! cloned [`Value::Str(String)`](crate::Value) everywhere, making a string
//! comparison (and often an allocation) out of every probe. Discovery-
//! oriented systems avoid this with dictionary encoding: each distinct value
//! is assigned a small integer once, and all further equality is an integer
//! compare.
//!
//! This module provides that dictionary. It is **global and append-only**:
//! interned values live for the lifetime of the process (they are leaked into
//! a stable arena), so a [`ValueId`] is meaningful across relations, pattern
//! tableaux, indexes and threads, and [`ValueId::resolve`] can hand out
//! `&'static Value` borrows without lifetime gymnastics.
//!
//! # Panic robustness
//!
//! Because the state is append-only, it is valid after *any* panic: every
//! insertion either fully registers a value (map entry + arena slot, under
//! one write guard) or does not happen. Lock poisoning is therefore
//! recovered with [`PoisonError::into_inner`] instead of propagating — a
//! thread that panicked *near* the interner (or even while holding the
//! guard) must never wedge every other thread of a multi-tenant process
//! into a panic cascade.
//!
//! # The equality contract
//!
//! The interner is *injective*: two [`ValueId`]s are equal **iff** the
//! [`Value`]s they denote are equal (`ValueId` equality ⇔ `Value` equality).
//! In particular the CFD semantics for `NULL` are preserved exactly:
//!
//! * [`Value::Null`] interns to the fixed id [`ValueId::NULL`];
//! * `NULL = NULL` holds (id 0 == id 0) and `NULL` equals **no other value**
//!   — matching how this workspace treats `Null` as an ordinary constant that
//!   is only equal to itself (see [`crate::value`]).
//!
//! `Value::Bool(false)` / `Value::Bool(true)` also get fixed ids
//! ([`ValueId::FALSE`] / [`ValueId::TRUE`]) so the SQL layer can evaluate
//! predicates entirely on ids.
//!
//! # What a `ValueId` is *not*
//!
//! Ids are assigned in first-intern order, so **`ValueId` ordering is not
//! `Value` ordering**. Code that needs the total order of
//! [`Value`] (sorted active domains, deterministic reports)
//! must resolve ids first. Similarly, ids must never be persisted: they are
//! only stable within one process.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock};

/// Dictionary id of an interned [`Value`]. Equality of ids is equivalent to
/// equality of the underlying values; comparison is a single `u32` compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// The id of [`Value::Null`]. `NULL` equals only itself, which the
    /// interner preserves by construction (one id per distinct value).
    pub const NULL: ValueId = ValueId(0);
    /// The id of `Value::Bool(false)`.
    pub const FALSE: ValueId = ValueId(1);
    /// The id of `Value::Bool(true)`.
    pub const TRUE: ValueId = ValueId(2);

    /// Interns `v`, returning its id. Inserts on first sight.
    pub fn of(v: &Value) -> ValueId {
        if v.is_null() {
            return ValueId::NULL;
        }
        if let Some(&id) = state()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get(v)
        {
            return ValueId(id);
        }
        ValueId::from_value(v.clone())
    }

    /// Interns an owned value without cloning it on first sight. This is the
    /// single insertion path; [`ValueId::of`] delegates here on a miss.
    pub fn from_value(v: Value) -> ValueId {
        if v.is_null() {
            return ValueId::NULL;
        }
        let lock = state();
        if let Some(&id) = lock
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get(&v)
        {
            return ValueId(id);
        }
        let mut st = lock.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = st.map.get(&v) {
            return ValueId(id);
        }
        let leaked: &'static Value = Box::leak(Box::new(v));
        let id = st.values.len() as u32;
        st.values.push(leaked);
        st.map.insert(leaked, id);
        ValueId(id)
    }

    /// Looks `v` up **without** inserting. `None` means the value has never
    /// been interned — and therefore cannot occur in any interned relation,
    /// which probe paths (index lookups) exploit to answer "no match" early.
    pub fn get(v: &Value) -> Option<ValueId> {
        if v.is_null() {
            return Some(ValueId::NULL);
        }
        state()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get(v)
            .copied()
            .map(ValueId)
    }

    /// The interned value this id denotes.
    pub fn resolve(self) -> &'static Value {
        state()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .values[self.0 as usize]
    }

    /// The raw dictionary index (diagnostics / tests only).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.resolve())
    }
}

impl From<&Value> for ValueId {
    fn from(v: &Value) -> Self {
        ValueId::of(v)
    }
}

impl From<Value> for ValueId {
    fn from(v: Value) -> Self {
        ValueId::from_value(v)
    }
}

struct InternerState {
    map: HashMap<&'static Value, u32>,
    values: Vec<&'static Value>,
}

fn state() -> &'static RwLock<InternerState> {
    static STATE: OnceLock<RwLock<InternerState>> = OnceLock::new();
    STATE.get_or_init(|| {
        // Seed the fixed-id values in the order of the ValueId constants.
        static NULL: Value = Value::Null;
        static FALSE: Value = Value::Bool(false);
        static TRUE: Value = Value::Bool(true);
        let seeded: [&'static Value; 3] = [&NULL, &FALSE, &TRUE];
        let mut map = HashMap::with_capacity(1024);
        let mut values = Vec::with_capacity(1024);
        for (i, v) in seeded.into_iter().enumerate() {
            map.insert(v, i as u32);
            values.push(v);
        }
        RwLock::new(InternerState { map, values })
    })
}

/// Number of distinct values interned so far (diagnostics).
pub fn interned_count() -> usize {
    state()
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .values
        .len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ids_for_null_and_booleans() {
        assert_eq!(ValueId::of(&Value::Null), ValueId::NULL);
        assert_eq!(ValueId::of(&Value::Bool(false)), ValueId::FALSE);
        assert_eq!(ValueId::of(&Value::Bool(true)), ValueId::TRUE);
        assert_eq!(ValueId::NULL.resolve(), &Value::Null);
        assert_eq!(ValueId::TRUE.resolve(), &Value::Bool(true));
    }

    #[test]
    fn intern_resolve_round_trip() {
        for v in [
            Value::from("NYC"),
            Value::from(""),
            Value::Int(42),
            Value::Int(-42),
            Value::Bool(true),
            Value::Null,
            Value::from("O'Hare"),
        ] {
            let id = ValueId::of(&v);
            assert_eq!(id.resolve(), &v, "intern→resolve must be the identity");
            assert_eq!(ValueId::from_value(v.clone()), id);
            assert_eq!(ValueId::get(&v), Some(id));
        }
    }

    #[test]
    fn id_equality_iff_value_equality() {
        let samples = [
            Value::from("a"),
            Value::from("b"),
            Value::from("42"),
            Value::Int(42),
            Value::Bool(true),
            Value::Null,
        ];
        for x in &samples {
            for y in &samples {
                assert_eq!(
                    ValueId::of(x) == ValueId::of(y),
                    x == y,
                    "id equality must coincide with value equality for {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn null_only_equals_null() {
        assert_eq!(ValueId::of(&Value::Null), ValueId::of(&Value::Null));
        assert_ne!(ValueId::of(&Value::Null), ValueId::of(&Value::Int(0)));
        assert_ne!(ValueId::of(&Value::Null), ValueId::of(&Value::from("")));
        assert_ne!(ValueId::of(&Value::Null), ValueId::of(&Value::from("NULL")));
    }

    #[test]
    fn get_does_not_insert() {
        // Note: the global count cannot be asserted here — parallel tests in
        // this process may intern values concurrently. Probe the value itself.
        let probe = Value::from("__interner_get_probe_never_used_elsewhere__");
        assert_eq!(ValueId::get(&probe), None);
        assert_eq!(ValueId::get(&probe), None, "a lookup miss must not insert");
        let id = ValueId::of(&probe);
        assert_eq!(ValueId::get(&probe), Some(id));
    }

    #[test]
    fn interning_survives_a_panicked_thread_holding_the_lock() {
        // A thread panics while holding the write guard: the lock is now
        // poisoned, but the append-only state is valid — every accessor must
        // recover and keep serving instead of cascading the panic. (The
        // interner is process-global, so this also proves recovery for every
        // other test sharing this binary.)
        let before = ValueId::of(&Value::from("poison-survivor-before"));
        let panicked = std::thread::spawn(|| {
            let _guard = state().write().unwrap_or_else(PoisonError::into_inner);
            panic!("deliberate panic while holding the interner lock");
        })
        .join();
        assert!(panicked.is_err(), "the thread must actually panic");
        // Reads, writes and lookups all still work across the poisoned lock.
        assert_eq!(ValueId::of(&Value::from("poison-survivor-before")), before);
        let after = ValueId::of(&Value::from("poison-survivor-after"));
        assert_ne!(after, before);
        assert_eq!(after.resolve(), &Value::from("poison-survivor-after"));
        assert_eq!(
            ValueId::get(&Value::from("poison-survivor-after")),
            Some(after)
        );
        assert!(interned_count() > 0);
        // And a *fresh* thread can intern too — the process is not wedged.
        let from_thread = std::thread::spawn(|| ValueId::of(&Value::from("poison-survivor-after")))
            .join()
            .expect("interning on a new thread succeeds after poisoning");
        assert_eq!(from_thread, after);
    }

    #[test]
    fn interning_is_idempotent_across_threads() {
        let ids: Vec<ValueId> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| ValueId::of(&Value::from("shared-value"))))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
