//! In-memory relation instances — the columnar storage layer.
//!
//! # Storage layout
//!
//! A [`Relation`] is stored **struct-of-arrays**: one `Vec<ValueId>` column
//! per attribute plus a live-row count (the explicit count also covers the
//! zero-arity edge case, where no column exists to derive it from). The CFD
//! detection queries (`QC`/`QV`, Section 4 of the paper) and incremental
//! maintenance only ever touch the attributes in `X ∪ Y` of each CFD, so a
//! columnar layout lets every scan walk just those few contiguous columns
//! instead of dragging all attributes of every row through cache — and pays
//! zero per-row heap allocations.
//!
//! Rows are read through copy-free [`RowRef`] views ([`Relation::row`],
//! [`Relation::iter`]) or, on the hottest paths, straight through
//! [`Relation::column`] slices. The owned [`Tuple`] remains the
//! *boundary* type: builders push tuples, batch edits carry tuples, and
//! [`RowRef::to_tuple`] materializes one on demand.
//!
//! # Determinism contract
//!
//! All mutators are deterministic and order-preserving: `push` appends,
//! [`Relation::retain_rows`] and [`Relation::gather_rows`] keep insertion
//! order, and no operation depends on hash-map iteration order. Detectors
//! rely on this — identical construction sequences yield cell-for-cell
//! identical relations (and therefore byte-identical violation reports).
//! Query processing proper lives in `cfd-sql`.

use crate::error::{RelationError, Result};
use crate::index::Index;
use crate::interner::ValueId;
use crate::row::{project_cols, RowRef};
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// An in-memory instance `I` of a relation schema `R`, stored column-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    /// One column per attribute, all of equal length.
    columns: Vec<Vec<ValueId>>,
    /// Live-row count (columns cannot express it at arity 0).
    rows: usize,
}

impl Relation {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Relation {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Creates an empty instance with pre-allocated per-column capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Vec::with_capacity(capacity))
            .collect();
        Relation {
            schema,
            columns,
            rows: 0,
        }
    }

    /// Creates an instance from existing rows, validating arity.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        let mut rel = Relation::with_capacity(schema, rows.len());
        for row in rows {
            rel.push(row)?;
        }
        Ok(rel)
    }

    /// The schema of the instance.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Consumes the instance, returning its schema and rows as owned tuples
    /// (the inverse of [`Relation::from_rows`]). This is a boundary
    /// operation: it materializes one [`Tuple`] per row.
    pub fn into_parts(self) -> (Schema, Vec<Tuple>) {
        let rows = self.to_tuples();
        (self.schema, rows)
    }

    /// Number of tuples (`SZ` in the paper's experiments).
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The column of attribute `id`: one interned cell per row, in row
    /// order. This is the tight-loop accessor every columnar scan builds on
    /// (panics when `id` is out of range — schemas are fixed, so callers
    /// always hold valid ids).
    pub fn column(&self, id: AttrId) -> &[ValueId] {
        &self.columns[id.index()]
    }

    /// The columns of the given attributes, in `ids` order — the usual
    /// prelude of a scan over `X ∪ Y`.
    pub fn columns_for(&self, ids: &[AttrId]) -> Vec<&[ValueId]> {
        ids.iter().map(|id| self.column(*id)).collect()
    }

    /// A copy-free view of the row at `idx`, if present.
    pub fn row(&self, idx: usize) -> Option<RowRef<'_>> {
        (idx < self.rows).then(|| RowRef::new(&self.columns, idx))
    }

    /// Iterates `(row_index, RowRef)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, RowRef<'_>)> + '_ {
        (0..self.rows).map(move |i| (i, RowRef::new(&self.columns, i)))
    }

    /// Materializes every row as an owned [`Tuple`] (boundary use: tests,
    /// serialization, the row-era reference paths).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.rows)
            .map(|i| RowRef::new(&self.columns, i).to_tuple())
            .collect()
    }

    /// Appends a tuple after checking its arity.
    ///
    /// Takes the tuple by value: pushing *consumes* the row conceptually
    /// (the columnar store keeps its ids), and the hundreds of call sites
    /// build their tuples in place.
    #[allow(clippy::needless_pass_by_value)]
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        self.push_ids(tuple.ids())
    }

    /// Appends a row given as schema-ordered cell ids, column-wise.
    pub fn push_ids(&mut self, cells: &[ValueId]) -> Result<()> {
        if cells.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: cells.len(),
            });
        }
        for (column, cell) in self.columns.iter_mut().zip(cells) {
            column.push(*cell);
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends a tuple built from raw values.
    pub fn push_values(&mut self, values: Vec<Value>) -> Result<()> {
        self.push(Tuple::new(values))
    }

    /// Appends a tuple after checking arity *and* every attribute domain.
    pub fn push_checked(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        for id in self.schema.attr_ids() {
            let attr = self.schema.attribute(id)?;
            let v = &tuple[id];
            if !attr.domain.contains(v) {
                return Err(RelationError::DomainViolation {
                    attribute: attr.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        self.push(tuple)
    }

    /// Inserts a tuple at row position `idx` (shifting later rows down),
    /// column-wise. `idx` may equal [`Relation::len`] (append).
    ///
    /// # Panics
    ///
    /// Panics when `idx > len()`, mirroring [`Vec::insert`] — a position past
    /// the end is a caller bug, not a recoverable condition (arity mismatches,
    /// by contrast, are reported as errors like every other mutator does).
    // By-value for the same reason as `push`: inserting consumes the row.
    #[allow(clippy::needless_pass_by_value)]
    pub fn insert_row(&mut self, idx: usize, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        assert!(idx <= self.rows, "insert_row index out of range");
        for (column, cell) in self.columns.iter_mut().zip(tuple.ids()) {
            column.insert(idx, *cell);
        }
        self.rows += 1;
        Ok(())
    }

    /// Removes the row at `idx` (shifting later rows up), column-wise,
    /// returning it as an owned tuple. `None` when out of range.
    pub fn remove_row(&mut self, idx: usize) -> Option<Tuple> {
        if idx >= self.rows {
            return None;
        }
        let cells: Vec<ValueId> = self.columns.iter_mut().map(|c| c.remove(idx)).collect();
        self.rows -= 1;
        Some(Tuple::from_ids(cells))
    }

    /// Overwrites one cell with an interned id. Returns `false` when the row
    /// or attribute is out of range. This is the in-place edit the repair
    /// algorithm uses (it replaces the row-store era `rows_mut()[i].set()`).
    pub fn set_id(&mut self, row: usize, attr: AttrId, v: ValueId) -> bool {
        if row >= self.rows {
            return false;
        }
        match self.columns.get_mut(attr.index()) {
            Some(column) => {
                column[row] = v;
                true
            }
            None => false,
        }
    }

    /// Overwrites one cell with a value (interning it). Returns `false` when
    /// the row or attribute is out of range.
    pub fn set_value(&mut self, row: usize, attr: AttrId, v: Value) -> bool {
        self.set_id(row, attr, ValueId::from_value(v))
    }

    /// Projects the whole instance onto `ids`, keeping duplicates. Runs
    /// column-wise and resolves ids only at the boundary.
    pub fn project(&self, ids: &[AttrId]) -> Vec<Vec<Value>> {
        let cols = self.columns_for(ids);
        (0..self.rows)
            .map(|i| cols.iter().map(|c| c[i].resolve().clone()).collect())
            .collect()
    }

    /// Groups row indices by their projection onto `ids`.
    ///
    /// This is the building block for the `QV` detection query's
    /// `GROUP BY t[X]` and for the equivalence classes used by repair.
    /// Routed through the id-based columnar path ([`Relation::group_by_ids`])
    /// — the interner is injective, so resolving the group keys at the
    /// boundary is a bijection and cannot merge or split groups.
    pub fn group_by(&self, ids: &[AttrId]) -> HashMap<Vec<Value>, Vec<usize>> {
        self.group_by_ids(ids)
            .into_iter()
            .map(|(key, rows)| {
                let resolved = key.iter().map(|c| c.resolve().clone()).collect();
                (resolved, rows)
            })
            .collect()
    }

    /// Interned variant of [`Relation::group_by`]: keys are dictionary ids,
    /// so grouping hashes `u32`s, touches only the projected columns and
    /// clones nothing.
    pub fn group_by_ids(&self, ids: &[AttrId]) -> HashMap<Vec<ValueId>, Vec<usize>> {
        let cols = self.columns_for(ids);
        let mut groups: HashMap<Vec<ValueId>, Vec<usize>> = HashMap::new();
        for i in 0..self.rows {
            groups.entry(project_cols(&cols, i)).or_default().push(i);
        }
        groups
    }

    /// Builds a hash index on the given attributes.
    pub fn build_index(&self, ids: &[AttrId]) -> Index {
        Index::build(self, ids)
    }

    /// The set of distinct values of a single attribute (its *active
    /// domain*), sorted by [`Value`] order. One pass over the column;
    /// dictionary ids are dedup'd first so only distinct values are resolved
    /// and cloned.
    pub fn active_domain(&self, id: AttrId) -> Vec<Value> {
        let mut ids: Vec<ValueId> = self.column(id).to_vec();
        ids.sort_unstable();
        ids.dedup();
        let mut vals: Vec<Value> = ids.into_iter().map(|c| c.resolve().clone()).collect();
        vals.sort();
        vals
    }

    /// Retains only the rows whose indices are in `keep` (sorted or not),
    /// preserving insertion order, column-wise in place. Used by tests and
    /// by repair roll-backs.
    pub fn retain_rows(&mut self, keep: &[usize]) {
        let mut mask = vec![false; self.rows];
        for &i in keep {
            if i < self.rows {
                mask[i] = true;
            }
        }
        for column in &mut self.columns {
            let mut idx = 0usize;
            column.retain(|_| {
                let k = mask[idx];
                idx += 1;
                k
            });
        }
        self.rows = mask.iter().filter(|&&k| k).count();
    }

    /// A new relation containing the rows at `rows`, in the given order
    /// (duplicates allowed). Column-wise gather — the compaction /
    /// materialization primitive of the incremental engine.
    pub fn gather_rows(&self, rows: &[usize]) -> Relation {
        let columns: Vec<Vec<ValueId>> = self
            .columns
            .iter()
            .map(|c| rows.iter().map(|&i| c[i]).collect())
            .collect();
        Relation {
            schema: self.schema.clone(),
            columns,
            rows: rows.len(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (_, t) in self.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn schema() -> Schema {
        Schema::builder("r").text("A").text("B").build()
    }

    fn row(a: &str, b: &str) -> Tuple {
        Tuple::new(vec![Value::from(a), Value::from(b)])
    }

    #[test]
    fn push_and_len() {
        let mut rel = Relation::new(schema());
        assert!(rel.is_empty());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("2", "y")).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1).unwrap()[AttrId(1)], Value::from("y"));
        assert!(rel.row(5).is_none());
    }

    #[test]
    fn push_wrong_arity_fails() {
        let mut rel = Relation::new(schema());
        let err = rel
            .push(Tuple::new(vec![Value::from("only-one")]))
            .unwrap_err();
        assert_eq!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
        // A failed push must not leave a partial row in any column.
        assert!(rel.is_empty());
        assert!(rel.column(AttrId(0)).is_empty());
    }

    #[test]
    fn push_checked_enforces_domains() {
        let s = Schema::builder("r")
            .text("A")
            .attr_domain("MR", Domain::finite(["single", "married"]))
            .build();
        let mut rel = Relation::new(s);
        rel.push_checked(Tuple::new(vec![Value::from("joe"), Value::from("single")]))
            .unwrap();
        let err = rel
            .push_checked(Tuple::new(vec![
                Value::from("ann"),
                Value::from("divorced"),
            ]))
            .unwrap_err();
        assert!(matches!(err, RelationError::DomainViolation { .. }));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn columns_store_cells_in_row_order() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("2", "y")).unwrap();
        let a = rel.column(AttrId(0));
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].resolve(), &Value::from("1"));
        assert_eq!(a[1].resolve(), &Value::from("2"));
        let cols = rel.columns_for(&[AttrId(1), AttrId(0)]);
        assert_eq!(cols[0][0].resolve(), &Value::from("x"));
        assert_eq!(cols[1][0].resolve(), &Value::from("1"));
    }

    #[test]
    fn group_by_collects_indices() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("1", "y")).unwrap();
        rel.push(row("2", "z")).unwrap();
        let groups = rel.group_by(&[AttrId(0)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&vec![Value::from("1")]], vec![0, 1]);
        assert_eq!(groups[&vec![Value::from("2")]], vec![2]);
    }

    #[test]
    fn group_by_agrees_with_group_by_ids() {
        let mut rel = Relation::new(schema());
        for (a, b) in [("1", "x"), ("1", "x"), ("2", "x"), ("1", "y")] {
            rel.push(row(a, b)).unwrap();
        }
        let by_val = rel.group_by(&[AttrId(0), AttrId(1)]);
        let by_ids = rel.group_by_ids(&[AttrId(0), AttrId(1)]);
        assert_eq!(by_val.len(), by_ids.len());
        for (key, rows) in by_ids {
            let resolved: Vec<Value> = key.iter().map(|c| c.resolve().clone()).collect();
            assert_eq!(by_val[&resolved], rows);
        }
    }

    #[test]
    fn active_domain_sorted_deduped() {
        let mut rel = Relation::new(schema());
        rel.push(row("b", "1")).unwrap();
        rel.push(row("a", "2")).unwrap();
        rel.push(row("b", "3")).unwrap();
        assert_eq!(
            rel.active_domain(AttrId(0)),
            vec![Value::from("a"), Value::from("b")]
        );
    }

    #[test]
    fn from_rows_validates() {
        let ok = Relation::from_rows(schema(), vec![row("1", "x")]);
        assert!(ok.is_ok());
        let bad = Relation::from_rows(schema(), vec![Tuple::nulls(3)]);
        assert!(bad.is_err());
    }

    #[test]
    fn into_parts_round_trips_through_from_rows() {
        let rel = Relation::from_rows(schema(), vec![row("1", "x"), row("2", "y")]).unwrap();
        let (s, rows) = rel.clone().into_parts();
        assert_eq!(rows, rel.to_tuples());
        assert_eq!(Relation::from_rows(s, rows).unwrap(), rel);
    }

    #[test]
    fn retain_rows_keeps_selected() {
        let mut rel = Relation::new(schema());
        for i in 0..5 {
            rel.push(row(&i.to_string(), "v")).unwrap();
        }
        rel.retain_rows(&[0, 2, 4]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::from("2"));
        assert_eq!(rel.column(AttrId(0)).len(), 3);
    }

    #[test]
    fn gather_rows_selects_in_given_order() {
        let mut rel = Relation::new(schema());
        for i in 0..4 {
            rel.push(row(&i.to_string(), "v")).unwrap();
        }
        let gathered = rel.gather_rows(&[3, 1, 1]);
        assert_eq!(gathered.len(), 3);
        assert_eq!(gathered.row(0).unwrap()[AttrId(0)], Value::from("3"));
        assert_eq!(gathered.row(1).unwrap()[AttrId(0)], Value::from("1"));
        assert_eq!(gathered.row(2).unwrap()[AttrId(0)], Value::from("1"));
        assert_eq!(gathered.schema(), rel.schema());
    }

    #[test]
    fn insert_and_remove_rows_shift_column_wise() {
        let mut rel = Relation::new(schema());
        rel.push(row("a", "1")).unwrap();
        rel.push(row("c", "3")).unwrap();
        rel.insert_row(1, row("b", "2")).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::from("b"));
        assert_eq!(rel.row(2).unwrap()[AttrId(0)], Value::from("c"));
        assert!(rel.insert_row(3, row("d", "4")).is_ok(), "append position");

        let removed = rel.remove_row(1).unwrap();
        assert_eq!(removed, row("b", "2"));
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::from("c"));
        assert!(rel.remove_row(7).is_none());
        // Arity still validated.
        assert!(rel.insert_row(0, Tuple::nulls(5)).is_err());
    }

    #[test]
    fn set_id_and_set_value_edit_in_place() {
        let mut rel = Relation::new(schema());
        rel.push(row("a", "1")).unwrap();
        assert!(rel.set_value(0, AttrId(1), Value::from("edited")));
        assert_eq!(rel.row(0).unwrap()[AttrId(1)], Value::from("edited"));
        let id = ValueId::from_value(Value::from("by-id"));
        assert!(rel.set_id(0, AttrId(0), id));
        assert_eq!(rel.column(AttrId(0))[0], id);
        assert!(!rel.set_value(5, AttrId(0), Value::from("x")));
        assert!(!rel.set_value(0, AttrId(9), Value::from("x")));
    }

    #[test]
    fn projection_of_relation() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("2", "y")).unwrap();
        let proj = rel.project(&[AttrId(1)]);
        assert_eq!(proj, vec![vec![Value::from("x")], vec![Value::from("y")]]);
    }

    #[test]
    fn iter_yields_row_views_in_order() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("2", "y")).unwrap();
        let collected: Vec<(usize, Tuple)> = rel.iter().map(|(i, r)| (i, r.to_tuple())).collect();
        assert_eq!(collected, vec![(0, row("1", "x")), (1, row("2", "y"))]);
    }

    #[test]
    fn display_lists_rows() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        let s = rel.to_string();
        assert!(s.contains("r(A: TEXT, B: TEXT)"));
        assert!(s.contains("(1, x)"));
    }

    #[test]
    fn zero_arity_relation_counts_rows() {
        let s = Schema::builder("unit").build();
        let mut rel = Relation::new(s);
        rel.push(Tuple::new(vec![])).unwrap();
        rel.push(Tuple::new(vec![])).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1).unwrap().arity(), 0);
        rel.retain_rows(&[0]);
        assert_eq!(rel.len(), 1);
    }
}
