//! In-memory relation instances.
//!
//! A [`Relation`] is a schema plus a vector of rows. It intentionally keeps
//! a very small surface: insertion (with optional domain checking), iteration,
//! projection and grouping. Query processing proper lives in `cfd-sql`.

use crate::error::{RelationError, Result};
use crate::index::Index;
use crate::interner::ValueId;
use crate::schema::{AttrId, Schema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// An in-memory instance `I` of a relation schema `R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty instance of `schema`.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates an empty instance with pre-allocated capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        Relation {
            schema,
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Creates an instance from existing rows, validating arity.
    pub fn from_rows(schema: Schema, rows: Vec<Tuple>) -> Result<Self> {
        for row in &rows {
            if row.arity() != schema.arity() {
                return Err(RelationError::ArityMismatch {
                    expected: schema.arity(),
                    got: row.arity(),
                });
            }
        }
        Ok(Relation { schema, rows })
    }

    /// The schema of the instance.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Consumes the instance, returning its schema and rows without cloning
    /// — the constructor path for engines that take ownership (the inverse
    /// of [`Relation::from_rows`]).
    pub fn into_parts(self) -> (Schema, Vec<Tuple>) {
        (self.schema, self.rows)
    }

    /// Number of tuples (`SZ` in the paper's experiments).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the instance is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Mutable access to the rows (used by the repair algorithm, which edits
    /// attribute values in place).
    pub fn rows_mut(&mut self) -> &mut [Tuple] {
        &mut self.rows
    }

    /// The row at `idx`, if present.
    pub fn row(&self, idx: usize) -> Option<&Tuple> {
        self.rows.get(idx)
    }

    /// Appends a tuple after checking its arity.
    pub fn push(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Appends a tuple built from raw values.
    pub fn push_values(&mut self, values: Vec<Value>) -> Result<()> {
        self.push(Tuple::new(values))
    }

    /// Appends a tuple after checking arity *and* every attribute domain.
    pub fn push_checked(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        for id in self.schema.attr_ids() {
            let attr = self.schema.attribute(id)?;
            let v = &tuple[id];
            if !attr.domain.contains(v) {
                return Err(RelationError::DomainViolation {
                    attribute: attr.name.clone(),
                    value: v.to_string(),
                });
            }
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Iterates `(row_index, &Tuple)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Tuple)> + '_ {
        self.rows.iter().enumerate()
    }

    /// Projects the whole instance onto `ids`, keeping duplicates.
    pub fn project(&self, ids: &[AttrId]) -> Vec<Vec<Value>> {
        self.rows.iter().map(|t| t.project(ids)).collect()
    }

    /// Groups row indices by their projection onto `ids`.
    ///
    /// This is the building block for the `QV` detection query's
    /// `GROUP BY t[X]` and for the equivalence classes used by repair.
    pub fn group_by(&self, ids: &[AttrId]) -> HashMap<Vec<Value>, Vec<usize>> {
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, t) in self.rows.iter().enumerate() {
            groups.entry(t.project(ids)).or_default().push(i);
        }
        groups
    }

    /// Interned variant of [`Relation::group_by`]: keys are dictionary ids,
    /// so grouping hashes `u32`s instead of cloning values.
    pub fn group_by_ids(&self, ids: &[AttrId]) -> HashMap<Vec<ValueId>, Vec<usize>> {
        let mut groups: HashMap<Vec<ValueId>, Vec<usize>> = HashMap::new();
        for (i, t) in self.rows.iter().enumerate() {
            groups.entry(t.project_ids(ids)).or_default().push(i);
        }
        groups
    }

    /// Builds a hash index on the given attributes.
    pub fn build_index(&self, ids: &[AttrId]) -> Index {
        Index::build(self, ids)
    }

    /// The set of distinct values of a single attribute (its *active
    /// domain*), sorted by [`Value`] order (dictionary ids are dedup'd first
    /// so only distinct values are resolved and cloned).
    pub fn active_domain(&self, id: AttrId) -> Vec<Value> {
        let mut ids: Vec<ValueId> = self.rows.iter().map(|t| t.id_at(id)).collect();
        ids.sort_unstable();
        ids.dedup();
        let mut vals: Vec<Value> = ids.into_iter().map(|c| c.resolve().clone()).collect();
        vals.sort();
        vals
    }

    /// Retains only the rows whose indices are in `keep` (sorted or not).
    /// Used by tests and by repair roll-backs.
    pub fn retain_rows(&mut self, keep: &[usize]) {
        let keep_set: std::collections::HashSet<usize> = keep.iter().copied().collect();
        let mut idx = 0usize;
        self.rows.retain(|_| {
            let k = keep_set.contains(&idx);
            idx += 1;
            k
        });
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.rows {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;

    fn schema() -> Schema {
        Schema::builder("r").text("A").text("B").build()
    }

    fn row(a: &str, b: &str) -> Tuple {
        Tuple::new(vec![Value::from(a), Value::from(b)])
    }

    #[test]
    fn push_and_len() {
        let mut rel = Relation::new(schema());
        assert!(rel.is_empty());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("2", "y")).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1).unwrap()[AttrId(1)], Value::from("y"));
        assert!(rel.row(5).is_none());
    }

    #[test]
    fn push_wrong_arity_fails() {
        let mut rel = Relation::new(schema());
        let err = rel
            .push(Tuple::new(vec![Value::from("only-one")]))
            .unwrap_err();
        assert_eq!(
            err,
            RelationError::ArityMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn push_checked_enforces_domains() {
        let s = Schema::builder("r")
            .text("A")
            .attr_domain("MR", Domain::finite(["single", "married"]))
            .build();
        let mut rel = Relation::new(s);
        rel.push_checked(Tuple::new(vec![Value::from("joe"), Value::from("single")]))
            .unwrap();
        let err = rel
            .push_checked(Tuple::new(vec![
                Value::from("ann"),
                Value::from("divorced"),
            ]))
            .unwrap_err();
        assert!(matches!(err, RelationError::DomainViolation { .. }));
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn group_by_collects_indices() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("1", "y")).unwrap();
        rel.push(row("2", "z")).unwrap();
        let groups = rel.group_by(&[AttrId(0)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[&vec![Value::from("1")]], vec![0, 1]);
        assert_eq!(groups[&vec![Value::from("2")]], vec![2]);
    }

    #[test]
    fn active_domain_sorted_deduped() {
        let mut rel = Relation::new(schema());
        rel.push(row("b", "1")).unwrap();
        rel.push(row("a", "2")).unwrap();
        rel.push(row("b", "3")).unwrap();
        assert_eq!(
            rel.active_domain(AttrId(0)),
            vec![Value::from("a"), Value::from("b")]
        );
    }

    #[test]
    fn from_rows_validates() {
        let ok = Relation::from_rows(schema(), vec![row("1", "x")]);
        assert!(ok.is_ok());
        let bad = Relation::from_rows(schema(), vec![Tuple::nulls(3)]);
        assert!(bad.is_err());
    }

    #[test]
    fn into_parts_round_trips_through_from_rows() {
        let rel = Relation::from_rows(schema(), vec![row("1", "x"), row("2", "y")]).unwrap();
        let (s, rows) = rel.clone().into_parts();
        assert_eq!(Relation::from_rows(s, rows).unwrap(), rel);
    }

    #[test]
    fn retain_rows_keeps_selected() {
        let mut rel = Relation::new(schema());
        for i in 0..5 {
            rel.push(row(&i.to_string(), "v")).unwrap();
        }
        rel.retain_rows(&[0, 2, 4]);
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::from("2"));
    }

    #[test]
    fn projection_of_relation() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        rel.push(row("2", "y")).unwrap();
        let proj = rel.project(&[AttrId(1)]);
        assert_eq!(proj, vec![vec![Value::from("x")], vec![Value::from("y")]]);
    }

    #[test]
    fn display_lists_rows() {
        let mut rel = Relation::new(schema());
        rel.push(row("1", "x")).unwrap();
        let s = rel.to_string();
        assert!(s.contains("r(A: TEXT, B: TEXT)"));
        assert!(s.contains("(1, x)"));
    }
}
