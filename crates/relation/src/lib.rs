//! Relational substrate for the CFD data-cleaning library.
//!
//! This crate provides the data model every other crate in the workspace builds
//! on: [`Value`]s and their global dictionary ids ([`ValueId`], see
//! [`interner`]), attribute [`Domain`]s, relation [`Schema`]s, in-memory
//! [`Relation`] instances and hash [`Index`]es over them. Equality on every
//! hot path is a `u32` compare; the `Value`-typed accessors resolve through
//! the interner at the API boundary.
//!
//! # Storage layer
//!
//! [`Relation`] is **columnar** (struct-of-arrays): one `Vec<ValueId>` column
//! per attribute plus a live-row count. Scans that only need a CFD's `X ∪ Y`
//! attributes walk just those contiguous columns ([`Relation::column`]),
//! instead of dragging every attribute of every row through cache, and no
//! per-row heap allocation exists anywhere in the store. Three row
//! representations cooperate:
//!
//! * **column slices** (`&[ValueId]`, via [`Relation::column`] /
//!   [`Relation::columns_for`]) — the tight-loop form used by grouping,
//!   indexing and the detectors;
//! * **[`RowRef`]** — a `Copy`, zero-copy view of one row that mirrors the
//!   tuple read API; it immutably borrows the relation, so the borrow
//!   checker guarantees no view survives a mutation (see [`row`] for the
//!   borrow rules);
//! * **[`Tuple`]** — the *owned* boundary type for builders, batch edits and
//!   serialization; [`RowRef::to_tuple`] materializes one on demand.
//!
//! All mutators are deterministic and order-preserving (append, ordered
//! retain/gather, in-place cell edits), which is the determinism contract the
//! detection engines' byte-identical-report guarantee rests on.
//!
//! The paper ("Conditional Functional Dependencies for Data Cleaning",
//! ICDE 2007) assumes a conventional relational store (DB2 in the original
//! evaluation). Because this reproduction is self-contained, the store is the
//! in-memory columnar relation above; the SQL layer that the paper's
//! detection queries run on lives in the `cfd-sql` crate.
//!
//! # Quick example
//!
//! ```
//! use cfd_relation::{Schema, AttrType, Relation, Value};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CC", AttrType::Text)
//!     .attr("AC", AttrType::Text)
//!     .attr("CT", AttrType::Text)
//!     .build();
//! let mut rel = Relation::new(schema);
//! rel.push_values(vec!["01".into(), "908".into(), Value::from("MH")]).unwrap();
//! assert_eq!(rel.len(), 1);
//! ```

pub mod builder;
pub mod csv;
pub mod domain;
pub mod error;
pub mod index;
pub mod interner;
pub mod placeholder;
pub mod relation;
pub mod row;
pub mod schema;
pub mod stats;
pub mod tuple;
pub mod value;
pub mod weights;

pub use builder::RelationBuilder;
pub use domain::{AttrType, Domain};
pub use error::{RelationError, Result};
pub use index::Index;
pub use interner::ValueId;
pub use relation::Relation;
pub use row::{project_attrs, project_cols, project_cols_into, RowRef};
pub use schema::{AttrId, Attribute, Schema, SchemaBuilder};
pub use stats::{ColumnStats, GroupStats, NdvSketch, RelationStats};
pub use tuple::Tuple;
pub use value::Value;
pub use weights::TupleWeights;
