//! Relational substrate for the CFD data-cleaning library.
//!
//! This crate provides the data model every other crate in the workspace builds
//! on: [`Value`]s and their global dictionary ids ([`ValueId`], see
//! [`interner`]), attribute [`Domain`]s, relation [`Schema`]s, [`Tuple`]s
//! (stored as interned cells), in-memory [`Relation`] instances and hash
//! [`Index`]es over them. Equality on every hot path is a `u32` compare; the
//! `Value`-typed accessors resolve through the interner at the API boundary.
//!
//! The paper ("Conditional Functional Dependencies for Data Cleaning",
//! ICDE 2007) assumes a conventional relational store (DB2 in the original
//! evaluation). Because this reproduction is self-contained, the store is an
//! in-memory column-agnostic row store; the SQL layer that the paper's
//! detection queries run on lives in the `cfd-sql` crate.
//!
//! # Quick example
//!
//! ```
//! use cfd_relation::{Schema, AttrType, Relation, Value};
//!
//! let schema = Schema::builder("cust")
//!     .attr("CC", AttrType::Text)
//!     .attr("AC", AttrType::Text)
//!     .attr("CT", AttrType::Text)
//!     .build();
//! let mut rel = Relation::new(schema);
//! rel.push_values(vec!["01".into(), "908".into(), Value::from("MH")]).unwrap();
//! assert_eq!(rel.len(), 1);
//! ```

pub mod builder;
pub mod csv;
pub mod domain;
pub mod error;
pub mod index;
pub mod interner;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use builder::RelationBuilder;
pub use domain::{AttrType, Domain};
pub use error::{RelationError, Result};
pub use index::Index;
pub use interner::ValueId;
pub use relation::Relation;
pub use schema::{AttrId, Attribute, Schema, SchemaBuilder};
pub use tuple::Tuple;
pub use value::Value;
