//! Error types for the relational substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationError>;

/// Errors raised by the relational substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// Relation name of the schema that was searched.
        relation: String,
        /// The attribute name that could not be resolved.
        attribute: String,
    },
    /// An attribute index was out of bounds for a schema.
    AttributeOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of attributes in the schema.
        arity: usize,
    },
    /// A tuple's arity does not match the schema's arity.
    ArityMismatch {
        /// Arity the schema expects.
        expected: usize,
        /// Arity the tuple provided.
        got: usize,
    },
    /// A value was outside the declared domain of its attribute.
    DomainViolation {
        /// The attribute whose domain was violated.
        attribute: String,
        /// Rendering of the offending value.
        value: String,
    },
    /// Two schemas that had to be identical were not.
    SchemaMismatch {
        /// First schema's relation name.
        left: String,
        /// Second schema's relation name.
        right: String,
    },
    /// A duplicate attribute name was used while building a schema.
    DuplicateAttribute(String),
    /// CSV (or other textual) input could not be parsed.
    Parse(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "unknown attribute `{attribute}` in relation `{relation}`"
                )
            }
            RelationError::AttributeOutOfRange { index, arity } => {
                write!(f, "attribute index {index} out of range for arity {arity}")
            }
            RelationError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema expects {expected} values, got {got}"
                )
            }
            RelationError::DomainViolation { attribute, value } => {
                write!(
                    f,
                    "value `{value}` is outside the domain of attribute `{attribute}`"
                )
            }
            RelationError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch between `{left}` and `{right}`")
            }
            RelationError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
            RelationError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_unknown_attribute() {
        let e = RelationError::UnknownAttribute {
            relation: "cust".into(),
            attribute: "ZIP".into(),
        };
        assert_eq!(e.to_string(), "unknown attribute `ZIP` in relation `cust`");
    }

    #[test]
    fn display_arity_mismatch() {
        let e = RelationError::ArityMismatch {
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("expects 3"));
        assert!(e.to_string().contains("got 2"));
    }

    #[test]
    fn display_domain_violation() {
        let e = RelationError::DomainViolation {
            attribute: "MR".into(),
            value: "maybe".into(),
        };
        assert!(e.to_string().contains("MR"));
        assert!(e.to_string().contains("maybe"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<RelationError>();
    }

    #[test]
    fn display_parse_and_duplicate() {
        assert!(RelationError::Parse("bad line".into())
            .to_string()
            .contains("bad line"));
        assert!(RelationError::DuplicateAttribute("CC".into())
            .to_string()
            .contains("CC"));
    }
}
