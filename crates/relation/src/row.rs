//! Zero-copy row views over columnar relations.
//!
//! A [`RowRef`] is a *view* of one row of a [`Relation`](crate::Relation):
//! a borrow of the relation's column vectors plus a row index. Reading a
//! cell is one array index into the owning column — no tuple is materialized
//! and nothing is cloned. `RowRef` mirrors the read API of
//! [`Tuple`] (`id_at`, `project_ids`, `agree_on`, `Index`,
//! `Display`, …) so detection, SQL evaluation and repair can consume rows
//! without caring how they are stored.
//!
//! # Borrow rules
//!
//! A `RowRef<'a>` immutably borrows the relation it was taken from for its
//! whole lifetime `'a`. Any mutation of the relation (`push`, `set_id`,
//! `retain_rows`, …) therefore requires all outstanding views to be dropped
//! first — the borrow checker enforces the "no view outlives an edit" rule
//! statically, which is what makes handing plain `&[ValueId]` column slices
//! and `RowRef`s to scan loops safe. `RowRef` is `Copy`: passing it around
//! costs two words and never touches the heap.
//!
//! For an *owned* row (builders, batch edits, serialization), convert with
//! [`RowRef::to_tuple`] — [`Tuple`] remains the owned boundary
//! type.

use crate::interner::ValueId;
use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::ops::Index;

/// Builds the row-`row` projection key from already-gathered column slices
/// (the output of [`crate::Relation::columns_for`]): one cell per column, in
/// column order. This is *the* per-row idiom of every columnar scan — group
/// keys, index keys, `Y` projections — kept in one place so a future change
/// of key representation lands everywhere at once.
#[inline]
pub fn project_cols(cols: &[&[ValueId]], row: usize) -> Vec<ValueId> {
    cols.iter().map(|c| c[row]).collect()
}

/// The scratch-buffer variant of [`project_cols`]: clears `into` and refills
/// it, so steady-state scans allocate nothing per row.
#[inline]
pub fn project_cols_into(cols: &[&[ValueId]], row: usize, into: &mut Vec<ValueId>) {
    into.clear();
    into.extend(cols.iter().map(|c| c[row]));
}

/// Projects a full schema-ordered cell vector ([`Tuple::ids`] /
/// [`RowRef::to_ids`]) onto an attribute list — the row-sided sibling of
/// [`project_cols`], centralized for the same reason: index keys and
/// incremental-engine keys must always share one shape.
#[inline]
pub fn project_attrs(cells: &[ValueId], attrs: &[AttrId]) -> Vec<ValueId> {
    attrs.iter().map(|a| cells[a.index()]).collect()
}

/// A copy-free view of one row of a columnar [`Relation`](crate::Relation).
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    columns: &'a [Vec<ValueId>],
    row: usize,
}

impl<'a> RowRef<'a> {
    /// Creates a view of `row` over `columns` (crate-internal: only
    /// [`Relation`](crate::Relation) hands out views, which guarantees the
    /// index is in range for every column).
    pub(crate) fn new(columns: &'a [Vec<ValueId>], row: usize) -> Self {
        RowRef { columns, row }
    }

    /// The row index inside the owning relation.
    pub fn index(&self) -> usize {
        self.row
    }

    /// Number of fields (the relation's arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The interned cell id at attribute `id` (panics when out of range).
    /// This is the hot-path read: one array index into the column.
    pub fn id_at(&self, id: AttrId) -> ValueId {
        self.columns[id.index()][self.row]
    }

    /// The interned cell id at attribute `id`, if in range.
    pub fn id(&self, id: AttrId) -> Option<ValueId> {
        self.columns.get(id.index()).map(|c| c[self.row])
    }

    /// The value at attribute `id`, if in range (resolved at the boundary).
    pub fn get(&self, id: AttrId) -> Option<&'static Value> {
        self.id(id).map(ValueId::resolve)
    }

    /// Iterates the interned cell ids in attribute order.
    pub fn ids(&self) -> impl Iterator<Item = ValueId> + 'a {
        let row = self.row;
        self.columns.iter().map(move |c| c[row])
    }

    /// The cell ids as an owned, schema-ordered vector.
    pub fn to_ids(&self) -> Vec<ValueId> {
        self.ids().collect()
    }

    /// Iterates the cell values (resolved through the interner).
    pub fn values(&self) -> impl Iterator<Item = &'static Value> + 'a {
        self.ids().map(ValueId::resolve)
    }

    /// The cells as owned values (boundary/serialization use).
    pub fn to_values(&self) -> Vec<Value> {
        self.ids().map(|id| id.resolve().clone()).collect()
    }

    /// Materializes the row as an owned [`Tuple`] (the boundary type for
    /// builders, batch edits and tests).
    pub fn to_tuple(&self) -> Tuple {
        Tuple::from_ids(self.to_ids())
    }

    /// Interned projection onto `ids` (the paper's `t[X]`), preserving the
    /// order of `ids`. Directly usable as a hash key — `u32`s, no cloning.
    pub fn project_ids(&self, ids: &[AttrId]) -> Vec<ValueId> {
        ids.iter().map(|id| self.id_at(*id)).collect()
    }

    /// Projection onto `ids` as owned values (boundary use).
    pub fn project(&self, ids: &[AttrId]) -> Vec<Value> {
        ids.iter()
            .map(|id| self.id_at(*id).resolve().clone())
            .collect()
    }

    /// Borrowing projection: interner-resolved references, no cloning.
    pub fn project_ref(&self, ids: &[AttrId]) -> Vec<&'static Value> {
        ids.iter().map(|id| self.id_at(*id).resolve()).collect()
    }

    /// `t1[X] = t2[X]`: whether the projections of the two rows onto `ids`
    /// agree field-by-field. Interned: one `u32` compare per field.
    pub fn agree_on(&self, other: &RowRef<'_>, ids: &[AttrId]) -> bool {
        ids.iter().all(|id| self.id(*id) == other.id(*id))
    }
}

/// Row views compare by cell — two views of different relations (or slots)
/// are equal iff their cells are, mirroring [`Tuple`] equality.
impl PartialEq for RowRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.arity() == other.arity() && self.ids().eq(other.ids())
    }
}

impl Eq for RowRef<'_> {}

impl PartialEq<Tuple> for RowRef<'_> {
    fn eq(&self, other: &Tuple) -> bool {
        self.arity() == other.arity() && self.ids().eq(other.ids().iter().copied())
    }
}

impl PartialEq<RowRef<'_>> for Tuple {
    fn eq(&self, other: &RowRef<'_>) -> bool {
        other == self
    }
}

impl Index<AttrId> for RowRef<'_> {
    type Output = Value;

    fn index(&self, id: AttrId) -> &Value {
        self.id_at(id).resolve()
    }
}

impl fmt::Display for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::schema::Schema;

    fn rel() -> Relation {
        let schema = Schema::builder("r").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema);
        for r in [["1", "x", "p"], ["2", "y", "q"]] {
            rel.push(Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
                .unwrap();
        }
        rel
    }

    #[test]
    fn view_reads_match_the_owned_tuple() {
        let r = rel();
        let view = r.row(1).unwrap();
        let owned = view.to_tuple();
        assert_eq!(view.arity(), 3);
        assert_eq!(view.index(), 1);
        assert_eq!(view, owned);
        assert_eq!(owned, view);
        for a in r.schema().attr_ids() {
            assert_eq!(view.id_at(a), owned.id_at(a));
            assert_eq!(view.get(a), owned.get(a));
            assert_eq!(view[a], owned[a]);
        }
        assert_eq!(view.to_values(), owned.to_values());
        assert_eq!(view.to_string(), owned.to_string());
    }

    #[test]
    fn projections_agree_with_tuple_projections() {
        let r = rel();
        let view = r.row(0).unwrap();
        let owned = view.to_tuple();
        let ids = [AttrId(2), AttrId(0)];
        assert_eq!(view.project_ids(&ids), owned.project_ids(&ids));
        assert_eq!(view.project(&ids), owned.project(&ids));
        assert_eq!(view.project_ref(&ids), owned.project_ref(&ids));
    }

    #[test]
    fn agree_on_and_out_of_range() {
        let r = rel();
        let a = r.row(0).unwrap();
        let b = r.row(1).unwrap();
        assert!(a.agree_on(&b, &[]));
        assert!(!a.agree_on(&b, &[AttrId(0)]));
        assert!(a.agree_on(&a, &[AttrId(0), AttrId(1), AttrId(2)]));
        assert!(a.id(AttrId(9)).is_none());
        assert!(a.get(AttrId(9)).is_none());
        // Out of range on both sides -> both None -> "agree" (never hit by
        // well-formed callers, mirrors Tuple::agree_on).
        assert!(a.agree_on(&b, &[AttrId(9)]));
    }

    #[test]
    fn views_are_copy_and_compare_across_relations() {
        let r1 = rel();
        let r2 = rel();
        let v1 = r1.row(0).unwrap();
        let v2 = v1; // Copy
        assert_eq!(v1, v2);
        assert_eq!(v1, r2.row(0).unwrap());
        assert_ne!(v1, r2.row(1).unwrap());
    }
}
