//! Convenience builder for populating relations from string literals.
//!
//! Examples and tests throughout the workspace need small, readable relation
//! literals (e.g. the `cust` instance of Fig. 1). [`RelationBuilder`] keeps
//! those call sites compact.

use crate::error::Result;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Builder that accumulates rows and produces a [`Relation`].
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    schema: Schema,
    rows: Vec<Tuple>,
    check_domains: bool,
}

impl RelationBuilder {
    /// Starts a builder for the given schema.
    pub fn new(schema: Schema) -> Self {
        RelationBuilder {
            schema,
            rows: Vec::new(),
            check_domains: false,
        }
    }

    /// Enables domain checking for every row added afterwards.
    pub fn checked(mut self) -> Self {
        self.check_domains = true;
        self
    }

    /// Adds a row of already-typed values.
    pub fn row<I, V>(mut self, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.rows
            .push(Tuple::new(values.into_iter().map(Into::into).collect()));
        self
    }

    /// Adds a row of string values (the common case for the paper examples).
    pub fn row_strs(self, values: &[&str]) -> Self {
        self.row(values.iter().map(|s| Value::from(*s)))
    }

    /// Finishes the relation, validating arity (and domains when enabled).
    pub fn build(self) -> Result<Relation> {
        let mut rel = Relation::with_capacity(self.schema, self.rows.len());
        for row in self.rows {
            if self.check_domains {
                rel.push_checked(row)?;
            } else {
                rel.push(row)?;
            }
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use crate::schema::AttrId;

    #[test]
    fn build_from_string_rows() {
        let schema = Schema::builder("r").text("A").text("B").build();
        let rel = RelationBuilder::new(schema)
            .row_strs(&["1", "x"])
            .row_strs(&["2", "y"])
            .build()
            .unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(0).unwrap()[AttrId(1)], Value::from("x"));
    }

    #[test]
    fn build_mixed_typed_rows() {
        let schema = Schema::builder("r").text("NAME").integer("SA").build();
        let rel = RelationBuilder::new(schema)
            .row(vec![Value::from("ann"), Value::from(50_000i64)])
            .build()
            .unwrap();
        assert_eq!(rel.row(0).unwrap()[AttrId(1)], Value::Int(50_000));
    }

    #[test]
    fn checked_builder_rejects_domain_violation() {
        let schema = Schema::builder("r")
            .attr_domain("MR", Domain::finite(["single", "married"]))
            .build();
        let res = RelationBuilder::new(schema)
            .checked()
            .row_strs(&["widowed"])
            .build();
        assert!(res.is_err());
    }

    #[test]
    fn arity_mismatch_detected_at_build() {
        let schema = Schema::builder("r").text("A").text("B").build();
        let res = RelationBuilder::new(schema).row_strs(&["only"]).build();
        assert!(res.is_err());
    }
}
