//! Minimal CSV-style import/export for relation instances.
//!
//! The evaluation workload is generated in-process, but being able to dump a
//! generated instance (or a violation report) to a text file and load it back
//! is convenient for debugging and for sharing reproducible inputs. The format
//! is deliberately simple: one header line with attribute names, comma
//! separation, double-quote quoting, and typed parsing driven by the schema.

use crate::domain::AttrType;
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// Serializes the relation as CSV text (header + one line per row).
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for (_, row) in rel.iter() {
        let cells: Vec<String> = row.values().map(render_cell).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text into an instance of `schema`.
///
/// The header must list exactly the schema's attribute names in order; every
/// cell is parsed according to the attribute's primitive type.
pub fn from_csv(schema: &Schema, text: &str) -> Result<Relation> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| RelationError::Parse("empty input".into()))?;
    let header_names: Vec<String> = split_line(header);
    let expected: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if header_names.len() != expected.len()
        || header_names.iter().zip(&expected).any(|(h, e)| h != e)
    {
        return Err(RelationError::Parse(format!(
            "header {:?} does not match schema attributes {:?}",
            header_names, expected
        )));
    }

    let mut rel = Relation::new(schema.clone());
    for (line_no, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let cells = split_line(line);
        if cells.len() != schema.arity() {
            return Err(RelationError::Parse(format!(
                "line {} has {} cells, expected {}",
                line_no + 2,
                cells.len(),
                schema.arity()
            )));
        }
        let mut values = Vec::with_capacity(cells.len());
        for (id, cell) in schema.attr_ids().zip(cells.iter()) {
            values.push(parse_cell(schema, id.index(), cell)?);
        }
        rel.push(Tuple::new(values))?;
    }
    Ok(rel)
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
    }
}

fn split_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    cells.push(cur);
    cells
}

fn parse_cell(schema: &Schema, idx: usize, cell: &str) -> Result<Value> {
    if cell.is_empty() {
        return Ok(Value::Null);
    }
    let attr = &schema.attributes()[idx];
    match attr.domain.attr_type() {
        AttrType::Text => Ok(Value::Str(cell.to_owned())),
        AttrType::Integer => cell.parse::<i64>().map(Value::Int).map_err(|_| {
            RelationError::Parse(format!("`{cell}` is not an integer ({})", attr.name))
        }),
        AttrType::Boolean => match cell {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(RelationError::Parse(format!(
                "`{cell}` is not a boolean ({})",
                attr.name
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;

    fn schema() -> Schema {
        Schema::builder("t").text("NAME").integer("SA").build()
    }

    #[test]
    fn round_trip_simple_relation() {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(vec![Value::from("ann"), Value::Int(100)]))
            .unwrap();
        rel.push(Tuple::new(vec![Value::from("bob, jr."), Value::Int(200)]))
            .unwrap();
        let text = to_csv(&rel);
        let back = from_csv(&schema(), &text).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn quotes_are_escaped_and_restored() {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(vec![Value::from("say \"hi\""), Value::Int(1)]))
            .unwrap();
        let back = from_csv(&schema(), &to_csv(&rel)).unwrap();
        assert_eq!(back.row(0).unwrap()[AttrId(0)], Value::from("say \"hi\""));
    }

    #[test]
    fn empty_cell_parses_as_null() {
        let text = "NAME,SA\nann,\n";
        let rel = from_csv(&schema(), text).unwrap();
        assert_eq!(rel.row(0).unwrap()[AttrId(1)], Value::Null);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let text = "NAME,SALARY\nann,1\n";
        assert!(from_csv(&schema(), text).is_err());
    }

    #[test]
    fn bad_integer_is_an_error() {
        let text = "NAME,SA\nann,notanumber\n";
        assert!(from_csv(&schema(), text).is_err());
    }

    #[test]
    fn wrong_cell_count_is_an_error() {
        let text = "NAME,SA\nann\n";
        assert!(from_csv(&schema(), text).is_err());
    }

    #[test]
    fn boolean_parsing() {
        let schema = Schema::builder("t").attr("CH", AttrType::Boolean).build();
        let rel = from_csv(&schema, "CH\ntrue\n0\n").unwrap();
        assert_eq!(rel.row(0).unwrap()[AttrId(0)], Value::Bool(true));
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::Bool(false));
        assert!(from_csv(&schema, "CH\nmaybe\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "NAME,SA\nann,1\n\nbob,2\n";
        let rel = from_csv(&schema(), text).unwrap();
        assert_eq!(rel.len(), 2);
    }
}
