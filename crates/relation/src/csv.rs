//! Minimal CSV-style import/export for relation instances.
//!
//! The evaluation workload is generated in-process, but being able to dump a
//! generated instance (or a violation report) to a text file and load it back
//! is convenient for debugging and for sharing reproducible inputs. The format
//! is deliberately simple: one header line with attribute names, comma
//! separation, double-quote quoting, and typed parsing driven by the schema.

use crate::domain::AttrType;
use crate::error::{RelationError, Result};
use crate::interner::ValueId;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;

/// Serializes the relation as CSV text (header + one line per row).
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let names: Vec<&str> = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for (_, row) in rel.iter() {
        let cells: Vec<String> = row.values().map(render_cell).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Parses CSV text into an instance of `schema`.
///
/// The header must list exactly the schema's attribute names in order; every
/// cell is parsed according to the attribute's primitive type. Records are
/// split quote-aware, so quoted fields may contain delimiters *and* newlines.
/// An empty unquoted cell is NULL; a quoted empty cell (`""`) is the empty
/// string — the distinction [`to_csv`] relies on for round-trip stability.
///
/// Cells stream straight into the relation's columns (interned as they are
/// parsed — no intermediate [`crate::Tuple`] per record), and arity/type
/// errors report both the record and the offending column.
pub fn from_csv(schema: &Schema, text: &str) -> Result<Relation> {
    let mut records = split_records(text).into_iter();
    let header = records
        .next()
        .ok_or_else(|| RelationError::Parse("empty input".into()))?;
    let header_names: Vec<String> = split_line(&header).into_iter().map(|(s, _)| s).collect();
    let expected: Vec<&str> = schema
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    if header_names.len() != expected.len()
        || header_names.iter().zip(&expected).any(|(h, e)| h != e)
    {
        return Err(RelationError::Parse(format!(
            "header {:?} does not match schema attributes {:?}",
            header_names, expected
        )));
    }

    let mut rel = Relation::new(schema.clone());
    // Scratch row reused across records: cells are interned as they are
    // parsed and appended column-wise, no per-record tuple allocation.
    let mut ids: Vec<ValueId> = Vec::with_capacity(schema.arity());
    for (line_no, line) in records.enumerate() {
        // Blank lines are separators in multi-column files — but a
        // single-column relation legitimately serializes a NULL row as an
        // empty record, so those must parse as data.
        if line.trim().is_empty() && schema.arity() > 1 {
            continue;
        }
        let record_no = line_no + 2; // 1-based, after the header line
        let cells = split_line(&line);
        if cells.len() != schema.arity() {
            let detail = if cells.len() < schema.arity() {
                format!(
                    "missing column {} (`{}`)",
                    cells.len() + 1,
                    schema.attributes()[cells.len()].name
                )
            } else {
                format!("unexpected extra cell at column {}", schema.arity() + 1)
            };
            return Err(RelationError::Parse(format!(
                "record {} has {} cells, expected {}: {}",
                record_no,
                cells.len(),
                schema.arity(),
                detail
            )));
        }
        ids.clear();
        for (id, (cell, quoted)) in schema.attr_ids().zip(cells.iter()) {
            let col = id.index();
            let value = parse_cell(schema, col, cell, *quoted).map_err(|e| {
                let msg = match e {
                    RelationError::Parse(m) => m,
                    other => other.to_string(),
                };
                RelationError::Parse(format!(
                    "record {}, column {} (`{}`): {}",
                    record_no,
                    col + 1,
                    schema.attributes()[col].name,
                    msg
                ))
            })?;
            ids.push(ValueId::from_value(value));
        }
        rel.push_ids(&ids)?;
    }
    Ok(rel)
}

/// Splits the input into records on newlines *outside* quoted fields; a `"`
/// toggles quotedness exactly as in [`split_line`]. A `\r` immediately before
/// an unquoted record break is dropped, so `\r\n` files parse too.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                in_quotes = chars.peek() == Some(&'"');
                cur.push('"');
                if in_quotes {
                    cur.push('"');
                    chars.next();
                }
            }
            '"' => {
                in_quotes = true;
                cur.push('"');
            }
            '\n' if !in_quotes => {
                if cur.ends_with('\r') {
                    cur.pop();
                }
                records.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.is_empty() {
        // Mirror the record-break branch: a CRLF file without a final
        // newline must not leak its last '\r' into the last cell.
        if cur.ends_with('\r') {
            cur.pop();
        }
        records.push(cur);
    }
    records
}

fn render_cell(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            if s.is_empty() {
                // Distinguishes the empty string from NULL (empty unquoted).
                "\"\"".to_owned()
            } else if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        }
    }
}

/// Splits one record into its cells, reporting for each whether any part of
/// it was quoted (NULL vs empty-string disambiguation).
fn split_line(line: &str) -> Vec<(String, bool)> {
    let mut cells = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => {
                in_quotes = true;
                quoted = true;
            }
            ',' if !in_quotes => {
                cells.push((std::mem::take(&mut cur), quoted));
                quoted = false;
            }
            _ => cur.push(c),
        }
    }
    cells.push((cur, quoted));
    cells
}

fn parse_cell(schema: &Schema, idx: usize, cell: &str, quoted: bool) -> Result<Value> {
    if cell.is_empty() && !quoted {
        return Ok(Value::Null);
    }
    let attr = &schema.attributes()[idx];
    match attr.domain.attr_type() {
        AttrType::Text => Ok(Value::Str(cell.to_owned())),
        AttrType::Integer => cell
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| RelationError::Parse(format!("`{cell}` is not an integer"))),
        AttrType::Boolean => match cell {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            _ => Err(RelationError::Parse(format!("`{cell}` is not a boolean"))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::tuple::Tuple;

    fn schema() -> Schema {
        Schema::builder("t").text("NAME").integer("SA").build()
    }

    #[test]
    fn round_trip_simple_relation() {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(vec![Value::from("ann"), Value::Int(100)]))
            .unwrap();
        rel.push(Tuple::new(vec![Value::from("bob, jr."), Value::Int(200)]))
            .unwrap();
        let text = to_csv(&rel);
        let back = from_csv(&schema(), &text).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn quotes_are_escaped_and_restored() {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(vec![Value::from("say \"hi\""), Value::Int(1)]))
            .unwrap();
        let back = from_csv(&schema(), &to_csv(&rel)).unwrap();
        assert_eq!(back.row(0).unwrap()[AttrId(0)], Value::from("say \"hi\""));
    }

    #[test]
    fn empty_cell_parses_as_null() {
        let text = "NAME,SA\nann,\n";
        let rel = from_csv(&schema(), text).unwrap();
        assert_eq!(rel.row(0).unwrap()[AttrId(1)], Value::Null);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let text = "NAME,SALARY\nann,1\n";
        assert!(from_csv(&schema(), text).is_err());
    }

    #[test]
    fn bad_integer_is_an_error() {
        let text = "NAME,SA\nann,notanumber\n";
        assert!(from_csv(&schema(), text).is_err());
    }

    #[test]
    fn type_errors_report_record_and_column() {
        // Second data record (record 3 counting the header), second column.
        let text = "NAME,SA\nann,1\nbob,notanumber\n";
        let err = from_csv(&schema(), text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("record 3, column 2 (`SA`)"),
            "message must pinpoint record and column, got: {msg}"
        );
        assert!(msg.contains("`notanumber` is not an integer"), "{msg}");
    }

    #[test]
    fn wrong_cell_count_is_an_error() {
        let text = "NAME,SA\nann\n";
        assert!(from_csv(&schema(), text).is_err());
    }

    #[test]
    fn arity_errors_report_record_and_column() {
        // Too few cells: names the first missing column.
        let err = from_csv(&schema(), "NAME,SA\nann,1\nbob\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("record 3 has 1 cells, expected 2"), "{msg}");
        assert!(msg.contains("missing column 2 (`SA`)"), "{msg}");
        // Too many cells: points at the first surplus column.
        let err = from_csv(&schema(), "NAME,SA\nann,1,EXTRA\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("record 2 has 3 cells, expected 2"), "{msg}");
        assert!(msg.contains("unexpected extra cell at column 3"), "{msg}");
        // A failed record must not leave partial columns behind (the loader
        // appends a record only after every cell parsed).
        let err = from_csv(&schema(), "NAME,SA\nann,oops\n").unwrap_err();
        assert!(err.to_string().contains("record 2, column 2"));
    }

    #[test]
    fn boolean_parsing() {
        let schema = Schema::builder("t").attr("CH", AttrType::Boolean).build();
        let rel = from_csv(&schema, "CH\ntrue\n0\n").unwrap();
        assert_eq!(rel.row(0).unwrap()[AttrId(0)], Value::Bool(true));
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::Bool(false));
        assert!(from_csv(&schema, "CH\nmaybe\n").is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "NAME,SA\nann,1\n\nbob,2\n";
        let rel = from_csv(&schema(), text).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn quoted_field_with_delimiters_and_newlines_round_trips() {
        let mut rel = Relation::new(schema());
        rel.push(Tuple::new(vec![
            Value::from("line one\nline two, with comma"),
            Value::Int(7),
        ]))
        .unwrap();
        rel.push(Tuple::new(vec![
            Value::from("a \"quoted\"\ncomma, too"),
            Value::Int(8),
        ]))
        .unwrap();
        let text = to_csv(&rel);
        // The embedded newlines must not introduce extra records.
        let back = from_csv(&schema(), &text).unwrap();
        assert_eq!(back, rel);
        assert_eq!(
            back.row(0).unwrap()[AttrId(0)],
            Value::from("line one\nline two, with comma")
        );
    }

    #[test]
    fn quoted_newline_is_not_a_record_break() {
        let text = "NAME,SA\n\"ann\nsmith\",3\nbob,4\n";
        let rel = from_csv(&schema(), text).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(0).unwrap()[AttrId(0)], Value::from("ann\nsmith"));
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::from("bob"));
    }

    #[test]
    fn crlf_records_parse() {
        let text = "NAME,SA\r\nann,1\r\nbob,2\r\n";
        let rel = from_csv(&schema(), text).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1).unwrap()[AttrId(0)], Value::from("bob"));
        // Same file without the final newline: the last record must not
        // keep its '\r' (it would corrupt the cell / fail integer parsing).
        let rel = from_csv(&schema(), "NAME,SA\r\nann,1\r\nbob,2\r").unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(1).unwrap()[AttrId(1)], Value::Int(2));
    }

    #[test]
    fn empty_trailing_column_is_null_and_round_trips() {
        let s = Schema::builder("t").text("A").text("B").text("C").build();
        let text = "A,B,C\nx,y,\n";
        let rel = from_csv(&s, text).unwrap();
        assert_eq!(rel.row(0).unwrap()[AttrId(2)], Value::Null);
        let back = from_csv(&s, &to_csv(&rel)).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn quoted_empty_in_a_typed_column_is_an_error_not_null() {
        // `""` means the empty *string*, never NULL — in an integer column
        // that is a parse error, not a missing value. Use an unquoted empty
        // cell for NULL.
        assert!(from_csv(&schema(), "NAME,SA\nann,\"\"\n").is_err());
        let ok = from_csv(&schema(), "NAME,SA\nann,\n").unwrap();
        assert_eq!(ok.row(0).unwrap()[AttrId(1)], Value::Null);
    }

    #[test]
    fn quoted_empty_is_the_empty_string_not_null() {
        let s = Schema::builder("t").text("A").text("B").build();
        let mut rel = Relation::new(s.clone());
        rel.push(Tuple::new(vec![Value::from(""), Value::Null]))
            .unwrap();
        let text = to_csv(&rel);
        assert_eq!(text, "A,B\n\"\",\n");
        let back = from_csv(&s, &text).unwrap();
        assert_eq!(back.row(0).unwrap()[AttrId(0)], Value::from(""));
        assert_eq!(back.row(0).unwrap()[AttrId(1)], Value::Null);
        assert_eq!(back, rel);
    }

    #[test]
    fn single_column_null_rows_round_trip() {
        // A one-attribute relation serializes a NULL row as an empty record;
        // it must come back as a row, not be skipped as a blank separator.
        let s = Schema::builder("t").text("A").build();
        let mut rel = Relation::new(s.clone());
        rel.push(Tuple::new(vec![Value::from("x")])).unwrap();
        rel.push(Tuple::new(vec![Value::Null])).unwrap();
        rel.push(Tuple::new(vec![Value::from("y")])).unwrap();
        let back = from_csv(&s, &to_csv(&rel)).unwrap();
        assert_eq!(back, rel);
        // Whitespace is data for a single text column, not a blank line.
        let ws = from_csv(&s, "A\n \n").unwrap();
        assert_eq!(ws.row(0).unwrap()[AttrId(0)], Value::from(" "));
        // Multi-column files keep treating blank lines as separators.
        let multi = from_csv(&schema(), "NAME,SA\nann,1\n\nbob,2\n").unwrap();
        assert_eq!(multi.len(), 2);
    }

    #[test]
    fn round_trip_is_stable_through_the_interner() {
        use crate::interner::ValueId;
        // Parsing the same text twice yields tuples with identical interned
        // cells, and a second round trip is byte-identical to the first.
        let text = "NAME,SA\n\"wei, jr.\",1\n\"multi\nline\",2\n,3\n";
        let a = from_csv(&schema(), text).unwrap();
        let b = from_csv(&schema(), text).unwrap();
        for ((_, ta), (_, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta.to_ids(), tb.to_ids(), "interned cells must coincide");
        }
        let once = to_csv(&a);
        let again = to_csv(&from_csv(&schema(), &once).unwrap());
        assert_eq!(once, again);
        // NULL keeps its fixed id through the round trip.
        assert_eq!(a.row(2).unwrap().id_at(AttrId(0)), ValueId::NULL);
    }
}
