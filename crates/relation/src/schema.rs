//! Relation schemas.
//!
//! A [`Schema`] fixes the relation name and an ordered list of attributes
//! (`attr(R)` in the paper's notation), each with a [`Domain`]. Attribute
//! positions are exposed as [`AttrId`]s — small integer newtypes that the rest
//! of the workspace uses to refer to attributes without string lookups.

use crate::domain::{AttrType, Domain};
use crate::error::{RelationError, Result};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Index of an attribute within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub usize);

impl AttrId {
    /// The underlying position.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<usize> for AttrId {
    fn from(i: usize) -> Self {
        AttrId(i)
    }
}

/// A single attribute: a name plus its domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, e.g. `"ZIP"`.
    pub name: String,
    /// Declared domain of the attribute.
    pub domain: Domain,
}

/// An immutable relation schema shared by relations, tableaux and queries.
///
/// Schemas are cheap to clone: the attribute list is reference-counted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attributes: Arc<Vec<Attribute>>,
    by_name: Arc<HashMap<String, AttrId>>,
}

impl Schema {
    /// Starts building a schema for a relation called `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// Builds a schema directly from `(name, domain)` pairs.
    pub fn new<I, S>(name: impl Into<String>, attrs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (S, Domain)>,
        S: Into<String>,
    {
        let mut b = Schema::builder(name);
        for (n, d) in attrs {
            b = b.attr_domain(n, d);
        }
        b.try_build()
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (arity).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// All attribute ids in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.arity()).map(AttrId)
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> Result<&Attribute> {
        self.attributes
            .get(id.0)
            .ok_or(RelationError::AttributeOutOfRange {
                index: id.0,
                arity: self.arity(),
            })
    }

    /// The name of the attribute at `id` (panics if out of range — use
    /// [`Schema::attribute`] for the fallible form).
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attributes[id.0].name
    }

    /// The domain of the attribute at `id`.
    pub fn domain(&self, id: AttrId) -> Result<&Domain> {
        Ok(&self.attribute(id)?.domain)
    }

    /// Resolves an attribute name to its id.
    pub fn resolve(&self, name: &str) -> Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_owned(),
            })
    }

    /// Resolves several attribute names at once, preserving order.
    pub fn resolve_all<'a, I>(&self, names: I) -> Result<Vec<AttrId>>
    where
        I: IntoIterator<Item = &'a str>,
    {
        names.into_iter().map(|n| self.resolve(n)).collect()
    }

    /// Returns `true` iff any attribute in `ids` has a finite domain.
    /// This is the guard used by Theorems 3.2 and 3.5: the efficient
    /// consistency/implication algorithms apply when no finite-domain
    /// attribute occurs in the constraints (or the schema is fixed).
    pub fn has_finite_domain_attr(&self, ids: &[AttrId]) -> bool {
        ids.iter().any(|id| {
            self.attributes
                .get(id.0)
                .map(|a| a.domain.is_finite())
                .unwrap_or(false)
        })
    }

    /// Creates a schema identical to this one but renamed.
    pub fn renamed(&self, name: impl Into<String>) -> Self {
        Schema {
            name: name.into(),
            attributes: Arc::clone(&self.attributes),
            by_name: Arc::clone(&self.by_name),
        }
    }

    /// Creates a schema projecting this one onto the given attributes,
    /// keeping their order as supplied.
    pub fn project(&self, ids: &[AttrId], name: impl Into<String>) -> Result<Self> {
        let mut b = Schema::builder(name);
        for id in ids {
            let a = self.attribute(*id)?;
            b = b.attr_domain(a.name.clone(), a.domain.clone());
        }
        b.try_build()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.domain)?;
        }
        write!(f, ")")
    }
}

/// Incremental builder returned by [`Schema::builder`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Adds an attribute with an unrestricted domain of the given type.
    pub fn attr(self, name: impl Into<String>, ty: AttrType) -> Self {
        self.attr_domain(name, Domain::Unrestricted(ty))
    }

    /// Adds a text attribute (the common case in the paper's examples).
    pub fn text(self, name: impl Into<String>) -> Self {
        self.attr(name, AttrType::Text)
    }

    /// Adds an integer attribute.
    pub fn integer(self, name: impl Into<String>) -> Self {
        self.attr(name, AttrType::Integer)
    }

    /// Adds an attribute with an explicit domain.
    pub fn attr_domain(mut self, name: impl Into<String>, domain: Domain) -> Self {
        self.attributes.push(Attribute {
            name: name.into(),
            domain,
        });
        self
    }

    /// Finishes the schema, panicking on duplicate attribute names.
    /// Use [`SchemaBuilder::try_build`] for the fallible form.
    pub fn build(self) -> Schema {
        // wslint: allow(panic_path, "documented panicking convenience constructor; try_build is the fallible form")
        self.try_build().expect("invalid schema")
    }

    /// Finishes the schema, returning an error on duplicate attribute names.
    pub fn try_build(self) -> Result<Schema> {
        let mut by_name = HashMap::with_capacity(self.attributes.len());
        for (i, a) in self.attributes.iter().enumerate() {
            if by_name.insert(a.name.clone(), AttrId(i)).is_some() {
                return Err(RelationError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Schema {
            name: self.name,
            attributes: Arc::new(self.attributes),
            by_name: Arc::new(by_name),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .text("CC")
            .text("AC")
            .text("PN")
            .text("NM")
            .text("STR")
            .text("CT")
            .text("ZIP")
            .build()
    }

    #[test]
    fn resolve_and_names_round_trip() {
        let s = cust_schema();
        assert_eq!(s.arity(), 7);
        let zip = s.resolve("ZIP").unwrap();
        assert_eq!(s.attr_name(zip), "ZIP");
        assert_eq!(zip, AttrId(6));
    }

    #[test]
    fn resolve_unknown_attribute_errors() {
        let s = cust_schema();
        let err = s.resolve("SALARY").unwrap_err();
        assert!(matches!(err, RelationError::UnknownAttribute { .. }));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::builder("r")
            .text("A")
            .text("A")
            .try_build()
            .unwrap_err();
        assert_eq!(err, RelationError::DuplicateAttribute("A".into()));
    }

    #[test]
    fn resolve_all_preserves_order() {
        let s = cust_schema();
        let ids = s.resolve_all(["CT", "CC"]).unwrap();
        assert_eq!(ids, vec![AttrId(5), AttrId(0)]);
    }

    #[test]
    fn finite_domain_detection() {
        let s = Schema::builder("r")
            .text("A")
            .attr_domain("MR", Domain::finite(["single", "married"]))
            .build();
        let a = s.resolve("A").unwrap();
        let mr = s.resolve("MR").unwrap();
        assert!(!s.has_finite_domain_attr(&[a]));
        assert!(s.has_finite_domain_attr(&[a, mr]));
    }

    #[test]
    fn projection_keeps_requested_order() {
        let s = cust_schema();
        let ids = s.resolve_all(["ZIP", "CC"]).unwrap();
        let p = s.project(&ids, "proj").unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attr_name(AttrId(0)), "ZIP");
        assert_eq!(p.attr_name(AttrId(1)), "CC");
    }

    #[test]
    fn attribute_out_of_range() {
        let s = cust_schema();
        assert!(matches!(
            s.attribute(AttrId(99)),
            Err(RelationError::AttributeOutOfRange {
                index: 99,
                arity: 7
            })
        ));
    }

    #[test]
    fn renamed_shares_attributes() {
        let s = cust_schema();
        let r = s.renamed("cust2");
        assert_eq!(r.name(), "cust2");
        assert_eq!(r.arity(), s.arity());
        assert_eq!(r.resolve("ZIP").unwrap(), s.resolve("ZIP").unwrap());
    }

    #[test]
    fn display_contains_name_and_attrs() {
        let s = Schema::builder("r").text("A").integer("B").build();
        let d = s.to_string();
        assert!(d.starts_with("r("));
        assert!(d.contains("A: TEXT"));
        assert!(d.contains("B: INTEGER"));
    }

    #[test]
    fn schema_new_from_pairs() {
        let s = Schema::new("r", [("A", Domain::text()), ("B", Domain::boolean())]).unwrap();
        assert_eq!(s.arity(), 2);
        assert!(s.domain(AttrId(1)).unwrap().is_finite());
    }
}
