//! Benchmark harness reproducing the evaluation of Section 5 (Fig. 9).
//!
//! Every panel of Figure 9 has a corresponding experiment function in
//! [`experiments`]; the `experiments` binary runs them and prints the series
//! the paper plots (detection time as a function of SZ, TABSZ, NUMCONSTs,
//! NOISE, …). Absolute numbers differ from the paper — the substrate is this
//! workspace's in-memory SQL engine rather than DB2 on 2007 hardware — but
//! the *shape* of each curve (who wins, what scales linearly, what has no
//! effect) is the reproduction target; see `EXPERIMENTS.md`.
//!
//! Two sizes are supported: `quick` (default; minutes) and `full`
//! (`--full`; closer to the paper's parameters, tens of minutes). The
//! deviations in quick mode are only in data/tableau sizes, never in the
//! experimental structure.

use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_relation::Relation;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

pub mod experiments;

/// One measured point of an experiment: a series name, the x-axis value, and
/// the measured wall-clock seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// x-axis value (e.g. `"50K"` tuples, `"30%"` constants).
    pub x: String,
    /// Series the point belongs to (e.g. `"CNF"`, `"DNF"`, `"NumAttrs=3"`).
    pub series: String,
    /// Measured wall-clock time in seconds.
    pub seconds: f64,
    /// Free-form detail (violations found, rows examined, …).
    pub detail: String,
}

/// A full experiment: an identifier (the paper's figure panel), a title and
/// the measured points.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Identifier, e.g. `"fig9a"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Parameters the experiment was run with (printed alongside results).
    pub parameters: String,
    /// The measured points, in series-major order.
    pub points: Vec<Point>,
}

impl Experiment {
    /// Renders the experiment as a Markdown table (one row per x value, one
    /// column per series).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "Parameters: {}\n", self.parameters);
        let mut series: Vec<&str> = Vec::new();
        for p in &self.points {
            if !series.contains(&p.series.as_str()) {
                series.push(&p.series);
            }
        }
        let mut xs: Vec<&str> = Vec::new();
        for p in &self.points {
            if !xs.contains(&p.x.as_str()) {
                xs.push(&p.x);
            }
        }
        let _ = write!(out, "| x |");
        for s in &series {
            let _ = write!(out, " {s} (s) |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for x in &xs {
            let _ = write!(out, "| {x} |");
            for s in &series {
                match self.points.iter().find(|p| p.x == *x && p.series == *s) {
                    Some(p) => {
                        let _ = write!(out, " {:.3} |", p.seconds);
                    }
                    None => {
                        let _ = write!(out, " – |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out);
        out
    }
}

/// Generates a tax-records instance of the given size and noise, wrapped for
/// sharing with detectors. Callers should reuse the returned `Arc`.
pub fn tax_data(size: usize, noise_percent: f64, seed: u64) -> Arc<Relation> {
    Arc::new(
        TaxGenerator::new(TaxConfig {
            size,
            noise_percent,
            seed,
        })
        .generate()
        .relation,
    )
}

/// Times a closure, returning its result and the elapsed seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats a tuple count the way the paper labels its x axes (`10K`, `500K`).
pub fn fmt_size(n: usize) -> String {
    if n.is_multiple_of(1000) {
        format!("{}K", n / 1000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_has_one_column_per_series() {
        let exp = Experiment {
            id: "fig9x",
            title: "demo".into(),
            parameters: "none".into(),
            points: vec![
                Point {
                    x: "10K".into(),
                    series: "CNF".into(),
                    seconds: 1.0,
                    detail: String::new(),
                },
                Point {
                    x: "10K".into(),
                    series: "DNF".into(),
                    seconds: 0.5,
                    detail: String::new(),
                },
                Point {
                    x: "20K".into(),
                    series: "CNF".into(),
                    seconds: 2.0,
                    detail: String::new(),
                },
            ],
        };
        let md = exp.to_markdown();
        assert!(md.contains("| x | CNF (s) | DNF (s) |"));
        assert!(md.contains("| 10K | 1.000 | 0.500 |"));
        assert!(md.contains("| 20K | 2.000 | – |"));
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(10_000), "10K");
        assert_eq!(fmt_size(500_000), "500K");
        assert_eq!(fmt_size(1234), "1234");
    }

    #[test]
    fn timing_returns_result_and_elapsed() {
        let (v, secs) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn tax_data_builder_produces_requested_size() {
        let data = tax_data(500, 5.0, 1);
        assert_eq!(data.len(), 500);
    }
}
