//! Experiment driver: regenerates every table/figure of the paper's
//! evaluation section on the in-memory substrate.
//!
//! Usage:
//!
//! ```text
//! experiments [--full] [--list] [id ...]
//! ```
//!
//! * with no ids, every experiment runs (Fig. 9(a)–(f), the merged-CFD study
//!   and the ablations);
//! * `--full` uses parameters close to the paper's (larger data and tableaux;
//!   substantially slower);
//! * `--list` prints the available experiment ids and exits.
//!
//! Output is Markdown, suitable for pasting into EXPERIMENTS.md.

use cfd_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = !full;
    if args.iter().any(|a| a == "--list") {
        println!(
            "available experiments: fig9a fig9b fig9c fig9d fig9e fig9f merged \
             ablation-detectors ablation-mincover ablation-parallel"
        );
        return;
    }
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    println!(
        "# CFD detection experiments ({} mode)\n",
        if quick { "quick" } else { "full" }
    );

    let experiments = if ids.is_empty() {
        experiments::all(quick)
    } else {
        let mut selected = Vec::new();
        for id in ids {
            match experiments::by_id(id, quick) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment id `{id}` (use --list)");
                    std::process::exit(2);
                }
            }
        }
        selected
    };

    for experiment in experiments {
        print!("{}", experiment.to_markdown());
    }
}
