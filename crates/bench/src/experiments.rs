//! The experiment functions, one per panel of Figure 9 plus the merged-CFD
//! study and the ablations called out in DESIGN.md.

use crate::{fmt_size, tax_data, time, Experiment, Point};
use cfd_core::CfdSet;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{Detector, DirectDetector};
use cfd_sql::Strategy;
use std::sync::Arc;

/// Sizes (SZ) swept by the SZ-scalability experiments.
fn sizes(quick: bool) -> Vec<usize> {
    if quick {
        vec![10_000, 40_000, 70_000, 100_000]
    } else {
        (1..=10).map(|i| i * 10_000).collect()
    }
}

/// Tableau size used by the CNF/DNF and QC/QV experiments.
fn tabsz(quick: bool) -> usize {
    if quick {
        200
    } else {
        1_000
    }
}

/// Fig. 9(a): CNF vs DNF evaluation of the detection query pair,
/// NUMCONSTs = 100%.
pub fn fig9a(quick: bool) -> Experiment {
    cnf_vs_dnf("fig9a", 100.0, quick)
}

/// Fig. 9(b): CNF vs DNF, NUMCONSTs = 50%.
pub fn fig9b(quick: bool) -> Experiment {
    cnf_vs_dnf("fig9b", 50.0, quick)
}

fn cnf_vs_dnf(id: &'static str, pct_consts: f64, quick: bool) -> Experiment {
    let tab = tabsz(quick);
    let cfd = CfdWorkload::new(11).single(EmbeddedFd::ZipCityToState, tab, pct_consts);
    let mut points = Vec::new();
    for sz in sizes(quick) {
        let data = tax_data(sz, 5.0, 17);
        for (name, strategy) in [("CNF", Strategy::cnf()), ("DNF", Strategy::dnf())] {
            let detector = Detector::new().with_strategy(strategy);
            let (result, seconds) = time(|| detector.detect_shared(&cfd, Arc::clone(&data)));
            let (violations, _) = result.expect("detection succeeds");
            points.push(Point {
                x: fmt_size(sz),
                series: name.into(),
                seconds,
                detail: format!("{} violations", violations.total()),
            });
        }
    }
    Experiment {
        id,
        title: format!("CNF vs DNF detection time (NUMCONSTs = {pct_consts}%)"),
        parameters: format!(
            "NOISE 5%, one CFD [ZIP, CT] -> [ST] (NUMATTRs 3), TABSZ {tab}, SZ {:?}",
            sizes(quick)
        ),
        points,
    }
}

/// Fig. 9(c): how detection time splits between the `QC` and `QV` queries.
pub fn fig9c(quick: bool) -> Experiment {
    let tab = tabsz(quick);
    let cfd = CfdWorkload::new(13).single(EmbeddedFd::ZipCityToState, tab, 100.0);
    let detector = Detector::new();
    let mut points = Vec::new();
    for sz in sizes(quick) {
        let data = tax_data(sz, 5.0, 19);
        let (_, qc_seconds) = time(|| detector.qc_only(&cfd, Arc::clone(&data)).unwrap());
        let (_, qv_seconds) = time(|| detector.qv_only(&cfd, Arc::clone(&data)).unwrap());
        points.push(Point {
            x: fmt_size(sz),
            series: "Q^C".into(),
            seconds: qc_seconds,
            detail: String::new(),
        });
        points.push(Point {
            x: fmt_size(sz),
            series: "Q^V".into(),
            seconds: qv_seconds,
            detail: String::new(),
        });
    }
    Experiment {
        id: "fig9c",
        title: "QC vs QV detection time".into(),
        parameters: format!("NOISE 5%, NUMATTRs 3, TABSZ {tab}, NUMCONSTs 100%, DNF strategy"),
        points,
    }
}

/// Fig. 9(d): scalability in the tableau size TABSZ, for NUMATTRs 3 and 4.
pub fn fig9d(quick: bool) -> Experiment {
    let sz = if quick { 50_000 } else { 500_000 };
    let tab_sizes: Vec<usize> = if quick {
        vec![500, 1_000, 1_500, 2_000, 2_500]
    } else {
        (1..=10).map(|i| i * 1_000).collect()
    };
    let data = tax_data(sz, 5.0, 23);
    let detector = Detector::new();
    let mut points = Vec::new();
    for &tab in &tab_sizes {
        for (series, fd) in [
            ("NumAttrs=3", EmbeddedFd::ZipCityToState),
            ("NumAttrs=4", EmbeddedFd::AreaCityToState),
        ] {
            let cfd = CfdWorkload::new(29).single(fd, tab, 50.0);
            let (result, seconds) = time(|| detector.detect_shared(&cfd, Arc::clone(&data)));
            let (violations, _) = result.expect("detection succeeds");
            points.push(Point {
                x: fmt_size(tab),
                series: series.into(),
                seconds,
                detail: format!("{} violations", violations.total()),
            });
        }
    }
    Experiment {
        id: "fig9d",
        title: "Scalability in TABSZ".into(),
        parameters: format!("SZ {}, NOISE 5%, NUMCONSTs 50%, DNF strategy", fmt_size(sz)),
        points,
    }
}

/// Fig. 9(e): scalability in the percentage of constant pattern rows.
pub fn fig9e(quick: bool) -> Experiment {
    let sz = if quick { 30_000 } else { 100_000 };
    let tab = if quick { 300 } else { 1_000 };
    let data = tax_data(sz, 5.0, 31);
    let detector = Detector::new();
    let mut points = Vec::new();
    for pct in (1..=10).rev().map(|i| i as f64 * 10.0) {
        let cfd = CfdWorkload::new(37).single(EmbeddedFd::ZipCityToState, tab, pct);
        let (result, seconds) = time(|| detector.detect_shared(&cfd, Arc::clone(&data)));
        let (violations, _) = result.expect("detection succeeds");
        points.push(Point {
            x: format!("{pct}%"),
            series: "detection".into(),
            seconds,
            detail: format!("{} violations", violations.total()),
        });
    }
    Experiment {
        id: "fig9e",
        title: "Scalability in NUMCONSTs".into(),
        parameters: format!(
            "SZ {}, NOISE 5%, TABSZ {tab}, NUMATTRs 3, DNF strategy",
            fmt_size(sz)
        ),
        points,
    }
}

/// Fig. 9(f): scalability in the NOISE percentage, using the zip→state CFD
/// with a pattern row for every zip→state pair.
pub fn fig9f(quick: bool) -> Experiment {
    let sz = if quick { 30_000 } else { 100_000 };
    let cfd = CfdWorkload::new(41).zip_state_full();
    let detector = Detector::new();
    let mut points = Vec::new();
    for noise in 0..=9 {
        let data = tax_data(sz, noise as f64, 43 + noise as u64);
        let (result, seconds) = time(|| detector.detect_shared(&cfd, Arc::clone(&data)));
        let (violations, _) = result.expect("detection succeeds");
        points.push(Point {
            x: format!("{noise}%"),
            series: "detection".into(),
            seconds,
            detail: format!("{} violations", violations.total()),
        });
    }
    Experiment {
        id: "fig9f",
        title: "Scalability in NOISE".into(),
        parameters: format!(
            "SZ {}, zip→state CFD with all {} zip→state pattern rows (NUMATTRs 2, NUMCONSTs 100%), DNF strategy",
            fmt_size(sz),
            cfd.tableau().len()
        ),
        points,
    }
}

/// The merged-CFD study discussed (without a figure) at the end of Section 5:
/// per-CFD query pairs (2 × |Σ| passes) vs the single merged pair (2 passes),
/// for a set of *related* CFDs (shared attributes) and *unrelated* CFDs.
pub fn merged(quick: bool) -> Experiment {
    let sz = if quick { 30_000 } else { 100_000 };
    let tab = if quick { 200 } else { 1_000 };
    let data = tax_data(sz, 5.0, 47);
    let workload = CfdWorkload::new(53);
    let related = vec![
        workload.single(EmbeddedFd::ZipToState, tab, 100.0),
        workload.single(EmbeddedFd::ZipCityToState, tab, 100.0),
        workload.single(EmbeddedFd::ZipToCity, tab, 100.0),
    ];
    let unrelated = vec![
        workload.single(EmbeddedFd::ZipToState, tab, 100.0),
        workload.single(EmbeddedFd::AreaToCity, tab, 100.0),
        workload.single(EmbeddedFd::StateMaritalToExemption, tab, 100.0),
    ];
    let detector = Detector::new();
    let mut points = Vec::new();
    for (group, cfds) in [("related", &related), ("unrelated", &unrelated)] {
        let (_, per_cfd_seconds) = time(|| detector.detect_set(cfds, Arc::clone(&data)).unwrap());
        let (_, merged_seconds) =
            time(|| detector.detect_set_merged(cfds, Arc::clone(&data)).unwrap());
        points.push(Point {
            x: group.into(),
            series: "per-CFD query pairs".into(),
            seconds: per_cfd_seconds,
            detail: String::new(),
        });
        points.push(Point {
            x: group.into(),
            series: "merged query pair".into(),
            seconds: merged_seconds,
            detail: String::new(),
        });
    }
    Experiment {
        id: "merged",
        title: "Validating multiple CFDs: per-CFD vs merged tableaux".into(),
        parameters: format!(
            "SZ {}, NOISE 5%, 3 CFDs, TABSZ {tab}, NUMCONSTs 100%",
            fmt_size(sz)
        ),
        points,
    }
}

/// Ablation: SQL detection (DNF indexed / DNF unindexed / CNF) vs the direct
/// hash-based detector.
pub fn ablation_detectors(quick: bool) -> Experiment {
    let sz = if quick { 30_000 } else { 100_000 };
    let tab = if quick { 200 } else { 1_000 };
    let data = tax_data(sz, 5.0, 59);
    let cfd = CfdWorkload::new(61).single(EmbeddedFd::ZipCityToState, tab, 100.0);
    let mut points = Vec::new();
    for (name, strategy) in [
        ("DNF + indexes", Strategy::dnf()),
        ("DNF, no indexes", Strategy::dnf_unindexed()),
        ("CNF", Strategy::cnf()),
    ] {
        let detector = Detector::new().with_strategy(strategy);
        let (_, seconds) = time(|| detector.detect_shared(&cfd, Arc::clone(&data)).unwrap());
        points.push(Point {
            x: "SQL".into(),
            series: name.into(),
            seconds,
            detail: String::new(),
        });
    }
    let (_, direct_seconds) = time(|| DirectDetector::new().detect(&cfd, &data));
    points.push(Point {
        x: "non-SQL".into(),
        series: "direct hash detector".into(),
        seconds: direct_seconds,
        detail: String::new(),
    });
    Experiment {
        id: "ablation-detectors",
        title: "Detection strategies (SQL plans vs direct detector)".into(),
        parameters: format!("SZ {}, NOISE 5%, TABSZ {tab}, NUMATTRs 3", fmt_size(sz)),
        points,
    }
}

/// Ablation: detecting with the raw CFD set vs its minimal cover (Section 3.3
/// motivates MinCover as a detection optimization).
pub fn ablation_mincover(quick: bool) -> Experiment {
    let sz = if quick { 20_000 } else { 50_000 };
    let data = tax_data(sz, 5.0, 67);
    let workload = CfdWorkload::new(71);
    // A deliberately redundant set: the same zip→state CFD repeated plus a
    // wider variant whose extra attribute is redundant.
    let mut cfds = vec![
        workload.single(EmbeddedFd::ZipToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipCityToState, 100, 100.0),
    ];
    cfds.push(cfds[0].clone());
    let set = CfdSet::from_cfds(cfds.clone()).expect("same schema");
    let cover = set.minimal_cover().expect("consistent");
    let cover_cfds: Vec<_> = cover.clone().into_iter().collect();
    let detector = Detector::new();
    let (_, raw_seconds) = time(|| detector.detect_set(&cfds, Arc::clone(&data)).unwrap());
    let (_, cover_seconds) = time(|| detector.detect_set(&cover_cfds, Arc::clone(&data)).unwrap());
    Experiment {
        id: "ablation-mincover",
        title: "Detection with raw Σ vs its minimal cover".into(),
        parameters: format!(
            "SZ {}, NOISE 5%; raw Σ: {} CFDs / {} pattern rows; cover: {} CFDs / {} pattern rows",
            fmt_size(sz),
            cfds.len(),
            cfds.iter().map(|c| c.tableau().len()).sum::<usize>(),
            cover_cfds.len(),
            cover.total_patterns(),
        ),
        points: vec![
            Point {
                x: "detection".into(),
                series: "raw Σ".into(),
                seconds: raw_seconds,
                detail: String::new(),
            },
            Point {
                x: "detection".into(),
                series: "minimal cover".into(),
                seconds: cover_seconds,
                detail: String::new(),
            },
        ],
    }
}

/// Ablation: single-threaded vs parallel per-CFD detection (extension).
pub fn ablation_parallel(quick: bool) -> Experiment {
    let sz = if quick { 30_000 } else { 100_000 };
    let tab = if quick { 200 } else { 1_000 };
    let data = tax_data(sz, 5.0, 73);
    let cfds = CfdWorkload::new(79).many(6, 4, tab, 100.0);
    let detector = Detector::new();
    let (_, serial) = time(|| detector.detect_set(&cfds, Arc::clone(&data)).unwrap());
    let (_, parallel) = time(|| {
        detector
            .detect_set_parallel(&cfds, Arc::clone(&data), 4)
            .unwrap()
    });
    Experiment {
        id: "ablation-parallel",
        title: "Per-CFD detection: single-threaded vs 4 worker threads".into(),
        parameters: format!("SZ {}, NOISE 5%, 6 CFDs, TABSZ {tab}", fmt_size(sz)),
        points: vec![
            Point {
                x: "6 CFDs".into(),
                series: "serial".into(),
                seconds: serial,
                detail: String::new(),
            },
            Point {
                x: "6 CFDs".into(),
                series: "4 threads".into(),
                seconds: parallel,
                detail: String::new(),
            },
        ],
    }
}

/// Every experiment, in presentation order.
pub fn all(quick: bool) -> Vec<Experiment> {
    vec![
        fig9a(quick),
        fig9b(quick),
        fig9c(quick),
        fig9d(quick),
        fig9e(quick),
        fig9f(quick),
        merged(quick),
        ablation_detectors(quick),
        ablation_mincover(quick),
        ablation_parallel(quick),
    ]
}

/// Looks an experiment up by id, using the quick/full parameterization.
pub fn by_id(id: &str, quick: bool) -> Option<Experiment> {
    match id {
        "fig9a" => Some(fig9a(quick)),
        "fig9b" => Some(fig9b(quick)),
        "fig9c" => Some(fig9c(quick)),
        "fig9d" => Some(fig9d(quick)),
        "fig9e" => Some(fig9e(quick)),
        "fig9f" => Some(fig9f(quick)),
        "merged" => Some(merged(quick)),
        "ablation-detectors" => Some(ablation_detectors(quick)),
        "ablation-mincover" => Some(ablation_mincover(quick)),
        "ablation-parallel" => Some(ablation_parallel(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_resolve() {
        for id in [
            "fig9a",
            "fig9b",
            "fig9c",
            "fig9d",
            "fig9e",
            "fig9f",
            "merged",
            "ablation-detectors",
            "ablation-mincover",
            "ablation-parallel",
        ] {
            // Only check that the id is known; running them is the binary's job.
            assert!(
                matches!(
                    id,
                    "fig9a" | "fig9b" | "fig9c" | "fig9d" | "fig9e" | "fig9f" | "merged"
                ) || id.starts_with("ablation-"),
                "unknown id {id}"
            );
        }
        assert!(by_id("nope", true).is_none());
    }

    #[test]
    fn sizes_and_tabsz_depend_on_mode() {
        assert_eq!(sizes(true).len(), 4);
        assert_eq!(sizes(false).len(), 10);
        assert!(tabsz(false) > tabsz(true));
    }
}
