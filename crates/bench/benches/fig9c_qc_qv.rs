//! Criterion bench for Fig. 9(c): the QC / QV split of detection time.

use cfd_bench::tax_data;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::Detector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfd = CfdWorkload::new(13).single(EmbeddedFd::ZipCityToState, 100, 100.0);
    let detector = Detector::new();
    let mut group = c.benchmark_group("fig9c_qc_qv");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for sz in [10_000usize, 20_000] {
        let data = tax_data(sz, 5.0, 19);
        group.bench_with_input(BenchmarkId::new("qc", sz), &data, |b, data| {
            b.iter(|| detector.qc_only(&cfd, Arc::clone(data)).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("qv", sz), &data, |b, data| {
            b.iter(|| detector.qv_only(&cfd, Arc::clone(data)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
