//! Criterion bench for Fig. 9(e): scalability in the percentage of constant
//! pattern rows (variables restrict index use and slow detection down).

use cfd_bench::tax_data;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::Detector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let data = tax_data(20_000, 5.0, 31);
    let detector = Detector::new();
    let mut group = c.benchmark_group("fig9e_numconsts");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for pct in [100.0f64, 60.0, 20.0] {
        let cfd = CfdWorkload::new(37).single(EmbeddedFd::ZipCityToState, 200, pct);
        group.bench_with_input(BenchmarkId::new("consts", pct as u64), &data, |b, data| {
            b.iter(|| detector.detect_shared(&cfd, Arc::clone(data)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
