//! Storage-layer bench: cold out-of-core scans vs. in-memory detection,
//! and the group-commit latency of the WAL write path.
//!
//! Three series over a generated tax-records workload:
//!
//! * `in_memory` — [`DirectDetector`] over the materialized [`Relation`]:
//!   the ceiling a disk-backed scan is compared against;
//! * `warm_scan` — [`ColumnStore::detect`] with the buffer pool left warm
//!   from the previous iteration (page hits, no I/O);
//! * `cold_scan` — the same scan after [`ColumnStore::drop_page_cache`],
//!   so every page is read back through the (out-of-core, 64-frame) pool;
//!
//! plus `group_commit` — one durable [`ColumnStore::apply_batch`] of 64
//! insert/delete ops (net size zero, so the store stays fixed): the
//! number reported is the full commit latency including the WAL fsync.
//!
//! Besides the harness output, the bench writes
//! `crates/bench/BENCH_store.json` — `{rows, series, ns_per_iter}`
//! records the CI workflow uploads as an artifact.

use cfd::store::{ColumnStore, StoreOptions};
use cfd_core::Cfd;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{BatchOp, DirectDetector, Violations};
use cfd_relation::{Relation, Tuple, Value};
use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tax_cfds() -> Vec<Cfd> {
    let workload = CfdWorkload::new(13);
    [
        EmbeddedFd::ZipToState,
        EmbeddedFd::AreaToCity,
        EmbeddedFd::StateMaritalToExemption,
    ]
    .iter()
    .map(|&fd| workload.single(fd, 40, 60.0))
    .collect()
}

fn detect_in_memory(cfds: &[Cfd], data: &Relation) -> Violations {
    let direct = DirectDetector::new();
    let mut out = Violations::new();
    for cfd in cfds {
        out.merge(direct.detect(cfd, data));
    }
    out
}

/// A batch of 64 ops that leaves the store unchanged: 32 inserts of rows
/// distinct from the workload (a sentinel name column), each paired with
/// its delete.
fn churn_batch(data: &Relation) -> Vec<BatchOp> {
    let mut ops = Vec::with_capacity(64);
    for i in 0..32usize {
        let mut cells = data.row(i).expect("workload has 32 rows").to_values();
        cells[3] = Value::from(format!("churn-{i}").as_str());
        let t = Tuple::new(cells);
        ops.push(BatchOp::Insert(t.clone()));
        ops.push(BatchOp::Delete(t));
    }
    ops
}

fn scratch_dir(rows: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfd-bench-store-{rows}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn time_ns_per_iter<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() / iters as u128
}

fn bench(c: &mut Criterion) {
    let cfds = tax_cfds();
    let mut json_entries: Vec<String> = Vec::new();

    for rows in [10_000usize, 40_000] {
        let data = TaxGenerator::new(TaxConfig {
            size: rows,
            noise_percent: 5.0,
            seed: 23,
        })
        .generate()
        .relation;

        let dir = scratch_dir(rows);
        let opts = StoreOptions {
            // 64 frames = 256 KiB of page memory; the 40k-row workload
            // holds ~600 pages of cells, so cold scans are out-of-core.
            pool_pages: 64,
            ..StoreOptions::default()
        };
        let mut store =
            ColumnStore::open_or_create(&dir, data.schema(), opts).expect("create store");
        let ops: Vec<BatchOp> = data.to_tuples().into_iter().map(BatchOp::Insert).collect();
        store.apply_batch(&ops).expect("load workload");

        // Sanity outside the timed region: the store scan is byte-identical
        // to in-memory detection, cold or warm.
        let memory_report = detect_in_memory(&cfds, &data);
        assert!(!memory_report.is_clean(), "workload must carry noise");
        store.drop_page_cache().expect("drop cache");
        assert_eq!(
            store.detect(&cfds).expect("cold scan").canonical_bytes(),
            memory_report.canonical_bytes(),
            "cold store scan diverged at {rows} rows"
        );

        let mut group = c.benchmark_group(format!("store/{rows}"));
        group
            .sample_size(5)
            .measurement_time(Duration::from_secs(if rows >= 40_000 { 15 } else { 5 }));
        group.bench_function("in_memory", |b| {
            b.iter(|| detect_in_memory(&cfds, &data));
        });
        group.bench_function("warm_scan", |b| {
            b.iter(|| store.detect(&cfds).expect("warm scan"));
        });
        group.bench_function("cold_scan", |b| {
            b.iter(|| {
                store.drop_page_cache().expect("drop cache");
                store.detect(&cfds).expect("cold scan")
            });
        });
        let churn = churn_batch(&data);
        group.bench_function("group_commit", |b| {
            b.iter(|| store.apply_batch(&churn).expect("churn batch"));
        });
        group.finish();

        // Hand-timed JSON series (the criterion shim prints text only).
        let iters = if rows >= 40_000 { 3 } else { 10 };
        let in_memory_ns = time_ns_per_iter(iters, || detect_in_memory(&cfds, &data));
        let warm_ns = time_ns_per_iter(iters, || store.detect(&cfds).expect("warm"));
        let cold_ns = time_ns_per_iter(iters, || {
            store.drop_page_cache().expect("drop cache");
            store.detect(&cfds).expect("cold")
        });
        let commit_ns = time_ns_per_iter(iters, || store.apply_batch(&churn).expect("churn"));
        for (series, ns) in [
            ("in_memory", in_memory_ns),
            ("warm_scan", warm_ns),
            ("cold_scan", cold_ns),
            ("group_commit_64ops", commit_ns),
        ] {
            json_entries.push(format!(
                "{{\"rows\": {rows}, \"series\": \"{series}\", \"ns_per_iter\": {ns}}}"
            ));
        }
        let stats = store.pool_stats();
        println!(
            "store/{rows}: in_memory {in_memory_ns} ns/iter, warm {warm_ns} ns/iter, \
             cold {cold_ns} ns/iter ({:.2}x over in-memory), group_commit(64 ops) {commit_ns} ns \
             [pool: capacity {}, peak {}]",
            cold_ns as f64 / in_memory_ns as f64,
            stats.capacity,
            stats.peak_resident
        );
        assert!(
            stats.peak_resident <= stats.capacity,
            "pool exceeded its budget under the bench workload"
        );

        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // BENCH_store.json: one JSON document, entries in measurement order.
    let mut json = String::from("{\n  \"bench\": \"store\",\n  \"entries\": [\n");
    for (i, e) in json_entries.iter().enumerate() {
        let sep = if i + 1 == json_entries.len() { "" } else { "," };
        let _ = writeln!(json, "    {e}{sep}");
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_store.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
