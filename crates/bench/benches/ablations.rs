//! Criterion benches for the design-choice ablations listed in DESIGN.md:
//! SQL strategies vs the direct detector, raw Σ vs its minimal cover, and
//! the reasoning primitives (consistency / implication / MinCover) themselves.

use cfd_bench::tax_data;
use cfd_core::CfdSet;
use cfd_datagen::cust::fig2_cfd_set;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{Detector, DirectDetector};
use cfd_repair::Repairer;
use cfd_sql::Strategy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn detection_strategies(c: &mut Criterion) {
    let data = tax_data(10_000, 5.0, 59);
    let cfd = CfdWorkload::new(61).single(EmbeddedFd::ZipCityToState, 100, 100.0);
    let mut group = c.benchmark_group("ablation_detection_strategy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("sql_dnf_indexed", |b| {
        let d = Detector::new().with_strategy(Strategy::dnf());
        b.iter(|| d.detect_shared(&cfd, Arc::clone(&data)).unwrap());
    });
    group.bench_function("sql_dnf_unindexed", |b| {
        let d = Detector::new().with_strategy(Strategy::dnf_unindexed());
        b.iter(|| d.detect_shared(&cfd, Arc::clone(&data)).unwrap());
    });
    group.bench_function("sql_cnf", |b| {
        let d = Detector::new().with_strategy(Strategy::cnf());
        b.iter(|| d.detect_shared(&cfd, Arc::clone(&data)).unwrap());
    });
    group.bench_function("direct_hash", |b| {
        let d = DirectDetector::new();
        b.iter(|| d.detect(&cfd, &data));
    });
    group.finish();
}

fn reasoning(c: &mut Criterion) {
    let set = fig2_cfd_set();
    let normal = set.normalize().unwrap();
    let mut group = c.benchmark_group("ablation_reasoning");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("consistency_fig2", |b| {
        b.iter(|| cfd_core::is_consistent(&normal));
    });
    group.bench_function("implication_fig2", |b| {
        let phi = normal[0].clone();
        b.iter(|| cfd_core::implies(&normal, &phi));
    });
    group.bench_function("mincover_fig2", |b| {
        b.iter(|| cfd_core::minimal_cover(&normal));
    });
    group.finish();
}

fn mincover_vs_raw_detection(c: &mut Criterion) {
    let data = tax_data(10_000, 5.0, 67);
    let workload = CfdWorkload::new(71);
    let cfds = vec![
        workload.single(EmbeddedFd::ZipToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipCityToState, 100, 100.0),
    ];
    let cover: Vec<_> = CfdSet::from_cfds(cfds.clone())
        .unwrap()
        .minimal_cover()
        .unwrap()
        .into_iter()
        .collect();
    let detector = Detector::new();
    let mut group = c.benchmark_group("ablation_mincover");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("raw_sigma", |b| {
        b.iter(|| detector.detect_set(&cfds, Arc::clone(&data)).unwrap());
    });
    group.bench_function("minimal_cover", |b| {
        b.iter(|| detector.detect_set(&cover, Arc::clone(&data)).unwrap());
    });
    group.finish();
}

fn repair(c: &mut Criterion) {
    let data = tax_data(2_000, 10.0, 73);
    let cfd = CfdWorkload::new(79).zip_state_full();
    let mut group = c.benchmark_group("ablation_repair");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("repair_zip_state", |b| {
        let repairer = Repairer::new();
        b.iter(|| repairer.repair(std::slice::from_ref(&cfd), &data));
    });
    group.finish();
}

criterion_group!(
    benches,
    detection_strategies,
    reasoning,
    mincover_vs_raw_detection,
    repair
);
criterion_main!(benches);
