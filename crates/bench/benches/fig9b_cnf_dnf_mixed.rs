//! Criterion bench for Fig. 9(b): CNF vs DNF with 50% variable pattern rows.

use cfd_bench::tax_data;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::Detector;
use cfd_sql::Strategy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfd = CfdWorkload::new(12).single(EmbeddedFd::ZipCityToState, 100, 50.0);
    let mut group = c.benchmark_group("fig9b_cnf_dnf_mixed");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for sz in [5_000usize, 10_000] {
        let data = tax_data(sz, 5.0, 18);
        for (name, strategy) in [("cnf", Strategy::cnf()), ("dnf", Strategy::dnf())] {
            let detector = Detector::new().with_strategy(strategy);
            group.bench_with_input(BenchmarkId::new(name, sz), &data, |b, data| {
                b.iter(|| detector.detect_shared(&cfd, Arc::clone(data)).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
