//! Prepared-engine amortization bench: repeated small-batch serving through
//! a reused `Engine`/`Session` vs the one-shot facade path.
//!
//! The workload is the acceptance scenario of the API redesign: **100
//! batches of 1 000 tax records each** (5% noise) under two CFDs
//! (`ZipToState`, `AreaToCity`), asking after every batch "what are the
//! violations now?".
//!
//! * `oneshot` — what the pre-redesign facade forced on every batch:
//!   rebuild the accumulated relation, call `cfd::detect_violations`
//!   (which re-validates consistency, re-generates the queries, re-builds
//!   every LHS index) and re-scan all rows seen so far —
//!   `O(Σ_k k·B) = O(N²/2B)` row scans over the stream;
//! * `prepared` — the redesign: one `Engine` compiled up front, one
//!   `Session`, each batch absorbed by `Session::apply_batch` with
//!   group-local incremental maintenance returning the full report —
//!   `O(batch + touched groups)` per batch.
//!
//! Outside the timed region the bench asserts the two paths report
//! **byte-identically after every batch**, and additionally that a reused
//! session's `detect()` matches the one-shot `Direct`/`Sql`/`SqlMerged`/
//! `Sharded` paths on the final instance. A second pair measures repeated
//! repair of a fixed 10k-row noisy instance through a reused session
//! (shared LHS indexes) vs the one-shot `repair_violations` path.
//!
//! Besides the harness output it writes `crates/bench/BENCH_prepared.json`
//! — machine-readable `{series, ns_per_iter, speedup}` records — which CI
//! uploads next to the columnar and repair artifacts.

use cfd::prelude::*;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCHES: usize = 100;
const BATCH_ROWS: usize = 1_000;

fn workload_cfds() -> Vec<Cfd> {
    let w = CfdWorkload::new(11);
    vec![
        w.single(EmbeddedFd::ZipToState, 120, 100.0),
        w.single(EmbeddedFd::AreaToCity, 100, 60.0),
    ]
}

/// The stream: 100 × 1k-row batches, pre-split so neither series pays
/// generation inside the timed region.
fn stream_batches() -> (Schema, Vec<Vec<Tuple>>) {
    let all = TaxGenerator::new(TaxConfig {
        size: BATCHES * BATCH_ROWS,
        noise_percent: 5.0,
        seed: 77,
    })
    .generate()
    .relation;
    let schema = all.schema().clone();
    let tuples = all.to_tuples();
    let batches = tuples.chunks(BATCH_ROWS).map(<[Tuple]>::to_vec).collect();
    (schema, batches)
}

/// One full sweep of the one-shot path: per batch, rebuild the accumulated
/// relation and run the free-function facade detection.
fn oneshot_sweep(schema: &Schema, batches: &[Vec<Tuple>], cfds: &[Cfd]) -> Violations {
    let mut accumulated: Vec<Tuple> = Vec::new();
    let mut last = Violations::new();
    for batch in batches {
        accumulated.extend(batch.iter().cloned());
        let rel = Relation::from_rows(schema.clone(), accumulated.clone())
            .expect("stream tuples match the schema");
        last = cfd::detect_violations(DetectorKind::Direct, cfds, Arc::new(rel))
            .expect("one-shot detection succeeds");
    }
    last
}

/// One full sweep of the prepared path: one engine + session, every batch
/// absorbed with incremental maintenance.
fn prepared_sweep(engine: &Engine, schema: &Schema, batches: &[Vec<Tuple>]) -> Violations {
    let mut session = engine
        .session(Arc::new(Relation::new(schema.clone())))
        .expect("schema matches");
    let mut last = Violations::new();
    for batch in batches {
        let ops: Vec<BatchOp> = batch.iter().cloned().map(BatchOp::Insert).collect();
        last = session.apply_batch(&ops).expect("batch applies");
    }
    last
}

/// Times `f` over `iters` iterations (after one warm-up call), returning the
/// mean ns/iter — the number recorded in `BENCH_prepared.json`.
fn time_ns_per_iter<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() / iters as u128
}

fn bench(c: &mut Criterion) {
    let cfds = workload_cfds();
    let (schema, batches) = stream_batches();
    let engine = Engine::builder()
        .rules(cfds.iter().cloned())
        .build()
        .expect("consistent rules");

    // Correctness outside the timed region: byte-identical reports after
    // EVERY batch, across both serving paths.
    {
        let mut session = engine
            .session(Arc::new(Relation::new(schema.clone())))
            .unwrap();
        let mut accumulated: Vec<Tuple> = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            let ops: Vec<BatchOp> = batch.iter().cloned().map(BatchOp::Insert).collect();
            let prepared = session.apply_batch(&ops).unwrap();
            accumulated.extend(batch.iter().cloned());
            let rel = Relation::from_rows(schema.clone(), accumulated.clone()).unwrap();
            let oneshot =
                cfd::detect_violations(DetectorKind::Direct, &cfds, Arc::new(rel)).unwrap();
            assert_eq!(prepared, oneshot, "batch {i}: prepared vs one-shot");
            assert_eq!(
                prepared.canonical_bytes(),
                oneshot.canonical_bytes(),
                "batch {i}: rendered bytes"
            );
        }
        assert!(
            !session.detect().unwrap().is_clean(),
            "the stream must carry violations"
        );
        // The reused session's configured detector agrees with every
        // one-shot engine on the final instance (Direct/Sharded byte-
        // identical; the multi-CFD merged path on its documented QC
        // guarantee).
        let final_rel = Arc::new(Relation::from_rows(schema.clone(), accumulated).unwrap());
        let session_report = session.detect().unwrap();
        for kind in [DetectorKind::Direct, DetectorKind::Sharded { shards: 4 }] {
            let oneshot = cfd::detect_violations(kind, &cfds, Arc::clone(&final_rel)).unwrap();
            assert_eq!(
                session_report.canonical_bytes(),
                oneshot.canonical_bytes(),
                "final instance, {kind:?}"
            );
        }
        let merged =
            cfd::detect_violations(DetectorKind::SqlMerged, &cfds, Arc::clone(&final_rel)).unwrap();
        assert_eq!(
            session_report.constant_violations(),
            merged.constant_violations(),
            "final instance, merged QC"
        );
        assert_eq!(session_report.is_clean(), merged.is_clean());
    }

    let mut group = c.benchmark_group(format!("prepared/{BATCHES}x{BATCH_ROWS}"));
    group
        .sample_size(3)
        .measurement_time(Duration::from_secs(30));
    group.bench_function("oneshot", |b| {
        b.iter(|| oneshot_sweep(&schema, &batches, &cfds));
    });
    group.bench_function("prepared", |b| {
        b.iter(|| prepared_sweep(&engine, &schema, &batches));
    });
    group.finish();

    // Hand-timed JSON series (the criterion shim prints text only).
    let oneshot_ns = time_ns_per_iter(3, || oneshot_sweep(&schema, &batches, &cfds));
    let prepared_ns = time_ns_per_iter(3, || prepared_sweep(&engine, &schema, &batches));
    let speedup = oneshot_ns as f64 / prepared_ns as f64;
    println!(
        "prepared/{BATCHES}x{BATCH_ROWS}: oneshot {oneshot_ns} ns/iter, \
         prepared {prepared_ns} ns/iter ({speedup:.2}x)"
    );

    // Second pair: repeated repair of a fixed noisy instance through a
    // reused session vs the one-shot facade path (10 repairs per iter).
    let noisy = Arc::new(
        TaxGenerator::new(TaxConfig {
            size: 10_000,
            noise_percent: 5.0,
            seed: 1234,
        })
        .generate()
        .relation,
    );
    {
        let mut session = engine.session(Arc::clone(&noisy)).unwrap();
        let prepared = session.repair(RepairKind::EquivClass).unwrap();
        let oneshot =
            cfd::repair_violations(RepairKind::EquivClass, &cfds, Arc::clone(&noisy)).unwrap();
        assert!(prepared.satisfied && oneshot.satisfied);
        assert_eq!(prepared.modifications, oneshot.modifications);
        assert_eq!(prepared.repaired, oneshot.repaired);
    }
    let repair_oneshot_ns = time_ns_per_iter(3, || {
        for _ in 0..10 {
            std::hint::black_box(
                cfd::repair_violations(RepairKind::EquivClass, &cfds, Arc::clone(&noisy)).unwrap(),
            );
        }
    });
    let repair_prepared_ns = time_ns_per_iter(3, || {
        let mut session = engine.session(Arc::clone(&noisy)).unwrap();
        for _ in 0..10 {
            std::hint::black_box(session.repair(RepairKind::EquivClass).unwrap());
        }
    });
    let repair_speedup = repair_oneshot_ns as f64 / repair_prepared_ns as f64;
    println!(
        "prepared/repair10x10k: oneshot {repair_oneshot_ns} ns/iter, \
         prepared {repair_prepared_ns} ns/iter ({repair_speedup:.2}x)"
    );

    // BENCH_prepared.json: one JSON document, entries in measurement order.
    let mut json = String::from("{\n  \"bench\": \"prepared\",\n  \"entries\": [\n");
    let entries = [
        format!(
            "{{\"workload\": \"detect_{BATCHES}x{BATCH_ROWS}\", \"series\": \"oneshot\", \
             \"ns_per_iter\": {oneshot_ns}}}"
        ),
        format!(
            "{{\"workload\": \"detect_{BATCHES}x{BATCH_ROWS}\", \"series\": \"prepared\", \
             \"ns_per_iter\": {prepared_ns}, \"speedup_vs_oneshot\": {speedup:.2}}}"
        ),
        format!(
            "{{\"workload\": \"repair10x10k\", \"series\": \"oneshot\", \
             \"ns_per_iter\": {repair_oneshot_ns}}}"
        ),
        format!(
            "{{\"workload\": \"repair10x10k\", \"series\": \"prepared\", \
             \"ns_per_iter\": {repair_prepared_ns}, \"speedup_vs_oneshot\": {repair_speedup:.2}}}"
        ),
    ];
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "    {e}{sep}");
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_prepared.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
