//! Columnar-vs-row-store bench: the narrow-CFD / wide-schema workload the
//! struct-of-arrays refactor targets.
//!
//! The data relation has a deliberately **wide** schema (24 text attributes)
//! while the CFD constrains only 3 of them (`X = [K0, K1] → Y = [V0]`), so a
//! detector that scans whole rows drags 8× more cells through cache than the
//! query needs. Three series are measured at 100k rows (plus a 10k warm-up
//! size):
//!
//! * `row_era` — [`DirectDetector::detect_row_era`] over pre-materialized
//!   `Vec<Tuple>`: the row-store era scan (one heap allocation per row held
//!   alive, every cell of every row pulled through cache);
//! * `rowhash` — [`DirectDetector::detect_rowhash`]: the columnar store
//!   scanned with the pre-vectorization per-row hash loop (one projected
//!   key `Vec` hashed per row);
//! * `columnar` — [`DirectDetector::detect`] over the columnar [`Relation`]:
//!   the vectorized block kernel reading only the 3 `X ∪ Y` column slices;
//! * `columnar_sharded/N` — [`ShardedDetector`] on the columnar store (the
//!   partition pass also reads only the LHS columns).
//!
//! Besides the usual harness output, the bench writes
//! `crates/bench/BENCH_columnar.json` — machine-readable
//! `{rows, shards, ns_per_iter}` records for each series — which the CI
//! workflow uploads as an artifact so the perf trajectory is tracked from
//! this PR onward.

use cfd_core::Cfd;
use cfd_datagen::rng::StdRng;
use cfd_detect::{DirectDetector, ShardedDetector};
use cfd_relation::{Relation, Schema, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Wide schema: the 3 constrained attributes first, then 21 filler columns.
fn wide_schema() -> Schema {
    let mut b = Schema::builder("wide").text("K0").text("K1").text("V0");
    for i in 0..21 {
        b = b.text(format!("F{i:02}"));
    }
    b.build()
}

/// `rows` tuples over the wide schema: `(K0, K1)` keys drawn from a keyspace
/// with real collisions (so QV groups exist), `V0` functionally determined
/// with a small noise rate (so both violation kinds appear), fillers random.
fn wide_data(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::with_capacity(wide_schema(), rows);
    for _ in 0..rows {
        let k0 = rng.gen_range(0usize..50);
        let k1 = rng.gen_range(0usize..rows / 8 + 1);
        let clean = (k0 * 31 + k1 * 7) % 97;
        let v0 = if rng.gen_bool(0.02) { clean + 1 } else { clean };
        let mut values: Vec<Value> = Vec::with_capacity(24);
        values.push(Value::from(format!("k{k0:02}")));
        values.push(Value::from(format!("g{k1:06}")));
        values.push(Value::from(format!("v{v0:02}")));
        for f in 0..21u32 {
            values.push(Value::from(format!("f{f}-{}", rng.gen_range(0usize..1000))));
        }
        rel.push(Tuple::new(values)).expect("row matches schema");
    }
    rel
}

/// The narrow CFD: `[K0, K1] → [V0]` with a few constant rows + the FD row.
fn narrow_cfd() -> Cfd {
    Cfd::builder(wide_schema(), ["K0", "K1"], ["V0"])
        .pattern(["k00", "_"], ["_"])
        .pattern(["k01", "_"], ["_"])
        .pattern(["_", "_"], ["_"])
        .named("narrow")
        .build()
        .expect("narrow CFD is well-formed")
}

/// Times `f` over `iters` iterations (after one warm-up call), returning the
/// mean ns/iter — the number recorded in `BENCH_columnar.json`.
fn time_ns_per_iter<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() / iters as u128
}

fn bench(c: &mut Criterion) {
    let cfd = narrow_cfd();
    let mut json_entries: Vec<String> = Vec::new();

    for rows in [10_000usize, 100_000] {
        let data = wide_data(rows, 0xC0_1B_A5);
        let tuples: Vec<Tuple> = data.to_tuples();

        // Sanity outside the timed region: the columnar and row-era scans
        // report identical bytes, and the workload is dirty.
        let direct = DirectDetector::new();
        let columnar_report = direct.detect(&cfd, &data);
        assert!(!columnar_report.is_clean(), "workload must carry noise");
        assert_eq!(
            direct.detect_row_era(&cfd, &tuples),
            columnar_report,
            "row-era and columnar scans diverged at {rows} rows"
        );
        assert_eq!(
            direct.detect_rowhash(&cfd, &data),
            columnar_report,
            "rowhash and vectorized scans diverged at {rows} rows"
        );
        for shards in [2usize, 4] {
            assert_eq!(
                ShardedDetector::new(shards).detect(&cfd, &data),
                columnar_report,
                "sharded({shards}) diverged at {rows} rows"
            );
        }

        let mut group = c.benchmark_group(format!("columnar_detect/{rows}"));
        group
            .sample_size(if rows >= 100_000 { 5 } else { 10 })
            .measurement_time(Duration::from_secs(if rows >= 100_000 { 20 } else { 5 }));
        group.bench_function("row_era", |b| {
            b.iter(|| direct.detect_row_era(&cfd, &tuples));
        });
        group.bench_function("rowhash", |b| {
            b.iter(|| direct.detect_rowhash(&cfd, &data));
        });
        group.bench_function("columnar", |b| {
            b.iter(|| direct.detect(&cfd, &data));
        });
        for shards in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new("columnar_sharded", shards),
                &shards,
                |b, &shards| {
                    let detector = ShardedDetector::new(shards);
                    b.iter(|| detector.detect(&cfd, &data));
                },
            );
        }
        group.finish();

        // Hand-timed JSON series (the criterion shim prints text only).
        let iters = if rows >= 100_000 { 5 } else { 20 };
        let row_era_ns = time_ns_per_iter(iters, || direct.detect_row_era(&cfd, &tuples));
        let rowhash_ns = time_ns_per_iter(iters, || direct.detect_rowhash(&cfd, &data));
        let columnar_ns = time_ns_per_iter(iters, || direct.detect(&cfd, &data));
        json_entries.push(format!(
            "{{\"rows\": {rows}, \"shards\": 1, \"series\": \"row_era\", \"ns_per_iter\": {row_era_ns}}}"
        ));
        json_entries.push(format!(
            "{{\"rows\": {rows}, \"shards\": 1, \"series\": \"rowhash\", \"ns_per_iter\": {rowhash_ns}}}"
        ));
        json_entries.push(format!(
            "{{\"rows\": {rows}, \"shards\": 1, \"series\": \"columnar\", \"ns_per_iter\": {columnar_ns}}}"
        ));
        for shards in [2usize, 4] {
            let detector = ShardedDetector::new(shards);
            let ns = time_ns_per_iter(iters, || detector.detect(&cfd, &data));
            json_entries.push(format!(
                "{{\"rows\": {rows}, \"shards\": {shards}, \"series\": \"columnar_sharded\", \"ns_per_iter\": {ns}}}"
            ));
        }
        println!(
            "columnar_detect/{rows}: row_era {row_era_ns} ns/iter, rowhash {rowhash_ns} ns/iter, \
             columnar {columnar_ns} ns/iter ({:.2}x over row_era, {:.2}x over rowhash)",
            row_era_ns as f64 / columnar_ns as f64,
            rowhash_ns as f64 / columnar_ns as f64
        );
    }

    // BENCH_columnar.json: one JSON document, entries in measurement order.
    let mut json = String::from("{\n  \"bench\": \"columnar\",\n  \"entries\": [\n");
    for (i, e) in json_entries.iter().enumerate() {
        let sep = if i + 1 == json_entries.len() { "" } else { "," };
        let _ = writeln!(json, "    {e}{sep}");
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_columnar.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
