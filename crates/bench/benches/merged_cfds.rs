//! Criterion bench for the merged-CFD study: validating a set of CFDs with
//! one query pair per CFD vs the single merged query pair of Section 4.2,
//! plus an interned-vs-naive comparison point: the same detection work done
//! through `ValueId` (u32) equality vs resolved-`Value` (string) equality.
//! The latter pair is the perf baseline for the interning refactor; record
//! future results against it in `BENCH_*.json`.

use cfd_bench::tax_data;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{Detector, DirectDetector};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let data = tax_data(10_000, 5.0, 47);
    let workload = CfdWorkload::new(53);
    let cfds = vec![
        workload.single(EmbeddedFd::ZipToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipCityToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipToCity, 100, 100.0),
    ];
    let detector = Detector::new();
    let mut group = c.benchmark_group("merged_cfds");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("per_cfd_pairs", |b| {
        b.iter(|| detector.detect_set(&cfds, Arc::clone(&data)).unwrap());
    });
    group.bench_function("merged_pair", |b| {
        b.iter(|| {
            detector
                .detect_set_merged(&cfds, Arc::clone(&data))
                .unwrap()
        });
    });
    group.bench_function("parallel_4_threads", |b| {
        b.iter(|| {
            detector
                .detect_set_parallel(&cfds, Arc::clone(&data), 4)
                .unwrap()
        });
    });
    // Interned (ValueId) vs naive (resolved-Value) direct detection of the
    // same CFD set: isolates the gain of the dictionary-encoded hot path.
    let direct = DirectDetector::new();
    group.bench_function("direct_interned_ids", |b| {
        b.iter(|| {
            let mut out = cfd_detect::Violations::new();
            for cfd in &cfds {
                out.merge(direct.detect(cfd, &data));
            }
            out
        });
    });
    group.bench_function("direct_naive_values", |b| {
        b.iter(|| {
            let mut out = cfd_detect::Violations::new();
            for cfd in &cfds {
                out.merge(direct.detect_value_path(cfd, &data));
            }
            out
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
