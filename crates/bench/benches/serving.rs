//! Serving-layer bench: mixed read+stream throughput through a
//! multi-tenant `cfd_serve::Server`.
//!
//! Three measurements, all on the tax workload (two CFDs, 5% noise):
//!
//! * `read_only` — 4 reader threads hammering `Server::detect` against a
//!   quiescent tenant: the snapshot-read ceiling (requests/sec and
//!   violations/sec, where every read of a report with `v` violations
//!   counts `v`);
//! * `mixed` — the same 4 readers while 4 writer threads stream
//!   micro-batches into the same tenant: read + write requests/sec under
//!   contention. Readers are served from published snapshots, so the mixed
//!   read rate stays within the same order as the quiescent ceiling rather
//!   than collapsing to the write rate;
//! * `reader_during_bulk_write` — the directed probe of the same property:
//!   one deliberately huge stream (8 000 ops in a single flush) while the
//!   main thread keeps reading; the JSON records how many reads completed
//!   *inside* the flush window. Blocked readers would record ~0.
//!
//! Outside the timed regions the bench asserts the serving contracts: the
//! published report is byte-identical to from-scratch detection after the
//! run, and a panic injected into one tenant's worker (poisoning its writer
//! lock) leaves the *other* tenant serving byte-identical reports while the
//! faulted tenant recovers on its next write.
//!
//! Besides the harness output it writes `crates/bench/BENCH_serving.json`,
//! which CI uploads next to the other bench artifacts.

use cfd::prelude::*;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_serve::{Server, ServerConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BASE_ROWS: usize = 5_000;
const WRITERS: usize = 4;
const READERS: usize = 4;
const BATCHES_PER_WRITER: usize = 25;
const OPS_PER_BATCH: usize = 20;
const BULK_OPS: usize = 8_000;

fn tax_engine() -> Engine {
    let w = CfdWorkload::new(11);
    Engine::builder()
        .rules([
            w.single(EmbeddedFd::ZipToState, 120, 100.0),
            w.single(EmbeddedFd::AreaToCity, 100, 60.0),
        ])
        .build()
        .expect("workload rules are consistent")
}

fn tax_relation(size: usize, seed: u64) -> Relation {
    TaxGenerator::new(TaxConfig {
        size,
        noise_percent: 5.0,
        seed,
    })
    .generate()
    .relation
}

fn server() -> Server {
    Server::with_config(ServerConfig {
        workers: 4,
        max_batch_ops: 64,
        max_batch_delay: Duration::from_millis(1),
        ..ServerConfig::default()
    })
    .expect("spawn server pool")
}

struct MixedStats {
    reads: u64,
    writes: u64,
    violations_read: u64,
    elapsed: Duration,
}

/// Runs `writers × batches` streams while `READERS` reader threads read
/// continuously; with `writers == 0` this is the read-only baseline (each
/// reader then performs a fixed read count instead of spinning).
fn mixed_sweep(server: &Server, tenant: &str, writers: usize, write_rows: &[Tuple]) -> MixedStats {
    let reads = AtomicU64::new(0);
    let violations_read = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let start = Instant::now();
    std::thread::scope(|scope| {
        let mut writer_handles = Vec::new();
        for w in 0..writers {
            let server = server.clone();
            let rows: Vec<Tuple> = write_rows
                .chunks(write_rows.len() / writers.max(1))
                .nth(w)
                .expect("one slice per writer")
                .to_vec();
            let writes = &writes;
            writer_handles.push(scope.spawn(move || {
                for batch in rows.chunks(OPS_PER_BATCH) {
                    let ops = batch.iter().cloned().map(BatchOp::Insert).collect();
                    server.stream(tenant, ops).expect("stream succeeds");
                    writes.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        let reader_handles: Vec<_> = (0..READERS)
            .map(|_| {
                let server = server.clone();
                let (reads, violations_read, done) = (&reads, &violations_read, &done);
                scope.spawn(move || {
                    let mut local = 0u64;
                    loop {
                        let report = server.detect(tenant).expect("tenant exists");
                        violations_read.fetch_add(report.total() as u64, Ordering::Relaxed);
                        local += 1;
                        if writers == 0 {
                            if local >= 5_000 {
                                break;
                            }
                        } else if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    reads.fetch_add(local, Ordering::Relaxed);
                })
            })
            .collect();
        for handle in writer_handles {
            handle.join().expect("writer thread");
        }
        done.store(true, Ordering::Release);
        for handle in reader_handles {
            handle.join().expect("reader thread");
        }
    });
    MixedStats {
        reads: reads.load(Ordering::Relaxed),
        writes: writes.load(Ordering::Relaxed),
        violations_read: violations_read.load(Ordering::Relaxed),
        elapsed: start.elapsed(),
    }
}

/// One huge stream flush with a concurrent reader: returns how many reads
/// completed strictly inside the flush window, plus the flush duration.
fn reads_during_bulk_write(server: &Server, tenant: &str, rows: &[Tuple]) -> (u64, Duration) {
    let writing = AtomicBool::new(true);
    std::thread::scope(|scope| {
        let writer = {
            let server = server.clone();
            let ops: Vec<BatchOp> = rows.iter().cloned().map(BatchOp::Insert).collect();
            let writing = &writing;
            scope.spawn(move || {
                let start = Instant::now();
                server.stream(tenant, ops).expect("bulk stream succeeds");
                writing.store(false, Ordering::Release);
                start.elapsed()
            })
        };
        let mut reads = 0u64;
        while writing.load(Ordering::Acquire) {
            std::hint::black_box(server.detect(tenant).expect("tenant exists"));
            reads += 1;
        }
        let flush = writer.join().expect("writer thread");
        // The last read may have finished after the flush did; everything
        // before it ran inside the window.
        (reads.saturating_sub(1), flush)
    })
}

fn rate(count: u64, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64()
}

fn bench(c: &mut Criterion) {
    let engine = tax_engine();
    let streamed = tax_relation(WRITERS * BATCHES_PER_WRITER * OPS_PER_BATCH, 8).to_tuples();
    let bulk = tax_relation(BULK_OPS, 9).to_tuples();

    // ---- Contract assertions, outside every timed region. ----
    {
        let server = server();
        for (name, seed) in [("alpha", 31u64), ("bravo", 32)] {
            server
                .create_tenant(
                    name,
                    engine.clone(),
                    Arc::new(tax_relation(BASE_ROWS, seed)),
                )
                .expect("create tenant");
        }
        // Panic isolation: poison alpha's writer lock; bravo must serve
        // byte-identical reports and alpha must recover on its next write.
        // The default panic hook would spray a backtrace into the bench
        // output for a panic that is injected on purpose — mute it.
        let bravo_before = server.detect("bravo").expect("bravo serves");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let err = server
            .inject_worker_panic("alpha")
            .expect_err("the injected panic is contained as an error");
        std::panic::set_hook(hook);
        assert!(err.is_worker_panic());
        let bravo_after = server.detect("bravo").expect("bravo still serves");
        assert_eq!(
            bravo_before.canonical_bytes(),
            bravo_after.canonical_bytes(),
            "a panic in one tenant must not change what another serves"
        );
        let snap = server
            .stream("alpha", vec![BatchOp::Insert(streamed[0].clone())])
            .expect("alpha recovers from the poisoned lock");
        assert_eq!(snap.generation(), 1);
        let fresh = server.detect_fresh("alpha").expect("fresh detection");
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
        println!("serving/panic_isolation: contained; unaffected tenant byte-identical");
    }

    // ---- Read-only baseline. ----
    let baseline = {
        let server = server();
        server
            .create_tenant("t", engine.clone(), Arc::new(tax_relation(BASE_ROWS, 7)))
            .expect("create tenant");
        mixed_sweep(&server, "t", 0, &[])
    };
    let baseline_reads_per_sec = rate(baseline.reads, baseline.elapsed);
    println!(
        "serving/read_only: {} reads in {:?} ({:.0} reads/s, {:.0} violations/s)",
        baseline.reads,
        baseline.elapsed,
        baseline_reads_per_sec,
        rate(baseline.violations_read, baseline.elapsed),
    );

    // ---- Mixed readers + writers. ----
    let (mixed, final_len) = {
        let server = server();
        server
            .create_tenant("t", engine.clone(), Arc::new(tax_relation(BASE_ROWS, 7)))
            .expect("create tenant");
        let stats = mixed_sweep(&server, "t", WRITERS, &streamed);
        // Post-run contract: published == from-scratch, all rows landed.
        let snap = server.snapshot("t").expect("tenant exists");
        assert_eq!(snap.relation().len(), BASE_ROWS + streamed.len());
        let fresh = server.detect_fresh("t").expect("fresh detection");
        assert_eq!(snap.report().canonical_bytes(), fresh.canonical_bytes());
        (stats, snap.relation().len())
    };
    let mixed_reads_per_sec = rate(mixed.reads, mixed.elapsed);
    let mixed_writes_per_sec = rate(mixed.writes, mixed.elapsed);
    let mixed_requests_per_sec = rate(mixed.reads + mixed.writes, mixed.elapsed);
    println!(
        "serving/mixed: {} reads + {} write batches in {:?} \
         ({:.0} req/s; {:.0} reads/s; {:.0} violations/s; final {} rows)",
        mixed.reads,
        mixed.writes,
        mixed.elapsed,
        mixed_requests_per_sec,
        mixed_reads_per_sec,
        rate(mixed.violations_read, mixed.elapsed),
        final_len,
    );

    // ---- Directed readers-unblocked probe. ----
    let (reads_in_flush, flush) = {
        let server = server();
        server
            .create_tenant("t", engine.clone(), Arc::new(tax_relation(BASE_ROWS, 7)))
            .expect("create tenant");
        reads_during_bulk_write(&server, "t", &bulk)
    };
    assert!(
        reads_in_flush > 0,
        "reads must complete while a {BULK_OPS}-op flush is applying \
         (snapshot isolation); got none in {flush:?}"
    );
    println!(
        "serving/reader_during_bulk_write: {reads_in_flush} reads completed \
         inside one {BULK_OPS}-op flush ({flush:?})"
    );

    // Harness series (the criterion shim prints text): one mixed sweep per
    // iteration on a fresh tenant.
    let mut group = c.benchmark_group("serving");
    group
        .sample_size(3)
        .measurement_time(Duration::from_secs(10));
    group.bench_function("mixed_4r4w", |b| {
        let server = server();
        server
            .create_tenant("iter", engine.clone(), Arc::new(tax_relation(BASE_ROWS, 7)))
            .expect("create tenant");
        b.iter(|| {
            // Re-streaming the same rows is fine: relation length grows,
            // reports stay exact; drop/recreate would measure setup instead.
            std::hint::black_box(mixed_sweep(&server, "iter", WRITERS, &streamed));
        });
    });
    group.finish();

    // ---- BENCH_serving.json. ----
    let mut json = String::from("{\n  \"bench\": \"serving\",\n  \"entries\": [\n");
    let entries = [
        format!(
            "{{\"workload\": \"read_only_{READERS}r\", \"requests_per_sec\": {:.1}, \
             \"violations_per_sec\": {:.1}}}",
            baseline_reads_per_sec,
            rate(baseline.violations_read, baseline.elapsed),
        ),
        format!(
            "{{\"workload\": \"mixed_{READERS}r{WRITERS}w\", \"requests_per_sec\": {:.1}, \
             \"reads_per_sec\": {:.1}, \"writes_per_sec\": {:.1}, \
             \"violations_per_sec\": {:.1}, \"read_rate_vs_quiescent\": {:.3}}}",
            mixed_requests_per_sec,
            mixed_reads_per_sec,
            mixed_writes_per_sec,
            rate(mixed.violations_read, mixed.elapsed),
            mixed_reads_per_sec / baseline_reads_per_sec,
        ),
        format!(
            "{{\"workload\": \"reader_during_bulk_write\", \"bulk_ops\": {BULK_OPS}, \
             \"reads_inside_flush\": {reads_in_flush}, \"flush_ms\": {:.1}, \
             \"readers_blocked\": false}}",
            flush.as_secs_f64() * 1e3,
        ),
        String::from(
            "{\"workload\": \"panic_isolation\", \"contained\": true, \
             \"unaffected_tenant_byte_identical\": true, \
             \"faulted_tenant_recovered\": true}",
        ),
    ];
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "    {e}{sep}");
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serving.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
