//! Criterion bench for the sharded detection engine: `DirectDetector` (one
//! thread) vs `ShardedDetector` at 2/4/8 shards on the generated tax
//! workload at 10k and 100k rows. The `merged_cfds` bench records the
//! interned-vs-naive and per-CFD-vs-merged comparisons; this one records the
//! sharding speedup (the CI workflow uploads its output as an artifact —
//! the ≥2× target is against the direct series on a multi-core runner).

use cfd_bench::tax_data;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{DirectDetector, ShardedDetector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let workload = CfdWorkload::new(53);
    let cfds = vec![
        workload.single(EmbeddedFd::ZipToState, 100, 100.0),
        workload.single(EmbeddedFd::ZipCityToState, 100, 100.0),
        workload.single(EmbeddedFd::AreaToCity, 100, 60.0),
    ];
    for size in [10_000usize, 100_000] {
        let data = tax_data(size, 5.0, 47);
        // Sanity outside the timed region: every shard count reports the
        // same bytes as the direct oracle on this workload.
        let direct = DirectDetector::new().detect_set(&cfds, &data);
        for shards in [2, 4, 8] {
            assert_eq!(
                ShardedDetector::new(shards).detect_set(&cfds, &data),
                direct,
                "sharded({shards}) diverged at {size} rows"
            );
        }

        let mut group = c.benchmark_group(format!("sharded_detect/{size}"));
        group
            .sample_size(if size >= 100_000 { 5 } else { 10 })
            .measurement_time(Duration::from_secs(if size >= 100_000 { 20 } else { 5 }));
        group.bench_function("direct_1_thread", |b| {
            b.iter(|| DirectDetector::new().detect_set(&cfds, &data));
        });
        for shards in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new("sharded", shards),
                &shards,
                |b, &shards| {
                    let detector = ShardedDetector::new(shards);
                    b.iter(|| detector.detect_set(&cfds, &data));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
