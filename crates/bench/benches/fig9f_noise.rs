//! Criterion bench for Fig. 9(f): scalability in the NOISE percentage using
//! the zip→state CFD with a pattern row for every zip→state pair.

use cfd_bench::tax_data;
use cfd_datagen::CfdWorkload;
use cfd_detect::Detector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let cfd = CfdWorkload::new(41).zip_state_full();
    let detector = Detector::new();
    let mut group = c.benchmark_group("fig9f_noise");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for noise in [0u64, 5, 9] {
        let data = tax_data(20_000, noise as f64, 43 + noise);
        group.bench_with_input(BenchmarkId::new("noise", noise), &data, |b, data| {
            b.iter(|| detector.detect_shared(&cfd, Arc::clone(data)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
