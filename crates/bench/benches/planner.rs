//! Adaptive-planner bench: the Fig. 9 workload grid served by every static
//! [`DetectorKind`] plus [`DetectorKind::Auto`].
//!
//! Five workload profiles sweep the regimes the cost model distinguishes —
//! a tiny constant tableau, a many-group high-cardinality LHS, a same-LHS
//! family of large tableaux (the fused-scan case), a wide-arity CFD and a
//! mixed rule set. Every kind runs through a prepared [`Session`] (so the
//! SQL kinds amortize compilation and `Auto` amortizes statistics exactly as
//! in serving), and `Auto`'s report is checked byte-identical to the direct
//! oracle outside the timed region.
//!
//! Besides the harness output, the bench writes
//! `crates/bench/BENCH_planner.json`: per workload the plan `Auto` chose
//! (per fused step) and the measured ns/iter of every kind — the artifact CI
//! uploads to track that the planner stays within a hair of the best static
//! choice while never riding the worst one.

use cfd::{DetectorKind, Engine, EngineConfig, Session};
use cfd_core::Cfd;
use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::sharded::available_cores;
use cfd_detect::DirectDetector;
use cfd_relation::Relation;
use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Workload {
    name: &'static str,
    data: Arc<Relation>,
    cfds: Vec<Cfd>,
}

fn tax(size: usize, noise: f64, seed: u64) -> Arc<Relation> {
    Arc::new(
        TaxGenerator::new(TaxConfig {
            size,
            noise_percent: noise,
            seed,
        })
        .generate()
        .relation,
    )
}

/// The workload grid (all seeds fixed; every profile carries real noise).
fn grid() -> Vec<Workload> {
    let w = CfdWorkload::new(17);
    vec![
        // A handful of constant patterns over one FD: planning must add
        // nearly nothing to the cheapest scan.
        Workload {
            name: "tiny_tableau",
            data: tax(10_000, 5.0, 101),
            cfds: vec![w.single(EmbeddedFd::ZipToState, 5, 100.0)],
        },
        // High-cardinality 3-attribute LHS: group count approaches the row
        // count, the regime where sharding (on multi-core hosts) or the
        // plain direct scan wins and index-driven iteration loses.
        Workload {
            name: "many_groups",
            data: tax(30_000, 5.0, 102),
            cfds: vec![w.single(EmbeddedFd::AreaCityToState, 40, 30.0)],
        },
        // Four CFDs sharing one LHS with large tableaux: the fused scan
        // hashes the key columns once for the whole family.
        Workload {
            name: "same_lhs_big_tableaux",
            data: tax(20_000, 5.0, 103),
            cfds: (0..4)
                .map(|i| CfdWorkload::new(40 + i).single(EmbeddedFd::ZipToState, 400, 80.0))
                .collect(),
        },
        // One wide-arity CFD with a mid-size tableau.
        Workload {
            name: "wide_arity",
            data: tax(20_000, 8.0, 104),
            cfds: vec![w.single(EmbeddedFd::AreaCityToState, 150, 50.0)],
        },
        // A mixed set over distinct LHSs, the everyday serving profile.
        Workload {
            name: "mixed_set",
            data: tax(15_000, 5.0, 105),
            cfds: vec![
                w.single(EmbeddedFd::ZipToState, 60, 70.0),
                w.single(EmbeddedFd::AreaToCity, 60, 40.0),
                w.single(EmbeddedFd::StateMaritalToExemption, 30, 60.0),
            ],
        },
    ]
}

fn session_for(kind: DetectorKind, cfds: &[Cfd], data: &Arc<Relation>) -> Session {
    Engine::builder()
        .rules(cfds.iter().cloned())
        .config(EngineConfig::builder().detector(kind).build().unwrap())
        .build()
        .unwrap()
        .session(Arc::clone(data))
        .unwrap()
}

/// Steady-state ns/iter for every kind over one workload, measured
/// **round-robin**: after a warm-up call per session (building the
/// prepared state — plans, indexes, statistics — so the measurement sees
/// the serving steady state), each round times one batch of every kind
/// back to back, and the recorded value is the minimum batch mean across
/// rounds. Interleaving matters on a shared host: measuring kinds
/// sequentially lets clock drift and thermal state bias whichever kind
/// runs last, which on this grid is larger than the real gap between the
/// planner and the best static engine. Batch sizes adapt per kind so a
/// round costs roughly a fifth of a second per kind (means absorb timer
/// granularity on microsecond workloads, the min discards interrupted
/// batches).
fn time_detect_all(sessions: &mut [(&'static str, Session)]) -> Vec<u128> {
    let iters: Vec<usize> = sessions
        .iter_mut()
        .map(|(_, session)| {
            let warmup = Instant::now();
            std::hint::black_box(session.detect().unwrap());
            let once = warmup.elapsed().as_nanos().max(1);
            (200_000_000 / once).clamp(3, 5_000) as usize
        })
        .collect();
    // Visit kinds in ascending order of their warm-up estimate: the close
    // competitors (direct / sharded / auto, within small factors of each
    // other) get measured back to back, instead of minutes apart with the
    // seconds-per-iter SQL batches between them — on a shared host that
    // separation alone drifts more than the gap being measured. Alternate
    // the direction each round so no kind always runs in the wake of the
    // same neighbour (the sharded series churns threads, which taxes
    // whatever runs right after it).
    let mut order: Vec<usize> = (0..sessions.len()).collect();
    order.sort_by_key(|&k| iters[k]);
    order.reverse(); // largest iter count = cheapest kind first
    let mut best = vec![u128::MAX; sessions.len()];
    for round in 0..8 {
        let round_order: Vec<usize> = if round % 2 == 0 {
            order.clone()
        } else {
            order.iter().rev().copied().collect()
        };
        for k in round_order {
            let (_, session) = &mut sessions[k];
            let start = Instant::now();
            for _ in 0..iters[k] {
                std::hint::black_box(session.detect().unwrap());
            }
            best[k] = best[k].min(start.elapsed().as_nanos() / iters[k] as u128);
        }
    }
    best
}

/// Compact one-line rendering of an Auto plan: `cfds [..] -> strategy` per
/// fused step.
fn plan_string(session: &Session) -> String {
    let Some(plan) = session.detection_plan() else {
        return String::from("(none)");
    };
    plan.steps()
        .iter()
        .map(|step| format!("cfds {:?} -> {}", step.cfds(), step.strategy()))
        .collect::<Vec<_>>()
        .join("; ")
}

fn bench(c: &mut Criterion) {
    let cores = available_cores();
    let kinds: [(&str, DetectorKind); 6] = [
        ("direct", DetectorKind::Direct),
        ("sql", DetectorKind::Sql),
        ("sql_merged", DetectorKind::SqlMerged),
        ("sql_parallel", DetectorKind::SqlParallel { threads: cores }),
        (
            "sharded",
            DetectorKind::Sharded {
                shards: cores.max(2),
            },
        ),
        ("auto", DetectorKind::Auto),
    ];
    let mut json_entries: Vec<String> = Vec::new();

    for workload in grid() {
        // Correctness guard outside the timed region: Auto must be
        // byte-identical to the direct oracle on every profile.
        let oracle = DirectDetector::new().detect_set(&workload.cfds, &workload.data);
        assert!(
            !oracle.is_clean(),
            "{}: the grid must carry real violations",
            workload.name
        );
        let auto = DetectorKind::Auto
            .detect_set(&workload.cfds, Arc::clone(&workload.data))
            .unwrap();
        assert_eq!(
            auto.canonical_bytes(),
            oracle.canonical_bytes(),
            "{}: Auto diverged from the direct oracle",
            workload.name
        );

        let mut group = c.benchmark_group(format!("planner/{}", workload.name));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(5));
        let mut sessions: Vec<(&'static str, Session)> = kinds
            .iter()
            .map(|&(kind_name, kind)| {
                (kind_name, session_for(kind, &workload.cfds, &workload.data))
            })
            .collect();
        for (kind_name, session) in &mut sessions {
            group.bench_function(*kind_name, |b| {
                b.iter(|| session.detect().unwrap());
            });
        }
        group.finish();
        // Hand-timed series for the JSON artifact (the criterion shim
        // prints text only).
        let measured = time_detect_all(&mut sessions);
        for ((kind_name, _), ns) in sessions.iter().zip(&measured) {
            json_entries.push(format!(
                "{{\"workload\": \"{}\", \"kind\": \"{kind_name}\", \"ns_per_iter\": {ns}}}",
                workload.name
            ));
        }
        let chosen_plan = plan_string(&sessions.last().expect("auto is last").1);
        json_entries.push(format!(
            "{{\"workload\": \"{}\", \"kind\": \"auto_plan\", \"plan\": \"{chosen_plan}\"}}",
            workload.name
        ));
        println!("planner/{}: auto plan = {chosen_plan}", workload.name);
    }

    let mut json = String::from("{\n  \"bench\": \"planner\",\n  \"entries\": [\n");
    for (i, e) in json_entries.iter().enumerate() {
        let sep = if i + 1 == json_entries.len() { "" } else { "," };
        let _ = writeln!(json, "    {e}{sep}");
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_planner.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
