//! Criterion bench for Fig. 9(d): scalability in the tableau size TABSZ for
//! CFDs with 3 and 4 attributes.

use cfd_bench::tax_data;
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::Detector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let data = tax_data(10_000, 5.0, 23);
    let detector = Detector::new();
    let mut group = c.benchmark_group("fig9d_tabsz");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for tabsz in [200usize, 500, 1_000] {
        for (name, fd) in [
            ("attrs3", EmbeddedFd::ZipCityToState),
            ("attrs4", EmbeddedFd::AreaCityToState),
        ] {
            let cfd = CfdWorkload::new(29).single(fd, tabsz, 50.0);
            group.bench_with_input(BenchmarkId::new(name, tabsz), &data, |b, data| {
                b.iter(|| detector.detect_shared(&cfd, Arc::clone(data)).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
