//! Repair-engine bench: the full-rescan pass loop vs the equivalence-class
//! engine with incremental violation maintenance.
//!
//! The workload is the noisy tax-records generator at 10k and 100k rows
//! (5% noise) under two CFDs with real repair work of both kinds:
//! `zip_state_full` (all-constant tableau — single-tuple pins) and an
//! `AreaToCity` constant CFD (pins plus multi-tuple merges on collisions).
//!
//! * `heuristic` — [`RepairKind::Heuristic`]: every pass re-runs
//!   `cfd.violations(rel)` from scratch for every CFD
//!   (`O(passes × |Σ| × |I|)`);
//! * `equiv_class` — [`RepairKind::EquivClass`]: one seeding detection pass,
//!   then per-`GROUP BY X`-group re-checks of only the groups each edit
//!   touched.
//!
//! At 100k rows the class engine additionally runs a **worker-thread
//! sweep** (1/2/4/8 threads, `equiv_class_t{n}` series with
//! `speedup_vs_t1`) — the component-parallel planning and batched-recheck
//! paths must be byte-identical to the sequential engine at every budget,
//! asserted outside the timed region.
//!
//! Outside the timed region the bench asserts both engines terminate with
//! instances that every detector path reports as violation-free, and that
//! the class engine is byte-deterministic across runs. Besides the harness
//! output it writes `crates/bench/BENCH_repair.json` — machine-readable
//! `{rows, series, ns_per_iter, speedup}` records — which CI uploads as an
//! artifact next to `BENCH_columnar.json`.

use cfd_datagen::records::{TaxConfig, TaxGenerator};
use cfd_datagen::{CfdWorkload, EmbeddedFd};
use cfd_detect::{Detector, DirectDetector, ShardedDetector};
use cfd_repair::{RepairConfig, RepairKind, Repairer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times `f` over `iters` iterations (after one warm-up call), returning the
/// mean ns/iter — the number recorded in `BENCH_repair.json`.
fn time_ns_per_iter<T>(iters: usize, mut f: impl FnMut() -> T) -> u128 {
    std::hint::black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed().as_nanos() / iters as u128
}

fn bench(c: &mut Criterion) {
    let workload = CfdWorkload::new(11);
    let cfds = vec![
        workload.zip_state_full(),
        workload.single(EmbeddedFd::AreaToCity, 300, 100.0),
    ];
    let mut json_entries: Vec<String> = Vec::new();

    for rows in [10_000usize, 100_000] {
        let noisy = TaxGenerator::new(TaxConfig {
            size: rows,
            noise_percent: 5.0,
            seed: 1234,
        })
        .generate()
        .relation;
        assert!(
            cfds.iter().any(|c| !c.satisfied_by(&noisy)),
            "workload must carry violations at {rows} rows"
        );

        // Sanity outside the timed region: both engines leave instances that
        // the direct, SQL, merged and sharded detector paths all report as
        // violation-free, and the class engine is deterministic.
        let heuristic = RepairKind::Heuristic.repair(&cfds, &noisy);
        let class = RepairKind::EquivClass.repair(&cfds, &noisy);
        for (name, result) in [("heuristic", &heuristic), ("equiv_class", &class)] {
            assert!(result.satisfied, "{name} must converge at {rows} rows");
            let repaired = Arc::new(result.repaired.clone());
            assert!(DirectDetector::new()
                .detect_set(&cfds, &repaired)
                .is_clean());
            assert!(ShardedDetector::new(4)
                .detect_set(&cfds, &repaired)
                .is_clean());
            let sql = Detector::new()
                .detect_set(&cfds, Arc::clone(&repaired))
                .unwrap();
            assert!(sql.is_clean(), "{name}: SQL path found residue");
            let merged = Detector::new().detect_set_merged(&cfds, repaired).unwrap();
            assert!(merged.is_clean(), "{name}: merged path found residue");
        }
        let again = RepairKind::EquivClass.repair(&cfds, &noisy);
        assert_eq!(again.modifications, class.modifications);
        assert_eq!(again.repaired, class.repaired);

        let mut group = c.benchmark_group(format!("repair/{rows}"));
        group
            .sample_size(if rows >= 100_000 { 3 } else { 10 })
            .measurement_time(Duration::from_secs(if rows >= 100_000 { 30 } else { 10 }));
        group.bench_function("heuristic", |b| {
            b.iter(|| RepairKind::Heuristic.repair(&cfds, &noisy));
        });
        group.bench_function("equiv_class", |b| {
            b.iter(|| RepairKind::EquivClass.repair(&cfds, &noisy));
        });
        group.finish();

        // Hand-timed JSON series (the criterion shim prints text only).
        let iters = if rows >= 100_000 { 3 } else { 10 };
        let heuristic_ns = time_ns_per_iter(iters, || RepairKind::Heuristic.repair(&cfds, &noisy));
        let class_ns = time_ns_per_iter(iters, || RepairKind::EquivClass.repair(&cfds, &noisy));
        let speedup = heuristic_ns as f64 / class_ns as f64;
        json_entries.push(format!(
            "{{\"rows\": {rows}, \"series\": \"heuristic\", \"ns_per_iter\": {heuristic_ns}}}"
        ));
        json_entries.push(format!(
            "{{\"rows\": {rows}, \"series\": \"equiv_class\", \"ns_per_iter\": {class_ns}, \
             \"speedup_vs_heuristic\": {speedup:.2}}}"
        ));
        println!(
            "repair/{rows}: heuristic {heuristic_ns} ns/iter, equiv_class {class_ns} ns/iter \
             ({speedup:.2}x)"
        );

        // Worker-thread sweep of the class engine, 100k only: 10k rows sit
        // below the spawn-amortization floor, where every budget runs the
        // identical sequential path. Byte-identity across the sweep is
        // asserted outside the timed region; `speedup_vs_t1` is the
        // parallel-efficiency number CI tracks.
        if rows >= 100_000 {
            let repair_at = |threads: usize| {
                Repairer::with_config(RepairConfig {
                    kind: RepairKind::EquivClass,
                    threads,
                    ..RepairConfig::default()
                })
                .repair(&cfds, &noisy)
            };
            let baseline = repair_at(1);
            assert_eq!(baseline.modifications, class.modifications);
            assert_eq!(baseline.repaired, class.repaired);
            let mut t1_ns = 0u128;
            for threads in [1usize, 2, 4, 8] {
                let sweep = repair_at(threads);
                assert_eq!(
                    sweep.modifications, baseline.modifications,
                    "parallel repair at {threads} threads must be byte-identical"
                );
                assert_eq!(sweep.repaired, baseline.repaired);
                let ns = time_ns_per_iter(iters, || repair_at(threads));
                if threads == 1 {
                    t1_ns = ns;
                }
                let speedup = t1_ns as f64 / ns as f64;
                json_entries.push(format!(
                    "{{\"rows\": {rows}, \"series\": \"equiv_class_t{threads}\", \
                     \"ns_per_iter\": {ns}, \"speedup_vs_t1\": {speedup:.2}}}"
                ));
                println!(
                    "repair/{rows}: equiv_class_t{threads} {ns} ns/iter \
                     ({speedup:.2}x vs t1)"
                );
            }
        }
    }

    // BENCH_repair.json: one JSON document, entries in measurement order.
    let mut json = String::from("{\n  \"bench\": \"repair\",\n  \"entries\": [\n");
    for (i, e) in json_entries.iter().enumerate() {
        let sep = if i + 1 == json_entries.len() { "" } else { "," };
        let _ = writeln!(json, "    {e}{sep}");
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_repair.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
