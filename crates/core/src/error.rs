//! Error types for CFD construction and reasoning.

use cfd_relation::RelationError;
use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CfdError>;

/// Errors raised while constructing or reasoning about CFDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfdError {
    /// A pattern tuple's arity does not match the embedded FD.
    PatternArity {
        /// Expected number of LHS cells.
        expected_lhs: usize,
        /// Expected number of RHS cells.
        expected_rhs: usize,
        /// Provided number of LHS cells.
        got_lhs: usize,
        /// Provided number of RHS cells.
        got_rhs: usize,
    },
    /// A pattern constant lies outside the attribute's declared domain.
    PatternConstantOutsideDomain {
        /// The attribute name.
        attribute: String,
        /// The offending constant, rendered.
        value: String,
    },
    /// The embedded FD has an empty right-hand side.
    EmptyRhs,
    /// The CFD's tableau is empty (it would constrain nothing; almost always
    /// a caller bug, so it is rejected).
    EmptyTableau,
    /// An operation that requires `_`/constant-only patterns was given a
    /// pattern containing the don't-care symbol `@` (which only appears in
    /// merged tableaux, Section 4.2).
    DontCareNotAllowed,
    /// The CFDs passed to an operation are defined over different schemas.
    MixedSchemas {
        /// First schema name.
        left: String,
        /// Second schema name.
        right: String,
    },
    /// The CFD set is inconsistent: no nonempty instance satisfies it
    /// (Section 3.1), so preparing it for detection or repair is pointless —
    /// every tuple of every instance would violate it.
    Inconsistent,
    /// An error bubbled up from the relational substrate.
    Relation(RelationError),
}

impl fmt::Display for CfdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfdError::PatternArity { expected_lhs, expected_rhs, got_lhs, got_rhs } => write!(
                f,
                "pattern arity mismatch: expected {expected_lhs}+{expected_rhs} cells, got {got_lhs}+{got_rhs}"
            ),
            CfdError::PatternConstantOutsideDomain { attribute, value } => {
                write!(f, "pattern constant `{value}` outside domain of `{attribute}`")
            }
            CfdError::EmptyRhs => write!(f, "the embedded FD has an empty right-hand side"),
            CfdError::EmptyTableau => write!(f, "the pattern tableau is empty"),
            CfdError::DontCareNotAllowed => {
                write!(f, "the don't-care symbol `@` is not allowed in this context")
            }
            CfdError::MixedSchemas { left, right } => {
                write!(f, "CFDs defined over different schemas: `{left}` vs `{right}`")
            }
            CfdError::Inconsistent => {
                write!(f, "the CFD set is inconsistent: no nonempty instance satisfies it")
            }
            CfdError::Relation(e) => write!(f, "relation error: {e}"),
        }
    }
}

impl std::error::Error for CfdError {}

impl From<RelationError> for CfdError {
    fn from(e: RelationError) -> Self {
        CfdError::Relation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CfdError::PatternArity {
            expected_lhs: 2,
            expected_rhs: 1,
            got_lhs: 1,
            got_rhs: 1,
        };
        assert!(e.to_string().contains("2+1"));
        assert!(CfdError::EmptyRhs.to_string().contains("right-hand side"));
        assert!(CfdError::EmptyTableau.to_string().contains("empty"));
        assert!(CfdError::DontCareNotAllowed.to_string().contains("@"));
        assert!(CfdError::MixedSchemas {
            left: "a".into(),
            right: "b".into()
        }
        .to_string()
        .contains("a"));
        assert!(CfdError::PatternConstantOutsideDomain {
            attribute: "MR".into(),
            value: "x".into()
        }
        .to_string()
        .contains("MR"));
    }

    #[test]
    fn relation_error_converts() {
        let e: CfdError = RelationError::Parse("oops".into()).into();
        assert!(matches!(e, CfdError::Relation(_)));
    }
}
