//! Minimal covers of CFD sets (Section 3.3, algorithm `MinCover`, Fig. 4).
//!
//! A minimal cover `Σmc` of `Σ` is an equivalent set of normal-form CFDs with
//! no redundant CFDs and no redundant LHS attributes. Because detection and
//! repair costs grow with the size of the constraint set, computing a minimal
//! cover first is the paper's optimization step before validation.

use crate::consistency::is_consistent;
use crate::implication::implies;
use crate::normalize::NormalCfd;

/// Computes a minimal cover of `sigma` following algorithm `MinCover`:
///
/// 1. return `∅` if `sigma` is inconsistent (lines 1–2);
/// 2. drop redundant LHS attributes: replace `(X → A, tp)` by
///    `(X − {B} → A, tp[X − {B}] ∪ tp(A))` whenever the latter is implied
///    (lines 3–6);
/// 3. drop redundant CFDs: remove `ϕ` whenever `Σ − {ϕ} ⊨ ϕ` (lines 8–10).
///
/// The result is equivalent to `sigma` (for consistent inputs) and contains
/// no redundant CFDs, attributes or patterns.
pub fn minimal_cover(sigma: &[NormalCfd]) -> Vec<NormalCfd> {
    if sigma.is_empty() {
        return Vec::new();
    }
    if !is_consistent(sigma) {
        return Vec::new();
    }

    // Step 1: remove redundant attributes from each CFD's LHS.
    let mut current: Vec<NormalCfd> = sigma.to_vec();
    for idx in 0..current.len() {
        loop {
            let cfd = current[idx].clone();
            let mut reduced = None;
            for attr in cfd.lhs().to_vec() {
                let Some(candidate) = cfd.without_lhs_attr(attr) else {
                    continue;
                };
                if implies(&current, &candidate) {
                    reduced = Some(candidate);
                    break;
                }
            }
            match reduced {
                Some(candidate) => current[idx] = candidate,
                None => break,
            }
        }
    }

    // Step 2: remove redundant CFDs.
    let mut cover = current.clone();
    let mut i = 0;
    while i < cover.len() {
        let candidate = cover[i].clone();
        let mut rest: Vec<NormalCfd> = cover.clone();
        rest.remove(i);
        if implies(&rest, &candidate) {
            cover = rest;
        } else {
            i += 1;
        }
    }

    // Deduplicate structurally identical CFDs (they are trivially redundant
    // but the implication loop above removes at most one copy per pass).
    let mut seen = Vec::new();
    for cfd in cover {
        if !seen.contains(&cfd) {
            seen.push(cfd);
        }
    }
    seen
}

/// Whether two sets of CFDs are equivalent: each implies every member of the
/// other. Both sets must be defined on the same schema.
pub fn equivalent(left: &[NormalCfd], right: &[NormalCfd]) -> bool {
    right.iter().all(|c| implies(left, c)) && left.iter().all(|c| implies(right, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Schema;

    fn schema() -> Schema {
        Schema::builder("R").text("A").text("B").text("C").build()
    }

    #[test]
    fn example_3_3_minimal_cover() {
        // Σ = {ψ1 = (A→B, (_ ‖ b)), ψ2 = (B→C, (_ ‖ c)), ϕ = (A→C, (a ‖ _))}.
        // The minimal cover is {(∅→B, b), (∅→C, c)}.
        let s = schema();
        let psi1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let psi2 = NormalCfd::parse(&s, ["B"], &["_"], "C", "c").unwrap();
        let phi = NormalCfd::parse(&s, ["A"], &["a"], "C", "_").unwrap();
        let sigma = vec![psi1, psi2, phi];

        let cover = minimal_cover(&sigma);
        let expect_b = NormalCfd::parse(&s, [], &[], "B", "b").unwrap();
        let expect_c = NormalCfd::parse(&s, [], &[], "C", "c").unwrap();
        assert_eq!(cover.len(), 2, "cover = {cover:?}");
        assert!(cover.contains(&expect_b));
        assert!(cover.contains(&expect_c));
        assert!(equivalent(&sigma, &cover));
    }

    #[test]
    fn inconsistent_input_yields_empty_cover() {
        let s = schema();
        let p1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let p2 = NormalCfd::parse(&s, ["A"], &["_"], "B", "c").unwrap();
        assert!(minimal_cover(&[p1, p2]).is_empty());
        assert!(minimal_cover(&[]).is_empty());
    }

    #[test]
    fn plain_fd_transitive_redundancy_is_removed() {
        let s = schema();
        let ab = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let bc = NormalCfd::parse(&s, ["B"], &["_"], "C", "_").unwrap();
        let ac = NormalCfd::parse(&s, ["A"], &["_"], "C", "_").unwrap();
        let cover = minimal_cover(&[ab.clone(), bc.clone(), ac.clone()]);
        assert_eq!(cover.len(), 2);
        assert!(cover.contains(&ab));
        assert!(cover.contains(&bc));
        assert!(!cover.contains(&ac));
        assert!(equivalent(&cover, &[ab, bc, ac]));
    }

    #[test]
    fn redundant_lhs_attribute_is_dropped() {
        // ([A, B] → C, (a, _ ‖ c)) can be simplified to ([A] → C, (a ‖ c))
        // (rule FD4), so MinCover must produce the reduced form.
        let s = schema();
        let wide = NormalCfd::parse(&s, ["A", "B"], &["a", "_"], "C", "c").unwrap();
        let cover = minimal_cover(std::slice::from_ref(&wide));
        assert_eq!(cover.len(), 1);
        assert_eq!(
            cover[0],
            NormalCfd::parse(&s, ["A"], &["a"], "C", "c").unwrap()
        );
        assert!(equivalent(&cover, &[wide]));
    }

    #[test]
    fn irredundant_sets_are_unchanged_up_to_order() {
        let s = schema();
        let ab = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let cb = NormalCfd::parse(&s, ["C"], &["_"], "B", "_").unwrap();
        let cover = minimal_cover(&[ab.clone(), cb.clone()]);
        assert_eq!(cover.len(), 2);
        assert!(cover.contains(&ab));
        assert!(cover.contains(&cb));
    }

    #[test]
    fn duplicate_cfds_collapse() {
        let s = schema();
        let ab = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let cover = minimal_cover(&[ab.clone(), ab.clone(), ab.clone()]);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0], ab);
    }

    #[test]
    fn cover_is_always_equivalent_to_consistent_input() {
        let s = schema();
        let sets: Vec<Vec<NormalCfd>> = vec![
            vec![
                NormalCfd::parse(&s, ["A"], &["a1"], "B", "b1").unwrap(),
                NormalCfd::parse(&s, ["A"], &["a2"], "B", "b2").unwrap(),
                NormalCfd::parse(&s, ["B"], &["_"], "C", "_").unwrap(),
            ],
            vec![
                NormalCfd::parse(&s, ["A", "C"], &["_", "_"], "B", "_").unwrap(),
                NormalCfd::parse(&s, ["A"], &["_"], "C", "_").unwrap(),
            ],
            vec![
                NormalCfd::parse(&s, [], &[], "A", "a").unwrap(),
                NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap(),
                NormalCfd::parse(&s, [], &[], "B", "b").unwrap(),
            ],
        ];
        for sigma in sets {
            assert!(is_consistent(&sigma));
            let cover = minimal_cover(&sigma);
            assert!(
                equivalent(&sigma, &cover),
                "cover not equivalent for {sigma:?}"
            );
            assert!(cover.len() <= sigma.len());
        }
    }

    #[test]
    fn equivalent_is_symmetric_and_detects_differences() {
        let s = schema();
        let ab = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let bc = NormalCfd::parse(&s, ["B"], &["_"], "C", "_").unwrap();
        assert!(equivalent(
            &[ab.clone(), bc.clone()],
            &[bc.clone(), ab.clone()]
        ));
        assert!(!equivalent(std::slice::from_ref(&ab), &[bc]));
        assert!(equivalent(&[], &[]));
        assert!(!equivalent(&[], &[ab]));
    }
}
