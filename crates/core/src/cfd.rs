//! The CFD type: an embedded FD plus a pattern tableau, with satisfaction
//! semantics (Section 2 of the paper).

use crate::error::{CfdError, Result};
use crate::pattern::PatternValue;
use crate::tableau::{PatternTableau, PatternTuple};
use cfd_relation::{project_cols, AttrId, Relation, Schema, Value, ValueId};
use std::collections::HashMap;
use std::fmt;

/// A conditional functional dependency `ϕ = (R: X → Y, Tp)`.
///
/// * `X` (`lhs`) and `Y` (`rhs`) are attribute lists of the schema `R`;
///   `R: X → Y` is the *embedded FD*.
/// * `Tp` is the pattern tableau: each row has one cell per attribute of
///   `X` and of `Y`, holding a constant or the unnamed variable `_`.
///
/// `I ⊨ ϕ` iff for every pair of tuples `t1, t2 ∈ I` and every pattern row
/// `tc`, if `t1[X] = t2[X] ≍ tc[X]` then `t1[Y] = t2[Y] ≍ tc[Y]`.
/// Note that taking `t1 = t2` yields the single-tuple violations caused by
/// constants on the RHS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfd {
    schema: Schema,
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
    tableau: PatternTableau,
    name: Option<String>,
}

impl Cfd {
    /// Starts building a CFD over `schema` with the embedded FD
    /// `lhs → rhs` (attribute names).
    pub fn builder<'a, L, R>(schema: Schema, lhs: L, rhs: R) -> CfdBuilder
    where
        L: IntoIterator<Item = &'a str>,
        R: IntoIterator<Item = &'a str>,
    {
        CfdBuilder {
            schema,
            lhs: lhs.into_iter().map(str::to_owned).collect(),
            rhs: rhs.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            name: None,
        }
    }

    /// Constructs a CFD from already-resolved attribute ids and a tableau.
    pub fn from_parts(
        schema: Schema,
        lhs: Vec<AttrId>,
        rhs: Vec<AttrId>,
        tableau: PatternTableau,
    ) -> Result<Self> {
        let cfd = Cfd {
            schema,
            lhs,
            rhs,
            tableau,
            name: None,
        };
        cfd.validate()?;
        Ok(cfd)
    }

    /// Expresses a plain FD `lhs → rhs` as a CFD: a single all-wildcard
    /// pattern row (the first special case noted in Section 2).
    pub fn fd<'a, L, R>(schema: Schema, lhs: L, rhs: R) -> Result<Self>
    where
        L: IntoIterator<Item = &'a str>,
        R: IntoIterator<Item = &'a str>,
    {
        let lhs: Vec<&str> = lhs.into_iter().collect();
        let rhs: Vec<&str> = rhs.into_iter().collect();
        let row = PatternTuple::all_wildcards(lhs.len(), rhs.len());
        let mut b = Cfd::builder(schema, lhs, rhs);
        b.rows.push(row);
        b.build()
    }

    /// Expresses an instance-level FD (the second special case of Section 2):
    /// a single pattern row consisting only of constants.
    pub fn instance_level<'a, L, R>(
        schema: Schema,
        lhs: L,
        lhs_consts: Vec<Value>,
        rhs: R,
        rhs_consts: Vec<Value>,
    ) -> Result<Self>
    where
        L: IntoIterator<Item = &'a str>,
        R: IntoIterator<Item = &'a str>,
    {
        let row = PatternTuple::new(
            lhs_consts.into_iter().map(PatternValue::from).collect(),
            rhs_consts.into_iter().map(PatternValue::from).collect(),
        );
        let mut b = Cfd::builder(schema, lhs, rhs);
        b.rows.push(row);
        b.build()
    }

    fn validate(&self) -> Result<()> {
        if self.rhs.is_empty() {
            return Err(CfdError::EmptyRhs);
        }
        if self.tableau.is_empty() {
            return Err(CfdError::EmptyTableau);
        }
        for row in self.tableau.rows() {
            if row.lhs().len() != self.lhs.len() || row.rhs().len() != self.rhs.len() {
                return Err(CfdError::PatternArity {
                    expected_lhs: self.lhs.len(),
                    expected_rhs: self.rhs.len(),
                    got_lhs: row.lhs().len(),
                    got_rhs: row.rhs().len(),
                });
            }
            // Constants must belong to the attribute's domain.
            for (attr, cell) in self
                .lhs
                .iter()
                .zip(row.lhs())
                .chain(self.rhs.iter().zip(row.rhs()))
            {
                if let PatternValue::Const(id) = cell {
                    let v = id.resolve();
                    let a = self.schema.attribute(*attr)?;
                    if !a.domain.contains(v) {
                        return Err(CfdError::PatternConstantOutsideDomain {
                            attribute: a.name.clone(),
                            value: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The relation schema the CFD is defined on.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// LHS (`X`) attribute ids.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// RHS (`Y`) attribute ids.
    pub fn rhs(&self) -> &[AttrId] {
        &self.rhs
    }

    /// LHS attribute names.
    pub fn lhs_names(&self) -> Vec<&str> {
        self.lhs.iter().map(|a| self.schema.attr_name(*a)).collect()
    }

    /// RHS attribute names.
    pub fn rhs_names(&self) -> Vec<&str> {
        self.rhs.iter().map(|a| self.schema.attr_name(*a)).collect()
    }

    /// The pattern tableau `Tp`.
    pub fn tableau(&self) -> &PatternTableau {
        &self.tableau
    }

    /// Optional human-readable name (e.g. `"ϕ2"`).
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Whether any pattern cell is the don't-care symbol `@` (only merged
    /// tableaux produced by the detection layer contain it).
    pub fn has_dont_care(&self) -> bool {
        self.tableau.iter().any(PatternTuple::has_dont_care)
    }

    /// Whether the CFD is a plain FD in disguise (single all-wildcard row).
    pub fn is_plain_fd(&self) -> bool {
        self.tableau.len() == 1 && self.tableau.rows()[0].is_all_wildcards()
    }

    /// `I ⊨ ϕ`: checks satisfaction of this CFD by `rel`.
    pub fn satisfied_by(&self, rel: &Relation) -> bool {
        self.first_violation(rel).is_none()
    }

    /// Finds one violation witness, or `None` when the CFD is satisfied.
    pub fn first_violation(&self, rel: &Relation) -> Option<ViolationWitness> {
        self.violations_internal(rel, true).into_iter().next()
    }

    /// Finds all violation witnesses (one per violating tuple, de-duplicated),
    /// in the deterministic order `(pattern_index, rows, kind)` — repair
    /// engines apply edits in witness order, so the order itself is part of
    /// the byte-determinism contract (no hash-map iteration order leaks out).
    ///
    /// This is the straightforward semantic detector; the `cfd-detect` crate
    /// provides the scalable SQL-based detectors used by the experiments.
    pub fn violations(&self, rel: &Relation) -> Vec<ViolationWitness> {
        let mut out = self.violations_internal(rel, false);
        out.sort_by(ViolationWitness::deterministic_cmp);
        out
    }

    fn violations_internal(&self, rel: &Relation, stop_at_first: bool) -> Vec<ViolationWitness> {
        let mut out = Vec::new();
        // Columnar scan: only the X ∪ Y columns are touched, as slices.
        let lhs_cols = rel.columns_for(&self.lhs);
        let rhs_cols = rel.columns_for(&self.rhs);
        for (pattern_idx, pattern) in self.tableau.iter().enumerate() {
            // Effective attribute lists for this row: skip don't-care cells.
            let lhs_eff: Vec<AttrId> = self
                .lhs
                .iter()
                .zip(pattern.lhs())
                .filter(|(_, p)| !p.is_dont_care())
                .map(|(a, _)| *a)
                .collect();
            let rhs_eff: Vec<AttrId> = self
                .rhs
                .iter()
                .zip(pattern.rhs())
                .filter(|(_, p)| !p.is_dont_care())
                .map(|(a, _)| *a)
                .collect();
            let lhs_eff_cols = rel.columns_for(&lhs_eff);
            let rhs_eff_cols = rel.columns_for(&rhs_eff);

            // Group matching tuples by their (interned) X projection.
            let mut groups: HashMap<Vec<ValueId>, Vec<usize>> = HashMap::new();
            for i in 0..rel.len() {
                let x_vals = project_cols(&lhs_cols, i);
                if pattern.lhs_matches_ids(&x_vals) {
                    groups
                        .entry(project_cols(&lhs_eff_cols, i))
                        .or_default()
                        .push(i);
                }
            }

            for (_, members) in groups {
                // Single-tuple (constant) violations: RHS constants not matched.
                let mut constant_violators = Vec::new();
                for &i in &members {
                    if !pattern.rhs_matches_ids(&project_cols(&rhs_cols, i)) {
                        constant_violators.push(i);
                    }
                }
                // Multi-tuple violations: two members with different Y projections.
                let mut y_groups: HashMap<Vec<ValueId>, Vec<usize>> = HashMap::new();
                for &i in &members {
                    y_groups
                        .entry(project_cols(&rhs_eff_cols, i))
                        .or_default()
                        .push(i);
                }
                let multi = y_groups.len() > 1;

                for i in constant_violators {
                    out.push(ViolationWitness {
                        pattern_index: pattern_idx,
                        kind: ViolationKind::SingleTuple,
                        rows: vec![i],
                    });
                    if stop_at_first {
                        return out;
                    }
                }
                if multi {
                    let mut rows: Vec<usize> = members.clone();
                    rows.sort_unstable();
                    out.push(ViolationWitness {
                        pattern_index: pattern_idx,
                        kind: ViolationKind::MultiTuple,
                        rows,
                    });
                    if stop_at_first {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// The cell-level repair obligations of one witness (see
    /// [`WitnessCells`]): which cells a repair must force equal, and which it
    /// must pin to a pattern constant. Don't-care (`@`) positions induce no
    /// obligation. The returned merge/pin lists follow the CFD's RHS
    /// attribute order and the witness's (sorted) row order, so consuming
    /// them in order is deterministic.
    pub fn witness_cells(&self, w: &ViolationWitness) -> WitnessCells {
        let pattern = &self.tableau.rows()[w.pattern_index];
        let mut cells = WitnessCells::default();
        for (attr, cell) in self.rhs.iter().zip(pattern.rhs()) {
            if cell.is_dont_care() {
                continue;
            }
            if let Some(target) = cell.const_id() {
                for &row in &w.rows {
                    cells.pins.push((row, *attr, target));
                }
            } else if w.kind == ViolationKind::MultiTuple && w.rows.len() > 1 {
                cells.merges.push((*attr, w.rows.clone()));
            }
        }
        cells
    }
}

impl fmt::Display for Cfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [", self.schema.name())?;
        for (i, a) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.schema.attr_name(*a))?;
        }
        write!(f, "] -> [")?;
        for (i, a) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.schema.attr_name(*a))?;
        }
        writeln!(f, "], tableau:")?;
        write!(f, "{}", self.tableau)
    }
}

/// How a violation manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A single tuple matches the LHS pattern but contradicts an RHS constant
    /// (the `QC` query of Section 4 finds these).
    SingleTuple,
    /// Two or more tuples agree (and match the pattern) on the LHS but differ
    /// on the RHS (the `QV` query finds these).
    MultiTuple,
}

/// A concrete witness of a CFD violation in a relation instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationWitness {
    /// Index of the pattern tuple that is violated.
    pub pattern_index: usize,
    /// Single- or multi-tuple violation.
    pub kind: ViolationKind,
    /// Indices of the involved rows (one row for single-tuple violations, the
    /// whole agreeing group for multi-tuple violations).
    pub rows: Vec<usize>,
}

impl ViolationWitness {
    /// Total order `(pattern_index, rows, kind)` used to report witnesses in
    /// a deterministic order (single-tuple before multi-tuple on equal rows).
    pub fn deterministic_cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.pattern_index, &self.rows, self.kind as u8).cmp(&(
            other.pattern_index,
            &other.rows,
            other.kind as u8,
        ))
    }
}

/// The repair obligations induced by one [`ViolationWitness`] — the
/// witness → equivalence-class plumbing consumed by `cfd-repair`.
///
/// Every repair of a violated pattern must either edit a left-hand-side cell
/// (taking the tuple out of the pattern's scope) or make the right-hand side
/// consistent. The latter decomposes into two cell-level obligation kinds:
///
/// * **merges** — for every effective (non-don't-care), non-constant RHS
///   attribute of a multi-tuple witness, the cells of all witness rows must
///   agree, i.e. they belong to one equivalence class;
/// * **pins** — an RHS pattern *constant* forces every matching row's cell to
///   that exact value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WitnessCells {
    /// `(attribute, rows)`: the cells `(row, attribute)` for each listed row
    /// must all hold the same value.
    pub merges: Vec<(AttrId, Vec<usize>)>,
    /// `(row, attribute, target)`: the cell must hold exactly `target`.
    pub pins: Vec<(usize, AttrId, ValueId)>,
}

/// Builder returned by [`Cfd::builder`].
#[derive(Debug, Clone)]
pub struct CfdBuilder {
    schema: Schema,
    lhs: Vec<String>,
    rhs: Vec<String>,
    rows: Vec<PatternTuple>,
    name: Option<String>,
}

impl CfdBuilder {
    /// Adds a pattern row given as string tokens (`"_"` for the unnamed
    /// variable, `"@"` for don't-care, anything else a constant).
    pub fn pattern<L, R>(mut self, lhs: L, rhs: R) -> Self
    where
        L: IntoIterator,
        L::Item: AsRef<str>,
        R: IntoIterator,
        R::Item: AsRef<str>,
    {
        self.rows.push(PatternTuple::parse(lhs, rhs));
        self
    }

    /// Adds an already-constructed pattern row.
    pub fn pattern_row(mut self, row: PatternTuple) -> Self {
        self.rows.push(row);
        self
    }

    /// Sets a human-readable name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Finishes the CFD, resolving attribute names and validating patterns.
    pub fn build(self) -> Result<Cfd> {
        let lhs = self
            .schema
            .resolve_all(self.lhs.iter().map(String::as_str))?;
        let rhs = self
            .schema
            .resolve_all(self.rhs.iter().map(String::as_str))?;
        let cfd = Cfd {
            schema: self.schema,
            lhs,
            rhs,
            tableau: PatternTableau::from_rows(self.rows),
            name: self.name,
        };
        cfd.validate()?;
        Ok(cfd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::{Domain, Tuple};

    /// The cust schema of Example 1.1.
    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .text("CC")
            .text("AC")
            .text("PN")
            .text("NM")
            .text("STR")
            .text("CT")
            .text("ZIP")
            .build()
    }

    /// The cust instance of Fig. 1.
    fn cust_instance() -> Relation {
        let mut rel = Relation::new(cust_schema());
        for r in [
            ["01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"],
            ["01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"],
            ["01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"],
            ["01", "212", "2222222", "Jim", "Elm Str.", "NYC", "01202"],
            ["01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"],
            ["44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"],
        ] {
            rel.push(Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
                .unwrap();
        }
        rel
    }

    /// ϕ1 = (cust: [CC, ZIP] -> [STR], T1) of Fig. 2.
    fn phi1() -> Cfd {
        Cfd::builder(cust_schema(), ["CC", "ZIP"], ["STR"])
            .pattern(["44", "_"], ["_"])
            .named("phi1")
            .build()
            .unwrap()
    }

    /// ϕ2 = (cust: [CC, AC, PN] -> [STR, CT, ZIP], T2) of Fig. 2.
    fn phi2() -> Cfd {
        Cfd::builder(cust_schema(), ["CC", "AC", "PN"], ["STR", "CT", "ZIP"])
            .pattern(["01", "908", "_"], ["_", "MH", "_"])
            .pattern(["01", "212", "_"], ["_", "NYC", "_"])
            .pattern(["_", "_", "_"], ["_", "_", "_"])
            .named("phi2")
            .build()
            .unwrap()
    }

    /// ϕ3 = (cust: [CC, AC] -> [CT], T3) of Fig. 2.
    fn phi3() -> Cfd {
        Cfd::builder(cust_schema(), ["CC", "AC"], ["CT"])
            .pattern(["01", "215"], ["PHI"])
            .pattern(["44", "141"], ["GLA"])
            .named("phi3")
            .build()
            .unwrap()
    }

    #[test]
    fn example_2_2_phi1_and_phi3_hold_phi2_fails() {
        let rel = cust_instance();
        assert!(phi1().satisfied_by(&rel));
        assert!(phi3().satisfied_by(&rel));
        assert!(!phi2().satisfied_by(&rel));
    }

    #[test]
    fn example_2_2_phi2_violators_are_t1_and_t2() {
        let rel = cust_instance();
        let violations = phi2().violations(&rel);
        let single: Vec<usize> = violations
            .iter()
            .filter(|v| v.kind == ViolationKind::SingleTuple)
            .flat_map(|v| v.rows.clone())
            .collect();
        assert!(
            single.contains(&0),
            "t1 violates the (01, 908, _ || _, MH, _) pattern"
        );
        assert!(single.contains(&1), "t2 violates it too");
        // Pattern index 0 is the 908/MH row.
        assert!(violations
            .iter()
            .filter(|v| v.kind == ViolationKind::SingleTuple)
            .all(|v| v.pattern_index == 0));
    }

    #[test]
    fn traditional_fds_hold_on_fig1() {
        let rel = cust_instance();
        let f1 = Cfd::fd(cust_schema(), ["CC", "AC", "PN"], ["STR", "CT", "ZIP"]).unwrap();
        let f2 = Cfd::fd(cust_schema(), ["CC", "AC"], ["CT"]).unwrap();
        assert!(f1.is_plain_fd());
        assert!(f1.satisfied_by(&rel));
        assert!(f2.satisfied_by(&rel));
    }

    #[test]
    fn multi_tuple_violation_detected() {
        // Break the plain FD [CC, AC] -> [CT] by giving area code 131 two cities.
        let mut rel = cust_instance();
        let mut extra = rel.row(5).unwrap().to_tuple();
        extra.set(AttrId(3), Value::from("Amy"));
        extra.set(AttrId(5), Value::from("GLA"));
        rel.push(extra).unwrap();
        let f2 = Cfd::fd(cust_schema(), ["CC", "AC"], ["CT"]).unwrap();
        let violations = f2.violations(&rel);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::MultiTuple);
        assert_eq!(violations[0].rows, vec![5, 6]);
        assert!(!f2.satisfied_by(&rel));
    }

    #[test]
    fn single_tuple_can_violate_a_cfd() {
        // One UK tuple with the "wrong" city under ϕ3's (44, 141 || GLA) row.
        let mut rel = Relation::new(cust_schema());
        rel.push(Tuple::new(
            ["44", "141", "5555555", "Una", "Kelvin Way", "EDI", "G12"]
                .iter()
                .map(|s| Value::from(*s))
                .collect(),
        ))
        .unwrap();
        let violations = phi3().violations(&rel);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::SingleTuple);
        assert_eq!(violations[0].pattern_index, 1);
        assert_eq!(violations[0].rows, vec![0]);
    }

    #[test]
    fn instance_level_fd_constructor() {
        let cfd = Cfd::instance_level(
            cust_schema(),
            ["CC", "AC"],
            vec![Value::from("01"), Value::from("215")],
            ["CT"],
            vec![Value::from("PHI")],
        )
        .unwrap();
        assert!(cfd.tableau().rows()[0].is_all_constants());
        assert!(cfd.satisfied_by(&cust_instance()));
    }

    #[test]
    fn builder_validation_errors() {
        // Arity mismatch in a pattern.
        let err = Cfd::builder(cust_schema(), ["CC", "AC"], ["CT"])
            .pattern(["01"], ["PHI"])
            .build()
            .unwrap_err();
        assert!(matches!(err, CfdError::PatternArity { .. }));

        // Empty RHS.
        let err = Cfd::builder(cust_schema(), ["CC"], [])
            .pattern(["01"], Vec::<&str>::new())
            .build()
            .unwrap_err();
        assert_eq!(err, CfdError::EmptyRhs);

        // Empty tableau.
        let err = Cfd::builder(cust_schema(), ["CC"], ["CT"])
            .build()
            .unwrap_err();
        assert_eq!(err, CfdError::EmptyTableau);

        // Unknown attribute.
        let err = Cfd::builder(cust_schema(), ["NOPE"], ["CT"])
            .pattern(["_"], ["_"])
            .build()
            .unwrap_err();
        assert!(matches!(err, CfdError::Relation(_)));
    }

    #[test]
    fn pattern_constants_checked_against_domains() {
        let schema = Schema::builder("r")
            .text("A")
            .attr_domain("MR", Domain::finite(["single", "married"]))
            .build();
        let err = Cfd::builder(schema.clone(), ["A"], ["MR"])
            .pattern(["_"], ["widowed"])
            .build()
            .unwrap_err();
        assert!(matches!(err, CfdError::PatternConstantOutsideDomain { .. }));
        assert!(Cfd::builder(schema, ["A"], ["MR"])
            .pattern(["_"], ["married"])
            .build()
            .is_ok());
    }

    #[test]
    fn dont_care_rows_restrict_only_free_attributes() {
        // Merged-style row: [CC=01, AC=215, CT=@] -> [CT=PHI, AC=@]
        // (shape of Fig. 7, id 2). The @ attributes are ignored.
        let schema = cust_schema();
        let cfd = Cfd::builder(schema, ["CC", "AC", "CT"], ["CT", "AC"])
            .pattern(["01", "215", "@"], ["PHI", "@"])
            .build()
            .unwrap();
        assert!(cfd.has_dont_care());
        assert!(cfd.satisfied_by(&cust_instance()));
        // Now corrupt Ben's city: the @-free RHS cell (CT = PHI) is violated.
        let mut rel = cust_instance();
        rel.set_value(4, AttrId(5), Value::from("NYC"));
        assert!(!cfd.satisfied_by(&rel));
    }

    #[test]
    fn accessors_and_display() {
        let cfd = phi2();
        assert_eq!(cfd.lhs_names(), vec!["CC", "AC", "PN"]);
        assert_eq!(cfd.rhs_names(), vec!["STR", "CT", "ZIP"]);
        assert_eq!(cfd.name(), Some("phi2"));
        assert_eq!(cfd.tableau().len(), 3);
        assert!(!cfd.is_plain_fd());
        let shown = cfd.to_string();
        assert!(shown.contains("[CC, AC, PN] -> [STR, CT, ZIP]"));
        assert!(shown.contains("(01, 908, _ || _, MH, _)"));
    }

    #[test]
    fn first_violation_stops_early_and_agrees_with_violations() {
        let rel = cust_instance();
        let first = phi2().first_violation(&rel).unwrap();
        let all = phi2().violations(&rel);
        assert!(all.contains(&first));
        assert!(phi1().first_violation(&rel).is_none());
    }

    #[test]
    fn violations_are_reported_in_deterministic_order() {
        let rel = cust_instance();
        let first = phi2().violations(&rel);
        for _ in 0..8 {
            assert_eq!(phi2().violations(&rel), first);
        }
        // Sorted by (pattern_index, rows, kind).
        for w in first.windows(2) {
            assert_ne!(
                w[0].deterministic_cmp(&w[1]),
                std::cmp::Ordering::Greater,
                "witnesses out of order: {w:?}"
            );
        }
    }

    #[test]
    fn witness_cells_pin_rhs_constants() {
        // ϕ3's (44, 141 || GLA) row violated by a single tuple: the CT cell
        // is pinned to GLA.
        let mut rel = Relation::new(cust_schema());
        rel.push(Tuple::new(
            ["44", "141", "5555555", "Una", "Kelvin Way", "EDI", "G12"]
                .iter()
                .map(|s| Value::from(*s))
                .collect(),
        ))
        .unwrap();
        let cfd = phi3();
        let w = &cfd.violations(&rel)[0];
        let cells = cfd.witness_cells(w);
        assert!(cells.merges.is_empty());
        let ct = cust_schema().resolve("CT").unwrap();
        assert_eq!(cells.pins, vec![(0, ct, ValueId::of(&Value::from("GLA")))]);
    }

    #[test]
    fn witness_cells_merge_multi_tuple_groups() {
        // Plain FD [CC, AC] -> [CT] broken on rows 5 and 6: their CT cells
        // must be forced equal (no pin — the pattern cell is a wildcard).
        let mut rel = cust_instance();
        let mut extra = rel.row(5).unwrap().to_tuple();
        extra.set(AttrId(3), Value::from("Amy"));
        extra.set(AttrId(5), Value::from("GLA"));
        rel.push(extra).unwrap();
        let f2 = Cfd::fd(cust_schema(), ["CC", "AC"], ["CT"]).unwrap();
        let w = &f2.violations(&rel)[0];
        assert_eq!(w.kind, ViolationKind::MultiTuple);
        let cells = f2.witness_cells(w);
        assert!(cells.pins.is_empty());
        assert_eq!(cells.merges, vec![(AttrId(5), vec![5, 6])]);
    }

    #[test]
    fn witness_cells_skip_dont_care_positions() {
        let schema = cust_schema();
        let cfd = Cfd::builder(schema, ["CC", "AC", "CT"], ["CT", "AC"])
            .pattern(["01", "215", "@"], ["PHI", "@"])
            .build()
            .unwrap();
        let mut rel = cust_instance();
        rel.set_value(4, AttrId(5), Value::from("NYC"));
        let w = &cfd.violations(&rel)[0];
        let cells = cfd.witness_cells(w);
        // Only the CT = PHI pin survives; the @ position induces nothing.
        assert_eq!(
            cells.pins,
            vec![(4, AttrId(5), ValueId::of(&Value::from("PHI")))]
        );
        assert!(cells.merges.is_empty());
    }

    #[test]
    fn empty_relation_satisfies_everything() {
        let rel = Relation::new(cust_schema());
        assert!(phi1().satisfied_by(&rel));
        assert!(phi2().satisfied_by(&rel));
        assert!(phi3().satisfied_by(&rel));
    }
}
