//! Attribute closures under CFDs.
//!
//! For standard FDs the closure `X⁺` of an attribute set drives most design
//! tasks (key finding, cover computation). CFDs refine this: what an
//! attribute set determines depends on the *pattern context* — the constants
//! known to hold for the tuples under consideration. This module computes
//! the closure of a set of attributes **given such a context**, by a chase
//! that mirrors the implication analysis of Section 3.2 restricted to a
//! single symbolic tuple pair.
//!
//! `closure(Σ, X, context)` returns the attributes `A` such that
//! `Σ ⊨ (X → A, tp)` where `tp[X]` is the given context (constants where the
//! context pins a value, `_` elsewhere) and `tp[A] = _`. With an empty
//! context and plain-FD inputs this degenerates to the classical closure.

use crate::implication::implies;
use crate::normalize::NormalCfd;
use crate::pattern::PatternValue;
use cfd_relation::{AttrId, Schema, Value};
use std::collections::BTreeMap;

/// A pattern context: constants assumed to hold on some of the attributes.
pub type Context = BTreeMap<AttrId, Value>;

/// Computes the closure of `x` under `sigma`, given a pattern `context`.
///
/// The result always contains `x` itself (reflexivity). The computation asks
/// the implication oracle once per candidate attribute, so it is
/// `O(arity · cost(implies))`; for the schema sizes CFDs are used with this
/// is negligible, and it inherits the exactness of the implication chase.
pub fn closure(
    sigma: &[NormalCfd],
    schema: &Schema,
    x: &[AttrId],
    context: &Context,
) -> Vec<AttrId> {
    let mut out = Vec::new();
    for a in schema.attr_ids() {
        if x.contains(&a) {
            out.push(a);
            continue;
        }
        let lhs_pattern: Vec<PatternValue> = x
            .iter()
            .map(|attr| match context.get(attr) {
                Some(v) => PatternValue::constant(v.clone()),
                None => PatternValue::Wildcard,
            })
            .collect();
        let Ok(phi) = NormalCfd::new(
            schema.clone(),
            x.to_vec(),
            lhs_pattern,
            a,
            PatternValue::Wildcard,
        ) else {
            continue;
        };
        if implies(sigma, &phi) {
            out.push(a);
        }
    }
    out.sort();
    out
}

/// Whether `x` is a key of the schema under `sigma` in the given context,
/// i.e. its closure covers every attribute.
pub fn is_key(sigma: &[NormalCfd], schema: &Schema, x: &[AttrId], context: &Context) -> bool {
    closure(sigma, schema, x, context).len() == schema.arity()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::builder("R")
            .text("A")
            .text("B")
            .text("C")
            .text("D")
            .build()
    }

    fn ids(s: &Schema, names: &[&str]) -> Vec<AttrId> {
        s.resolve_all(names.iter().copied()).unwrap()
    }

    #[test]
    fn plain_fd_closure_matches_textbook_behaviour() {
        let s = schema();
        let sigma = vec![
            NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap(),
            NormalCfd::parse(&s, ["B"], &["_"], "C", "_").unwrap(),
        ];
        let got = closure(&sigma, &s, &ids(&s, &["A"]), &Context::new());
        assert_eq!(got, ids(&s, &["A", "B", "C"]));
        assert!(!is_key(&sigma, &s, &ids(&s, &["A"]), &Context::new()));
        let with_d = vec![
            sigma[0].clone(),
            sigma[1].clone(),
            NormalCfd::parse(&s, ["C"], &["_"], "D", "_").unwrap(),
        ];
        assert!(is_key(&with_d, &s, &ids(&s, &["A"]), &Context::new()));
    }

    #[test]
    fn conditional_closure_depends_on_the_context() {
        // A determines B only when A = uk.
        let s = schema();
        let sigma = vec![NormalCfd::parse(&s, ["A"], &["uk"], "B", "_").unwrap()];
        let x = ids(&s, &["A"]);
        // Without context, A does not determine B.
        assert_eq!(closure(&sigma, &s, &x, &Context::new()), x.clone());
        // With the context A = uk, it does.
        let mut context = Context::new();
        context.insert(x[0], Value::from("uk"));
        assert_eq!(closure(&sigma, &s, &x, &context), ids(&s, &["A", "B"]));
        // A different constant does not trigger the pattern.
        context.insert(x[0], Value::from("us"));
        assert_eq!(closure(&sigma, &s, &x, &context), x);
    }

    #[test]
    fn constant_rhs_cfds_contribute_through_chains() {
        // (A=uk -> B=b) and (B=b -> C=_) : in the uk context, A determines C.
        let s = schema();
        let sigma = vec![
            NormalCfd::parse(&s, ["A"], &["uk"], "B", "b").unwrap(),
            NormalCfd::parse(&s, ["B"], &["b"], "C", "_").unwrap(),
        ];
        let x = ids(&s, &["A"]);
        let mut context = Context::new();
        context.insert(x[0], Value::from("uk"));
        assert_eq!(closure(&sigma, &s, &x, &context), ids(&s, &["A", "B", "C"]));
    }

    #[test]
    fn closure_always_contains_x_and_is_monotone_in_x() {
        let s = schema();
        let sigma = vec![NormalCfd::parse(&s, ["A", "B"], &["_", "_"], "C", "_").unwrap()];
        let small = closure(&sigma, &s, &ids(&s, &["A"]), &Context::new());
        let large = closure(&sigma, &s, &ids(&s, &["A", "B"]), &Context::new());
        assert!(small.contains(&ids(&s, &["A"])[0]));
        for a in &small {
            assert!(large.contains(a), "closure not monotone");
        }
        assert!(large.contains(&ids(&s, &["C"])[0]));
    }
}
