//! Normalization of CFDs to the form `(R: X → A, tp)`.
//!
//! Section 3 of the paper simplifies the reasoning machinery by considering
//! CFDs whose RHS is a single attribute and whose tableau has a single pattern
//! row; a general CFD `ϕ = (X → Y, Tp)` is equivalent to the set
//! `Σϕ = { (X → A, tp[X ∪ A]) | A ∈ Y, tp ∈ Tp }`. [`NormalCfd`] is that
//! normal form; [`NormalCfd::normalize`] and [`NormalCfd::denormalize`]
//! convert back and forth.

use crate::cfd::Cfd;
use crate::error::{CfdError, Result};
use crate::pattern::PatternValue;
use crate::tableau::{PatternTableau, PatternTuple};
use cfd_relation::{AttrId, Schema};
use std::collections::BTreeMap;
use std::fmt;

/// A CFD in normal form: single RHS attribute, single pattern row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalCfd {
    schema: Schema,
    lhs: Vec<AttrId>,
    lhs_pattern: Vec<PatternValue>,
    rhs: AttrId,
    rhs_pattern: PatternValue,
}

impl NormalCfd {
    /// Creates a normal-form CFD. LHS attributes are kept sorted by id so
    /// structural equality coincides with semantic identity of the LHS set.
    pub fn new(
        schema: Schema,
        lhs: Vec<AttrId>,
        lhs_pattern: Vec<PatternValue>,
        rhs: AttrId,
        rhs_pattern: PatternValue,
    ) -> Result<Self> {
        if lhs.len() != lhs_pattern.len() {
            return Err(CfdError::PatternArity {
                expected_lhs: lhs.len(),
                expected_rhs: 1,
                got_lhs: lhs_pattern.len(),
                got_rhs: 1,
            });
        }
        if lhs_pattern.iter().any(PatternValue::is_dont_care) || rhs_pattern.is_dont_care() {
            return Err(CfdError::DontCareNotAllowed);
        }
        // Deduplicate and sort the LHS (keeping the more specific pattern on
        // conflict is unnecessary: duplicates only arise from programmatic
        // construction, where both cells are identical).
        let mut combined: BTreeMap<AttrId, PatternValue> = BTreeMap::new();
        for (a, p) in lhs.into_iter().zip(lhs_pattern) {
            combined.entry(a).or_insert(p);
        }
        let (lhs, lhs_pattern): (Vec<AttrId>, Vec<PatternValue>) = combined.into_iter().unzip();
        Ok(NormalCfd {
            schema,
            lhs,
            lhs_pattern,
            rhs,
            rhs_pattern,
        })
    }

    /// Builds a normal-form CFD from attribute names and string tokens.
    pub fn parse<'a, L>(
        schema: &Schema,
        lhs: L,
        lhs_pattern: &[&str],
        rhs: &str,
        rhs_pattern: &str,
    ) -> Result<Self>
    where
        L: IntoIterator<Item = &'a str>,
    {
        let lhs_ids = schema.resolve_all(lhs)?;
        let rhs_id = schema.resolve(rhs)?;
        NormalCfd::new(
            schema.clone(),
            lhs_ids,
            lhs_pattern.iter().map(|s| PatternValue::parse(s)).collect(),
            rhs_id,
            PatternValue::parse(rhs_pattern),
        )
    }

    /// The schema the CFD is defined on.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// LHS attribute ids (sorted).
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// LHS pattern cells, aligned with [`NormalCfd::lhs`].
    pub fn lhs_pattern(&self) -> &[PatternValue] {
        &self.lhs_pattern
    }

    /// The single RHS attribute.
    pub fn rhs(&self) -> AttrId {
        self.rhs
    }

    /// The RHS pattern cell.
    pub fn rhs_pattern(&self) -> &PatternValue {
        &self.rhs_pattern
    }

    /// The pattern cell of LHS attribute `attr`, if `attr` is in the LHS.
    pub fn lhs_pattern_of(&self, attr: AttrId) -> Option<&PatternValue> {
        self.lhs
            .iter()
            .position(|a| *a == attr)
            .map(|i| &self.lhs_pattern[i])
    }

    /// Returns a copy with attribute `attr` removed from the LHS (used by
    /// `MinCover` when testing attribute redundancy). Returns `None` if
    /// `attr` is not in the LHS.
    pub fn without_lhs_attr(&self, attr: AttrId) -> Option<NormalCfd> {
        let pos = self.lhs.iter().position(|a| *a == attr)?;
        let mut lhs = self.lhs.clone();
        let mut lhs_pattern = self.lhs_pattern.clone();
        lhs.remove(pos);
        lhs_pattern.remove(pos);
        Some(NormalCfd {
            schema: self.schema.clone(),
            lhs,
            lhs_pattern,
            rhs: self.rhs,
            rhs_pattern: self.rhs_pattern,
        })
    }

    /// Returns a copy with the given LHS cell replaced (used by inference
    /// rules FD5/FD7).
    pub fn with_lhs_pattern(&self, attr: AttrId, pattern: PatternValue) -> Option<NormalCfd> {
        let pos = self.lhs.iter().position(|a| *a == attr)?;
        let mut lhs_pattern = self.lhs_pattern.clone();
        lhs_pattern[pos] = pattern;
        Some(NormalCfd {
            schema: self.schema.clone(),
            lhs: self.lhs.clone(),
            lhs_pattern,
            rhs: self.rhs,
            rhs_pattern: self.rhs_pattern,
        })
    }

    /// Returns a copy with the RHS cell replaced (used by inference rule FD6).
    pub fn with_rhs_pattern(&self, pattern: PatternValue) -> NormalCfd {
        NormalCfd {
            rhs_pattern: pattern,
            ..self.clone()
        }
    }

    /// All constants appearing in the CFD's patterns, per attribute. Used by
    /// the consistency and implication chases to bound the search space.
    pub fn constants(&self) -> Vec<(AttrId, cfd_relation::Value)> {
        let mut out = Vec::new();
        for (a, p) in self.lhs.iter().zip(&self.lhs_pattern) {
            if let PatternValue::Const(id) = p {
                out.push((*a, id.resolve().clone()));
            }
        }
        if let PatternValue::Const(id) = &self.rhs_pattern {
            out.push((self.rhs, id.resolve().clone()));
        }
        out
    }

    /// Converts a general CFD into its equivalent set `Σϕ` of normal-form
    /// CFDs (one per RHS attribute per pattern row).
    pub fn normalize(cfd: &Cfd) -> Result<Vec<NormalCfd>> {
        if cfd.has_dont_care() {
            return Err(CfdError::DontCareNotAllowed);
        }
        let mut out = Vec::with_capacity(cfd.tableau().len() * cfd.rhs().len());
        for row in cfd.tableau().iter() {
            for (pos, rhs_attr) in cfd.rhs().iter().enumerate() {
                out.push(NormalCfd::new(
                    cfd.schema().clone(),
                    cfd.lhs().to_vec(),
                    row.lhs().to_vec(),
                    *rhs_attr,
                    row.rhs()[pos],
                )?);
            }
        }
        Ok(out)
    }

    /// Re-packages a collection of normal-form CFDs as general [`Cfd`]s,
    /// grouping the ones that share an embedded FD (same LHS set and RHS
    /// attribute) into a single tableau. The result is equivalent to the
    /// input set.
    pub fn denormalize(cfds: &[NormalCfd]) -> Result<Vec<Cfd>> {
        let mut grouped: BTreeMap<(Vec<AttrId>, AttrId), Vec<&NormalCfd>> = BTreeMap::new();
        for c in cfds {
            grouped.entry((c.lhs.clone(), c.rhs)).or_default().push(c);
        }
        let mut out = Vec::with_capacity(grouped.len());
        for ((lhs, rhs), members) in grouped {
            let schema = members[0].schema.clone();
            let mut tableau = PatternTableau::new();
            for m in members {
                tableau.push(PatternTuple::new(
                    m.lhs_pattern.clone(),
                    vec![m.rhs_pattern],
                ));
            }
            out.push(Cfd::from_parts(schema, lhs, vec![rhs], tableau)?);
        }
        Ok(out)
    }

    /// Converts this normal-form CFD into a single-row general [`Cfd`].
    pub fn to_cfd(&self) -> Result<Cfd> {
        Cfd::from_parts(
            self.schema.clone(),
            self.lhs.clone(),
            vec![self.rhs],
            PatternTableau::from_rows(vec![PatternTuple::new(
                self.lhs_pattern.clone(),
                vec![self.rhs_pattern],
            )]),
        )
    }

    /// Rough size of the CFD (number of cells), used for `|Σ|` bounds in
    /// complexity-oriented tests.
    pub fn size(&self) -> usize {
        self.lhs.len() + 1
    }
}

impl fmt::Display for NormalCfd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (a, p)) in self.lhs.iter().zip(&self.lhs_pattern).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}={}", self.schema.attr_name(*a), p)?;
        }
        write!(
            f,
            "] -> {}={}",
            self.schema.attr_name(self.rhs),
            self.rhs_pattern
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::{Relation, Tuple, Value};

    fn schema() -> Schema {
        Schema::builder("cust")
            .text("CC")
            .text("AC")
            .text("PN")
            .text("STR")
            .text("CT")
            .text("ZIP")
            .build()
    }

    fn phi2() -> Cfd {
        Cfd::builder(schema(), ["CC", "AC", "PN"], ["STR", "CT", "ZIP"])
            .pattern(["01", "908", "_"], ["_", "MH", "_"])
            .pattern(["01", "212", "_"], ["_", "NYC", "_"])
            .pattern(["_", "_", "_"], ["_", "_", "_"])
            .build()
            .unwrap()
    }

    #[test]
    fn normalize_produces_one_cfd_per_row_and_rhs_attribute() {
        let normal = NormalCfd::normalize(&phi2()).unwrap();
        // 3 pattern rows x 3 RHS attributes.
        assert_eq!(normal.len(), 9);
        assert!(normal.iter().all(|n| n.lhs().len() == 3));
    }

    #[test]
    fn normalization_preserves_satisfaction() {
        let cfd = phi2();
        let normal = NormalCfd::normalize(&cfd).unwrap();
        let mut rel = Relation::new(schema());
        for r in [
            ["01", "908", "1111111", "Tree Ave.", "NYC", "07974"],
            ["01", "212", "2222222", "Elm Str.", "NYC", "01202"],
            ["44", "131", "4444444", "High St.", "EDI", "EH4 1DT"],
        ] {
            rel.push(Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
                .unwrap();
        }
        // The original CFD is violated (NYC with area code 908) and so must be
        // at least one of its normal-form constituents — and vice versa for a
        // clean instance.
        assert!(!cfd.satisfied_by(&rel));
        assert!(normal
            .iter()
            .any(|n| !n.to_cfd().unwrap().satisfied_by(&rel)));

        let mut clean = Relation::new(schema());
        clean
            .push(Tuple::new(
                ["01", "908", "1111111", "Tree Ave.", "MH", "07974"]
                    .iter()
                    .map(|s| Value::from(*s))
                    .collect(),
            ))
            .unwrap();
        assert!(cfd.satisfied_by(&clean));
        assert!(normal
            .iter()
            .all(|n| n.to_cfd().unwrap().satisfied_by(&clean)));
    }

    #[test]
    fn denormalize_groups_by_embedded_fd() {
        let normal = NormalCfd::normalize(&phi2()).unwrap();
        let packed = NormalCfd::denormalize(&normal).unwrap();
        // One general CFD per RHS attribute (STR, CT, ZIP), each with 3 rows.
        assert_eq!(packed.len(), 3);
        assert!(packed.iter().all(|c| c.tableau().len() == 3));
    }

    #[test]
    fn parse_and_accessors() {
        let s = schema();
        let n = NormalCfd::parse(&s, ["CC", "AC"], &["01", "215"], "CT", "PHI").unwrap();
        assert_eq!(n.lhs().len(), 2);
        assert_eq!(n.rhs(), s.resolve("CT").unwrap());
        assert!(n.rhs_pattern().is_const());
        assert_eq!(n.constants().len(), 3);
        assert_eq!(n.to_string(), "[CC=01, AC=215] -> CT=PHI");
        assert_eq!(n.size(), 3);
        let cc = s.resolve("CC").unwrap();
        assert_eq!(n.lhs_pattern_of(cc), Some(&PatternValue::constant("01")));
        assert_eq!(n.lhs_pattern_of(s.resolve("ZIP").unwrap()), None);
    }

    #[test]
    fn lhs_is_sorted_and_deduplicated() {
        let s = schema();
        let ac = s.resolve("AC").unwrap();
        let cc = s.resolve("CC").unwrap();
        let ct = s.resolve("CT").unwrap();
        let n = NormalCfd::new(
            s,
            vec![ac, cc, ac],
            vec![
                PatternValue::Wildcard,
                PatternValue::constant("01"),
                PatternValue::Wildcard,
            ],
            ct,
            PatternValue::Wildcard,
        )
        .unwrap();
        assert_eq!(n.lhs(), &[cc, ac]);
        assert_eq!(n.lhs_pattern().len(), 2);
    }

    #[test]
    fn dont_care_is_rejected_in_normal_form() {
        let s = schema();
        let err = NormalCfd::parse(&s, ["CC"], &["@"], "CT", "_").unwrap_err();
        assert_eq!(err, CfdError::DontCareNotAllowed);

        let merged = Cfd::builder(s, ["CC", "AC"], ["CT"])
            .pattern(["01", "@"], ["_"])
            .build()
            .unwrap();
        assert_eq!(
            NormalCfd::normalize(&merged).unwrap_err(),
            CfdError::DontCareNotAllowed
        );
    }

    #[test]
    fn without_lhs_attr_and_pattern_updates() {
        let s = schema();
        let n = NormalCfd::parse(&s, ["CC", "AC"], &["01", "_"], "CT", "PHI").unwrap();
        let cc = s.resolve("CC").unwrap();
        let ac = s.resolve("AC").unwrap();
        let ct = s.resolve("CT").unwrap();

        let dropped = n.without_lhs_attr(ac).unwrap();
        assert_eq!(dropped.lhs(), &[cc]);
        assert!(n.without_lhs_attr(ct).is_none());

        let replaced = n
            .with_lhs_pattern(ac, PatternValue::constant("908"))
            .unwrap();
        assert_eq!(
            replaced.lhs_pattern_of(ac),
            Some(&PatternValue::constant("908"))
        );
        assert!(n.with_lhs_pattern(ct, PatternValue::Wildcard).is_none());

        let general = n.with_rhs_pattern(PatternValue::Wildcard);
        assert!(general.rhs_pattern().is_wildcard());
    }

    #[test]
    fn empty_lhs_is_allowed() {
        // ∅ -> B with a constant pattern arises in Example 3.3's minimal cover.
        let s = Schema::builder("r").text("A").text("B").build();
        let n = NormalCfd::parse(&s, [], &[], "B", "b").unwrap();
        assert!(n.lhs().is_empty());
        assert_eq!(n.to_string(), "[] -> B=b");
        assert!(n.to_cfd().is_ok());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        let cc = s.resolve("CC").unwrap();
        let ct = s.resolve("CT").unwrap();
        let err = NormalCfd::new(s, vec![cc], vec![], ct, PatternValue::Wildcard).unwrap_err();
        assert!(matches!(err, CfdError::PatternArity { .. }));
    }
}
