//! Consistency analysis of CFD sets (Section 3.1).
//!
//! Unlike standard FDs, a set of CFDs can be *inconsistent*: no nonempty
//! instance satisfies it (Example 3.1). The consistency problem is
//! NP-complete in general (Theorem 3.1) because finite-domain attributes can
//! be "used up" by pattern constants, but it is solvable in `O(|Σ|²)` time
//! when the schema is predefined or no finite-domain attribute occurs in `Σ`
//! (Theorem 3.2).
//!
//! The implementation relies on the observation that satisfaction of CFDs is
//! preserved under taking sub-instances, so `Σ` is consistent iff some
//! **single-tuple** instance satisfies it. The search for such a witness
//! tuple is a chase:
//!
//! * attributes with infinite domains start out as *fresh* symbols — values
//!   chosen to differ from every constant in `Σ`, which can only make fewer
//!   LHS patterns applicable and is therefore the optimal choice;
//! * attributes with finite domains are branched over their domain values
//!   (this branching is the source of the NP-hardness and only happens when
//!   such attributes occur in `Σ`);
//! * whenever a CFD's LHS pattern is matched by the current partial tuple,
//!   its RHS constant (if any) is forced; conflicting forced constants mean
//!   the current branch is dead.

use crate::normalize::NormalCfd;
use crate::pattern::PatternValue;
use cfd_relation::{AttrId, Schema, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The value of one attribute in the candidate witness tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Cell {
    /// A value chosen to differ from every constant of `Σ` on this attribute.
    Fresh,
    /// A concrete, forced (or branched) constant.
    Const(Value),
}

/// Determines whether `sigma` is consistent: whether some nonempty instance
/// of the schema satisfies every CFD in it.
///
/// All CFDs must be defined over the same schema; an empty `sigma` is
/// trivially consistent.
pub fn is_consistent(sigma: &[NormalCfd]) -> bool {
    find_witness(sigma).is_some()
}

/// Determines whether `(Σ, B = b)` is consistent (Section 3.2): whether some
/// instance satisfies `Σ` *and* contains a tuple whose `B` attribute is `b`.
/// This is the side condition of inference rules FD7 and FD8.
pub fn is_consistent_binding(sigma: &[NormalCfd], attr: AttrId, value: &Value) -> bool {
    if sigma.is_empty() {
        return true;
    }
    let schema = sigma[0].schema();
    match schema.domain(attr) {
        Ok(d) if d.contains(value) => {}
        _ => return false,
    }
    let mut forced = BTreeMap::new();
    forced.insert(attr, value.clone());
    solve(sigma, schema, &forced).is_some()
}

/// Finds a single-tuple witness of consistency, as `(attribute, value)` pairs
/// for every attribute of the schema, or `None` if `sigma` is inconsistent.
///
/// Fresh cells are materialized with a value outside the constants of
/// `sigma`; the returned tuple therefore genuinely satisfies every CFD.
pub fn find_witness(sigma: &[NormalCfd]) -> Option<Vec<(AttrId, Value)>> {
    if sigma.is_empty() {
        return Some(Vec::new());
    }
    let schema = sigma[0].schema();
    solve(sigma, schema, &BTreeMap::new())
}

/// Core search: branches over finite-domain attributes mentioned in `sigma`,
/// chases forced assignments, and materializes a witness on success.
fn solve(
    sigma: &[NormalCfd],
    schema: &Schema,
    pre_forced: &BTreeMap<AttrId, Value>,
) -> Option<Vec<(AttrId, Value)>> {
    // Constants of sigma per attribute (used to materialize fresh values).
    let mut constants: HashMap<AttrId, Vec<Value>> = HashMap::new();
    for cfd in sigma {
        for (a, v) in cfd.constants() {
            constants.entry(a).or_default().push(v);
        }
    }
    for (a, v) in pre_forced {
        constants.entry(*a).or_default().push(v.clone());
    }

    // Finite-domain attributes mentioned in sigma are branched over.
    let mut finite_attrs: BTreeSet<AttrId> = BTreeSet::new();
    for cfd in sigma {
        for a in cfd.lhs().iter().copied().chain([cfd.rhs()]) {
            if schema.domain(a).map(|d| d.is_finite()).unwrap_or(false) {
                finite_attrs.insert(a);
            }
        }
    }
    let finite_attrs: Vec<AttrId> = finite_attrs
        .into_iter()
        .filter(|a| !pre_forced.contains_key(a))
        .collect();

    let mut assignment: BTreeMap<AttrId, Cell> = BTreeMap::new();
    for id in schema.attr_ids() {
        assignment.insert(id, Cell::Fresh);
    }
    for (a, v) in pre_forced {
        assignment.insert(*a, Cell::Const(v.clone()));
    }

    branch(sigma, schema, &finite_attrs, 0, assignment, &constants)
}

/// Recursively assigns domain values to the finite-domain attributes, then
/// chases; returns a materialized witness for the first branch that survives.
fn branch(
    sigma: &[NormalCfd],
    schema: &Schema,
    finite_attrs: &[AttrId],
    depth: usize,
    assignment: BTreeMap<AttrId, Cell>,
    constants: &HashMap<AttrId, Vec<Value>>,
) -> Option<Vec<(AttrId, Value)>> {
    if depth == finite_attrs.len() {
        let mut chased = assignment;
        if !chase(sigma, &mut chased) {
            return None;
        }
        return materialize(schema, &chased, constants);
    }
    let attr = finite_attrs[depth];
    let domain = schema.domain(attr).ok()?;
    let values: Vec<Value> = domain.values().cloned().collect();
    for v in values {
        let mut next = assignment.clone();
        next.insert(attr, Cell::Const(v));
        if let Some(witness) = branch(sigma, schema, finite_attrs, depth + 1, next, constants) {
            return Some(witness);
        }
    }
    None
}

/// Chases forced RHS constants to a fixpoint. Returns `false` on conflict.
fn chase(sigma: &[NormalCfd], assignment: &mut BTreeMap<AttrId, Cell>) -> bool {
    loop {
        let mut changed = false;
        for cfd in sigma {
            if !lhs_matched(cfd, assignment) {
                continue;
            }
            match cfd.rhs_pattern() {
                PatternValue::Wildcard | PatternValue::DontCare => {}
                PatternValue::Const(id) => {
                    let c = id.resolve();
                    match assignment.get(&cfd.rhs()) {
                        Some(Cell::Const(existing)) => {
                            if existing != c {
                                return false;
                            }
                        }
                        _ => {
                            assignment.insert(cfd.rhs(), Cell::Const(c.clone()));
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return true;
        }
    }
}

/// Whether the single-tuple assignment matches the CFD's LHS pattern.
/// A fresh cell never matches a constant pattern cell (fresh values are
/// chosen outside the constants of `Σ`).
fn lhs_matched(cfd: &NormalCfd, assignment: &BTreeMap<AttrId, Cell>) -> bool {
    cfd.lhs()
        .iter()
        .zip(cfd.lhs_pattern())
        .all(|(a, p)| match p {
            PatternValue::Wildcard | PatternValue::DontCare => true,
            PatternValue::Const(id) => {
                matches!(assignment.get(a), Some(Cell::Const(v)) if v == id.resolve())
            }
        })
}

/// Materializes fresh cells with values outside the constants of `Σ`.
/// For attributes not mentioned in `Σ` whose finite domain offers no "fresh"
/// value, any domain value works, so the first one is used.
fn materialize(
    schema: &Schema,
    assignment: &BTreeMap<AttrId, Cell>,
    constants: &HashMap<AttrId, Vec<Value>>,
) -> Option<Vec<(AttrId, Value)>> {
    let mut out = Vec::with_capacity(assignment.len());
    for (attr, cell) in assignment {
        let value = match cell {
            Cell::Const(v) => v.clone(),
            Cell::Fresh => {
                let avoid = constants.get(attr).cloned().unwrap_or_default();
                let domain = schema.domain(*attr).ok()?;
                match domain.fresh_value_avoiding(&avoid) {
                    Some(v) => v,
                    None => domain.values().next()?.clone(),
                }
            }
        };
        out.push((*attr, value));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::{Domain, Relation, Tuple};

    fn schema_ab() -> Schema {
        Schema::builder("R").text("A").text("B").build()
    }

    fn schema_bool_a() -> Schema {
        Schema::builder("R")
            .attr_domain("A", Domain::boolean())
            .text("B")
            .build()
    }

    /// Builds a normal CFD where `"true"`/`"false"` tokens become boolean
    /// constants (needed for the finite-domain examples).
    fn booly(
        schema: &Schema,
        lhs: &str,
        lhs_pattern: &str,
        rhs: &str,
        rhs_pattern: &str,
    ) -> NormalCfd {
        let to_pv = |s: &str| match s {
            "_" => PatternValue::Wildcard,
            "true" => PatternValue::constant(Value::Bool(true)),
            "false" => PatternValue::constant(Value::Bool(false)),
            other => PatternValue::constant(other),
        };
        NormalCfd::new(
            schema.clone(),
            vec![schema.resolve(lhs).unwrap()],
            vec![to_pv(lhs_pattern)],
            schema.resolve(rhs).unwrap(),
            to_pv(rhs_pattern),
        )
        .unwrap()
    }

    #[test]
    fn empty_set_is_consistent() {
        assert!(is_consistent(&[]));
        assert_eq!(find_witness(&[]), Some(vec![]));
    }

    #[test]
    fn example_3_1_conflicting_rhs_constants() {
        // ψ1 = (A -> B, {(_, b), (_, c)}) is inconsistent on its own.
        let s = schema_ab();
        let p1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let p2 = NormalCfd::parse(&s, ["A"], &["_"], "B", "c").unwrap();
        assert!(is_consistent(std::slice::from_ref(&p1)));
        assert!(is_consistent(std::slice::from_ref(&p2)));
        assert!(!is_consistent(&[p1, p2]));
    }

    #[test]
    fn example_3_1_finite_domain_interaction() {
        // dom(A) = bool; ψ2 = (A -> B, {(true, b1), (false, b2)}),
        // ψ3 = (B -> A, {(b1, false), (b2, true)}). Separately satisfiable,
        // together inconsistent.
        let s = schema_bool_a();
        let psi2a = booly(&s, "A", "true", "B", "b1");
        let psi2b = booly(&s, "A", "false", "B", "b2");
        let psi3a = booly(&s, "B", "b1", "A", "false");
        let psi3b = booly(&s, "B", "b2", "A", "true");
        assert!(is_consistent(&[psi2a.clone(), psi2b.clone()]));
        assert!(is_consistent(&[psi3a.clone(), psi3b.clone()]));
        assert!(!is_consistent(&[psi2a, psi2b, psi3a, psi3b]));
    }

    #[test]
    fn consistent_set_yields_a_real_witness() {
        // Cascade: (∅ -> A, a) forces A=a, then (A=a -> B, b) forces B=b.
        let s = schema_ab();
        let c1 = NormalCfd::parse(&s, [], &[], "A", "a").unwrap();
        let c2 = NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap();
        let sigma = vec![c1.clone(), c2.clone()];
        let witness = find_witness(&sigma).expect("consistent");
        let mut tuple = Tuple::nulls(s.arity());
        for (a, v) in &witness {
            tuple.set(*a, v.clone());
        }
        let mut rel = Relation::new(s);
        rel.push(tuple).unwrap();
        assert!(c1.to_cfd().unwrap().satisfied_by(&rel));
        assert!(c2.to_cfd().unwrap().satisfied_by(&rel));
    }

    #[test]
    fn cascading_forced_constants_can_conflict() {
        // (∅ -> A, a); (A=a -> B, b); (B=b -> A, a2): forces A to both a and a2.
        let s = schema_ab();
        let c1 = NormalCfd::parse(&s, [], &[], "A", "a").unwrap();
        let c2 = NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap();
        let c3 = NormalCfd::parse(&s, ["B"], &["b"], "A", "a2").unwrap();
        assert!(!is_consistent(&[c1, c2, c3]));
    }

    #[test]
    fn wildcard_rhs_never_causes_inconsistency() {
        let s = schema_ab();
        let c1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let c2 = NormalCfd::parse(&s, ["B"], &["_"], "A", "_").unwrap();
        assert!(is_consistent(&[c1, c2]));
    }

    #[test]
    fn binding_consistency_examples() {
        // With Σ = {ψ2, ψ3} over bool A, neither (Σ, A=true) nor (Σ, A=false)
        // is consistent (Section 3.2's example).
        let s = schema_bool_a();
        let a = s.resolve("A").unwrap();
        let sigma = vec![
            booly(&s, "A", "true", "B", "b1"),
            booly(&s, "A", "false", "B", "b2"),
            booly(&s, "B", "b1", "A", "false"),
            booly(&s, "B", "b2", "A", "true"),
        ];
        assert!(!is_consistent_binding(&sigma, a, &Value::Bool(true)));
        assert!(!is_consistent_binding(&sigma, a, &Value::Bool(false)));

        // With only ψ2, both bindings are consistent.
        let sigma2 = vec![sigma[0].clone(), sigma[1].clone()];
        assert!(is_consistent_binding(&sigma2, a, &Value::Bool(true)));
        assert!(is_consistent_binding(&sigma2, a, &Value::Bool(false)));
    }

    #[test]
    fn binding_outside_domain_is_inconsistent() {
        let s = schema_bool_a();
        let a = s.resolve("A").unwrap();
        let sigma = vec![booly(&s, "A", "_", "B", "_")];
        assert!(!is_consistent_binding(
            &sigma,
            a,
            &Value::from("not-a-bool")
        ));
    }

    #[test]
    fn binding_on_infinite_attribute() {
        let s = schema_ab();
        let b = s.resolve("B").unwrap();
        // Σ forces B=b only when A=a; nothing forces A=a, so B=zzz is fine.
        let sigma = vec![NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap()];
        assert!(is_consistent_binding(&sigma, b, &Value::from("zzz")));
        // Σ with (∅ -> B, b) forces B=b in every tuple; B=zzz is inconsistent.
        let sigma = vec![NormalCfd::parse(&s, [], &[], "B", "b").unwrap()];
        assert!(!is_consistent_binding(&sigma, b, &Value::from("zzz")));
        assert!(is_consistent_binding(&sigma, b, &Value::from("b")));
    }

    #[test]
    fn finite_domain_forced_from_both_sides() {
        // dom(A)=bool; (∅ -> A, true) and (∅ -> A, false) conflict.
        let s = schema_bool_a();
        let a = s.resolve("A").unwrap();
        let a_true = NormalCfd::new(
            s.clone(),
            vec![],
            vec![],
            a,
            PatternValue::constant(Value::Bool(true)),
        )
        .unwrap();
        let a_false = NormalCfd::new(
            s,
            vec![],
            vec![],
            a,
            PatternValue::constant(Value::Bool(false)),
        )
        .unwrap();
        assert!(is_consistent(std::slice::from_ref(&a_true)));
        assert!(!is_consistent(&[a_true, a_false]));
    }

    #[test]
    fn witness_single_tuple_satisfies_every_cfd_in_a_mixed_set() {
        let s = schema_bool_a();
        let sigma = vec![
            booly(&s, "A", "true", "B", "b1"),
            booly(&s, "A", "false", "B", "b2"),
            booly(&s, "B", "b1", "A", "true"),
        ];
        let witness = find_witness(&sigma).expect("consistent");
        let mut tuple = Tuple::nulls(s.arity());
        for (a, v) in &witness {
            tuple.set(*a, v.clone());
        }
        let mut rel = Relation::new(s);
        rel.push(tuple).unwrap();
        for cfd in &sigma {
            assert!(
                cfd.to_cfd().unwrap().satisfied_by(&rel),
                "witness violates {cfd}"
            );
        }
    }

    #[test]
    fn large_consistent_set_stays_fast() {
        // A chain of ~60 CFDs over 30 attributes with distinct constants:
        // consistency must hold and the chase should not blow up.
        let mut builder = Schema::builder("R");
        for i in 0..30 {
            builder = builder.text(format!("A{i}"));
        }
        let s = builder.build();
        let mut sigma = Vec::new();
        for i in 0..29 {
            let a = format!("A{i}");
            let b = format!("A{}", i + 1);
            sigma.push(NormalCfd::parse(&s, [a.as_str()], &["_"], b.as_str(), "_").unwrap());
            sigma.push(
                NormalCfd::parse(
                    &s,
                    [a.as_str()],
                    &[format!("v{i}").as_str()],
                    b.as_str(),
                    "w",
                )
                .unwrap(),
            );
        }
        assert!(is_consistent(&sigma));
    }
}
