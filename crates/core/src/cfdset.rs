//! A set of CFDs over a single schema, with the reasoning operations of
//! Section 3 exposed as methods.

use crate::cfd::{Cfd, ViolationWitness};
use crate::consistency;
use crate::error::{CfdError, Result};
use crate::implication;
use crate::mincover;
use crate::normalize::NormalCfd;
use cfd_relation::{Relation, Schema};
use std::fmt;

/// A collection of CFDs (`Σ` in the paper) defined over one relation schema.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CfdSet {
    cfds: Vec<Cfd>,
}

impl CfdSet {
    /// An empty set.
    pub fn new() -> Self {
        CfdSet { cfds: Vec::new() }
    }

    /// Builds a set from CFDs, checking they share a schema.
    pub fn from_cfds(cfds: Vec<Cfd>) -> Result<Self> {
        let mut set = CfdSet::new();
        for cfd in cfds {
            set.push(cfd)?;
        }
        Ok(set)
    }

    /// Adds a CFD, checking it is defined over the same schema as the others.
    pub fn push(&mut self, cfd: Cfd) -> Result<()> {
        if let Some(first) = self.cfds.first() {
            if first.schema() != cfd.schema() {
                return Err(CfdError::MixedSchemas {
                    left: first.schema().name().to_owned(),
                    right: cfd.schema().name().to_owned(),
                });
            }
        }
        self.cfds.push(cfd);
        Ok(())
    }

    /// The CFDs in insertion order.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Number of CFDs.
    pub fn len(&self) -> usize {
        self.cfds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cfds.is_empty()
    }

    /// The schema the CFDs are defined over (None for an empty set).
    pub fn schema(&self) -> Option<&Schema> {
        self.cfds.first().map(Cfd::schema)
    }

    /// Iterates the CFDs.
    pub fn iter(&self) -> impl Iterator<Item = &Cfd> + '_ {
        self.cfds.iter()
    }

    /// Total number of pattern rows across the set (`Σ`'s tableau size).
    pub fn total_patterns(&self) -> usize {
        self.cfds.iter().map(|c| c.tableau().len()).sum()
    }

    /// Converts every CFD into its normal form `(X → A, tp)` (Section 3).
    pub fn normalize(&self) -> Result<Vec<NormalCfd>> {
        let mut out = Vec::new();
        for cfd in &self.cfds {
            out.extend(NormalCfd::normalize(cfd)?);
        }
        Ok(out)
    }

    /// Whether the set is consistent (some nonempty instance satisfies it).
    pub fn is_consistent(&self) -> Result<bool> {
        Ok(consistency::is_consistent(&self.normalize()?))
    }

    /// Prepare-time validation: errors with [`CfdError::Inconsistent`] when
    /// the set admits no nonempty satisfying instance (Section 3.1), so an
    /// engine can reject a hopeless rule set **before any data is touched**.
    ///
    /// CFDs whose tableaux contain the don't-care symbol `@` are merged-
    /// tableaux artifacts (Section 4.2) that the normal form cannot express;
    /// they are *skipped* by this check (the consistency verdict covers the
    /// `@`-free subset), rather than rejected like
    /// [`CfdSet::is_consistent`] would.
    pub fn ensure_consistent(&self) -> Result<()> {
        let mut normal = Vec::new();
        for cfd in self.cfds.iter().filter(|c| !c.has_dont_care()) {
            normal.extend(NormalCfd::normalize(cfd)?);
        }
        if consistency::is_consistent(&normal) {
            Ok(())
        } else {
            Err(CfdError::Inconsistent)
        }
    }

    /// Whether this set implies the given normal-form CFD.
    pub fn implies(&self, phi: &NormalCfd) -> Result<bool> {
        Ok(implication::implies(&self.normalize()?, phi))
    }

    /// Whether this set and `other` are equivalent.
    pub fn equivalent_to(&self, other: &CfdSet) -> Result<bool> {
        Ok(mincover::equivalent(
            &self.normalize()?,
            &other.normalize()?,
        ))
    }

    /// Computes a minimal cover and re-packages it as general CFDs grouped by
    /// embedded FD (Section 3.3).
    pub fn minimal_cover(&self) -> Result<CfdSet> {
        let cover = mincover::minimal_cover(&self.normalize()?);
        let packed = NormalCfd::denormalize(&cover)?;
        CfdSet::from_cfds(packed)
    }

    /// `I ⊨ Σ`: whether the instance satisfies every CFD in the set.
    pub fn satisfied_by(&self, rel: &Relation) -> bool {
        self.cfds.iter().all(|c| c.satisfied_by(rel))
    }

    /// All violation witnesses, tagged with the index of the violated CFD.
    pub fn violations(&self, rel: &Relation) -> Vec<(usize, ViolationWitness)> {
        let mut out = Vec::new();
        for (i, cfd) in self.cfds.iter().enumerate() {
            for w in cfd.violations(rel) {
                out.push((i, w));
            }
        }
        out
    }
}

impl fmt::Display for CfdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, cfd) in self.cfds.iter().enumerate() {
            writeln!(f, "ϕ{}: {}", i + 1, cfd)?;
        }
        Ok(())
    }
}

impl IntoIterator for CfdSet {
    type Item = Cfd;
    type IntoIter = std::vec::IntoIter<Cfd>;

    fn into_iter(self) -> Self::IntoIter {
        self.cfds.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::{Tuple, Value};

    fn cust_schema() -> Schema {
        Schema::builder("cust")
            .text("CC")
            .text("AC")
            .text("PN")
            .text("NM")
            .text("STR")
            .text("CT")
            .text("ZIP")
            .build()
    }

    fn cust_instance() -> Relation {
        let mut rel = Relation::new(cust_schema());
        for r in [
            ["01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"],
            ["01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"],
            ["01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"],
            ["01", "212", "2222222", "Jim", "Elm Str.", "NYC", "01202"],
            ["01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"],
            ["44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"],
        ] {
            rel.push(Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
                .unwrap();
        }
        rel
    }

    fn fig2_cfds() -> CfdSet {
        let s = cust_schema();
        let phi1 = Cfd::builder(s.clone(), ["CC", "ZIP"], ["STR"])
            .pattern(["44", "_"], ["_"])
            .build()
            .unwrap();
        let phi2 = Cfd::builder(s.clone(), ["CC", "AC", "PN"], ["STR", "CT", "ZIP"])
            .pattern(["01", "908", "_"], ["_", "MH", "_"])
            .pattern(["01", "212", "_"], ["_", "NYC", "_"])
            .pattern(["_", "_", "_"], ["_", "_", "_"])
            .build()
            .unwrap();
        let phi3 = Cfd::builder(s, ["CC", "AC"], ["CT"])
            .pattern(["01", "215"], ["PHI"])
            .pattern(["44", "141"], ["GLA"])
            .build()
            .unwrap();
        CfdSet::from_cfds(vec![phi1, phi2, phi3]).unwrap()
    }

    #[test]
    fn push_rejects_mixed_schemas() {
        let mut set = CfdSet::new();
        let s1 = Schema::builder("r1").text("A").text("B").build();
        let s2 = Schema::builder("r2").text("A").text("B").build();
        set.push(Cfd::fd(s1, ["A"], ["B"]).unwrap()).unwrap();
        let err = set.push(Cfd::fd(s2, ["A"], ["B"]).unwrap()).unwrap_err();
        assert!(matches!(err, CfdError::MixedSchemas { .. }));
    }

    #[test]
    fn fig2_set_statistics_and_satisfaction() {
        let set = fig2_cfds();
        assert_eq!(set.len(), 3);
        assert_eq!(set.total_patterns(), 6);
        assert!(!set.is_empty());
        assert_eq!(set.schema().unwrap().name(), "cust");
        let rel = cust_instance();
        // ϕ2 is violated on Fig. 1, so the whole set is violated.
        assert!(!set.satisfied_by(&rel));
        let violations = set.violations(&rel);
        assert!(
            violations.iter().all(|(idx, _)| *idx == 1),
            "only ϕ2 is violated"
        );
        assert!(!violations.is_empty());
    }

    #[test]
    fn normalization_counts() {
        let set = fig2_cfds();
        let normal = set.normalize().unwrap();
        // ϕ1: 1 row x 1 rhs; ϕ2: 3 rows x 3 rhs; ϕ3: 2 rows x 1 rhs.
        assert_eq!(normal.len(), 1 + 9 + 2);
    }

    #[test]
    fn fig2_set_is_consistent() {
        let set = fig2_cfds();
        assert!(set.is_consistent().unwrap());
        set.ensure_consistent().unwrap();
    }

    #[test]
    fn ensure_consistent_rejects_conflicting_constants() {
        // (A -> B, (_ ‖ b)) plus (A -> B, (_ ‖ c)): every tuple would need
        // B = b and B = c at once — Example 3.1's inconsistency.
        let s = Schema::builder("r").text("A").text("B").build();
        let to_b = Cfd::builder(s.clone(), ["A"], ["B"])
            .pattern(["_"], ["b"])
            .build()
            .unwrap();
        let to_c = Cfd::builder(s, ["A"], ["B"])
            .pattern(["_"], ["c"])
            .build()
            .unwrap();
        let set = CfdSet::from_cfds(vec![to_b.clone(), to_c]).unwrap();
        assert_eq!(set.ensure_consistent().unwrap_err(), CfdError::Inconsistent);
        // A single one of them is fine.
        CfdSet::from_cfds(vec![to_b])
            .unwrap()
            .ensure_consistent()
            .unwrap();
    }

    #[test]
    fn ensure_consistent_skips_dont_care_tableaux() {
        // A merged-style tableau with @ cells would make `is_consistent`
        // error out; `ensure_consistent` checks the @-free subset instead.
        let s = cust_schema();
        let merged_style = Cfd::builder(s.clone(), ["CC", "AC"], ["CT"])
            .pattern(["01", "@"], ["@"])
            .build()
            .unwrap();
        let plain = Cfd::builder(s, ["CC", "AC"], ["CT"])
            .pattern(["01", "215"], ["PHI"])
            .build()
            .unwrap();
        let set = CfdSet::from_cfds(vec![merged_style, plain]).unwrap();
        assert!(set.is_consistent().is_err(), "normal form rejects @");
        set.ensure_consistent().unwrap();
    }

    #[test]
    fn implication_via_set_api() {
        let set = fig2_cfds();
        let s = cust_schema();
        // ϕ3 contains the pattern ([CC=01, AC=215] -> CT=PHI); it is implied.
        let phi = NormalCfd::parse(&s, ["CC", "AC"], &["01", "215"], "CT", "PHI").unwrap();
        assert!(set.implies(&phi).unwrap());
        // Nothing implies a fresh unrelated constant constraint.
        let not_implied = NormalCfd::parse(&s, ["CC"], &["01"], "CT", "NYC").unwrap();
        assert!(!set.implies(&not_implied).unwrap());
    }

    #[test]
    fn minimal_cover_roundtrip_is_equivalent() {
        let set = fig2_cfds();
        let cover = set.minimal_cover().unwrap();
        assert!(set.equivalent_to(&cover).unwrap());
        assert!(cover.total_patterns() <= set.total_patterns() * 3);
    }

    #[test]
    fn empty_set_behaviour() {
        let set = CfdSet::new();
        assert!(set.is_empty());
        assert!(set.schema().is_none());
        assert!(set.is_consistent().unwrap());
        assert!(set.satisfied_by(&cust_instance()));
        assert_eq!(set.minimal_cover().unwrap().len(), 0);
    }

    #[test]
    fn display_and_into_iter() {
        let set = fig2_cfds();
        let text = set.to_string();
        assert!(text.contains("ϕ1"));
        assert!(text.contains("[CC, AC] -> [CT]"));
        let collected: Vec<Cfd> = set.clone().into_iter().collect();
        assert_eq!(collected.len(), set.len());
    }
}
