//! The inference system `I` for CFDs (Fig. 3 of the paper).
//!
//! The system has eight rules. FD1–FD3 extend Armstrong's reflexivity,
//! augmentation and transitivity; FD4–FD6 manipulate pattern cells; FD7–FD8
//! handle attributes with finite domains and are stated relative to a set `Σ`
//! (they consult the consistency of `(Σ, B = b)` bindings).
//!
//! Each rule is exposed as a constructor that checks the rule's side
//! conditions and returns the derived CFD, plus a small [`Derivation`]
//! recorder so proofs like Example 3.2 can be written down and inspected.
//! Theorem 3.3 states that `I` is sound and complete for CFD implication;
//! the tests cross-check every rule application against the semantic
//! [`implies`](crate::implication::implies) check.

use crate::consistency::is_consistent_binding;
use crate::error::{CfdError, Result};
use crate::normalize::NormalCfd;
use crate::pattern::PatternValue;
use cfd_relation::{AttrId, Schema, Value};
use std::fmt;

/// Identifies one of the eight inference rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InferenceRule {
    /// Reflexivity: if `A ∈ X` then `(X → A)` with all-wildcard pattern.
    FD1,
    /// Augmentation: from `(X → A, tp)` derive `([X, B] → A, tp')` with
    /// `tp'[B] = _`.
    FD2,
    /// Transitivity through patterns, using the order `⪯`.
    FD3,
    /// Dropping an LHS attribute whose cell is `_` when the RHS cell is a
    /// constant.
    FD4,
    /// Substituting a constant for `_` in an LHS cell.
    FD5,
    /// Substituting `_` for a constant in the RHS cell.
    FD6,
    /// Upgrading an LHS cell to `_` when every consistent value of a
    /// finite-domain attribute is covered.
    FD7,
    /// Deriving `(B → B, (_ ‖ b))` when `b` is the only consistent value of
    /// the finite-domain attribute `B`.
    FD8,
}

impl fmt::Display for InferenceRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One step of a derivation: the rule used, the premises (rendered), and the
/// conclusion.
#[derive(Debug, Clone)]
pub struct DerivationStep {
    /// The rule applied at this step.
    pub rule: InferenceRule,
    /// Human-readable premises (already-derived CFDs or axioms of `Σ`).
    pub premises: Vec<String>,
    /// The CFD concluded by this step.
    pub conclusion: NormalCfd,
}

/// A sequence of rule applications, as in Example 3.2.
#[derive(Debug, Clone, Default)]
pub struct Derivation {
    steps: Vec<DerivationStep>,
}

impl Derivation {
    /// An empty derivation.
    pub fn new() -> Self {
        Derivation { steps: Vec::new() }
    }

    /// Records a step.
    pub fn record(&mut self, rule: InferenceRule, premises: Vec<String>, conclusion: NormalCfd) {
        self.steps.push(DerivationStep {
            rule,
            premises,
            conclusion,
        });
    }

    /// The recorded steps in order.
    pub fn steps(&self) -> &[DerivationStep] {
        &self.steps
    }

    /// The final conclusion, if any step was recorded.
    pub fn conclusion(&self) -> Option<&NormalCfd> {
        self.steps.last().map(|s| &s.conclusion)
    }
}

impl fmt::Display for Derivation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "({}) {}    [{} from {}]",
                i + 1,
                step.conclusion,
                step.rule,
                if step.premises.is_empty() {
                    "axioms".to_owned()
                } else {
                    step.premises.join(", ")
                }
            )?;
        }
        Ok(())
    }
}

/// FD1 (reflexivity): if `A ∈ X`, derive `(X → A, tp)` with `tp` all `_`.
pub fn fd1(schema: &Schema, x: &[AttrId], a: AttrId) -> Result<Option<NormalCfd>> {
    if !x.contains(&a) {
        return Ok(None);
    }
    let cfd = NormalCfd::new(
        schema.clone(),
        x.to_vec(),
        vec![PatternValue::Wildcard; x.len()],
        a,
        PatternValue::Wildcard,
    )?;
    Ok(Some(cfd))
}

/// FD2 (augmentation): from `(X → A, tp)` and `B ∈ attr(R)`, derive
/// `([X, B] → A, tp')` where `tp'[B] = _`.
pub fn fd2(premise: &NormalCfd, b: AttrId) -> Result<Option<NormalCfd>> {
    if premise.schema().attribute(b).is_err() {
        return Ok(None);
    }
    if premise.lhs().contains(&b) {
        // B is already in X; augmentation adds nothing (the result equals the premise).
        return Ok(Some(premise.clone()));
    }
    let mut lhs = premise.lhs().to_vec();
    let mut pattern = premise.lhs_pattern().to_vec();
    lhs.push(b);
    pattern.push(PatternValue::Wildcard);
    Ok(Some(NormalCfd::new(
        premise.schema().clone(),
        lhs,
        pattern,
        premise.rhs(),
        *premise.rhs_pattern(),
    )?))
}

/// FD3 (transitivity): given `(X → A_i, t_i)` for `i ∈ [1, k]` whose LHS
/// patterns agree, and `([A_1 … A_k] → B, tp)` with
/// `(t_1[A_1], …, t_k[A_k]) ⪯ tp[A_1 … A_k]`, derive `(X → B, tp')` with
/// `tp'[X] = t_1[X]` and `tp'[B] = tp[B]`.
pub fn fd3(premises: &[NormalCfd], bridge: &NormalCfd) -> Result<Option<NormalCfd>> {
    if premises.is_empty() {
        return Ok(None);
    }
    let first = &premises[0];
    // (1) all premises share the same X and the same LHS pattern.
    for p in premises {
        if p.lhs() != first.lhs() || p.lhs_pattern() != first.lhs_pattern() {
            return Ok(None);
        }
    }
    // (2) the bridge's LHS must be exactly the premises' RHS attributes, and
    // (3) the premises' RHS cells must be ⪯ the bridge's LHS cells.
    if bridge.lhs().len() != premises.len() {
        return Ok(None);
    }
    for (attr, cell) in bridge.lhs().iter().zip(bridge.lhs_pattern()) {
        let Some(p) = premises.iter().find(|p| p.rhs() == *attr) else {
            return Ok(None);
        };
        if !p.rhs_pattern().leq(cell) {
            return Ok(None);
        }
    }
    Ok(Some(NormalCfd::new(
        first.schema().clone(),
        first.lhs().to_vec(),
        first.lhs_pattern().to_vec(),
        bridge.rhs(),
        *bridge.rhs_pattern(),
    )?))
}

/// FD4: from `([B, X] → A, tp)` with `tp[B] = _` and `tp[A]` a constant,
/// derive `(X → A, tp[X ∪ A])` — the `B` attribute is redundant.
pub fn fd4(premise: &NormalCfd, b: AttrId) -> Result<Option<NormalCfd>> {
    if !premise.rhs_pattern().is_const() {
        return Ok(None);
    }
    match premise.lhs_pattern_of(b) {
        Some(PatternValue::Wildcard) => {}
        _ => return Ok(None),
    }
    Ok(premise.without_lhs_attr(b))
}

/// FD5: from `([B, X] → A, tp)` with `tp[B] = _`, derive the CFD obtained by
/// substituting the constant `b ∈ dom(B)` for `_` in `tp[B]`.
pub fn fd5(premise: &NormalCfd, b_attr: AttrId, b_value: Value) -> Result<Option<NormalCfd>> {
    match premise.lhs_pattern_of(b_attr) {
        Some(PatternValue::Wildcard) => {}
        _ => return Ok(None),
    }
    let domain = premise.schema().domain(b_attr)?;
    if !domain.contains(&b_value) {
        return Err(CfdError::PatternConstantOutsideDomain {
            attribute: premise.schema().attr_name(b_attr).to_owned(),
            value: b_value.to_string(),
        });
    }
    Ok(premise.with_lhs_pattern(b_attr, PatternValue::from(b_value)))
}

/// FD6: from `(X → A, tp)` with `tp[A] = a`, derive the CFD with `tp[A]`
/// replaced by `_`.
pub fn fd6(premise: &NormalCfd) -> Result<Option<NormalCfd>> {
    if !premise.rhs_pattern().is_const() {
        return Ok(None);
    }
    Ok(Some(premise.with_rhs_pattern(PatternValue::Wildcard)))
}

/// FD7: let `B` be a finite-domain attribute. Given derived CFDs
/// `([X, B] → A, t_i)` that agree on `X` and on `A`, whose `B` cells
/// `b_1, …, b_k` are exactly the values for which `(Σ, B = b)` is consistent,
/// derive `([X, B] → A, tp)` with `tp[B] = _`.
pub fn fd7(sigma: &[NormalCfd], premises: &[NormalCfd], b: AttrId) -> Result<Option<NormalCfd>> {
    if premises.is_empty() {
        return Ok(None);
    }
    let first = &premises[0];
    let schema = first.schema();
    let domain = schema.domain(b)?.clone();
    if !domain.is_finite() {
        return Ok(None);
    }
    // All premises must share the embedded FD, the X pattern and the A pattern,
    // and differ only in their (constant) B cell. Covered constants are
    // collected as interned ids — no value cloning in this loop.
    let mut covered: Vec<cfd_relation::ValueId> = Vec::new();
    for p in premises {
        if p.lhs() != first.lhs()
            || p.rhs() != first.rhs()
            || p.rhs_pattern() != first.rhs_pattern()
        {
            return Ok(None);
        }
        for (attr, cell) in p.lhs().iter().zip(p.lhs_pattern()) {
            if *attr == b {
                match cell {
                    PatternValue::Const(id) => covered.push(*id),
                    _ => return Ok(None),
                }
            } else if Some(cell) != first.lhs_pattern_of(*attr) {
                return Ok(None);
            }
        }
    }
    // The covered values must include every consistent value of dom(B).
    for v in domain.values() {
        if is_consistent_binding(sigma, b, v) && !covered.contains(&cfd_relation::ValueId::of(v)) {
            return Ok(None);
        }
    }
    Ok(first.with_lhs_pattern(b, PatternValue::Wildcard))
}

/// FD8: if `B` has a finite domain and `(Σ, B = b)` is consistent for exactly
/// one value `b1`, derive `(B → B, (_ ‖ b1))`.
pub fn fd8(sigma: &[NormalCfd], schema: &Schema, b: AttrId) -> Result<Option<NormalCfd>> {
    let domain = schema.domain(b)?.clone();
    if !domain.is_finite() {
        return Ok(None);
    }
    let consistent: Vec<&Value> = domain
        .values()
        .filter(|v| is_consistent_binding(sigma, b, v))
        .collect();
    if consistent.len() != 1 {
        return Ok(None);
    }
    Ok(Some(NormalCfd::new(
        schema.clone(),
        vec![b],
        vec![PatternValue::Wildcard],
        b,
        PatternValue::constant(consistent[0].clone()),
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::implies;
    use cfd_relation::Domain;

    fn schema() -> Schema {
        Schema::builder("R").text("A").text("B").text("C").build()
    }

    #[test]
    fn example_3_2_full_derivation() {
        // Σ = {ψ1 = (A→B, (_ ‖ b)), ψ2 = (B→C, (_ ‖ c))}, ϕ = (A→C, (a ‖ _)).
        let s = schema();
        let psi1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let psi2 = NormalCfd::parse(&s, ["B"], &["_"], "C", "c").unwrap();
        let sigma = vec![psi1.clone(), psi2.clone()];
        let mut proof = Derivation::new();
        proof.record(InferenceRule::FD3, vec![], psi1.clone());
        proof.record(InferenceRule::FD3, vec![], psi2.clone());

        // (3) FD3: (A → C, (_ ‖ c)).
        let step3 = fd3(std::slice::from_ref(&psi1), &psi2)
            .unwrap()
            .expect("FD3 applies");
        assert_eq!(
            step3,
            NormalCfd::parse(&s, ["A"], &["_"], "C", "c").unwrap()
        );
        proof.record(
            InferenceRule::FD3,
            vec![psi1.to_string(), psi2.to_string()],
            step3.clone(),
        );

        // (4) FD5: substitute the constant a for _ in the LHS.
        let a_attr = s.resolve("A").unwrap();
        let step4 = fd5(&step3, a_attr, Value::from("a"))
            .unwrap()
            .expect("FD5 applies");
        assert_eq!(
            step4,
            NormalCfd::parse(&s, ["A"], &["a"], "C", "c").unwrap()
        );
        proof.record(InferenceRule::FD5, vec![step3.to_string()], step4.clone());

        // (5) FD6: replace the RHS constant by _.
        let step5 = fd6(&step4).unwrap().expect("FD6 applies");
        assert_eq!(
            step5,
            NormalCfd::parse(&s, ["A"], &["a"], "C", "_").unwrap()
        );
        proof.record(InferenceRule::FD6, vec![step4.to_string()], step5.clone());

        // Soundness: every derived CFD is semantically implied by Σ.
        for step in proof.steps().iter().skip(2) {
            assert!(
                implies(&sigma, &step.conclusion),
                "unsound step: {}",
                step.conclusion
            );
        }
        assert_eq!(proof.conclusion(), Some(&step5));
        let rendered = proof.to_string();
        assert!(rendered.contains("FD5"));
        assert!(rendered.contains("[A=a] -> C=_"));
    }

    #[test]
    fn fd1_reflexivity() {
        let s = schema();
        let a = s.resolve("A").unwrap();
        let b = s.resolve("B").unwrap();
        let got = fd1(&s, &[a, b], a).unwrap().expect("A ∈ {A,B}");
        assert!(implies(&[], &got), "FD1 conclusions are valid");
        assert!(fd1(&s, &[b], a).unwrap().is_none());
    }

    #[test]
    fn fd2_augmentation_is_sound() {
        let s = schema();
        let premise = NormalCfd::parse(&s, ["A"], &["a"], "C", "c").unwrap();
        let b = s.resolve("B").unwrap();
        let got = fd2(&premise, b).unwrap().expect("B exists");
        assert_eq!(got.lhs().len(), 2);
        assert!(implies(std::slice::from_ref(&premise), &got));
        // Augmenting with an attribute already present is a no-op.
        let a = s.resolve("A").unwrap();
        assert_eq!(fd2(&premise, a).unwrap().unwrap(), premise);
    }

    #[test]
    fn fd3_requires_pattern_compatibility() {
        let s = schema();
        // Premise concludes B = b; the bridge requires B = b' — the ⪯ check fails.
        let premise = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let bridge_bad = NormalCfd::parse(&s, ["B"], &["b2"], "C", "c").unwrap();
        assert!(fd3(std::slice::from_ref(&premise), &bridge_bad)
            .unwrap()
            .is_none());
        // Matching constant is fine.
        let bridge_const = NormalCfd::parse(&s, ["B"], &["b"], "C", "c").unwrap();
        let got = fd3(std::slice::from_ref(&premise), &bridge_const)
            .unwrap()
            .expect("⪯ holds (b ⪯ b)");
        assert!(implies(&[premise.clone(), bridge_const], &got));
        // Premises with mismatched LHS patterns are rejected.
        let other = NormalCfd::parse(&s, ["A"], &["x"], "B", "b").unwrap();
        let bridge2 = NormalCfd::parse(&s, ["B", "C"], &["_", "_"], "A", "_").unwrap();
        assert!(fd3(&[premise, other], &bridge2).unwrap().is_none());
        assert!(fd3(&[], &bridge2).unwrap().is_none());
    }

    #[test]
    fn fd3_multi_premise_transitivity() {
        let s = schema();
        // X = {A}; premises (A→B, (_ ‖ _)) and (A→C, (_ ‖ _)); bridge ([B,C]→A later? no:
        // bridge ([B,C] → A) is cyclic; use a 4-attribute schema instead.
        let s4 = Schema::builder("R")
            .text("A")
            .text("B")
            .text("C")
            .text("D")
            .build();
        let p1 = NormalCfd::parse(&s4, ["A"], &["_"], "B", "_").unwrap();
        let p2 = NormalCfd::parse(&s4, ["A"], &["_"], "C", "_").unwrap();
        let bridge = NormalCfd::parse(&s4, ["B", "C"], &["_", "_"], "D", "_").unwrap();
        let got = fd3(&[p1.clone(), p2.clone()], &bridge)
            .unwrap()
            .expect("applies");
        assert_eq!(got, NormalCfd::parse(&s4, ["A"], &["_"], "D", "_").unwrap());
        assert!(implies(&[p1, p2, bridge], &got));
        let _ = s; // silence unused in this branch
    }

    #[test]
    fn fd4_drops_redundant_attribute() {
        let s = schema();
        // ([A, B] → C, (a, _ ‖ c)): B is redundant because tp[B] = _ and tp[C] is a constant.
        let premise = NormalCfd::parse(&s, ["A", "B"], &["a", "_"], "C", "c").unwrap();
        let b = s.resolve("B").unwrap();
        let got = fd4(&premise, b).unwrap().expect("applies");
        assert_eq!(got, NormalCfd::parse(&s, ["A"], &["a"], "C", "c").unwrap());
        assert!(implies(std::slice::from_ref(&premise), &got));
        // Not applicable when the RHS is a wildcard…
        let premise_wild = NormalCfd::parse(&s, ["A", "B"], &["a", "_"], "C", "_").unwrap();
        assert!(fd4(&premise_wild, b).unwrap().is_none());
        // …and indeed the conclusion would be unsound then.
        let unsound = NormalCfd::parse(&s, ["A"], &["a"], "C", "_").unwrap();
        assert!(!implies(&[premise_wild], &unsound));
        // Not applicable when tp[B] is a constant.
        let premise_const = NormalCfd::parse(&s, ["A", "B"], &["a", "b"], "C", "c").unwrap();
        assert!(fd4(&premise_const, b).unwrap().is_none());
    }

    #[test]
    fn fd5_substitutes_constants_and_checks_domains() {
        let s = Schema::builder("R")
            .attr_domain("MR", Domain::finite(["single", "married"]))
            .text("TX")
            .build();
        let premise = NormalCfd::parse(&s, ["MR"], &["_"], "TX", "low").unwrap();
        let mr = s.resolve("MR").unwrap();
        let got = fd5(&premise, mr, Value::from("single"))
            .unwrap()
            .expect("applies");
        assert!(implies(std::slice::from_ref(&premise), &got));
        assert!(matches!(
            fd5(&premise, mr, Value::from("divorced")),
            Err(CfdError::PatternConstantOutsideDomain { .. })
        ));
        // Not applicable when the cell is already a constant.
        assert!(fd5(&got, mr, Value::from("married")).unwrap().is_none());
    }

    #[test]
    fn fd6_generalizes_rhs_constant() {
        let s = schema();
        let premise = NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap();
        let got = fd6(&premise).unwrap().expect("applies");
        assert_eq!(got, NormalCfd::parse(&s, ["A"], &["a"], "B", "_").unwrap());
        assert!(implies(&[premise], &got));
        let wild = NormalCfd::parse(&s, ["A"], &["a"], "B", "_").unwrap();
        assert!(fd6(&wild).unwrap().is_none());
    }

    #[test]
    fn fd7_upgrades_covered_finite_domain() {
        let s = Schema::builder("R")
            .text("X")
            .attr_domain("B", Domain::finite(["x", "y"]))
            .text("A")
            .build();
        let sigma: Vec<NormalCfd> = vec![];
        let p_x = NormalCfd::parse(&s, ["X", "B"], &["_", "x"], "A", "a").unwrap();
        let p_y = NormalCfd::parse(&s, ["X", "B"], &["_", "y"], "A", "a").unwrap();
        let b = s.resolve("B").unwrap();
        let got = fd7(&sigma, &[p_x.clone(), p_y.clone()], b)
            .unwrap()
            .expect("covers dom(B)");
        assert_eq!(
            got,
            NormalCfd::parse(&s, ["X", "B"], &["_", "_"], "A", "a").unwrap()
        );
        // Soundness relative to the premises:
        assert!(implies(&[p_x.clone(), p_y], &got));
        // Missing one value -> rule does not apply.
        assert!(fd7(&sigma, &[p_x], b).unwrap().is_none());
    }

    #[test]
    fn fd7_uses_sigma_to_rule_out_values() {
        // dom(B) = {x, y, z}, but Σ makes (Σ, B = z) inconsistent, so covering
        // {x, y} suffices.
        let s = Schema::builder("R")
            .text("X")
            .attr_domain("B", Domain::finite(["x", "y", "z"]))
            .text("A")
            .build();
        let b = s.resolve("B").unwrap();
        let forbid_z_1 = NormalCfd::parse(&s, ["B"], &["z"], "A", "p").unwrap();
        let forbid_z_2 = NormalCfd::parse(&s, ["B"], &["z"], "A", "q").unwrap();
        let sigma = vec![forbid_z_1, forbid_z_2];
        assert!(!is_consistent_binding(&sigma, b, &Value::from("z")));
        let p_x = NormalCfd::parse(&s, ["X", "B"], &["_", "x"], "A", "a").unwrap();
        let p_y = NormalCfd::parse(&s, ["X", "B"], &["_", "y"], "A", "a").unwrap();
        assert!(fd7(&sigma, &[p_x.clone(), p_y.clone()], b)
            .unwrap()
            .is_some());
        // Without Σ the same premises do not cover dom(B).
        assert!(fd7(&[], &[p_x, p_y], b).unwrap().is_none());
    }

    #[test]
    fn fd8_detects_a_single_consistent_value() {
        let s = Schema::builder("R")
            .attr_domain("B", Domain::finite(["x", "y"]))
            .text("A")
            .build();
        let b = s.resolve("B").unwrap();
        // Σ rules out B = y (two conflicting consequences).
        let sigma = vec![
            NormalCfd::parse(&s, ["B"], &["y"], "A", "p").unwrap(),
            NormalCfd::parse(&s, ["B"], &["y"], "A", "q").unwrap(),
        ];
        let got = fd8(&sigma, &s, b).unwrap().expect("only x is consistent");
        assert_eq!(got.rhs_pattern(), &PatternValue::constant("x"));
        assert!(implies(&sigma, &got), "FD8 conclusion follows semantically");
        // With an unconstrained Σ both values are consistent: rule not applicable.
        assert!(fd8(&[], &s, b).unwrap().is_none());
        // Not applicable to infinite-domain attributes.
        let a = s.resolve("A").unwrap();
        assert!(fd8(&sigma, &s, a).unwrap().is_none());
    }

    #[test]
    fn fd7_rejects_infinite_domains_and_mismatched_premises() {
        let s = schema();
        let b = s.resolve("B").unwrap();
        let p = NormalCfd::parse(&s, ["A", "B"], &["_", "x"], "C", "c").unwrap();
        assert!(
            fd7(&[], std::slice::from_ref(&p), b).unwrap().is_none(),
            "B has an infinite domain"
        );

        let s2 = Schema::builder("R")
            .text("X")
            .attr_domain("B", Domain::finite(["x", "y"]))
            .text("A")
            .build();
        let b2 = s2.resolve("B").unwrap();
        let p_x = NormalCfd::parse(&s2, ["X", "B"], &["_", "x"], "A", "a").unwrap();
        let p_y_diff = NormalCfd::parse(&s2, ["X", "B"], &["_", "y"], "A", "other").unwrap();
        assert!(
            fd7(&[], &[p_x, p_y_diff], b2).unwrap().is_none(),
            "RHS patterns differ"
        );
    }
}
