//! # cfd-core — conditional functional dependencies
//!
//! This crate implements the central contribution of *Conditional Functional
//! Dependencies for Data Cleaning* (ICDE 2007):
//!
//! * the **CFD model** (Section 2): a CFD `ϕ = (R: X → Y, Tp)` pairs a
//!   standard FD with a *pattern tableau* whose cells are either constants or
//!   the unnamed variable `_`; see [`Cfd`], [`PatternTableau`],
//!   [`PatternValue`];
//! * **satisfaction** `I ⊨ ϕ` and violation finding at the semantic level
//!   (the scalable SQL-based detection lives in the `cfd-detect` crate);
//! * **normalization** to the `(X → A, tp)` form used by the reasoning
//!   machinery ([`normalize`]);
//! * **consistency** of a set of CFDs (Section 3.1) via a chase that branches
//!   only on finite-domain attributes ([`consistency`]);
//! * **implication** `Σ ⊨ ϕ` (Section 3.2) via a two-tuple chase
//!   ([`implication`]), and the inference system `I` with rules FD1–FD8
//!   ([`inference`]);
//! * **minimal covers** (Section 3.3, algorithm `MinCover`) in [`mincover`].
//!
//! ```
//! use cfd_core::{Cfd, PatternTableau, PatternValue};
//! use cfd_relation::{Relation, Schema, Tuple, Value};
//!
//! // cust: [CC, ZIP] -> [STR] with pattern (44, _ || _): "in the UK, ZIP determines STR".
//! let schema = Schema::builder("cust").text("CC").text("ZIP").text("STR").build();
//! let cfd = Cfd::builder(schema.clone(), ["CC", "ZIP"], ["STR"])
//!     .pattern(["44", "_"], ["_"])
//!     .build()
//!     .unwrap();
//!
//! let mut rel = Relation::new(schema);
//! rel.push(Tuple::new(vec!["44".into(), "EH4".into(), "High St.".into()])).unwrap();
//! rel.push(Tuple::new(vec!["44".into(), "EH4".into(), "Low St.".into()])).unwrap();
//! assert!(!cfd.satisfied_by(&rel));
//! ```

pub mod cfd;
pub mod cfdset;
pub mod closure;
pub mod consistency;
pub mod error;
pub mod implication;
pub mod inference;
pub mod mincover;
pub mod normalize;
pub mod pattern;
pub mod tableau;

pub use cfd::{Cfd, CfdBuilder, ViolationKind, ViolationWitness, WitnessCells};
pub use cfdset::CfdSet;
pub use consistency::{is_consistent, is_consistent_binding};
pub use error::{CfdError, Result};
pub use implication::implies;
pub use inference::{Derivation, InferenceRule};
pub use mincover::minimal_cover;
pub use normalize::NormalCfd;
pub use pattern::PatternValue;
pub use tableau::{PatternTableau, PatternTuple};
