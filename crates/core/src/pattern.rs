//! Pattern values: the cells of a pattern tableau.
//!
//! A cell of a pattern tuple is either a constant `a`, the *unnamed variable*
//! `_` (written `‘_’` in the paper), or — only inside *merged* tableaux built
//! by the detection layer (Section 4.2) — the *don't-care* symbol `@`.
//!
//! Constants are stored as interned [`ValueId`]s, so the match relation on
//! the detection hot paths is a `u32` compare ([`PatternValue::matches_id`]).
//! The interner is injective (id equality ⇔ value equality, `Null` only
//! equals `Null`), so the id-based and value-based match relations coincide.
//!
//! Two relations over pattern values matter:
//!
//! * the **match** relation `≍` between a data value and a pattern value
//!   ([`PatternValue::matches`] / [`PatternValue::matches_id`]): a data value
//!   matches `_`, matches `@`, and matches a constant iff it equals it;
//! * the **order** `⪯` between pattern values used by inference rule FD3
//!   ([`PatternValue::leq`]): `η1 ⪯ η2` iff `η1 = η2 = a` for some constant
//!   `a`, or `η2 = _`.

use cfd_relation::{Value, ValueId};
use std::fmt;

/// The textual representation of the unnamed variable in tableaux rendered to
/// relations (and in the generated SQL).
pub const WILDCARD_TOKEN: &str = "_";
/// The textual representation of the don't-care symbol in merged tableaux.
pub const DONT_CARE_TOKEN: &str = "@";

/// A cell of a pattern tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatternValue {
    /// A constant from the attribute's domain, interned.
    Const(ValueId),
    /// The unnamed variable `_`: matches any data value.
    Wildcard,
    /// The don't-care symbol `@` used when merging tableaux that are not
    /// union-compatible (Section 4.2.1). An attribute whose cell is `@` is
    /// excluded from the CFD's condition for that pattern tuple.
    DontCare,
}

impl PatternValue {
    /// A constant pattern cell.
    pub fn constant(v: impl Into<Value>) -> Self {
        PatternValue::Const(ValueId::from_value(v.into()))
    }

    /// Parses the textual form used throughout examples and generators:
    /// `"_"` is the unnamed variable, `"@"` the don't-care symbol, everything
    /// else a string constant.
    pub fn parse(token: &str) -> Self {
        match token {
            WILDCARD_TOKEN => PatternValue::Wildcard,
            DONT_CARE_TOKEN => PatternValue::DontCare,
            other => PatternValue::constant(other),
        }
    }

    /// Whether this cell is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, PatternValue::Const(_))
    }

    /// Whether this cell is the unnamed variable `_`.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, PatternValue::Wildcard)
    }

    /// Whether this cell is the don't-care symbol `@`.
    pub fn is_dont_care(&self) -> bool {
        matches!(self, PatternValue::DontCare)
    }

    /// The constant held by this cell, if any (resolved through the interner).
    pub fn as_const(&self) -> Option<&'static Value> {
        match self {
            PatternValue::Const(id) => Some(id.resolve()),
            _ => None,
        }
    }

    /// The interned id of the constant held by this cell, if any.
    pub fn const_id(&self) -> Option<ValueId> {
        match self {
            PatternValue::Const(id) => Some(*id),
            _ => None,
        }
    }

    /// The match relation `v ≍ self` between a data value and this pattern
    /// cell: constants must be equal, `_` and `@` match anything.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            PatternValue::Const(id) => id.resolve() == v,
            PatternValue::Wildcard | PatternValue::DontCare => true,
        }
    }

    /// Interned match relation: the hot-path variant of
    /// [`PatternValue::matches`] — one `u32` compare per constant cell.
    pub fn matches_id(&self, v: ValueId) -> bool {
        match self {
            PatternValue::Const(id) => *id == v,
            PatternValue::Wildcard | PatternValue::DontCare => true,
        }
    }

    /// The order `self ⪯ other` used by inference rule FD3: `η1 ⪯ η2` iff
    /// both are the same constant, or `η2` is the unnamed variable.
    ///
    /// `@` participates like a constant that only compares to itself; FD3 is
    /// never applied to merged tableaux, so this choice is inconsequential
    /// but keeps the relation reflexive.
    pub fn leq(&self, other: &PatternValue) -> bool {
        match (self, other) {
            (_, PatternValue::Wildcard) => true,
            (PatternValue::Const(a), PatternValue::Const(b)) => a == b,
            (PatternValue::DontCare, PatternValue::DontCare) => true,
            _ => false,
        }
    }

    /// Renders the cell the way pattern tableaux are stored as relations for
    /// the SQL detection queries: constants as their value, `_` and `@` as
    /// their tokens.
    pub fn to_value(&self) -> Value {
        match self {
            PatternValue::Const(id) => id.resolve().clone(),
            PatternValue::Wildcard => Value::from(WILDCARD_TOKEN),
            PatternValue::DontCare => Value::from(DONT_CARE_TOKEN),
        }
    }
}

impl fmt::Display for PatternValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternValue::Const(id) => write!(f, "{}", id.resolve()),
            PatternValue::Wildcard => write!(f, "{WILDCARD_TOKEN}"),
            PatternValue::DontCare => write!(f, "{DONT_CARE_TOKEN}"),
        }
    }
}

impl From<&str> for PatternValue {
    fn from(s: &str) -> Self {
        PatternValue::parse(s)
    }
}

impl From<Value> for PatternValue {
    fn from(v: Value) -> Self {
        PatternValue::Const(ValueId::from_value(v))
    }
}

impl From<ValueId> for PatternValue {
    fn from(id: ValueId) -> Self {
        PatternValue::Const(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_tokens() {
        assert_eq!(PatternValue::parse("_"), PatternValue::Wildcard);
        assert_eq!(PatternValue::parse("@"), PatternValue::DontCare);
        assert_eq!(PatternValue::parse("NYC"), PatternValue::constant("NYC"));
        assert_eq!(PatternValue::from("44"), PatternValue::constant("44"));
    }

    #[test]
    fn match_relation() {
        let c = PatternValue::constant("NYC");
        assert!(c.matches(&Value::from("NYC")));
        assert!(!c.matches(&Value::from("MH")));
        assert!(PatternValue::Wildcard.matches(&Value::from("anything")));
        assert!(PatternValue::DontCare.matches(&Value::Int(5)));
    }

    #[test]
    fn interned_match_agrees_with_value_match() {
        let samples = [
            Value::from("NYC"),
            Value::from("MH"),
            Value::Int(5),
            Value::Bool(true),
            Value::Null,
        ];
        let cells = [
            PatternValue::constant("NYC"),
            PatternValue::constant(5i64),
            PatternValue::Wildcard,
            PatternValue::DontCare,
        ];
        for cell in &cells {
            for v in &samples {
                assert_eq!(
                    cell.matches_id(ValueId::of(v)),
                    cell.matches(v),
                    "id-based and value-based match disagree for {cell} vs {v}"
                );
            }
        }
    }

    #[test]
    fn order_relation_leq() {
        let a = PatternValue::constant("a");
        let b = PatternValue::constant("b");
        let w = PatternValue::Wildcard;
        // (a, b) ⪯ (_, b) example from the paper.
        assert!(a.leq(&w));
        assert!(b.leq(&b));
        assert!(!a.leq(&b));
        assert!(!w.leq(&a));
        assert!(w.leq(&w));
        assert!(PatternValue::DontCare.leq(&PatternValue::DontCare));
        assert!(!PatternValue::DontCare.leq(&a));
        assert!(PatternValue::DontCare.leq(&w));
    }

    #[test]
    fn leq_is_reflexive_and_transitive_on_samples() {
        let samples = [
            PatternValue::constant("x"),
            PatternValue::constant("y"),
            PatternValue::Wildcard,
            PatternValue::DontCare,
        ];
        for a in &samples {
            assert!(a.leq(a), "{a} not reflexive");
            for b in &samples {
                for c in &samples {
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c), "transitivity broken: {a} {b} {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn kind_predicates_and_accessors() {
        assert!(PatternValue::constant(1i64).is_const());
        assert!(PatternValue::Wildcard.is_wildcard());
        assert!(PatternValue::DontCare.is_dont_care());
        assert_eq!(
            PatternValue::constant("x").as_const(),
            Some(&Value::from("x"))
        );
        assert_eq!(PatternValue::Wildcard.as_const(), None);
        assert_eq!(
            PatternValue::constant("x").const_id(),
            Some(ValueId::of(&Value::from("x")))
        );
        assert_eq!(PatternValue::DontCare.const_id(), None);
    }

    #[test]
    fn rendering_to_value_and_display() {
        assert_eq!(PatternValue::Wildcard.to_value(), Value::from("_"));
        assert_eq!(PatternValue::DontCare.to_value(), Value::from("@"));
        assert_eq!(PatternValue::constant("MH").to_value(), Value::from("MH"));
        assert_eq!(PatternValue::Wildcard.to_string(), "_");
        assert_eq!(PatternValue::constant(7i64).to_string(), "7");
    }
}
