//! Implication analysis of CFDs (Section 3.2).
//!
//! `Σ ⊨ ϕ` holds iff every instance satisfying `Σ` also satisfies `ϕ`.
//! The problem is coNP-complete in general (Theorem 3.4) and quadratic when
//! the schema is predefined or no finite-domain attribute occurs (Theorem
//! 3.5). The algorithm here generalizes the classical two-tuple chase used
//! for FD implication:
//!
//! 1. Build a symbolic two-tuple tableau `{t1, t2}` embodying the premise of
//!    `ϕ = (X → A, tp)`: on each `B ∈ X`, `t1[B] = t2[B]` and the shared
//!    cell is `tp[B]` when that is a constant; all other cells are distinct
//!    variables.
//! 2. Chase with the CFDs of `Σ`, merging cells (union-find) and forcing
//!    constants; deriving two distinct constants for one cell means the
//!    premise cannot occur in any instance satisfying `Σ`, so `ϕ` holds
//!    vacuously.
//! 3. If the chase terminates without contradiction, instantiate the
//!    remaining variable cells with fresh values (one per equivalence class,
//!    outside the constants of `Σ ∪ {ϕ}`): the result is a two-tuple
//!    counterexample candidate. `Σ ⊨ ϕ` iff that candidate satisfies the
//!    conclusion of `ϕ`. Variable cells over *finite* domains may not admit
//!    fresh values; those are branched over their domain values, which is
//!    where the coNP-hardness lives.

use crate::normalize::NormalCfd;
use crate::pattern::PatternValue;
use cfd_relation::{AttrId, Schema, Value, ValueId};
use std::collections::HashMap;

/// Decides whether `sigma ⊨ phi`.
pub fn implies(sigma: &[NormalCfd], phi: &NormalCfd) -> bool {
    // A tableau cell is identified by (tuple index, attribute).
    let schema = phi.schema();
    let mut tableau = Tableau::new(schema);

    // Premise: t1[X] = t2[X] ≍ tp[X].
    for (attr, pattern) in phi.lhs().iter().zip(phi.lhs_pattern()) {
        tableau.merge(Tableau::cell(0, *attr), Tableau::cell(1, *attr));
        if let PatternValue::Const(c) = pattern {
            if !tableau.assign(Tableau::cell(0, *attr), *c) {
                // The premise itself is contradictory (cannot happen with a
                // well-formed pattern); ϕ holds vacuously.
                return true;
            }
        }
    }

    // Fresh values must avoid every constant of Σ ∪ {ϕ} per attribute.
    let mut avoid: HashMap<AttrId, Vec<Value>> = HashMap::new();
    for cfd in sigma.iter().chain(std::iter::once(phi)) {
        for (a, v) in cfd.constants() {
            avoid.entry(a).or_default().push(v);
        }
    }

    // `true` means "a counterexample instance exists", i.e. NOT entailed.
    !counterexample_exists(sigma, phi, tableau, &avoid)
}

/// Chases, branches finite-domain variable cells, and reports whether some
/// completion of the two-tuple tableau satisfies `Σ` but violates `ϕ`.
fn counterexample_exists(
    sigma: &[NormalCfd],
    phi: &NormalCfd,
    mut tableau: Tableau,
    avoid: &HashMap<AttrId, Vec<Value>>,
) -> bool {
    if !tableau.chase(sigma) {
        // Contradiction: no instance satisfying Σ contains the premise.
        return false;
    }

    // Branch over variable cells whose attribute has a finite domain: the
    // fresh-value argument does not apply to them, so completeness requires
    // trying every admissible constant.
    let schema = phi.schema().clone();
    for tuple_idx in 0..2 {
        for attr in schema.attr_ids() {
            let cell = Tableau::cell(tuple_idx, attr);
            if tableau.constant_of(cell).is_some() {
                continue;
            }
            let domain = match schema.domain(attr) {
                Ok(d) if d.is_finite() => d.clone(),
                _ => continue,
            };
            // Only branch when the finite domain offers no fresh value; if a
            // fresh value exists, instantiating it is always the best choice
            // for a counterexample (it triggers no additional CFDs).
            let avoid_vals = avoid.get(&attr).cloned().unwrap_or_default();
            if domain.fresh_value_avoiding(&avoid_vals).is_some() {
                continue;
            }
            return domain.values().any(|v| {
                let mut branched = tableau.clone();
                if !branched.assign(cell, ValueId::of(v)) {
                    return false;
                }
                counterexample_exists(sigma, phi, branched, avoid)
            });
        }
    }

    // Fresh instantiation: distinct values per remaining class. The chase
    // fixpoint guarantees the resulting two-tuple instance satisfies Σ, so it
    // is a counterexample iff it violates ϕ's conclusion.
    !conclusion_holds(&mut tableau, phi)
}

/// Checks `t1[A] = t2[A] ≍ tp[A]` on the (possibly still symbolic) tableau.
///
/// Under the fresh instantiation two cells are equal iff they are in the same
/// class *or* both classes are pinned to the same constant.
fn conclusion_holds(tableau: &mut Tableau, phi: &NormalCfd) -> bool {
    let a = phi.rhs();
    let cell0 = Tableau::cell(0, a);
    let cell1 = Tableau::cell(1, a);
    if !tableau.cells_equal(cell0, cell1) {
        // Distinct variable classes instantiate to distinct fresh values.
        return false;
    }
    match (phi.rhs_pattern(), tableau.constant_of(cell0)) {
        (PatternValue::Wildcard | PatternValue::DontCare, _) => true,
        (PatternValue::Const(want), Some(have)) => *want == have,
        // A variable class instantiates to a fresh value, which cannot equal
        // the required constant.
        (PatternValue::Const(_), None) => false,
    }
}

/// A two-tuple symbolic tableau with union-find cells. Class constants are
/// interned [`ValueId`]s, so merging, conflict detection and the fixpoint
/// snapshot all work on `u32`s (no value cloning during the chase).
#[derive(Debug, Clone)]
struct Tableau {
    arity: usize,
    parent: Vec<usize>,
    constant: Vec<Option<ValueId>>,
}

impl Tableau {
    fn new(schema: &Schema) -> Self {
        let arity = schema.arity();
        Tableau {
            arity,
            parent: (0..2 * arity).collect(),
            constant: vec![None; 2 * arity],
        }
    }

    /// Cell index of `(tuple, attribute)`: attribute-major interleaving.
    fn cell(tuple: usize, attr: AttrId) -> usize {
        debug_assert!(tuple < 2);
        tuple + attr.index() * 2
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges two cells. Returns `false` on constant conflict.
    fn merge(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        match (self.constant[ra], self.constant[rb]) {
            (Some(x), Some(y)) if x != y => return false,
            (Some(x), None) => self.constant[rb] = Some(x),
            (None, Some(y)) => self.constant[ra] = Some(y),
            _ => {}
        }
        self.parent[ra] = rb;
        true
    }

    /// Forces a cell's class to a constant. Returns `false` on conflict.
    fn assign(&mut self, cell: usize, value: ValueId) -> bool {
        let root = self.find(cell);
        match self.constant[root] {
            Some(existing) => existing == value,
            None => {
                self.constant[root] = Some(value);
                true
            }
        }
    }

    /// The constant of a cell's class, if any.
    fn constant_of(&mut self, cell: usize) -> Option<ValueId> {
        let root = self.find(cell);
        self.constant[root]
    }

    /// Whether the two cells are equal under the fresh instantiation: same
    /// equivalence class, or both classes pinned to the same constant.
    fn cells_equal(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        match (self.constant[ra], self.constant[rb]) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Applies every CFD of `sigma` to every tuple pair until fixpoint.
    /// Returns `false` when a contradiction (two constants in one class) is
    /// derived.
    fn chase(&mut self, sigma: &[NormalCfd]) -> bool {
        let pairs = [(0usize, 0usize), (1, 1), (0, 1), (1, 0)];
        loop {
            let before = self.snapshot();
            for cfd in sigma {
                for (i, j) in pairs {
                    if !self.lhs_applies(cfd, i, j) {
                        continue;
                    }
                    let ci = Tableau::cell(i, cfd.rhs());
                    let cj = Tableau::cell(j, cfd.rhs());
                    if !self.merge(ci, cj) {
                        return false;
                    }
                    if let PatternValue::Const(c) = cfd.rhs_pattern() {
                        if !self.assign(ci, *c) {
                            return false;
                        }
                    }
                }
            }
            if self.snapshot() == before {
                return true;
            }
        }
    }

    /// Whether `ti[W] = tj[W] ≍ sp[W]` necessarily holds under the fresh
    /// instantiation: the cells are equal (same class or same pinned
    /// constant) and, for constant pattern cells, that constant is the
    /// pattern's constant.
    fn lhs_applies(&mut self, cfd: &NormalCfd, i: usize, j: usize) -> bool {
        for (attr, pattern) in cfd.lhs().iter().zip(cfd.lhs_pattern()) {
            let ci = Tableau::cell(i, *attr);
            let cj = Tableau::cell(j, *attr);
            if !self.cells_equal(ci, cj) {
                return false;
            }
            if let PatternValue::Const(c) = pattern {
                if self.constant_of(ci) != Some(*c) {
                    return false;
                }
            }
        }
        true
    }

    /// A cheap fingerprint used to detect the chase fixpoint.
    fn snapshot(&mut self) -> (Vec<usize>, Vec<Option<ValueId>>) {
        let roots: Vec<usize> = (0..2 * self.arity).map(|c| self.find(c)).collect();
        (roots, self.constant.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Domain;

    fn schema_abc() -> Schema {
        Schema::builder("R").text("A").text("B").text("C").build()
    }

    #[test]
    fn example_3_2_transitivity_with_patterns() {
        // Σ = { ψ1 = (A -> B, (_ || b)), ψ2 = (B -> C, (_ || c)) },
        // ϕ = (A -> C, (a || _)). The paper proves Σ ⊢ ϕ; by soundness and
        // completeness Σ ⊨ ϕ as well.
        let s = schema_abc();
        let psi1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let psi2 = NormalCfd::parse(&s, ["B"], &["_"], "C", "c").unwrap();
        let phi = NormalCfd::parse(&s, ["A"], &["a"], "C", "_").unwrap();
        assert!(implies(&[psi1.clone(), psi2.clone()], &phi));

        // The intermediate steps of the derivation are also entailed.
        let step3 = NormalCfd::parse(&s, ["A"], &["_"], "C", "c").unwrap();
        let step4 = NormalCfd::parse(&s, ["A"], &["a"], "C", "c").unwrap();
        assert!(implies(&[psi1.clone(), psi2.clone()], &step3));
        assert!(implies(&[psi1, psi2], &step4));
    }

    #[test]
    fn plain_fd_transitivity() {
        let s = schema_abc();
        let ab = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let bc = NormalCfd::parse(&s, ["B"], &["_"], "C", "_").unwrap();
        let ac = NormalCfd::parse(&s, ["A"], &["_"], "C", "_").unwrap();
        let ca = NormalCfd::parse(&s, ["C"], &["_"], "A", "_").unwrap();
        assert!(implies(&[ab.clone(), bc.clone()], &ac));
        assert!(!implies(&[ab, bc], &ca));
    }

    #[test]
    fn reflexivity_and_augmentation_are_entailed_without_premises() {
        let s = schema_abc();
        // A ∈ {A, B}: [A, B] -> A always holds.
        let refl = NormalCfd::parse(&s, ["A", "B"], &["_", "_"], "A", "_").unwrap();
        assert!(implies(&[], &refl));
        // But [A] -> B does not hold vacuously.
        let not_valid = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        assert!(!implies(&[], &not_valid));
    }

    #[test]
    fn pattern_restriction_weakens_conclusions() {
        let s = schema_abc();
        // Premise: "when A = a, B is b".
        let premise = NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap();
        // It entails nothing about other A values.
        let general = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        assert!(!implies(std::slice::from_ref(&premise), &general));
        // It does entail the weaker "when A = a, two tuples agree on B".
        let weaker = NormalCfd::parse(&s, ["A"], &["a"], "B", "_").unwrap();
        assert!(implies(&[premise], &weaker));
    }

    #[test]
    fn constant_propagation_through_constants() {
        let s = schema_abc();
        // (∅ -> A, a) and (A=a -> B, b) entail (∅ -> B, b).
        let c1 = NormalCfd::parse(&s, [], &[], "A", "a").unwrap();
        let c2 = NormalCfd::parse(&s, ["A"], &["a"], "B", "b").unwrap();
        let goal = NormalCfd::parse(&s, [], &[], "B", "b").unwrap();
        assert!(implies(&[c1.clone(), c2.clone()], &goal));
        // But they do not entail (∅ -> B, c) for a different constant.
        let wrong = NormalCfd::parse(&s, [], &[], "B", "c").unwrap();
        assert!(!implies(&[c1, c2], &wrong));
    }

    #[test]
    fn inconsistent_premise_entails_everything() {
        let s = schema_abc();
        let p1 = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        let p2 = NormalCfd::parse(&s, ["A"], &["_"], "B", "c").unwrap();
        let anything = NormalCfd::parse(&s, ["C"], &["_"], "A", "zzz").unwrap();
        assert!(crate::consistency::is_consistent(std::slice::from_ref(&p1)));
        assert!(!crate::consistency::is_consistent(&[
            p1.clone(),
            p2.clone()
        ]));
        assert!(implies(&[p1, p2], &anything));
    }

    #[test]
    fn vacuous_premise_within_a_consistent_sigma() {
        // Σ is consistent, but no instance satisfying Σ has a tuple with
        // A = a (because Σ forces B to two different constants when A = a).
        // Then any CFD conditioned on A = a is entailed.
        let s = schema_abc();
        let p1 = NormalCfd::parse(&s, ["A"], &["a"], "B", "b1").unwrap();
        let p2 = NormalCfd::parse(&s, ["A"], &["a"], "B", "b2").unwrap();
        assert!(crate::consistency::is_consistent(&[p1.clone(), p2.clone()]));
        let phi = NormalCfd::parse(&s, ["A"], &["a"], "C", "anything").unwrap();
        assert!(implies(&[p1, p2], &phi));
    }

    #[test]
    fn upgrade_over_exhausted_finite_domain() {
        // dom(A) = {x, y}. Σ says: [A=x] -> B=b and [A=y] -> B=b.
        // Every admissible A value forces B=b, so (A -> B, (_ || b)) is
        // entailed even though no single pattern covers the wildcard — this
        // is the semantic counterpart of inference rule FD7.
        let s = Schema::builder("R")
            .attr_domain("A", Domain::finite(["x", "y"]))
            .text("B")
            .text("C")
            .build();
        let px = NormalCfd::parse(&s, ["A"], &["x"], "B", "b").unwrap();
        let py = NormalCfd::parse(&s, ["A"], &["y"], "B", "b").unwrap();
        let goal = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        assert!(implies(&[px.clone(), py], &goal));
        // With only one of them it is not entailed.
        assert!(!implies(&[px], &goal));
    }

    #[test]
    fn finite_domain_with_room_left_is_not_upgraded() {
        // dom(A) = {x, y, z}: the pattern A=z is unconstrained, so the
        // wildcard version is not entailed.
        let s = Schema::builder("R")
            .attr_domain("A", Domain::finite(["x", "y", "z"]))
            .text("B")
            .text("C")
            .build();
        let px = NormalCfd::parse(&s, ["A"], &["x"], "B", "b").unwrap();
        let py = NormalCfd::parse(&s, ["A"], &["y"], "B", "b").unwrap();
        let goal = NormalCfd::parse(&s, ["A"], &["_"], "B", "b").unwrap();
        assert!(!implies(&[px, py], &goal));
    }

    #[test]
    fn rhs_attribute_in_lhs_is_trivial() {
        let s = schema_abc();
        let phi = NormalCfd::parse(&s, ["A", "C"], &["_", "c0"], "C", "_").unwrap();
        assert!(implies(&[], &phi));
        // With a constant conclusion it is only entailed if the premise pins it.
        let pinned = NormalCfd::parse(&s, ["A", "C"], &["_", "c0"], "C", "c0").unwrap();
        assert!(implies(&[], &pinned));
        let not_pinned = NormalCfd::parse(&s, ["A", "C"], &["_", "_"], "C", "c0").unwrap();
        assert!(!implies(&[], &not_pinned));
    }

    #[test]
    fn implication_is_monotone_in_sigma_on_these_samples() {
        let s = schema_abc();
        let ab = NormalCfd::parse(&s, ["A"], &["_"], "B", "_").unwrap();
        let bc = NormalCfd::parse(&s, ["B"], &["_"], "C", "_").unwrap();
        let ac = NormalCfd::parse(&s, ["A"], &["_"], "C", "_").unwrap();
        assert!(!implies(std::slice::from_ref(&ab), &ac));
        assert!(implies(&[ab.clone(), bc.clone()], &ac));
        // Adding more premises never loses the entailment.
        let extra = NormalCfd::parse(&s, ["C"], &["_"], "B", "_").unwrap();
        assert!(implies(&[ab, bc, extra], &ac));
    }
}
