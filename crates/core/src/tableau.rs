//! Pattern tuples and pattern tableaux.
//!
//! A [`PatternTuple`] holds one cell per attribute of the embedded FD, split
//! into its LHS (`X`) and RHS (`Y`) parts — this mirrors the paper's
//! `tp[A_L]` / `tp[A_R]` notation and makes CFDs whose embedded FD mentions
//! the same attribute on both sides unambiguous. A [`PatternTableau`] is an
//! ordered list of pattern tuples (`Tp` in the paper).

use crate::pattern::PatternValue;
use cfd_relation::{Value, ValueId};
use std::fmt;

/// One row of a pattern tableau.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternTuple {
    lhs: Vec<PatternValue>,
    rhs: Vec<PatternValue>,
}

impl PatternTuple {
    /// Creates a pattern tuple from its LHS and RHS cells.
    pub fn new(lhs: Vec<PatternValue>, rhs: Vec<PatternValue>) -> Self {
        PatternTuple { lhs, rhs }
    }

    /// Creates a pattern tuple by parsing string tokens (`"_"`, `"@"`, or a
    /// constant) for both sides.
    pub fn parse<L, R>(lhs: L, rhs: R) -> Self
    where
        L: IntoIterator,
        L::Item: AsRef<str>,
        R: IntoIterator,
        R::Item: AsRef<str>,
    {
        PatternTuple {
            lhs: lhs
                .into_iter()
                .map(|s| PatternValue::parse(s.as_ref()))
                .collect(),
            rhs: rhs
                .into_iter()
                .map(|s| PatternValue::parse(s.as_ref()))
                .collect(),
        }
    }

    /// The all-wildcard pattern of the given arities — the pattern that turns
    /// the CFD into the plain embedded FD.
    pub fn all_wildcards(lhs_arity: usize, rhs_arity: usize) -> Self {
        PatternTuple {
            lhs: vec![PatternValue::Wildcard; lhs_arity],
            rhs: vec![PatternValue::Wildcard; rhs_arity],
        }
    }

    /// LHS (X-side) cells.
    pub fn lhs(&self) -> &[PatternValue] {
        &self.lhs
    }

    /// RHS (Y-side) cells.
    pub fn rhs(&self) -> &[PatternValue] {
        &self.rhs
    }

    /// Mutable access to LHS cells (used by the merge logic in `cfd-detect`).
    pub fn lhs_mut(&mut self) -> &mut Vec<PatternValue> {
        &mut self.lhs
    }

    /// Mutable access to RHS cells.
    pub fn rhs_mut(&mut self) -> &mut Vec<PatternValue> {
        &mut self.rhs
    }

    /// Whether the data values `values` (aligned with the LHS attributes)
    /// match the LHS cells, skipping don't-care cells.
    pub fn lhs_matches(&self, values: &[&Value]) -> bool {
        self.lhs.len() == values.len()
            && self
                .lhs
                .iter()
                .zip(values)
                .all(|(p, v)| p.is_dont_care() || p.matches(v))
    }

    /// Whether the data values `values` (aligned with the RHS attributes)
    /// match the RHS cells, skipping don't-care cells.
    pub fn rhs_matches(&self, values: &[&Value]) -> bool {
        self.rhs.len() == values.len()
            && self
                .rhs
                .iter()
                .zip(values)
                .all(|(p, v)| p.is_dont_care() || p.matches(v))
    }

    /// Interned variant of [`PatternTuple::lhs_matches`]: each constant cell
    /// is one `u32` compare. This is the detection hot path.
    pub fn lhs_matches_ids(&self, values: &[ValueId]) -> bool {
        self.lhs.len() == values.len() && self.lhs.iter().zip(values).all(|(p, v)| p.matches_id(*v))
    }

    /// Interned variant of [`PatternTuple::rhs_matches`].
    pub fn rhs_matches_ids(&self, values: &[ValueId]) -> bool {
        self.rhs.len() == values.len() && self.rhs.iter().zip(values).all(|(p, v)| p.matches_id(*v))
    }

    /// Whether any cell (either side) is the don't-care symbol.
    pub fn has_dont_care(&self) -> bool {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .any(PatternValue::is_dont_care)
    }

    /// Whether every cell is a constant (an *instance-level* FD row, cf. the
    /// special case from [Lim & Prabhakar, ICDE 1993] noted in Section 2).
    pub fn is_all_constants(&self) -> bool {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .all(PatternValue::is_const)
    }

    /// Whether every cell is the unnamed variable (the row expressing the
    /// plain embedded FD).
    pub fn is_all_wildcards(&self) -> bool {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .all(PatternValue::is_wildcard)
    }

    /// Number of constant cells (used by workload generators to report the
    /// NUMCONSTs statistic).
    pub fn constant_count(&self) -> usize {
        self.lhs
            .iter()
            .chain(self.rhs.iter())
            .filter(|p| p.is_const())
            .count()
    }

    /// The pointwise order `self ⪯ other` lifted from
    /// [`PatternValue::leq`]; used by inference rule FD3.
    pub fn leq(&self, other: &PatternTuple) -> bool {
        self.lhs.len() == other.lhs.len()
            && self.rhs.len() == other.rhs.len()
            && self.lhs.iter().zip(&other.lhs).all(|(a, b)| a.leq(b))
            && self.rhs.iter().zip(&other.rhs).all(|(a, b)| a.leq(b))
    }
}

impl fmt::Display for PatternTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.lhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, " || ")?;
        for (i, p) in self.rhs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// A pattern tableau: the ordered list of pattern tuples of one CFD.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternTableau {
    rows: Vec<PatternTuple>,
}

impl PatternTableau {
    /// An empty tableau (to be filled with [`PatternTableau::push`]).
    pub fn new() -> Self {
        PatternTableau { rows: Vec::new() }
    }

    /// A tableau with the given rows.
    pub fn from_rows(rows: Vec<PatternTuple>) -> Self {
        PatternTableau { rows }
    }

    /// Appends a row.
    pub fn push(&mut self, row: PatternTuple) {
        self.rows.push(row);
    }

    /// The rows in order.
    pub fn rows(&self) -> &[PatternTuple] {
        &self.rows
    }

    /// Mutable access to the rows.
    pub fn rows_mut(&mut self) -> &mut Vec<PatternTuple> {
        &mut self.rows
    }

    /// Number of rows (`TABSZ` in the experiments).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the tableau has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates the rows.
    pub fn iter(&self) -> impl Iterator<Item = &PatternTuple> + '_ {
        self.rows.iter()
    }

    /// Fraction of rows that consist of constants only, in percent — the
    /// NUMCONSTs statistic the experiments vary.
    pub fn percent_constant_rows(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let n = self.rows.iter().filter(|r| r.is_all_constants()).count();
        100.0 * n as f64 / self.rows.len() as f64
    }
}

impl fmt::Display for PatternTableau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_accessors() {
        let row = PatternTuple::parse(["01", "908", "_"], ["_", "MH", "_"]);
        assert_eq!(row.lhs().len(), 3);
        assert_eq!(row.rhs().len(), 3);
        assert!(row.lhs()[0].is_const());
        assert!(row.lhs()[2].is_wildcard());
        assert_eq!(row.constant_count(), 3);
        assert!(!row.is_all_constants());
        assert!(!row.is_all_wildcards());
        assert!(!row.has_dont_care());
    }

    #[test]
    fn all_wildcards_is_the_embedded_fd_row() {
        let row = PatternTuple::all_wildcards(2, 1);
        assert!(row.is_all_wildcards());
        assert_eq!(row.lhs().len(), 2);
        assert_eq!(row.rhs().len(), 1);
    }

    #[test]
    fn lhs_and_rhs_matching() {
        let row = PatternTuple::parse(["01", "908", "_"], ["_", "MH", "_"]);
        let cc = Value::from("01");
        let ac = Value::from("908");
        let pn = Value::from("1111111");
        assert!(row.lhs_matches(&[&cc, &ac, &pn]));
        let ac2 = Value::from("212");
        assert!(!row.lhs_matches(&[&cc, &ac2, &pn]));
        // Arity mismatch never matches.
        assert!(!row.lhs_matches(&[&cc, &ac]));

        let street = Value::from("Tree Ave.");
        let mh = Value::from("MH");
        let nyc = Value::from("NYC");
        let zip = Value::from("07974");
        assert!(row.rhs_matches(&[&street, &mh, &zip]));
        assert!(!row.rhs_matches(&[&street, &nyc, &zip]));
    }

    #[test]
    fn dont_care_cells_are_skipped_in_matching() {
        let row = PatternTuple::parse(["01", "@"], ["@"]);
        assert!(row.has_dont_care());
        let cc = Value::from("01");
        let anything = Value::from("whatever");
        assert!(row.lhs_matches(&[&cc, &anything]));
        assert!(row.rhs_matches(&[&anything]));
    }

    #[test]
    fn tuple_order_lifts_pointwise() {
        let specific = PatternTuple::parse(["a", "b"], ["c"]);
        let general = PatternTuple::parse(["_", "b"], ["_"]);
        assert!(specific.leq(&general));
        assert!(!general.leq(&specific));
        let mismatched = PatternTuple::parse(["a"], ["c"]);
        assert!(!mismatched.leq(&general));
    }

    #[test]
    fn tableau_statistics() {
        let mut t = PatternTableau::new();
        assert!(t.is_empty());
        assert_eq!(t.percent_constant_rows(), 0.0);
        t.push(PatternTuple::parse(["01", "215"], ["PHI"]));
        t.push(PatternTuple::parse(["44", "141"], ["GLA"]));
        t.push(PatternTuple::parse(["_", "_"], ["_"]));
        assert_eq!(t.len(), 3);
        assert!((t.percent_constant_rows() - 66.666).abs() < 0.1);
    }

    #[test]
    fn display_forms() {
        let row = PatternTuple::parse(["44", "_"], ["_"]);
        assert_eq!(row.to_string(), "(44, _ || _)");
        let t = PatternTableau::from_rows(vec![row]);
        assert!(t.to_string().contains("(44, _ || _)"));
    }
}
