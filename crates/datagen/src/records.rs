//! The tax-records generator (the `SZ` / `NOISE` knobs of Section 5).
//!
//! The generated relation extends the `cust` schema of Fig. 1 with eight
//! additional attributes — state (ST), marital status (MR), dependents (CH),
//! salary (SA), tax rate (TX) and three exemption amounts (STX, MTX, CTX) —
//! exactly the extension described in the experimental setup. Clean tuples
//! are drawn from the synthetic geography and tax tables so that the
//! workload CFDs of [`crate::cfdgen`] hold on them; with probability
//! `NOISE`, one attribute on the RHS of a CFD is flipped to an incorrect
//! value (e.g. a record with a New-York zip code but a Chicago-style city).

use crate::geo::{self, GeoEntry};
use crate::rng::StdRng;
use crate::tax;
use cfd_relation::{AttrType, Domain, Relation, Schema, Tuple, Value};

/// Configuration of the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaxConfig {
    /// Number of tuples to generate (`SZ`).
    pub size: usize,
    /// Percentage (0–100) of tuples that receive an injected error (`NOISE`).
    pub noise_percent: f64,
    /// RNG seed, for reproducible workloads.
    pub seed: u64,
}

impl Default for TaxConfig {
    fn default() -> Self {
        TaxConfig {
            size: 10_000,
            noise_percent: 5.0,
            seed: 42,
        }
    }
}

/// A generated workload: the relation plus the indices of the tuples that
/// received injected noise (useful as ground truth in tests).
#[derive(Debug, Clone)]
pub struct GeneratedData {
    /// The tax-records instance.
    pub relation: Relation,
    /// Indices of the dirtied rows, in increasing order.
    pub dirty_rows: Vec<usize>,
}

/// The tax-records generator.
#[derive(Debug, Clone)]
pub struct TaxGenerator {
    config: TaxConfig,
}

/// Attribute names of the tax-records schema, in order.
pub const TAX_ATTRS: [&str; 15] = [
    "CC", "AC", "PN", "NM", "STR", "CT", "ZIP", "ST", "MR", "CH", "SA", "TX", "STX", "MTX", "CTX",
];

/// The tax-records schema: the `cust` attributes plus the eight tax-related
/// attributes of the experimental setup.
pub fn tax_schema() -> Schema {
    Schema::builder("tax_records")
        .text("CC")
        .text("AC")
        .text("PN")
        .text("NM")
        .text("STR")
        .text("CT")
        .text("ZIP")
        .text("ST")
        .attr_domain("MR", Domain::finite(["single", "married"]))
        .attr_domain("CH", Domain::finite(["yes", "no"]))
        .attr("SA", AttrType::Integer)
        .attr("TX", AttrType::Integer)
        .attr("STX", AttrType::Integer)
        .attr("MTX", AttrType::Integer)
        .attr("CTX", AttrType::Integer)
        .build()
}

impl TaxGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: TaxConfig) -> Self {
        TaxGenerator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> TaxConfig {
        self.config
    }

    /// Generates the workload.
    pub fn generate(&self) -> GeneratedData {
        let schema = tax_schema();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let table = geo::geo_table();
        let mut relation = Relation::with_capacity(schema, self.config.size);
        let mut dirty_rows = Vec::new();

        for i in 0..self.config.size {
            let entry = &table[rng.gen_range(0..table.len())];
            let mut values = clean_tuple(&mut rng, entry);
            if rng.gen_range(0.0..100.0) < self.config.noise_percent {
                corrupt(&mut rng, &mut values, entry);
                dirty_rows.push(i);
            }
            relation
                .push(Tuple::new(values))
                .expect("generated tuple matches schema");
        }
        GeneratedData {
            relation,
            dirty_rows,
        }
    }
}

/// Builds one clean tuple from a geography entry.
fn clean_tuple(rng: &mut StdRng, entry: &GeoEntry) -> Vec<Value> {
    let state_idx = tax::state_index(&entry.state);
    let married = rng.gen_bool(0.5);
    let children = rng.gen_bool(0.4);
    let salary: i64 = rng.gen_range(10_000..200_000);
    vec![
        Value::from("01"),
        Value::from(entry.area_code.as_str()),
        Value::from(format!("{:07}", rng.gen_range(0..10_000_000))),
        Value::from(format!("N{:06}", rng.gen_range(0..1_000_000))),
        Value::from(format!("{} St. #{}", entry.city, rng.gen_range(1..500))),
        Value::from(entry.city.as_str()),
        Value::from(entry.zip.as_str()),
        Value::from(entry.state.as_str()),
        Value::from(if married { "married" } else { "single" }),
        Value::from(if children { "yes" } else { "no" }),
        Value::Int(salary),
        Value::Int(tax::tax_rate(state_idx, salary)),
        Value::Int(tax::single_exemption(state_idx, married)),
        Value::Int(tax::married_exemption(state_idx, married)),
        Value::Int(tax::child_exemption(state_idx, children)),
    ]
}

/// Injects one error into a tuple: an attribute on the RHS of one of the
/// workload CFDs (ST, CT, TX or an exemption) is replaced by a wrong value.
fn corrupt(rng: &mut StdRng, values: &mut [Value], entry: &GeoEntry) {
    // Attribute positions in TAX_ATTRS order.
    const CT: usize = 5;
    const ST: usize = 7;
    const TX: usize = 11;
    const STX: usize = 12;
    const CTX: usize = 14;
    match rng.gen_range(0..5) {
        0 => {
            // Wrong state for this zip code.
            let wrong = format!(
                "S{:02}",
                (tax::state_index(&entry.state) + 1) % geo::NUM_STATES
            );
            values[ST] = Value::from(wrong);
        }
        1 => {
            // Wrong city for this zip / area code.
            values[CT] = Value::from(format!("{}-X", entry.city));
        }
        2 => {
            // Wrong tax rate for this state and salary.
            let current = values[TX].as_int().unwrap_or(0);
            values[TX] = Value::Int(current + 1 + rng.gen_range(0..5));
        }
        3 => {
            let current = values[STX].as_int().unwrap_or(0);
            values[STX] = Value::Int(current + 123);
        }
        _ => {
            let current = values[CTX].as_int().unwrap_or(0);
            values[CTX] = Value::Int(current + 77);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generates_requested_size_and_schema() {
        let data = TaxGenerator::new(TaxConfig {
            size: 500,
            noise_percent: 0.0,
            seed: 1,
        })
        .generate();
        assert_eq!(data.relation.len(), 500);
        assert_eq!(data.relation.schema().arity(), TAX_ATTRS.len());
        assert!(data.dirty_rows.is_empty());
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = TaxConfig {
            size: 200,
            noise_percent: 5.0,
            seed: 99,
        };
        let a = TaxGenerator::new(cfg).generate();
        let b = TaxGenerator::new(cfg).generate();
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.dirty_rows, b.dirty_rows);
        let c = TaxGenerator::new(TaxConfig { seed: 100, ..cfg }).generate();
        assert_ne!(a.relation, c.relation);
    }

    #[test]
    fn noise_fraction_is_roughly_honoured() {
        let data = TaxGenerator::new(TaxConfig {
            size: 5_000,
            noise_percent: 10.0,
            seed: 3,
        })
        .generate();
        let frac = data.dirty_rows.len() as f64 / 5_000.0 * 100.0;
        assert!(
            (5.0..15.0).contains(&frac),
            "noise fraction {frac}% too far from 10%"
        );
    }

    #[test]
    fn clean_data_respects_zip_to_state() {
        let data = TaxGenerator::new(TaxConfig {
            size: 2_000,
            noise_percent: 0.0,
            seed: 5,
        })
        .generate();
        let schema = data.relation.schema().clone();
        let zip = schema.resolve("ZIP").unwrap();
        let st = schema.resolve("ST").unwrap();
        let mut mapping: HashMap<Value, Value> = HashMap::new();
        for (_, row) in data.relation.iter() {
            let entry = mapping
                .entry(row[zip].clone())
                .or_insert_with(|| row[st].clone());
            assert_eq!(entry, &row[st], "ZIP -> ST violated on clean data");
        }
    }

    #[test]
    fn clean_data_respects_state_salary_to_tax_and_exemptions() {
        let data = TaxGenerator::new(TaxConfig {
            size: 2_000,
            noise_percent: 0.0,
            seed: 6,
        })
        .generate();
        let schema = data.relation.schema().clone();
        let st = schema.resolve("ST").unwrap();
        let sa = schema.resolve("SA").unwrap();
        let tx = schema.resolve("TX").unwrap();
        let mr = schema.resolve("MR").unwrap();
        let stx = schema.resolve("STX").unwrap();
        for (_, row) in data.relation.iter() {
            let sidx = tax::state_index(row[st].as_str().unwrap());
            let salary = row[sa].as_int().unwrap();
            assert_eq!(row[tx].as_int().unwrap(), tax::tax_rate(sidx, salary));
            let married = row[mr].as_str().unwrap() == "married";
            assert_eq!(
                row[stx].as_int().unwrap(),
                tax::single_exemption(sidx, married)
            );
        }
    }

    #[test]
    fn noisy_rows_really_differ_from_clean_regeneration() {
        let cfg = TaxConfig {
            size: 1_000,
            noise_percent: 20.0,
            seed: 7,
        };
        let noisy = TaxGenerator::new(cfg).generate();
        assert!(!noisy.dirty_rows.is_empty());
        // Every dirty row must violate at least one of the functional
        // relationships (zip->state, tax formula, exemption formulas, city).
        let schema = noisy.relation.schema().clone();
        let zip = schema.resolve("ZIP").unwrap();
        let st = schema.resolve("ST").unwrap();
        let ct = schema.resolve("CT").unwrap();
        let sa = schema.resolve("SA").unwrap();
        let tx = schema.resolve("TX").unwrap();
        let mr = schema.resolve("MR").unwrap();
        let ch = schema.resolve("CH").unwrap();
        let stx = schema.resolve("STX").unwrap();
        let ctx = schema.resolve("CTX").unwrap();
        for &i in &noisy.dirty_rows {
            let row = noisy.relation.row(i).unwrap();
            let zip_v = row[zip].as_str().unwrap();
            let true_state = crate::geo::state_of_zip(zip_v).unwrap();
            let sidx = tax::state_index(true_state);
            let married = row[mr].as_str().unwrap() == "married";
            let children = row[ch].as_str().unwrap() == "yes";
            let clean_city = crate::geo::geo_table()
                .iter()
                .find(|e| e.zip == zip_v)
                .map(|e| e.city.clone())
                .unwrap();
            let is_dirty = row[st].as_str().unwrap() != true_state
                || row[ct].as_str().unwrap() != clean_city
                || row[tx].as_int().unwrap() != tax::tax_rate(sidx, row[sa].as_int().unwrap())
                || row[stx].as_int().unwrap() != tax::single_exemption(sidx, married)
                || row[ctx].as_int().unwrap() != tax::child_exemption(sidx, children);
            assert!(is_dirty, "row {i} was marked dirty but looks clean");
        }
    }
}
