//! A small, self-contained deterministic PRNG.
//!
//! The build environment is offline, so the `rand` crate is unavailable. The
//! generators only need reproducible, reasonably-distributed pseudo-random
//! numbers — cryptographic quality is irrelevant — so this module provides a
//! SplitMix64-seeded xoshiro256++ generator exposing the tiny slice of the
//! `rand` API the workload generators (and the randomized property tests)
//! use: [`StdRng::seed_from_u64`], [`StdRng::gen_range`] and
//! [`StdRng::gen_bool`].
//!
//! Determinism contract: for a fixed seed, the sequence of draws is stable
//! across runs and platforms (all arithmetic is explicit wrapping `u64`
//! math), which the generator tests rely on.

use std::ops::Range;

/// A deterministic pseudo-random number generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2n = s2 ^ s0;
        let s3n = s3 ^ s1;
        let s1n = s1 ^ s2n;
        let s0n = s0 ^ s3n;
        s2n ^= t;
        self.state = [s0n, s1n, s2n, s3n.rotate_left(45)];
        result
    }

    /// A uniformly distributed value in `range` (half-open, like `rand`).
    ///
    /// Panics when the range is empty, mirroring `rand`'s behaviour.
    pub fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

/// Types [`StdRng::gen_range`] can sample uniformly from a half-open range.
pub trait SampleRange: Sized {
    /// Draws a uniform sample in `range`.
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

fn sample_u64(rng: &mut StdRng, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift rejection-free mapping (Lemire); the tiny modulo bias is
    // irrelevant for workload generation.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange for usize {
    fn sample(rng: &mut StdRng, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + sample_u64(rng, (range.end - range.start) as u64) as usize
    }
}

impl SampleRange for u64 {
    fn sample(rng: &mut StdRng, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + sample_u64(rng, range.end - range.start)
    }
}

impl SampleRange for u32 {
    fn sample(rng: &mut StdRng, range: Range<u32>) -> u32 {
        assert!(range.start < range.end, "empty range");
        range.start + sample_u64(rng, (range.end - range.start) as u64) as u32
    }
}

impl SampleRange for i64 {
    fn sample(rng: &mut StdRng, range: Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(sample_u64(rng, span) as i64)
    }
}

impl SampleRange for i32 {
    fn sample(rng: &mut StdRng, range: Range<i32>) -> i32 {
        assert!(range.start < range.end, "empty range");
        let span = (range.end as i64 - range.start as i64) as u64;
        range.start.wrapping_add(sample_u64(rng, span) as i32)
    }
}

impl SampleRange for f64 {
    fn sample(rng: &mut StdRng, range: Range<f64>) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = rng.gen_range(0.0..100.0);
            assert!((0.0..100.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((0.25..0.35).contains(&frac), "p=0.3 produced {frac}");
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn values_spread_over_the_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(rng.gen_range(0usize..10));
        }
        assert_eq!(seen.len(), 10, "all buckets of 0..10 must be hit");
    }
}
