//! Synthetic US-style geography.
//!
//! The paper populated its tax-records relation from real zip codes, area
//! codes, cities and states. That data set is not redistributable, so this
//! module generates a deterministic synthetic equivalent with the same
//! functional structure:
//!
//! * every zip code belongs to exactly one city and one state
//!   (`ZIP → CT, ST`),
//! * every area code belongs to exactly one city (`AC → CT, ST`),
//! * city names are *not* unique across states (mirroring the paper's remark
//!   that "a city by itself does not suffice"), so `CT → ST` does **not**
//!   hold, while `(ZIP, CT) → ST` does.

use std::sync::OnceLock;

/// Number of states in the synthetic geography.
pub const NUM_STATES: usize = 50;
/// Cities per state.
pub const CITIES_PER_STATE: usize = 8;
/// Zip codes per city.
pub const ZIPS_PER_CITY: usize = 3;

/// One `(state, city, zip, area code)` association.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeoEntry {
    /// Two-letter state code, e.g. `"S07"` (synthetic).
    pub state: String,
    /// City name; deliberately reused across a few states.
    pub city: String,
    /// Five-digit zip code, unique across the table.
    pub zip: String,
    /// Three-to-four digit area code, unique per city.
    pub area_code: String,
}

/// The full geography table. Built once and cached.
pub fn geo_table() -> &'static [GeoEntry] {
    static TABLE: OnceLock<Vec<GeoEntry>> = OnceLock::new();
    TABLE.get_or_init(build_table)
}

/// All distinct `(zip, state)` pairs — the tableau source for the
/// "zip codes determine states" CFD and for the Fig. 9(f) experiment, which
/// uses *all* zip→state pairs.
pub fn zip_state_pairs() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = geo_table()
        .iter()
        .map(|e| (e.zip.clone(), e.state.clone()))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// All distinct `(area code, city)` pairs.
pub fn area_city_pairs() -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = geo_table()
        .iter()
        .map(|e| (e.area_code.clone(), e.city.clone()))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The state of a zip code, if the zip exists.
pub fn state_of_zip(zip: &str) -> Option<&'static str> {
    geo_table()
        .iter()
        .find(|e| e.zip == zip)
        .map(|e| e.state.as_str())
}

fn build_table() -> Vec<GeoEntry> {
    // A pool of base city names, shorter than NUM_STATES * CITIES_PER_STATE so
    // that names repeat across states (CT alone does not determine ST).
    let base_names = [
        "Springfield",
        "Franklin",
        "Clinton",
        "Georgetown",
        "Salem",
        "Madison",
        "Arlington",
        "Ashland",
        "Dover",
        "Hudson",
        "Kingston",
        "Milton",
        "Newport",
        "Oxford",
        "Riverside",
        "Winchester",
    ];
    let mut table = Vec::with_capacity(NUM_STATES * CITIES_PER_STATE * ZIPS_PER_CITY);
    let mut zip_counter = 10_000u32;
    let mut area_counter = 200u32;
    for s in 0..NUM_STATES {
        let state = format!("S{s:02}");
        for c in 0..CITIES_PER_STATE {
            let city = base_names[(s * CITIES_PER_STATE + c) % base_names.len()].to_owned();
            let area_code = format!("{area_counter}");
            area_counter += 1;
            for _ in 0..ZIPS_PER_CITY {
                let zip = format!("{zip_counter:05}");
                zip_counter += 1;
                table.push(GeoEntry {
                    state: state.clone(),
                    city: city.clone(),
                    zip,
                    area_code: area_code.clone(),
                });
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn table_has_expected_size() {
        let t = geo_table();
        assert_eq!(t.len(), NUM_STATES * CITIES_PER_STATE * ZIPS_PER_CITY);
    }

    #[test]
    fn zip_determines_state_and_city() {
        let mut seen: HashMap<&str, (&str, &str)> = HashMap::new();
        for e in geo_table() {
            let entry = seen.entry(&e.zip).or_insert((&e.state, &e.city));
            assert_eq!(entry.0, e.state, "ZIP -> ST must be a function");
            assert_eq!(entry.1, e.city, "ZIP -> CT must be a function");
        }
        assert_eq!(
            seen.len(),
            NUM_STATES * CITIES_PER_STATE * ZIPS_PER_CITY,
            "zips are unique"
        );
    }

    #[test]
    fn area_code_determines_city_and_state() {
        let mut seen: HashMap<&str, (&str, &str)> = HashMap::new();
        for e in geo_table() {
            let entry = seen.entry(&e.area_code).or_insert((&e.state, &e.city));
            assert_eq!(entry.0, e.state);
            assert_eq!(entry.1, e.city);
        }
        assert_eq!(seen.len(), NUM_STATES * CITIES_PER_STATE);
    }

    #[test]
    fn city_name_alone_does_not_determine_state() {
        let mut states_per_city: HashMap<&str, std::collections::HashSet<&str>> = HashMap::new();
        for e in geo_table() {
            states_per_city.entry(&e.city).or_default().insert(&e.state);
        }
        assert!(
            states_per_city.values().any(|s| s.len() > 1),
            "some city name must repeat across states"
        );
    }

    #[test]
    fn zip_and_city_together_determine_state() {
        let mut seen: HashMap<(&str, &str), &str> = HashMap::new();
        for e in geo_table() {
            let entry = seen.entry((&e.zip, &e.city)).or_insert(&e.state);
            assert_eq!(*entry, e.state);
        }
    }

    #[test]
    fn pair_helpers_are_deduplicated() {
        assert_eq!(
            zip_state_pairs().len(),
            NUM_STATES * CITIES_PER_STATE * ZIPS_PER_CITY
        );
        assert_eq!(area_city_pairs().len(), NUM_STATES * CITIES_PER_STATE);
        assert_eq!(state_of_zip("10000"), Some("S00"));
        assert_eq!(state_of_zip("99999"), None);
    }
}
