//! The CFD workload generator (the `NUMCFDs`, `NUMATTRs`, `TABSZ` and
//! `NUMCONSTs` knobs of Section 5).
//!
//! The generated CFDs express the real-world constraints the paper lists —
//! zip codes determine states, zip code and city determine the state, state
//! and salary determine the tax rate, state and marital status determine the
//! exemption — instantiated against the synthetic geography/tax tables so
//! that **clean** generated data satisfies them and injected `NOISE` is the
//! only source of violations.
//!
//! Pattern rows come in two flavours, following the `NUMCONSTs` parameter:
//! all-constant rows (taken from the geography/tax tables) and rows with
//! variables. Rows with variables keep the RHS cell a variable too, so they
//! only assert the embedded FD on their scope and remain valid on clean data.

use crate::geo;
use crate::records::tax_schema;
use crate::rng::StdRng;
use crate::tax;
use cfd_core::{Cfd, PatternTableau, PatternTuple, PatternValue};
use cfd_relation::Value;

/// The embedded FDs available to the workload generator, named after the
/// real-world constraint they encode. `attribute_count` is the paper's
/// NUMATTRs for a CFD built on that FD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddedFd {
    /// `[ZIP] → [ST]` — zip codes determine states (2 attributes).
    ZipToState,
    /// `[ZIP] → [CT]` — zip codes determine cities (2 attributes).
    ZipToCity,
    /// `[ZIP, CT] → [ST]` — zip and city determine the state (3 attributes).
    ZipCityToState,
    /// `[CC, AC] → [CT]` — country and area code determine the city
    /// (3 attributes).
    AreaToCity,
    /// `[ST, SA] → [TX]` — state and salary (bracket) determine the tax rate
    /// (3 attributes). Salary cells are always variables.
    StateSalaryToTax,
    /// `[ST, MR] → [STX]` — state and marital status determine the single
    /// exemption (3 attributes).
    StateMaritalToExemption,
    /// `[CC, AC, CT] → [ST]` — country code, area code and city determine the
    /// state (4 attributes).
    AreaCityToState,
    /// `[ST, MR, CH] → [CTX]` — state, marital status and dependents
    /// determine the child exemption (4 attributes).
    StateMaritalChildToExemption,
}

impl EmbeddedFd {
    /// LHS attribute names.
    pub fn lhs(&self) -> &'static [&'static str] {
        match self {
            EmbeddedFd::ZipToState | EmbeddedFd::ZipToCity => &["ZIP"],
            EmbeddedFd::ZipCityToState => &["ZIP", "CT"],
            EmbeddedFd::AreaToCity => &["CC", "AC"],
            EmbeddedFd::StateSalaryToTax => &["ST", "SA"],
            EmbeddedFd::StateMaritalToExemption => &["ST", "MR"],
            EmbeddedFd::AreaCityToState => &["CC", "AC", "CT"],
            EmbeddedFd::StateMaritalChildToExemption => &["ST", "MR", "CH"],
        }
    }

    /// RHS attribute name.
    pub fn rhs(&self) -> &'static str {
        match self {
            EmbeddedFd::ZipToState | EmbeddedFd::ZipCityToState | EmbeddedFd::AreaCityToState => {
                "ST"
            }
            EmbeddedFd::ZipToCity | EmbeddedFd::AreaToCity => "CT",
            EmbeddedFd::StateSalaryToTax => "TX",
            EmbeddedFd::StateMaritalToExemption => "STX",
            EmbeddedFd::StateMaritalChildToExemption => "CTX",
        }
    }

    /// Total number of attributes in the embedded FD (the paper's NUMATTRs).
    pub fn attribute_count(&self) -> usize {
        self.lhs().len() + 1
    }

    /// An embedded FD with the requested attribute count, for the experiments
    /// that vary NUMATTRs.
    pub fn with_attribute_count(n: usize) -> EmbeddedFd {
        match n {
            0..=2 => EmbeddedFd::ZipToState,
            3 => EmbeddedFd::ZipCityToState,
            _ => EmbeddedFd::AreaCityToState,
        }
    }

    /// All variants (useful for iterating workloads).
    pub fn all() -> [EmbeddedFd; 8] {
        [
            EmbeddedFd::ZipToState,
            EmbeddedFd::ZipToCity,
            EmbeddedFd::ZipCityToState,
            EmbeddedFd::AreaToCity,
            EmbeddedFd::StateSalaryToTax,
            EmbeddedFd::StateMaritalToExemption,
            EmbeddedFd::AreaCityToState,
            EmbeddedFd::StateMaritalChildToExemption,
        ]
    }
}

/// Workload generator for CFDs over the tax-records schema.
#[derive(Debug, Clone)]
pub struct CfdWorkload {
    seed: u64,
}

impl CfdWorkload {
    /// Creates a generator with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        CfdWorkload { seed }
    }

    /// Generates one CFD on the given embedded FD with `tab_size` pattern
    /// rows, of which roughly `pct_consts` percent are all-constant rows.
    pub fn single(&self, fd: EmbeddedFd, tab_size: usize, pct_consts: f64) -> Cfd {
        let mut rng = StdRng::seed_from_u64(self.seed ^ fd as u64);
        let sources = source_rows(fd);
        let mut tableau = PatternTableau::new();
        for i in 0..tab_size {
            let (lhs_consts, rhs_const) = &sources[i % sources.len()];
            let constant_row = (rng.gen_range(0.0..100.0)) < pct_consts;
            let row = if constant_row {
                PatternTuple::new(
                    lhs_consts
                        .iter()
                        .map(|v| PatternValue::constant(v.clone()))
                        .collect(),
                    vec![PatternValue::constant(rhs_const.clone())],
                )
            } else {
                // Variable row: at least one LHS variable, RHS variable, so the
                // row stays valid on clean data.
                let mut lhs: Vec<PatternValue> = lhs_consts
                    .iter()
                    .map(|v| PatternValue::constant(v.clone()))
                    .collect();
                let forced = rng.gen_range(0..lhs.len());
                for (j, cell) in lhs.iter_mut().enumerate() {
                    if j == forced || rng.gen_bool(0.5) {
                        *cell = PatternValue::Wildcard;
                    }
                }
                PatternTuple::new(lhs, vec![PatternValue::Wildcard])
            };
            tableau.push(row);
        }
        build_cfd(fd, tableau)
    }

    /// Generates one CFD whose embedded FD has the requested attribute count.
    pub fn by_attrs(&self, num_attrs: usize, tab_size: usize, pct_consts: f64) -> Cfd {
        self.single(
            EmbeddedFd::with_attribute_count(num_attrs),
            tab_size,
            pct_consts,
        )
    }

    /// Generates `num_cfds` CFDs, cycling through the embedded FDs that have
    /// at most `num_attrs` attributes.
    pub fn many(
        &self,
        num_cfds: usize,
        num_attrs: usize,
        tab_size: usize,
        pct_consts: f64,
    ) -> Vec<Cfd> {
        let candidates: Vec<EmbeddedFd> = EmbeddedFd::all()
            .into_iter()
            .filter(|fd| fd.attribute_count() <= num_attrs.max(2))
            .collect();
        (0..num_cfds)
            .map(|i| {
                let fd = candidates[i % candidates.len()];
                CfdWorkload::new(self.seed.wrapping_add(i as u64)).single(fd, tab_size, pct_consts)
            })
            .collect()
    }

    /// The Fig. 9(f) constraint: `[ZIP] → [ST]` with a pattern row for every
    /// zip→state pair in the geography, all constants ("we used all possible
    /// zip to state pairs, so as not to miss a violation").
    pub fn zip_state_full(&self) -> Cfd {
        let mut tableau = PatternTableau::new();
        for (zip, state) in geo::zip_state_pairs() {
            tableau.push(PatternTuple::new(
                vec![PatternValue::constant(zip.as_str())],
                vec![PatternValue::constant(state.as_str())],
            ));
        }
        build_cfd(EmbeddedFd::ZipToState, tableau)
    }
}

/// Constant sources per embedded FD: `(LHS constants, RHS constant)` rows
/// drawn from the synthetic geography / tax tables, so the resulting
/// patterns hold on clean data.
fn source_rows(fd: EmbeddedFd) -> Vec<(Vec<Value>, Value)> {
    let table = geo::geo_table();
    match fd {
        EmbeddedFd::ZipToState => geo::zip_state_pairs()
            .into_iter()
            .map(|(z, s)| (vec![Value::from(z)], Value::from(s)))
            .collect(),
        EmbeddedFd::ZipToCity => table
            .iter()
            .map(|e| {
                (
                    vec![Value::from(e.zip.as_str())],
                    Value::from(e.city.as_str()),
                )
            })
            .collect(),
        EmbeddedFd::ZipCityToState => table
            .iter()
            .map(|e| {
                (
                    vec![Value::from(e.zip.as_str()), Value::from(e.city.as_str())],
                    Value::from(e.state.as_str()),
                )
            })
            .collect(),
        EmbeddedFd::AreaToCity => geo::area_city_pairs()
            .into_iter()
            .map(|(ac, ct)| (vec![Value::from("01"), Value::from(ac)], Value::from(ct)))
            .collect(),
        EmbeddedFd::StateSalaryToTax => (0..geo::NUM_STATES)
            .map(|s| {
                // Salary is always a variable; the RHS rate therefore must be
                // a variable as well (it depends on the bracket).
                (
                    vec![Value::from(format!("S{s:02}")), Value::from("_ignored_")],
                    Value::Null,
                )
            })
            .collect(),
        EmbeddedFd::StateMaritalToExemption => (0..geo::NUM_STATES)
            .flat_map(|s| {
                ["single", "married"].into_iter().map(move |mr| {
                    (
                        vec![Value::from(format!("S{s:02}")), Value::from(mr)],
                        Value::Int(tax::single_exemption(s, mr == "married")),
                    )
                })
            })
            .collect(),
        EmbeddedFd::AreaCityToState => {
            let mut rows: Vec<(Vec<Value>, Value)> = table
                .iter()
                .map(|e| {
                    (
                        vec![
                            Value::from("01"),
                            Value::from(e.area_code.as_str()),
                            Value::from(e.city.as_str()),
                        ],
                        Value::from(e.state.as_str()),
                    )
                })
                .collect();
            rows.dedup();
            rows
        }
        EmbeddedFd::StateMaritalChildToExemption => (0..geo::NUM_STATES)
            .flat_map(|s| {
                ["single", "married"].into_iter().flat_map(move |mr| {
                    ["yes", "no"].into_iter().map(move |ch| {
                        (
                            vec![
                                Value::from(format!("S{s:02}")),
                                Value::from(mr),
                                Value::from(ch),
                            ],
                            Value::Int(tax::child_exemption(s, ch == "yes")),
                        )
                    })
                })
            })
            .collect(),
    }
}

/// Assembles the CFD, handling the salary-to-tax special case where the
/// salary cell and the RHS are always variables.
fn build_cfd(fd: EmbeddedFd, mut tableau: PatternTableau) -> Cfd {
    if fd == EmbeddedFd::StateSalaryToTax {
        for row in tableau.rows_mut() {
            // The SA cell (index 1) and the RHS are forced to variables.
            row.lhs_mut()[1] = PatternValue::Wildcard;
            if row.rhs()[0].is_const() {
                row.rhs_mut()[0] = PatternValue::Wildcard;
            }
        }
    }
    let schema = tax_schema();
    Cfd::from_parts(
        schema.clone(),
        schema
            .resolve_all(fd.lhs().iter().copied())
            .expect("workload attributes exist"),
        vec![schema.resolve(fd.rhs()).expect("workload attribute exists")],
        tableau,
    )
    .expect("workload CFD is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{TaxConfig, TaxGenerator};

    #[test]
    fn attribute_counts_match_embedded_fds() {
        assert_eq!(EmbeddedFd::ZipToState.attribute_count(), 2);
        assert_eq!(EmbeddedFd::ZipCityToState.attribute_count(), 3);
        assert_eq!(EmbeddedFd::AreaCityToState.attribute_count(), 4);
        assert_eq!(EmbeddedFd::with_attribute_count(2), EmbeddedFd::ZipToState);
        assert_eq!(
            EmbeddedFd::with_attribute_count(3),
            EmbeddedFd::ZipCityToState
        );
        assert_eq!(
            EmbeddedFd::with_attribute_count(4),
            EmbeddedFd::AreaCityToState
        );
    }

    #[test]
    fn single_generates_requested_tableau_size() {
        let w = CfdWorkload::new(1);
        let cfd = w.single(EmbeddedFd::ZipToState, 250, 100.0);
        assert_eq!(cfd.tableau().len(), 250);
        assert!((cfd.tableau().percent_constant_rows() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn pct_consts_controls_constant_rows() {
        let w = CfdWorkload::new(2);
        let cfd = w.single(EmbeddedFd::ZipCityToState, 400, 50.0);
        let pct = cfd.tableau().percent_constant_rows();
        assert!(
            (35.0..65.0).contains(&pct),
            "constant fraction {pct}% too far from 50%"
        );
        // Variable rows always have a variable RHS.
        for row in cfd.tableau().iter() {
            if !row.is_all_constants() {
                assert!(row.rhs()[0].is_wildcard());
            }
        }
    }

    #[test]
    fn generated_cfds_hold_on_clean_data() {
        let data = TaxGenerator::new(TaxConfig {
            size: 2_000,
            noise_percent: 0.0,
            seed: 11,
        })
        .generate();
        let w = CfdWorkload::new(3);
        for fd in EmbeddedFd::all() {
            let cfd = w.single(fd, 60, 70.0);
            assert!(
                cfd.satisfied_by(&data.relation),
                "{fd:?} violated by clean data"
            );
        }
        assert!(w.zip_state_full().satisfied_by(&data.relation));
    }

    #[test]
    fn noisy_data_violates_the_full_zip_state_cfd() {
        let data = TaxGenerator::new(TaxConfig {
            size: 3_000,
            noise_percent: 8.0,
            seed: 12,
        })
        .generate();
        let w = CfdWorkload::new(4);
        let cfd = w.zip_state_full();
        assert!(!data.dirty_rows.is_empty());
        assert!(
            !cfd.satisfied_by(&data.relation),
            "noise must produce violations"
        );
    }

    #[test]
    fn many_produces_the_requested_number_of_cfds() {
        let w = CfdWorkload::new(5);
        let cfds = w.many(7, 3, 50, 80.0);
        assert_eq!(cfds.len(), 7);
        for cfd in &cfds {
            assert!(cfd.lhs().len() + cfd.rhs().len() <= 3);
            assert_eq!(cfd.tableau().len(), 50);
        }
    }

    #[test]
    fn zip_state_full_covers_every_zip() {
        let w = CfdWorkload::new(6);
        let cfd = w.zip_state_full();
        assert_eq!(cfd.tableau().len(), geo::zip_state_pairs().len());
        assert!((cfd.tableau().percent_constant_rows() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CfdWorkload::new(9).single(EmbeddedFd::AreaToCity, 100, 40.0);
        let b = CfdWorkload::new(9).single(EmbeddedFd::AreaToCity, 100, 40.0);
        assert_eq!(a, b);
        let c = CfdWorkload::new(10).single(EmbeddedFd::AreaToCity, 100, 40.0);
        assert_ne!(a, c);
    }

    #[test]
    fn salary_cells_are_always_variables() {
        let w = CfdWorkload::new(7);
        let cfd = w.single(EmbeddedFd::StateSalaryToTax, 80, 100.0);
        let sa_pos = cfd
            .lhs_names()
            .iter()
            .position(|n| *n == "SA")
            .expect("SA in LHS");
        for row in cfd.tableau().iter() {
            assert!(row.lhs()[sa_pos].is_wildcard());
            assert!(row.rhs()[0].is_wildcard());
        }
    }
}
