//! Synthetic per-state tax rates, brackets and exemptions.
//!
//! The paper collected real tax rates, tax/income brackets and exemptions for
//! every US state. This module provides a deterministic synthetic equivalent
//! with the same functional structure: the tax rate is a function of the
//! state and the salary bracket, and each exemption amount is a function of
//! the state and the relevant status attribute (marital status / dependents).

/// Salary bracket boundaries (upper bounds, in dollars). The last bracket is
/// open-ended.
pub const BRACKET_BOUNDS: [i64; 3] = [30_000, 60_000, 120_000];

/// Number of salary brackets.
pub const NUM_BRACKETS: usize = BRACKET_BOUNDS.len() + 1;

/// The bracket index (0-based) a salary falls into.
pub fn bracket_of(salary: i64) -> usize {
    BRACKET_BOUNDS
        .iter()
        .position(|b| salary < *b)
        .unwrap_or(BRACKET_BOUNDS.len())
}

/// The synthetic tax rate (in percent) for a state index and salary.
/// Deterministic: base rate depends on the state, progression on the bracket.
pub fn tax_rate(state_index: usize, salary: i64) -> i64 {
    let base = 2 + (state_index % 7) as i64;
    base + 2 * bracket_of(salary) as i64
}

/// Exemption amount for single filers in a state (0 for married filers).
pub fn single_exemption(state_index: usize, married: bool) -> i64 {
    if married {
        0
    } else {
        1_000 + 100 * (state_index % 10) as i64
    }
}

/// Exemption amount for married filers in a state (0 for single filers).
pub fn married_exemption(state_index: usize, married: bool) -> i64 {
    if married {
        2_000 + 150 * (state_index % 10) as i64
    } else {
        0
    }
}

/// Exemption amount per dependent child in a state (0 without dependents).
pub fn child_exemption(state_index: usize, has_children: bool) -> i64 {
    if has_children {
        500 + 50 * (state_index % 12) as i64
    } else {
        0
    }
}

/// Parses the numeric index out of a synthetic state code (`"S07"` → 7).
pub fn state_index(state: &str) -> usize {
    state.trim_start_matches('S').parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brackets_partition_salaries() {
        assert_eq!(bracket_of(0), 0);
        assert_eq!(bracket_of(29_999), 0);
        assert_eq!(bracket_of(30_000), 1);
        assert_eq!(bracket_of(59_999), 1);
        assert_eq!(bracket_of(60_000), 2);
        assert_eq!(bracket_of(119_999), 2);
        assert_eq!(bracket_of(120_000), 3);
        assert_eq!(bracket_of(1_000_000), 3);
    }

    #[test]
    fn tax_rate_is_a_function_of_state_and_bracket() {
        // Same state, same bracket -> same rate.
        assert_eq!(tax_rate(3, 10_000), tax_rate(3, 20_000));
        // Higher bracket -> strictly higher rate within a state.
        assert!(tax_rate(3, 70_000) > tax_rate(3, 20_000));
        // Different states can have different rates.
        assert_ne!(tax_rate(0, 10_000), tax_rate(1, 10_000));
    }

    #[test]
    fn exemptions_depend_on_status() {
        assert_eq!(single_exemption(4, true), 0);
        assert!(single_exemption(4, false) > 0);
        assert_eq!(married_exemption(4, false), 0);
        assert!(married_exemption(4, true) > 0);
        assert_eq!(child_exemption(4, false), 0);
        assert!(child_exemption(4, true) > 0);
    }

    #[test]
    fn exemptions_are_functions_of_state_and_status() {
        for st in 0..50 {
            assert_eq!(single_exemption(st, false), single_exemption(st, false));
            assert_eq!(child_exemption(st, true), child_exemption(st, true));
        }
        // They vary across states (for at least one pair).
        assert!((0..50).any(|s| single_exemption(s, false) != single_exemption(0, false)));
    }

    #[test]
    fn state_index_parses_synthetic_codes() {
        assert_eq!(state_index("S00"), 0);
        assert_eq!(state_index("S37"), 37);
        assert_eq!(state_index("garbage"), 0);
    }
}
