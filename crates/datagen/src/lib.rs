//! # cfd-datagen — workloads for the CFD evaluation
//!
//! The paper's experiments (Section 5) run over a synthetic *tax-records*
//! relation populated from real US geography (zip codes, area codes, cities,
//! states) and per-state tax tables, with a controllable fraction of noisy
//! tuples. This crate provides:
//!
//! * [`cust`] — the `cust` running example of Fig. 1 and the CFDs of Fig. 2,
//!   used throughout examples and tests;
//! * [`geo`] — an embedded synthetic geography (states, cities, zips, area
//!   codes) standing in for the real data collected by the authors;
//! * [`tax`] — per-state tax rates and exemptions;
//! * [`records`] — the tax-records generator with the paper's `SZ` and
//!   `NOISE` knobs;
//! * [`cfdgen`] — the CFD workload generator with the paper's `NUMCFDs`,
//!   `NUMATTRs`, `TABSZ` and `NUMCONSTs` knobs.
//!
//! ```
//! use cfd_datagen::records::{TaxGenerator, TaxConfig};
//! use cfd_datagen::cfdgen::{CfdWorkload, EmbeddedFd};
//!
//! let gen = TaxGenerator::new(TaxConfig { size: 1_000, noise_percent: 5.0, seed: 7 });
//! let data = gen.generate();
//! assert_eq!(data.relation.len(), 1_000);
//!
//! let cfd = CfdWorkload::new(42).single(EmbeddedFd::ZipCityToState, 100, 100.0);
//! assert_eq!(cfd.tableau().len(), 100);
//! ```

pub mod cfdgen;
pub mod cust;
pub mod geo;
pub mod records;
pub mod rng;
pub mod tax;

pub use cfdgen::{CfdWorkload, EmbeddedFd};
pub use cust::{cust_instance, cust_schema, fig2_cfd_set};
pub use records::{GeneratedData, TaxConfig, TaxGenerator};
