//! The `cust` running example: the schema of Example 1.1, the instance of
//! Fig. 1 and the CFDs of Fig. 2.

use cfd_core::{Cfd, CfdSet};
use cfd_relation::{Relation, Schema, Tuple, Value};

/// The `cust` schema of Example 1.1: phone (CC, AC, PN), name (NM), and
/// address (STR, CT, ZIP).
pub fn cust_schema() -> Schema {
    Schema::builder("cust")
        .text("CC")
        .text("AC")
        .text("PN")
        .text("NM")
        .text("STR")
        .text("CT")
        .text("ZIP")
        .build()
}

/// The six-tuple `cust` instance of Fig. 1.
pub fn cust_instance() -> Relation {
    let mut rel = Relation::new(cust_schema());
    for row in [
        ["01", "908", "1111111", "Mike", "Tree Ave.", "NYC", "07974"],
        ["01", "908", "1111111", "Rick", "Tree Ave.", "NYC", "07974"],
        ["01", "212", "2222222", "Joe", "Elm Str.", "NYC", "01202"],
        ["01", "212", "2222222", "Jim", "Elm Str.", "NYC", "01202"],
        ["01", "215", "3333333", "Ben", "Oak Ave.", "PHI", "02394"],
        ["44", "131", "4444444", "Ian", "High St.", "EDI", "EH4 1DT"],
    ] {
        rel.push(Tuple::new(row.iter().map(|s| Value::from(*s)).collect()))
            .expect("fig. 1 rows match the cust schema");
    }
    rel
}

/// ϕ1 of Fig. 2: `(cust: [CC, ZIP] → [STR], T1)` with the single pattern
/// `(44, _ ‖ _)` — in the UK, zip code determines street.
pub fn phi1() -> Cfd {
    Cfd::builder(cust_schema(), ["CC", "ZIP"], ["STR"])
        .pattern(["44", "_"], ["_"])
        .named("phi1")
        .build()
        .expect("phi1 is well-formed")
}

/// ϕ2 of Fig. 2: `(cust: [CC, AC, PN] → [STR, CT, ZIP], T2)` with three
/// pattern rows (the embedded FD f1 plus the 908→MH and 212→NYC refinements).
pub fn phi2() -> Cfd {
    Cfd::builder(cust_schema(), ["CC", "AC", "PN"], ["STR", "CT", "ZIP"])
        .pattern(["01", "908", "_"], ["_", "MH", "_"])
        .pattern(["01", "212", "_"], ["_", "NYC", "_"])
        .pattern(["_", "_", "_"], ["_", "_", "_"])
        .named("phi2")
        .build()
        .expect("phi2 is well-formed")
}

/// ϕ3 of Fig. 2: `(cust: [CC, AC] → [CT], T3)` with the 215→PHI and 141→GLA
/// rows (the embedded FD f2 row is added by [`phi3_with_fd`]).
pub fn phi3() -> Cfd {
    Cfd::builder(cust_schema(), ["CC", "AC"], ["CT"])
        .pattern(["01", "215"], ["PHI"])
        .pattern(["44", "141"], ["GLA"])
        .named("phi3")
        .build()
        .expect("phi3 is well-formed")
}

/// ϕ3 extended with the all-wildcard row, i.e. including the plain FD f2.
pub fn phi3_with_fd() -> Cfd {
    Cfd::builder(cust_schema(), ["CC", "AC"], ["CT"])
        .pattern(["01", "215"], ["PHI"])
        .pattern(["44", "141"], ["GLA"])
        .pattern(["_", "_"], ["_"])
        .named("phi3+f2")
        .build()
        .expect("phi3+f2 is well-formed")
}

/// ϕ5 of Section 4.2: `(cust: [CT] → [AC], T5)` with the single all-variable
/// row, used in the tableau-merging example of Fig. 7.
pub fn phi5() -> Cfd {
    Cfd::builder(cust_schema(), ["CT"], ["AC"])
        .pattern(["_"], ["_"])
        .named("phi5")
        .build()
        .expect("phi5 is well-formed")
}

/// The CFDs of Fig. 2 as a [`CfdSet`].
pub fn fig2_cfd_set() -> CfdSet {
    CfdSet::from_cfds(vec![phi1(), phi2(), phi3()]).expect("same schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_matches_fig1() {
        let rel = cust_instance();
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.schema().arity(), 7);
        let nm = rel.schema().resolve("NM").unwrap();
        assert_eq!(rel.row(5).unwrap()[nm], Value::from("Ian"));
    }

    #[test]
    fn example_2_2_satisfaction() {
        let rel = cust_instance();
        assert!(phi1().satisfied_by(&rel));
        assert!(phi3().satisfied_by(&rel));
        assert!(phi3_with_fd().satisfied_by(&rel));
        assert!(!phi2().satisfied_by(&rel));
        // phi5 ([CT] -> [AC]) is violated by Fig. 1 (NYC has two area codes);
        // it exists for the merging demos of Section 4.2.
        assert!(!phi5().satisfied_by(&rel));
    }

    #[test]
    fn fig2_set_is_consistent() {
        assert!(fig2_cfd_set().is_consistent().unwrap());
        assert_eq!(fig2_cfd_set().len(), 3);
    }

    #[test]
    fn phi5_single_variable_row() {
        let c = phi5();
        assert_eq!(c.tableau().len(), 1);
        assert!(c.tableau().rows()[0].is_all_wildcards());
    }
}
