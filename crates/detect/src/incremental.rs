//! Incremental violation detection for insertions.
//!
//! The paper detects violations by scanning the whole instance. In a data
//! cleaning pipeline, new tuples usually arrive in batches into an instance
//! that is already known to be clean; re-running the full query pair then
//! wastes a pass over data that cannot have become inconsistent by itself.
//! This module provides the natural incremental variant (an extension beyond
//! the paper): given a *clean* base instance and a batch of inserted tuples,
//! it reports exactly the violations of the combined instance, touching the
//! base only through hash-index probes on the CFDs' LHS attributes.
//!
//! The key observation mirrors the `QC`/`QV` split:
//!
//! * single-tuple violations can only be caused by the inserted tuples
//!   themselves (the base is clean), so only the batch is checked against the
//!   pattern constants;
//! * multi-tuple violations of the combined instance must involve at least
//!   one inserted tuple, so it suffices to group the inserted tuples by the
//!   LHS and compare each group against (a) itself and (b) the base tuples
//!   with the same LHS value, fetched through an index probe.

use crate::report::Violations;
use cfd_core::Cfd;
use cfd_relation::{Relation, Tuple, ValueId};
use std::collections::{HashMap, HashSet};

/// Incremental detector over a clean base instance.
#[derive(Debug)]
pub struct IncrementalDetector<'a> {
    base: &'a Relation,
    /// One index per CFD, on that CFD's LHS attributes.
    indexes: Vec<cfd_relation::Index>,
    cfds: Vec<Cfd>,
}

impl<'a> IncrementalDetector<'a> {
    /// Builds the detector, indexing the base relation once per CFD.
    ///
    /// The base is assumed to satisfy every CFD (as it would after running
    /// full detection and repairing); violations caused purely by base tuples
    /// are not re-reported.
    pub fn new(base: &'a Relation, cfds: Vec<Cfd>) -> Self {
        let indexes = cfds.iter().map(|c| base.build_index(c.lhs())).collect();
        IncrementalDetector {
            base,
            indexes,
            cfds,
        }
    }

    /// The CFDs being enforced.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Detects all violations of `base ∪ batch` that involve the batch.
    pub fn detect_insertions(&self, batch: &[Tuple]) -> Violations {
        let mut out = Violations::new();
        for (cfd, index) in self.cfds.iter().zip(&self.indexes) {
            self.detect_one(cfd, index, batch, &mut out);
        }
        out
    }

    fn detect_one(
        &self,
        cfd: &Cfd,
        index: &cfd_relation::Index,
        batch: &[Tuple],
        out: &mut Violations,
    ) {
        let lhs = cfd.lhs();
        let rhs = cfd.rhs();

        // Single-tuple (QC-style) violations among the inserted tuples.
        // Interned: constant-cell checks are u32 compares.
        for tuple in batch {
            let x_vals = tuple.project_ids(lhs);
            let y_vals = tuple.project_ids(rhs);
            for pattern in cfd.tableau().iter() {
                if pattern.lhs_matches_ids(&x_vals) && !pattern.rhs_matches_ids(&y_vals) {
                    out.add_constant_violation(tuple.to_values());
                    break;
                }
            }
        }

        // Multi-tuple (QV-style) violations: group the batch by LHS value,
        // keep only groups matching some pattern, and union each group with
        // the base tuples sharing that LHS value (via the prebuilt index).
        let mut groups: HashMap<Vec<ValueId>, Vec<&Tuple>> = HashMap::new();
        for tuple in batch {
            groups
                .entry(tuple.project_ids(lhs))
                .or_default()
                .push(tuple);
        }
        for (key, members) in groups {
            if !cfd.tableau().iter().any(|p| p.lhs_matches_ids(&key)) {
                continue;
            }
            let mut y_projections: HashSet<Vec<ValueId>> =
                members.iter().map(|t| t.project_ids(rhs)).collect();
            for &row in index.lookup_ids(&key) {
                y_projections.insert(self.base.rows()[row].project_ids(rhs));
            }
            if y_projections.len() > 1 {
                out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use cfd_datagen::cust::{cust_instance, cust_schema, phi2, phi3_with_fd};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::Value;
    use std::sync::Arc;

    fn tuple(values: &[&str]) -> Tuple {
        Tuple::new(values.iter().map(|s| Value::from(*s)).collect())
    }

    /// A cust base instance that satisfies ϕ2 (Fig. 1 with t1/t2's city fixed).
    fn clean_base() -> Relation {
        let mut rel = cust_instance();
        let ct = cust_schema().resolve("CT").unwrap();
        rel.rows_mut()[0].set(ct, Value::from("MH"));
        rel.rows_mut()[1].set(ct, Value::from("MH"));
        rel
    }

    #[test]
    fn clean_insertions_report_nothing() {
        let base = clean_base();
        let detector = IncrementalDetector::new(&base, vec![phi2(), phi3_with_fd()]);
        let batch = vec![tuple(&[
            "01", "215", "5555555", "Deb", "Oak Ave.", "PHI", "02394",
        ])];
        assert!(detector.detect_insertions(&batch).is_clean());
        assert_eq!(detector.cfds().len(), 2);
    }

    #[test]
    fn constant_violation_in_the_batch_is_caught() {
        let base = clean_base();
        let detector = IncrementalDetector::new(&base, vec![phi2()]);
        // Area code 908 but city NYC: violates the (01, 908, _ ‖ _, MH, _) row.
        let bad = tuple(&["01", "908", "9999999", "Eve", "Pine St.", "NYC", "07974"]);
        let report = detector.detect_insertions(std::slice::from_ref(&bad));
        assert_eq!(report.constant_violations().len(), 1);
        assert!(report.multi_tuple_keys().is_empty());
    }

    #[test]
    fn conflict_between_batch_and_base_is_caught() {
        let base = clean_base();
        let detector = IncrementalDetector::new(&base, vec![phi3_with_fd()]);
        // Same (CC, AC) as Ian but a different city: a multi-tuple violation
        // that only exists in the combined instance.
        let bad = tuple(&["44", "131", "7777777", "Una", "Low Rd.", "GLA", "G1"]);
        let report = detector.detect_insertions(std::slice::from_ref(&bad));
        assert_eq!(report.multi_tuple_keys().len(), 1);
        assert_eq!(
            report.multi_tuple_keys().iter().next().unwrap(),
            &vec![Value::from("44"), Value::from("131")]
        );
    }

    #[test]
    fn conflict_within_the_batch_is_caught() {
        let base = clean_base();
        let detector = IncrementalDetector::new(&base, vec![phi3_with_fd()]);
        let batch = vec![
            tuple(&["49", "030", "1", "Ann", "A St.", "BER", "10115"]),
            tuple(&["49", "030", "2", "Bob", "B St.", "MUC", "80331"]),
        ];
        let report = detector.detect_insertions(&batch);
        assert_eq!(report.multi_tuple_keys().len(), 1);
    }

    #[test]
    fn incremental_matches_full_detection_on_the_combined_instance() {
        // Build a clean tax base, a noisy batch, and compare against running
        // the full SQL detector on base ∪ batch.
        let base = TaxGenerator::new(TaxConfig {
            size: 600,
            noise_percent: 0.0,
            seed: 3,
        })
        .generate()
        .relation;
        let batch_rel = TaxGenerator::new(TaxConfig {
            size: 80,
            noise_percent: 20.0,
            seed: 4,
        })
        .generate()
        .relation;
        let batch: Vec<Tuple> = batch_rel.rows().to_vec();
        let cfds = vec![
            CfdWorkload::new(1).zip_state_full(),
            CfdWorkload::new(1).single(EmbeddedFd::AreaToCity, 200, 100.0),
        ];

        let incremental = IncrementalDetector::new(&base, cfds.clone()).detect_insertions(&batch);

        let mut combined = base.clone();
        for t in &batch {
            combined.push(t.clone()).unwrap();
        }
        let full = Detector::new()
            .detect_set(&cfds, Arc::new(combined))
            .unwrap();

        // The base is clean, so every full-detection finding involves the
        // batch and must be found incrementally, and vice versa.
        assert_eq!(incremental, full);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let base = clean_base();
        let detector = IncrementalDetector::new(&base, vec![phi2(), phi3_with_fd()]);
        assert!(detector.detect_insertions(&[]).is_clean());
    }
}
