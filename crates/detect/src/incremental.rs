//! Incremental violation detection over a stream of batched edits.
//!
//! The paper detects violations by scanning the whole instance. In a data
//! cleaning pipeline the instance *evolves*: tuples arrive and are retired in
//! batches, and re-running the full query pair on every batch wastes a pass
//! over data whose status cannot have changed. This module provides the
//! natural incremental engine (an extension beyond the paper): an
//! [`IncrementalDetector`] owns the current instance together with per-CFD
//! hash indexes on the LHS attributes ([`cfd_relation::Index`], updated in
//! place via `insert_row`/`remove_row`) and per-CFD violation state, and
//! maintains exactly the violations a from-scratch
//! [`DirectDetector`](crate::DirectDetector) run would report — at the cost
//! of touching only the LHS groups an edit actually lands in.
//!
//! Three entry points mirror the maintenance lifecycle:
//!
//! * [`IncrementalDetector::detect_insertions`] — a non-mutating preview:
//!   the violations of `current ∪ batch` that involve at least one batch
//!   tuple. Single-tuple (`QC`) violations are checked on the batch alone;
//!   multi-tuple (`QV`) groups combine the batch **with itself** and with
//!   the current rows fetched through the index.
//! * [`IncrementalDetector::detect_deletions`] — the deletion-side preview:
//!   the currently-reported violations that deleting the batch would
//!   *resolve* (deletions never create violations, so the interesting
//!   question is what they clean up).
//! * [`IncrementalDetector::apply_batch`] — full batched maintenance: apply
//!   a mixed insert/delete batch to the owned instance, update the indexes
//!   and violation state group-locally, and return the complete report of
//!   the *new* instance — identical to re-detecting from scratch.
//!
//! The engine does not require the instance to be clean: construction scans
//! the initial relation once and carries any pre-existing violations forward.

use crate::report::Violations;
use cfd_core::Cfd;
use cfd_relation::{
    project_attrs, project_cols, Index, Relation, RelationError, Schema, Tuple, ValueId,
};
use std::collections::{HashMap, HashSet};

/// One edit of a mixed maintenance batch (see
/// [`IncrementalDetector::apply_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Append a tuple to the instance.
    Insert(Tuple),
    /// Remove one occurrence of an identical tuple (bag semantics). Deleting
    /// a tuple with no live occurrence is a no-op.
    Delete(Tuple),
}

/// Per-CFD incremental state: the LHS index plus the current violation
/// summary, both maintained group-locally under edits.
#[derive(Debug)]
struct CfdState {
    /// LHS-key → live row slots, kept in sync via `insert_row`/`remove_row`.
    index: Index,
    /// Memoized "does this LHS key match some pattern row" checks (a key's
    /// verdict never changes, the tableau is fixed).
    match_cache: HashMap<Vec<ValueId>, bool>,
    /// Full cell vectors of live `QC`-violating tuples → live occurrence
    /// count. Keys vanish when their count drops to zero.
    qc: HashMap<Vec<ValueId>, usize>,
    /// LHS keys currently having more than one distinct `Y` projection among
    /// live, pattern-matched rows.
    violating_keys: HashSet<Vec<ValueId>>,
}

/// Dead-slot floor below which [`IncrementalDetector`] never compacts:
/// keeps short streams free of rebuild churn while still bounding a
/// long-running engine's memory to `O(live)`.
const COMPACT_MIN_DEAD: usize = 1024;

/// Incremental detection engine owning the evolving instance.
#[derive(Debug)]
pub struct IncrementalDetector {
    /// The slot store: a columnar [`Relation`] holding every slot ever
    /// appended (live and dead); cells are read through its column slices.
    store: Relation,
    /// Liveness per slot; slots are append-only within a batch, so index
    /// posting lists stay valid without renumbering. When dead slots
    /// outnumber live ones (past [`COMPACT_MIN_DEAD`]), `apply_batch`
    /// compacts: live rows are gathered column-wise into a fresh store and
    /// all per-CFD state is rebuilt, so memory tracks the live size rather
    /// than total inserts ever seen.
    alive: Vec<bool>,
    live: usize,
    /// Full cell vector → live slots, for bag-semantics deletion by value.
    by_value: HashMap<Vec<ValueId>, Vec<usize>>,
    cfds: Vec<Cfd>,
    states: Vec<CfdState>,
}

impl IncrementalDetector {
    /// Builds the engine over an initial instance, indexing it once per CFD
    /// and computing its current violation state. The instance does **not**
    /// have to be clean; pre-existing violations are reported alongside
    /// stream-induced ones. The relation is taken over as the engine's slot
    /// store — no copy (this is also the compaction path).
    pub fn new(base: Relation, cfds: Vec<Cfd>) -> Self {
        let indexes: Vec<Index> = cfds.iter().map(|c| base.build_index(c.lhs())).collect();
        let mut by_value: HashMap<Vec<ValueId>, Vec<usize>> = HashMap::new();
        for (slot, row) in base.iter() {
            by_value.entry(row.to_ids()).or_default().push(slot);
        }
        let live = base.len();
        let states = cfds
            .iter()
            .zip(indexes)
            .map(|(cfd, index)| {
                let mut match_cache = HashMap::new();
                let mut qc: HashMap<Vec<ValueId>, usize> = HashMap::new();
                // Columnar QC pass: only the X ∪ Y columns are read; the
                // full cell vector is materialized for violators only.
                let xcols = base.columns_for(cfd.lhs());
                let ycols = base.columns_for(cfd.rhs());
                for i in 0..base.len() {
                    let x = project_cols(&xcols, i);
                    let y = project_cols(&ycols, i);
                    if qc_violates_ids(cfd, &x, &y) {
                        // wslint: allow(panic_path, "i < base.len() loop bound makes row(i) infallible")
                        let cells = base.row(i).expect("row in range").to_ids();
                        *qc.entry(cells).or_insert(0) += 1;
                    }
                }
                let mut violating_keys = HashSet::new();
                for (key, slots) in index.iter() {
                    let matched = *match_cache
                        .entry(key.clone())
                        .or_insert_with(|| cfd.tableau().iter().any(|p| p.lhs_matches_ids(key)));
                    if matched && distinct_y_exceeds_one(&ycols, slots.iter().copied()) {
                        violating_keys.insert(key.clone());
                    }
                }
                CfdState {
                    index,
                    match_cache,
                    qc,
                    violating_keys,
                }
            })
            .collect();
        IncrementalDetector {
            store: base,
            alive: vec![true; live],
            live,
            by_value,
            cfds,
            states,
        }
    }

    /// The CFDs being enforced.
    pub fn cfds(&self) -> &[Cfd] {
        &self.cfds
    }

    /// Number of live tuples in the maintained instance.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the maintained instance is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The schema of the maintained instance.
    pub fn schema(&self) -> &Schema {
        self.store.schema()
    }

    /// The complete violation report of the current instance — what a
    /// from-scratch [`DirectDetector::detect_set`](crate::DirectDetector)
    /// over [`IncrementalDetector::current_relation`] would return.
    pub fn violations(&self) -> Violations {
        let mut out = Violations::new();
        for state in &self.states {
            for cells in state.qc.keys() {
                out.add_constant_violation(cells.iter().map(|id| id.resolve().clone()).collect());
            }
            for key in &state.violating_keys {
                out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
            }
        }
        out
    }

    /// Materializes the current instance (live rows, insertion order) by a
    /// column-wise gather of the live slots. Meant for audits and
    /// differential tests; detection itself never needs it.
    pub fn current_relation(&self) -> Relation {
        let keep: Vec<usize> = self
            .alive
            .iter()
            .enumerate()
            .filter_map(|(slot, &a)| a.then_some(slot))
            .collect();
        self.store.gather_rows(&keep)
    }

    /// Detects all violations of `current ∪ batch` that involve at least one
    /// batch tuple, without modifying the engine. Conflicts **among batch
    /// tuples** are reported the same as batch-vs-current conflicts: the
    /// group a batch tuple lands in is evaluated over the union.
    ///
    /// Batch tuples must have the instance's arity.
    pub fn detect_insertions(&self, batch: &[Tuple]) -> Violations {
        let mut out = Violations::new();
        for (cfd, state) in self.cfds.iter().zip(&self.states) {
            let lhs = cfd.lhs();
            let rhs = cfd.rhs();

            // Single-tuple (QC-style) violations among the inserted tuples.
            for tuple in batch {
                if qc_violates(cfd, tuple) {
                    out.add_constant_violation(tuple.to_values());
                }
            }

            // Multi-tuple (QV-style) violations: group the batch by LHS
            // value, keep only groups matching some pattern, and union each
            // group with itself and with the live rows sharing that LHS
            // value (via the maintained index, projected straight off the
            // store's Y columns).
            let rhs_cols = self.store.columns_for(rhs);
            let mut groups: HashMap<Vec<ValueId>, Vec<&Tuple>> = HashMap::new();
            for tuple in batch {
                groups
                    .entry(tuple.project_ids(lhs))
                    .or_default()
                    .push(tuple);
            }
            for (key, members) in groups {
                if !cfd.tableau().iter().any(|p| p.lhs_matches_ids(&key)) {
                    continue;
                }
                let mut y_projections: HashSet<Vec<ValueId>> =
                    members.iter().map(|t| t.project_ids(rhs)).collect();
                for &slot in state.index.lookup_ids(&key) {
                    y_projections.insert(project_cols(&rhs_cols, slot));
                }
                if y_projections.len() > 1 {
                    out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
                }
            }
        }
        out
    }

    /// The violations of the current instance that deleting `batch` (bag
    /// semantics — one occurrence per listed tuple) would **resolve**,
    /// without modifying the engine: the set difference between the current
    /// report and the report of the shrunken instance. Deletions never
    /// create violations, so this preview is the deletion-side answer to
    /// [`IncrementalDetector::detect_insertions`].
    ///
    /// Reports are merged across CFDs, and the difference is taken on the
    /// *merged* reports: an item only counts as resolved when no CFD still
    /// produces it afterwards (two CFDs sharing an LHS can report the same
    /// key — resolving it for one of them resolves nothing).
    pub fn detect_deletions(&self, batch: &[Tuple]) -> Violations {
        // How many occurrences of each exact tuple the batch removes.
        let mut del_counts: HashMap<Vec<ValueId>, usize> = HashMap::new();
        for tuple in batch {
            *del_counts.entry(tuple.ids().to_vec()).or_insert(0) += 1;
        }
        // Clamp to the live population (deleting an absent tuple is a no-op).
        for (cells, count) in del_counts.iter_mut() {
            let live = self.by_value.get(cells).map_or(0, Vec::len);
            *count = (*count).min(live);
        }

        // Simulate the merged report of `current \ batch`: per CFD, every
        // state entry survives unless the deletions kill it. Only groups the
        // batch touches need re-evaluation; the rest carry over.
        let mut after = Violations::new();
        for (cfd, state) in self.cfds.iter().zip(&self.states) {
            let lhs = cfd.lhs();
            let rhs = cfd.rhs();

            // QC entries survive while live occurrences remain.
            for cells in state.qc.keys() {
                let deleted = del_counts.get(cells).copied().unwrap_or(0);
                let live = self.by_value.get(cells).map_or(0, Vec::len);
                if live > deleted {
                    after.add_constant_violation(
                        cells.iter().map(|id| id.resolve().clone()).collect(),
                    );
                }
            }

            // Violating groups: recompute the touched ones with the deleted
            // occurrences subtracted; untouched ones stay violating.
            let rhs_cols = self.store.columns_for(rhs);
            let mut touched: HashSet<Vec<ValueId>> = HashSet::new();
            for (cells, &deleted) in &del_counts {
                if deleted > 0 {
                    touched.insert(project_attrs(cells, lhs));
                }
            }
            for key in &state.violating_keys {
                let still_violating = if touched.contains(key) {
                    let mut y_counts: HashMap<Vec<ValueId>, usize> = HashMap::new();
                    for &slot in state.index.lookup_ids(key) {
                        *y_counts.entry(project_cols(&rhs_cols, slot)).or_insert(0) += 1;
                    }
                    for (cells, &deleted) in &del_counts {
                        if deleted > 0 && project_attrs(cells, lhs) == *key {
                            if let Some(c) = y_counts.get_mut(&project_attrs(cells, rhs)) {
                                *c = c.saturating_sub(deleted);
                            }
                        }
                    }
                    y_counts.values().filter(|&&c| c > 0).count() > 1
                } else {
                    true
                };
                if still_violating {
                    after.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
                }
            }
        }

        // Resolved = current merged report − simulated merged report.
        let before = self.violations();
        let mut out = Violations::new();
        for t in before.constant_violations() {
            if !after.constant_violations().contains(t) {
                out.add_constant_violation(t.clone());
            }
        }
        for k in before.multi_tuple_keys() {
            if !after.multi_tuple_keys().contains(k) {
                out.add_multi_tuple_key(k.clone());
            }
        }
        out
    }

    /// Applies a mixed insert/delete batch to the owned instance, updating
    /// the per-CFD indexes and violation state group-locally, and returns
    /// the complete violation report of the **new** instance (equal to a
    /// from-scratch detection run — including conflicts created entirely
    /// within this batch).
    ///
    /// Errors (leaving the engine untouched) if any tuple's arity differs
    /// from the instance schema. Deleting a tuple with no live occurrence is
    /// a no-op.
    ///
    /// The state update itself is group-local (`O(batch)` plus the touched
    /// groups); materializing the returned report costs `O(current
    /// violations)`. Streams that keep heavily-dirty instances and don't
    /// need a report per batch can ignore the return value — the next
    /// [`IncrementalDetector::violations`] call produces the same report on
    /// demand.
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<Violations, RelationError> {
        let arity = self.store.schema().arity();
        for op in ops {
            let t = match op {
                BatchOp::Insert(t) | BatchOp::Delete(t) => t,
            };
            if t.arity() != arity {
                return Err(RelationError::ArityMismatch {
                    expected: arity,
                    got: t.arity(),
                });
            }
        }

        // Per-CFD set of LHS keys whose group membership changed.
        let mut touched: Vec<HashSet<Vec<ValueId>>> =
            self.states.iter().map(|_| HashSet::new()).collect();

        for op in ops {
            match op {
                BatchOp::Insert(tuple) => {
                    let slot = self.store.len();
                    self.store
                        .push_ids(tuple.ids())
                        // wslint: allow(panic_path, "apply_batch validates every op's arity before any op mutates the store")
                        .expect("batch arity validated above");
                    self.alive.push(true);
                    self.live += 1;
                    self.by_value
                        .entry(tuple.ids().to_vec())
                        .or_default()
                        .push(slot);
                    for ((cfd, state), touched) in
                        self.cfds.iter().zip(&mut self.states).zip(&mut touched)
                    {
                        state.index.insert_row(slot, tuple.ids());
                        touched.insert(tuple.project_ids(cfd.lhs()));
                        if qc_violates(cfd, tuple) {
                            *state.qc.entry(tuple.ids().to_vec()).or_insert(0) += 1;
                        }
                    }
                }
                BatchOp::Delete(tuple) => {
                    let cells = tuple.ids().to_vec();
                    let Some(slot) = self.by_value.get_mut(&cells).and_then(Vec::pop) else {
                        continue; // no live occurrence: no-op
                    };
                    if self.by_value.get(&cells).is_some_and(Vec::is_empty) {
                        self.by_value.remove(&cells);
                    }
                    self.alive[slot] = false;
                    self.live -= 1;
                    for ((cfd, state), touched) in
                        self.cfds.iter().zip(&mut self.states).zip(&mut touched)
                    {
                        state.index.remove_row(slot, tuple.ids());
                        touched.insert(tuple.project_ids(cfd.lhs()));
                        if qc_violates(cfd, tuple) {
                            if let Some(count) = state.qc.get_mut(&cells) {
                                *count -= 1;
                                if *count == 0 {
                                    state.qc.remove(&cells);
                                }
                            }
                        }
                    }
                }
            }
        }

        // Re-evaluate only the touched groups.
        for ((cfd, state), touched) in self.cfds.iter().zip(&mut self.states).zip(&touched) {
            let rhs_cols = self.store.columns_for(cfd.rhs());
            for key in touched {
                let matched = *state
                    .match_cache
                    .entry(key.clone())
                    .or_insert_with(|| cfd.tableau().iter().any(|p| p.lhs_matches_ids(key)));
                if !matched {
                    continue;
                }
                let slots = state.index.lookup_ids(key).iter().copied();
                if distinct_y_exceeds_one(&rhs_cols, slots) {
                    state.violating_keys.insert(key.clone());
                } else {
                    state.violating_keys.remove(key);
                }
            }
        }

        self.maybe_compact();
        Ok(self.violations())
    }

    /// Rebuilds the engine over the live rows when dead slots dominate,
    /// bounding memory to `O(live)` over arbitrarily long streams. Amortized
    /// cost: a compaction scans `O(live)` rows and is triggered only after
    /// at least as many deletions, and the rebuilt state is identical
    /// (construction and maintenance compute the same summaries), so
    /// reports are unaffected.
    fn maybe_compact(&mut self) {
        let dead = self.store.len() - self.live;
        if dead <= self.live.max(COMPACT_MIN_DEAD) {
            return;
        }
        // Column-wise gather of the live slots into a fresh store (u32
        // copies, no per-row allocation); the rebuild takes it over without
        // further copying.
        let rel = self.current_relation();
        let cfds = std::mem::take(&mut self.cfds);
        *self = IncrementalDetector::new(rel, cfds);
    }
}

/// Whether `tuple` alone violates some pattern row of `cfd` (the `QC` check).
fn qc_violates(cfd: &Cfd, tuple: &Tuple) -> bool {
    let x = tuple.project_ids(cfd.lhs());
    let y = tuple.project_ids(cfd.rhs());
    qc_violates_ids(cfd, &x, &y)
}

/// The `QC` check on already-projected `X`/`Y` cell ids.
fn qc_violates_ids(cfd: &Cfd, x: &[ValueId], y: &[ValueId]) -> bool {
    cfd.tableau()
        .iter()
        .any(|p| p.lhs_matches_ids(x) && !p.rhs_matches_ids(y))
}

/// Whether the rows at `slots` have more than one distinct `Y` projection
/// (early exit at the second distinct value), read straight off the
/// pre-gathered `Y` column slices (`rhs_cols` — gathered once per CFD by the
/// caller, since the columns are invariant across the keys of one pass).
fn distinct_y_exceeds_one(rhs_cols: &[&[ValueId]], slots: impl Iterator<Item = usize>) -> bool {
    let mut first: Option<Vec<ValueId>> = None;
    for slot in slots {
        let y = project_cols(rhs_cols, slot);
        match &first {
            None => first = Some(y),
            Some(seen) => {
                if *seen != y {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use crate::direct::DirectDetector;
    use cfd_datagen::cust::{cust_instance, cust_schema, phi2, phi3_with_fd};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::Value;
    use std::sync::Arc;

    fn tuple(values: &[&str]) -> Tuple {
        Tuple::new(values.iter().map(|s| Value::from(*s)).collect())
    }

    /// A cust base instance that satisfies ϕ2 (Fig. 1 with t1/t2's city fixed).
    fn clean_base() -> Relation {
        let mut rel = cust_instance();
        let ct = cust_schema().resolve("CT").unwrap();
        rel.set_value(0, ct, Value::from("MH"));
        rel.set_value(1, ct, Value::from("MH"));
        rel
    }

    #[test]
    fn clean_insertions_report_nothing() {
        let detector = IncrementalDetector::new(clean_base(), vec![phi2(), phi3_with_fd()]);
        let batch = vec![tuple(&[
            "01", "215", "5555555", "Deb", "Oak Ave.", "PHI", "02394",
        ])];
        assert!(detector.detect_insertions(&batch).is_clean());
        assert_eq!(detector.cfds().len(), 2);
        assert!(detector.violations().is_clean());
    }

    #[test]
    fn constant_violation_in_the_batch_is_caught() {
        let detector = IncrementalDetector::new(clean_base(), vec![phi2()]);
        // Area code 908 but city NYC: violates the (01, 908, _ ‖ _, MH, _) row.
        let bad = tuple(&["01", "908", "9999999", "Eve", "Pine St.", "NYC", "07974"]);
        let report = detector.detect_insertions(std::slice::from_ref(&bad));
        assert_eq!(report.constant_violations().len(), 1);
        assert!(report.multi_tuple_keys().is_empty());
    }

    #[test]
    fn conflict_between_batch_and_base_is_caught() {
        let detector = IncrementalDetector::new(clean_base(), vec![phi3_with_fd()]);
        // Same (CC, AC) as Ian but a different city: a multi-tuple violation
        // that only exists in the combined instance.
        let bad = tuple(&["44", "131", "7777777", "Una", "Low Rd.", "GLA", "G1"]);
        let report = detector.detect_insertions(std::slice::from_ref(&bad));
        assert_eq!(report.multi_tuple_keys().len(), 1);
        assert_eq!(
            report.multi_tuple_keys().iter().next().unwrap(),
            &vec![Value::from("44"), Value::from("131")]
        );
    }

    /// Regression pin for the within-batch insertion path: two batch tuples
    /// that conflict only with *each other* (their group has no base rows)
    /// must be reported, both by the preview and by `apply_batch`. An
    /// implementation that checks each inserted tuple against the pre-batch
    /// state alone misses this group.
    #[test]
    fn conflict_within_the_batch_is_caught() {
        let base = clean_base();
        let batch = vec![
            tuple(&["49", "030", "1", "Ann", "A St.", "BER", "10115"]),
            tuple(&["49", "030", "2", "Bob", "B St.", "MUC", "80331"]),
        ];
        let expected_key = vec![Value::from("49"), Value::from("030")];

        let detector = IncrementalDetector::new(base.clone(), vec![phi3_with_fd()]);
        let preview = detector.detect_insertions(&batch);
        assert_eq!(preview.multi_tuple_keys().len(), 1);
        assert_eq!(
            preview.multi_tuple_keys().iter().next().unwrap(),
            &expected_key
        );

        let mut engine = IncrementalDetector::new(base, vec![phi3_with_fd()]);
        let applied = engine
            .apply_batch(
                &batch
                    .iter()
                    .cloned()
                    .map(BatchOp::Insert)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
        assert_eq!(applied.multi_tuple_keys().len(), 1);
        assert_eq!(
            applied.multi_tuple_keys().iter().next().unwrap(),
            &expected_key
        );
    }

    #[test]
    fn incremental_matches_full_detection_on_the_combined_instance() {
        // Build a clean tax base, a noisy batch, and compare against running
        // the full SQL detector on base ∪ batch.
        let base = TaxGenerator::new(TaxConfig {
            size: 600,
            noise_percent: 0.0,
            seed: 3,
        })
        .generate()
        .relation;
        let batch_rel = TaxGenerator::new(TaxConfig {
            size: 80,
            noise_percent: 20.0,
            seed: 4,
        })
        .generate()
        .relation;
        let batch: Vec<Tuple> = batch_rel.to_tuples();
        let cfds = vec![
            CfdWorkload::new(1).zip_state_full(),
            CfdWorkload::new(1).single(EmbeddedFd::AreaToCity, 200, 100.0),
        ];

        let incremental =
            IncrementalDetector::new(base.clone(), cfds.clone()).detect_insertions(&batch);

        let mut combined = base;
        for t in &batch {
            combined.push(t.clone()).unwrap();
        }
        let full = Detector::new()
            .detect_set(&cfds, Arc::new(combined))
            .unwrap();

        // The base is clean, so every full-detection finding involves the
        // batch and must be found incrementally, and vice versa.
        assert_eq!(incremental, full);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut detector = IncrementalDetector::new(clean_base(), vec![phi2(), phi3_with_fd()]);
        assert!(detector.detect_insertions(&[]).is_clean());
        assert!(detector.detect_deletions(&[]).is_clean());
        assert!(detector.apply_batch(&[]).unwrap().is_clean());
    }

    #[test]
    fn construction_reports_preexisting_violations() {
        // The unfixed Fig. 1 instance violates ϕ2 on t1 and t2.
        let engine = IncrementalDetector::new(cust_instance(), vec![phi2()]);
        let report = engine.violations();
        assert_eq!(report.constant_violations().len(), 2);
        assert_eq!(
            report,
            DirectDetector::new().detect(&phi2(), &cust_instance())
        );
    }

    #[test]
    fn apply_batch_maintains_the_full_report() {
        let schema = cust_schema();
        let mut engine = IncrementalDetector::new(clean_base(), vec![phi2(), phi3_with_fd()]);
        // Insert a conflicting pair, then delete one of them again.
        let a = tuple(&["49", "030", "1", "Ann", "A St.", "BER", "10115"]);
        let b = tuple(&["49", "030", "2", "Bob", "B St.", "MUC", "80331"]);
        let after_insert = engine
            .apply_batch(&[BatchOp::Insert(a), BatchOp::Insert(b.clone())])
            .unwrap();
        assert_eq!(after_insert.multi_tuple_keys().len(), 1);
        assert_eq!(engine.len(), clean_base().len() + 2);

        let after_delete = engine.apply_batch(&[BatchOp::Delete(b)]).unwrap();
        assert!(after_delete.is_clean(), "deleting Bob resolves the group");
        assert_eq!(engine.len(), clean_base().len() + 1);

        // The maintained report always equals a from-scratch run.
        assert_eq!(engine.schema(), &schema);
        let from_scratch =
            DirectDetector::new().detect_set(engine.cfds(), &engine.current_relation());
        assert_eq!(engine.violations(), from_scratch);
    }

    #[test]
    fn detect_deletions_previews_resolved_violations() {
        // Dirty base: Fig. 1's t1/t2 violate ϕ2 (both are QC violations with
        // distinct cells, and no QV group).
        let engine = IncrementalDetector::new(cust_instance(), vec![phi2()]);
        let t1 = cust_instance().row(0).unwrap().to_tuple();
        // Deleting t1 resolves its QC violation (its only occurrence)…
        let resolved = engine.detect_deletions(std::slice::from_ref(&t1));
        assert_eq!(resolved.constant_violations().len(), 1);
        // …but the engine itself is unchanged (preview only).
        assert_eq!(engine.violations().constant_violations().len(), 2);
        // Deleting an unrelated clean tuple resolves nothing.
        let t6 = cust_instance().row(5).unwrap().to_tuple();
        assert!(engine
            .detect_deletions(std::slice::from_ref(&t6))
            .is_clean());
        // Deleting a tuple that is not in the instance is a no-op.
        let ghost = tuple(&["00", "000", "0", "No", "One", "NW", "00000"]);
        assert!(engine
            .detect_deletions(std::slice::from_ref(&ghost))
            .is_clean());
    }

    #[test]
    fn detect_deletions_keeps_groups_with_remaining_conflicts() {
        let schema = cust_schema();
        let mut rel = Relation::new(schema);
        // Three tuples in one (CC, AC) group with two distinct cities: the
        // group stays violating unless the odd one out is removed.
        rel.push(tuple(&["49", "030", "1", "Ann", "A St.", "BER", "10115"]))
            .unwrap();
        rel.push(tuple(&["49", "030", "2", "Bob", "B St.", "BER", "10115"]))
            .unwrap();
        rel.push(tuple(&["49", "030", "3", "Cid", "C St.", "MUC", "80331"]))
            .unwrap();
        let engine = IncrementalDetector::new(rel.clone(), vec![phi3_with_fd()]);
        assert_eq!(engine.violations().multi_tuple_keys().len(), 1);
        // Deleting Ann leaves Bob vs Cid conflicting: nothing resolved.
        assert!(engine
            .detect_deletions(&[rel.row(0).unwrap().to_tuple()])
            .is_clean());
        // Deleting Cid resolves the group.
        let resolved = engine.detect_deletions(&[rel.row(2).unwrap().to_tuple()]);
        assert_eq!(resolved.multi_tuple_keys().len(), 1);
        // Deleting Ann *and* Bob also resolves it (one distinct Y remains).
        let resolved = engine.detect_deletions(&[
            rel.row(0).unwrap().to_tuple(),
            rel.row(1).unwrap().to_tuple(),
        ]);
        assert_eq!(resolved.multi_tuple_keys().len(), 1);
    }

    /// Regression pin: two CFDs sharing an LHS report the *same* key, so the
    /// resolved-set must be computed on the merged report — resolving the
    /// group for one CFD while the other still violates resolves nothing.
    #[test]
    fn deletion_preview_is_cross_cfd_on_shared_lhs_keys() {
        use cfd_relation::Schema;
        let schema = Schema::builder("r")
            .text("A")
            .text("B")
            .text("C")
            .text("D")
            .build();
        let to_c = Cfd::fd(schema.clone(), ["A", "B"], ["C"]).unwrap();
        let to_d = Cfd::fd(schema.clone(), ["A", "B"], ["D"]).unwrap();
        let rows: Vec<Tuple> = [
            ["a", "b", "x", "p"],
            ["a", "b", "y", "q"],
            ["a", "b", "x", "r"],
        ]
        .iter()
        .map(|r| Tuple::new(r.iter().map(|s| Value::from(*s)).collect()))
        .collect();
        let rel = Relation::from_rows(schema, rows.clone()).unwrap();
        let mut engine = IncrementalDetector::new(rel, vec![to_c, to_d]);
        assert_eq!(engine.violations().multi_tuple_keys().len(), 1);

        // Deleting (a,b,y,q) collapses C to {x} but leaves D = {p,r}: the
        // key [a,b] is still reported afterwards, so nothing is resolved.
        let preview = engine.detect_deletions(std::slice::from_ref(&rows[1]));
        assert!(
            preview.is_clean(),
            "key still violating under the second CFD must not count as resolved"
        );
        let applied = engine
            .apply_batch(&[BatchOp::Delete(rows[1].clone())])
            .unwrap();
        assert_eq!(applied.multi_tuple_keys().len(), 1);

        // Also deleting (a,b,x,r) collapses D to {p}: now the key resolves.
        let preview = engine.detect_deletions(std::slice::from_ref(&rows[2]));
        assert_eq!(preview.multi_tuple_keys().len(), 1);
    }

    #[test]
    fn deleting_one_of_two_identical_qc_violators_resolves_nothing() {
        let mut rel = cust_instance();
        let dup = rel.row(0).unwrap().to_tuple();
        rel.push(dup.clone()).unwrap();
        let mut engine = IncrementalDetector::new(rel, vec![phi2()]);
        // t1 appears twice; deleting one occurrence keeps the QC entry live.
        assert!(engine
            .detect_deletions(std::slice::from_ref(&dup))
            .constant_violations()
            .is_empty());
        let report = engine.apply_batch(&[BatchOp::Delete(dup.clone())]).unwrap();
        assert_eq!(report.constant_violations().len(), 2);
        // Deleting the second occurrence resolves it.
        let report = engine.apply_batch(&[BatchOp::Delete(dup)]).unwrap();
        assert_eq!(report.constant_violations().len(), 1);
    }

    #[test]
    fn long_streams_compact_to_live_size() {
        let mut engine = IncrementalDetector::new(clean_base(), vec![phi2(), phi3_with_fd()]);
        let live_target = engine.len();
        // Churn far past the compaction floor: every batch inserts and then
        // deletes the same tuple, so the live size never changes.
        let t = tuple(&["01", "215", "5555555", "Deb", "Oak Ave.", "PHI", "02394"]);
        for _ in 0..(3 * COMPACT_MIN_DEAD) {
            let report = engine
                .apply_batch(&[BatchOp::Insert(t.clone()), BatchOp::Delete(t.clone())])
                .unwrap();
            assert!(report.is_clean());
        }
        assert_eq!(engine.len(), live_target);
        assert!(
            engine.store.len() <= live_target + 2 * COMPACT_MIN_DEAD + 2,
            "slot store must be bounded by compaction, got {} slots for {} live rows",
            engine.store.len(),
            live_target
        );
        // Post-compaction state still answers exactly like from scratch.
        let report = engine.apply_batch(&[BatchOp::Insert(t)]).unwrap();
        assert_eq!(
            report,
            DirectDetector::new().detect_set(engine.cfds(), &engine.current_relation())
        );
    }

    #[test]
    fn arity_mismatch_is_rejected_before_any_mutation() {
        let mut engine = IncrementalDetector::new(clean_base(), vec![phi2()]);
        let before = engine.len();
        let err = engine
            .apply_batch(&[
                BatchOp::Insert(tuple(&["01", "215", "1", "Ok", "St.", "PHI", "02394"])),
                BatchOp::Insert(Tuple::new(vec![Value::from("short")])),
            ])
            .unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        assert_eq!(engine.len(), before, "failed batch must not be applied");
    }
}
