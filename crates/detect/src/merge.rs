//! Merging the tableaux of multiple CFDs (Section 4.2.1, Figs. 6–7).
//!
//! To validate a set `Σ` of CFDs with a single query pair, their tableaux are
//! made union-compatible: the tableau of each CFD is split into an `X` part
//! and a `Y` part, each part is extended to the union of the `X` (resp. `Y`)
//! attributes across `Σ` by padding missing attributes with the don't-care
//! symbol `@`, and every pattern row receives a distinct id linking its two
//! halves.

use cfd_core::{Cfd, CfdError, PatternValue, Result};
use cfd_relation::{Relation, Schema, Tuple, Value};

/// The merged `T^X_Σ` / `T^Y_Σ` tableaux of a set of CFDs.
#[derive(Debug, Clone)]
pub struct MergedTableaux {
    /// Union of the LHS attributes of all CFDs, in schema order.
    x_attrs: Vec<String>,
    /// Union of the RHS attributes of all CFDs, in schema order.
    y_attrs: Vec<String>,
    /// One row per pattern tuple: its id and its X-side cells.
    x_rows: Vec<(usize, Vec<PatternValue>)>,
    /// One row per pattern tuple: its id and its Y-side cells.
    y_rows: Vec<(usize, Vec<PatternValue>)>,
}

impl MergedTableaux {
    /// Merges the tableaux of `cfds`. All CFDs must share a schema and must
    /// not already contain `@` cells.
    pub fn build(cfds: &[Cfd]) -> Result<MergedTableaux> {
        let Some(first) = cfds.first() else {
            return Err(CfdError::EmptyTableau);
        };
        let schema = first.schema();
        for cfd in cfds {
            if cfd.schema() != schema {
                return Err(CfdError::MixedSchemas {
                    left: schema.name().to_owned(),
                    right: cfd.schema().name().to_owned(),
                });
            }
            if cfd.has_dont_care() {
                return Err(CfdError::DontCareNotAllowed);
            }
        }

        // Union of X and Y attributes, in first-appearance order across the
        // CFDs' own attribute lists. For a single CFD this reproduces its
        // declared X/Y order exactly, so the merged queries report the same
        // multi-tuple keys (byte for byte) as the per-CFD paths; for sets it
        // is still deterministic in the input order.
        let mut x_ids: Vec<_> = Vec::new();
        for a in cfds.iter().flat_map(|c| c.lhs()) {
            if !x_ids.contains(a) {
                x_ids.push(*a);
            }
        }
        let mut y_ids: Vec<_> = Vec::new();
        for a in cfds.iter().flat_map(|c| c.rhs()) {
            if !y_ids.contains(a) {
                y_ids.push(*a);
            }
        }
        let x_attrs: Vec<String> = x_ids
            .iter()
            .map(|a| schema.attr_name(*a).to_owned())
            .collect();
        let y_attrs: Vec<String> = y_ids
            .iter()
            .map(|a| schema.attr_name(*a).to_owned())
            .collect();

        let mut x_rows = Vec::new();
        let mut y_rows = Vec::new();
        let mut id = 0usize;
        for cfd in cfds {
            for row in cfd.tableau().iter() {
                id += 1;
                let mut x_cells = vec![PatternValue::DontCare; x_ids.len()];
                for (attr, cell) in cfd.lhs().iter().zip(row.lhs()) {
                    // wslint: allow(panic_path, "x_ids is the union of every CFD's LHS, so the position exists")
                    let pos = x_ids.iter().position(|a| a == attr).expect("attr in union");
                    x_cells[pos] = *cell;
                }
                let mut y_cells = vec![PatternValue::DontCare; y_ids.len()];
                for (attr, cell) in cfd.rhs().iter().zip(row.rhs()) {
                    // wslint: allow(panic_path, "y_ids is the union of every CFD's RHS, so the position exists")
                    let pos = y_ids.iter().position(|a| a == attr).expect("attr in union");
                    y_cells[pos] = *cell;
                }
                x_rows.push((id, x_cells));
                y_rows.push((id, y_cells));
            }
        }
        Ok(MergedTableaux {
            x_attrs,
            y_attrs,
            x_rows,
            y_rows,
        })
    }

    /// The union of LHS attribute names.
    pub fn x_attrs(&self) -> &[String] {
        &self.x_attrs
    }

    /// The union of RHS attribute names.
    pub fn y_attrs(&self) -> &[String] {
        &self.y_attrs
    }

    /// Number of merged pattern rows.
    pub fn len(&self) -> usize {
        self.x_rows.len()
    }

    /// Whether the merged tableau has no rows.
    pub fn is_empty(&self) -> bool {
        self.x_rows.is_empty()
    }

    /// Materializes `T^X_Σ` as a relation named `name`, with an `id` column
    /// followed by the X attributes (Fig. 7(a)).
    pub fn x_relation(&self, name: &str) -> Relation {
        Self::materialize(name, &self.x_attrs, &self.x_rows)
    }

    /// Materializes `T^Y_Σ` as a relation named `name` (Fig. 7(b)). Columns
    /// that also appear in `T^X_Σ` keep their names — the two tableaux are
    /// separate tables, so there is no collision.
    pub fn y_relation(&self, name: &str) -> Relation {
        Self::materialize(name, &self.y_attrs, &self.y_rows)
    }

    /// Materializes the 1:1 join of `T^X_Σ` and `T^Y_Σ` on `id` as a single
    /// relation with `X_`/`Y_`-prefixed columns. The merged detection queries
    /// are executed against this pre-joined form (the join is trivial — one
    /// row per id — and doing it once avoids a quadratic nested loop in the
    /// in-memory executor).
    pub fn joined_relation(&self, name: &str) -> Relation {
        let mut builder = Schema::builder(name).text("id");
        for a in &self.x_attrs {
            builder = builder.text(format!("X_{a}"));
        }
        for a in &self.y_attrs {
            builder = builder.text(format!("Y_{a}"));
        }
        let schema = builder.build();
        let mut rel = Relation::with_capacity(schema, self.x_rows.len());
        for ((id, x_cells), (_, y_cells)) in self.x_rows.iter().zip(&self.y_rows) {
            let mut values = Vec::with_capacity(1 + x_cells.len() + y_cells.len());
            values.push(Value::from(id.to_string()));
            values.extend(x_cells.iter().map(PatternValue::to_value));
            values.extend(y_cells.iter().map(PatternValue::to_value));
            rel.push(Tuple::new(values))
                // wslint: allow(panic_path, "the row is built attribute-by-attribute to this same schema above")
                .expect("joined row matches schema");
        }
        rel
    }

    /// Reconstructs the merged tableau as a single wide CFD over the data
    /// schema (the Fig. 6 view), useful for the semantic cross-checks: its
    /// satisfaction semantics with `@` as "attribute excluded for this row"
    /// coincides with the conjunction of the input CFDs.
    pub fn as_wide_cfd(&self, schema: &Schema) -> Result<Cfd> {
        let lhs = schema.resolve_all(self.x_attrs.iter().map(String::as_str))?;
        let rhs = schema.resolve_all(self.y_attrs.iter().map(String::as_str))?;
        let mut tableau = cfd_core::PatternTableau::new();
        for ((_, x_cells), (_, y_cells)) in self.x_rows.iter().zip(&self.y_rows) {
            tableau.push(cfd_core::PatternTuple::new(
                x_cells.clone(),
                y_cells.clone(),
            ));
        }
        Cfd::from_parts(schema.clone(), lhs, rhs, tableau)
    }

    fn materialize(name: &str, attrs: &[String], rows: &[(usize, Vec<PatternValue>)]) -> Relation {
        let mut builder = Schema::builder(name).text("id");
        for a in attrs {
            builder = builder.text(a.clone());
        }
        let schema = builder.build();
        let mut rel = Relation::with_capacity(schema, rows.len());
        for (id, cells) in rows {
            let mut values = Vec::with_capacity(1 + cells.len());
            values.push(Value::from(id.to_string()));
            values.extend(cells.iter().map(PatternValue::to_value));
            rel.push(Tuple::new(values))
                // wslint: allow(panic_path, "the row is built attribute-by-attribute to this same schema above")
                .expect("merged row matches schema");
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, cust_schema, phi2, phi3, phi3_with_fd, phi5};

    #[test]
    fn fig7_merge_of_phi3_and_phi5() {
        // ϕ3 = ([CC, AC] → [CT]) with 3 rows (incl. the FD row), ϕ5 = ([CT] → [AC]).
        let merged = MergedTableaux::build(&[phi3_with_fd(), phi5()]).unwrap();
        assert_eq!(merged.x_attrs(), &["CC", "AC", "CT"]);
        // First-appearance order: ϕ3's RHS (CT) precedes ϕ5's (AC).
        assert_eq!(merged.y_attrs(), &["CT", "AC"]);
        assert_eq!(merged.len(), 4);

        let tx = merged.x_relation("TX");
        assert_eq!(tx.schema().arity(), 4); // id + CC, AC, CT
                                            // The ϕ5 row has '@' on CC and AC in T^X_Σ (Fig. 7a, id 4).
        let cc = tx.schema().resolve("CC").unwrap();
        let ct = tx.schema().resolve("CT").unwrap();
        assert_eq!(tx.row(3).unwrap()[cc], Value::from("@"));
        assert_eq!(tx.row(3).unwrap()[ct], Value::from("_"));

        let ty = merged.y_relation("TY");
        assert_eq!(ty.schema().arity(), 3); // id + AC, CT
                                            // The ϕ3 constant rows have their city constants in T^Y_Σ and '@' on AC.
        let ac = ty.schema().resolve("AC").unwrap();
        let cty = ty.schema().resolve("CT").unwrap();
        assert_eq!(ty.row(0).unwrap()[ac], Value::from("@"));
        assert_eq!(ty.row(0).unwrap()[cty], Value::from("PHI"));
        assert_eq!(ty.row(1).unwrap()[cty], Value::from("GLA"));
    }

    #[test]
    fn joined_relation_prefixes_columns() {
        let merged = MergedTableaux::build(&[phi3(), phi5()]).unwrap();
        let joined = merged.joined_relation("TXY");
        assert_eq!(joined.len(), 3);
        assert!(joined.schema().resolve("X_CC").is_ok());
        assert!(joined.schema().resolve("Y_CT").is_ok());
        assert!(joined.schema().resolve("X_CT").is_ok());
        assert!(joined.schema().resolve("id").is_ok());
    }

    #[test]
    fn ids_link_x_and_y_halves() {
        let merged = MergedTableaux::build(&[phi2(), phi3()]).unwrap();
        let tx = merged.x_relation("TX");
        let ty = merged.y_relation("TY");
        assert_eq!(tx.len(), ty.len());
        let id_x = tx.schema().resolve("id").unwrap();
        let id_y = ty.schema().resolve("id").unwrap();
        for i in 0..tx.len() {
            assert_eq!(tx.row(i).unwrap()[id_x], ty.row(i).unwrap()[id_y]);
        }
    }

    #[test]
    fn wide_cfd_view_is_equivalent_to_the_conjunction() {
        let schema = cust_schema();
        let cfds = [phi2(), phi3_with_fd()];
        let merged = MergedTableaux::build(&cfds).unwrap();
        let wide = merged.as_wide_cfd(&schema).unwrap();

        // On Fig. 1 (violates ϕ2, satisfies ϕ3): the wide CFD must be violated.
        let rel = cust_instance();
        assert_eq!(
            wide.satisfied_by(&rel),
            cfds.iter().all(|c| c.satisfied_by(&rel)),
        );

        // On a clean single tuple it must be satisfied.
        let mut clean = Relation::new(schema);
        clean
            .push(Tuple::new(
                ["01", "908", "1111111", "Mike", "Tree Ave.", "MH", "07974"]
                    .iter()
                    .map(|s| Value::from(*s))
                    .collect(),
            ))
            .unwrap();
        assert_eq!(
            wide.satisfied_by(&clean),
            cfds.iter().all(|c| c.satisfied_by(&clean)),
        );
    }

    #[test]
    fn build_rejects_empty_and_mixed_schemas() {
        assert!(matches!(
            MergedTableaux::build(&[]),
            Err(CfdError::EmptyTableau)
        ));
        let other_schema = Schema::builder("other").text("CT").text("AC").build();
        let other = Cfd::fd(other_schema, ["CT"], ["AC"]).unwrap();
        assert!(matches!(
            MergedTableaux::build(&[phi3(), other]),
            Err(CfdError::MixedSchemas { .. })
        ));
    }

    #[test]
    fn merged_tableau_size_is_sum_of_inputs() {
        let merged = MergedTableaux::build(&[phi2(), phi3(), phi5()]).unwrap();
        assert_eq!(merged.len(), 3 + 2 + 1);
        assert!(!merged.is_empty());
    }
}
