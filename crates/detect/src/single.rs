//! `QC`/`QV` query generation for a single CFD (Section 4.1, Fig. 5).
//!
//! A CFD's pattern tableau is materialized as an ordinary relation (one
//! column per attribute of the embedded FD, `_` stored as a literal token)
//! and joined with the data relation. The generated queries are therefore
//! bounded by the size of the embedded FD and independent of the tableau's
//! size and contents — the property the paper highlights.

use cfd_core::Cfd;
use cfd_relation::{Relation, Schema, Tuple};
use cfd_sql::ast::{Expr, SelectItem, SelectQuery, TableRef};

/// Alias used for the data relation in generated queries.
pub const DATA_ALIAS: &str = "t";
/// Alias used for the pattern tableau in generated queries.
pub const TABLEAU_ALIAS: &str = "tp";

/// Column names used for the CFD's pattern tableau when stored as a relation:
/// LHS attributes keep their names; RHS attributes that also appear on the
/// LHS get an `__R` suffix (the paper's `t[A_L]` / `t[A_R]` distinction).
pub fn tableau_columns(cfd: &Cfd) -> (Vec<String>, Vec<String>) {
    let lhs: Vec<String> = cfd.lhs_names().iter().map(|s| (*s).to_owned()).collect();
    let rhs: Vec<String> = cfd
        .rhs_names()
        .iter()
        .map(|name| {
            if lhs.iter().any(|l| l == name) {
                format!("{name}__R")
            } else {
                (*name).to_owned()
            }
        })
        .collect();
    (lhs, rhs)
}

/// Materializes the CFD's pattern tableau as a relation named `name`,
/// with `_` (and `@`, for merged tableaux) stored as literal string tokens.
pub fn tableau_relation(cfd: &Cfd, name: &str) -> Relation {
    let (lhs_cols, rhs_cols) = tableau_columns(cfd);
    let mut builder = Schema::builder(name);
    for c in lhs_cols.iter().chain(rhs_cols.iter()) {
        builder = builder.text(c.clone());
    }
    let schema = builder.build();
    let mut rel = Relation::with_capacity(schema, cfd.tableau().len());
    for row in cfd.tableau().iter() {
        let values = row
            .lhs()
            .iter()
            .chain(row.rhs().iter())
            .map(|p| p.to_value())
            .collect::<Vec<_>>();
        rel.push(Tuple::new(values))
            // wslint: allow(panic_path, "the row is projected from the tableau onto this same schema")
            .expect("tableau row matches its schema");
    }
    rel
}

/// The X-side match shorthand `t[Xi] ≍ tp[Xi]`:
/// `(t.Xi = tp.Xi OR tp.Xi = '_' OR tp.Xi = '@')`.
pub fn x_match(data_attr: &str, tableau_col: &str) -> Expr {
    Expr::or(vec![
        Expr::col(DATA_ALIAS, data_attr).eq(Expr::col(TABLEAU_ALIAS, tableau_col)),
        Expr::col(TABLEAU_ALIAS, tableau_col).eq(Expr::str("_")),
        Expr::col(TABLEAU_ALIAS, tableau_col).eq(Expr::str("@")),
    ])
}

/// The Y-side mismatch shorthand `t[Yj] ≭ tp[Yj]`:
/// `(t.Yj <> tp.Yj AND tp.Yj <> '_' AND tp.Yj <> '@')`.
pub fn y_mismatch(data_attr: &str, tableau_col: &str) -> Expr {
    Expr::and(vec![
        Expr::col(DATA_ALIAS, data_attr).ne(Expr::col(TABLEAU_ALIAS, tableau_col)),
        Expr::col(TABLEAU_ALIAS, tableau_col).ne(Expr::str("_")),
        Expr::col(TABLEAU_ALIAS, tableau_col).ne(Expr::str("@")),
    ])
}

/// The `QC` query of Fig. 5: single-tuple (constant) violations.
///
/// ```sql
/// SELECT t.* FROM R t, Tp tp
/// WHERE t[X1] ≍ tp[X1] AND … AND t[Xn] ≍ tp[Xn]
///   AND (t[Y1] ≭ tp[Y1] OR … OR t[Ym] ≭ tp[Ym])
/// ```
pub fn qc_query(cfd: &Cfd, data_name: &str, tableau_name: &str) -> SelectQuery {
    let (lhs_cols, rhs_cols) = tableau_columns(cfd);
    let mut conjuncts: Vec<Expr> = cfd
        .lhs_names()
        .iter()
        .zip(&lhs_cols)
        .map(|(attr, col)| x_match(attr, col))
        .collect();
    let mismatches: Vec<Expr> = cfd
        .rhs_names()
        .iter()
        .zip(&rhs_cols)
        .map(|(attr, col)| y_mismatch(attr, col))
        .collect();
    conjuncts.push(Expr::or(mismatches));
    SelectQuery::new()
        .item(SelectItem::wildcard(DATA_ALIAS))
        .from(TableRef::aliased(data_name, DATA_ALIAS))
        .from(TableRef::aliased(tableau_name, TABLEAU_ALIAS))
        .filter(Expr::and(conjuncts))
}

/// The `QV` query of Fig. 5: multi-tuple violations.
///
/// ```sql
/// SELECT DISTINCT t.X FROM R t, Tp tp
/// WHERE t[X1] ≍ tp[X1] AND … AND t[Xn] ≍ tp[Xn]
/// GROUP BY t.X HAVING COUNT(DISTINCT Y) > 1
/// ```
pub fn qv_query(cfd: &Cfd, data_name: &str, tableau_name: &str) -> SelectQuery {
    let (lhs_cols, _) = tableau_columns(cfd);
    let conjuncts: Vec<Expr> = cfd
        .lhs_names()
        .iter()
        .zip(&lhs_cols)
        .map(|(attr, col)| x_match(attr, col))
        .collect();
    let mut query = SelectQuery::new()
        .distinct()
        .from(TableRef::aliased(data_name, DATA_ALIAS))
        .from(TableRef::aliased(tableau_name, TABLEAU_ALIAS));
    for attr in cfd.lhs_names() {
        query = query
            .item(SelectItem::expr(Expr::col(DATA_ALIAS, attr)))
            .group(Expr::col(DATA_ALIAS, attr));
    }
    let distinct_y: Vec<Expr> = cfd
        .rhs_names()
        .iter()
        .map(|attr| Expr::col(DATA_ALIAS, *attr))
        .collect();
    query
        .filter(Expr::and(conjuncts))
        .having_count_distinct_gt(distinct_y, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_core::Cfd;
    use cfd_datagen::cust::{cust_schema, phi2};
    use cfd_relation::Value;

    #[test]
    fn tableau_relation_stores_tokens() {
        let rel = tableau_relation(&phi2(), "T2");
        assert_eq!(rel.len(), 3);
        assert_eq!(rel.schema().arity(), 6);
        let ct = rel.schema().resolve("CT").unwrap();
        assert_eq!(rel.row(0).unwrap()[ct], Value::from("MH"));
        let pn = rel.schema().resolve("PN").unwrap();
        assert_eq!(rel.row(0).unwrap()[pn], Value::from("_"));
    }

    #[test]
    fn rhs_columns_are_renamed_on_collision() {
        // [CT] -> [CT, AC]: the RHS CT column must be distinguished.
        let cfd = Cfd::builder(cust_schema(), ["CT"], ["CT", "AC"])
            .pattern(["_"], ["_", "_"])
            .build()
            .unwrap();
        let (lhs, rhs) = tableau_columns(&cfd);
        assert_eq!(lhs, vec!["CT"]);
        assert_eq!(rhs, vec!["CT__R", "AC"]);
        let rel = tableau_relation(&cfd, "T");
        assert_eq!(rel.schema().arity(), 3);
        assert!(rel.schema().resolve("CT__R").is_ok());
    }

    #[test]
    fn qc_query_shape_matches_fig5() {
        let sql = qc_query(&phi2(), "cust", "T2").to_string();
        assert!(sql.starts_with("SELECT t.* FROM cust t, T2 tp WHERE"));
        assert!(sql.contains("t.CC = tp.CC OR tp.CC = '_'"));
        assert!(sql.contains("t.CT <> tp.CT AND tp.CT <> '_'"));
        // Query size is bounded by the embedded FD: 3 X-clauses + 3 Y-clauses.
        let q = qc_query(&phi2(), "cust", "T2");
        assert_eq!(q.where_clause.as_ref().unwrap().atom_count(), 3 * 3 + 3 * 3);
    }

    #[test]
    fn qv_query_shape_matches_fig5() {
        let q = qv_query(&phi2(), "cust", "T2");
        let sql = q.to_string();
        assert!(sql.contains("SELECT DISTINCT t.CC, t.AC, t.PN"));
        assert!(sql.contains("GROUP BY t.CC, t.AC, t.PN"));
        assert!(sql.contains("HAVING count(distinct t.STR, t.CT, t.ZIP) > 1"));
        assert!(q.distinct);
        assert_eq!(q.group_by.len(), 3);
    }

    #[test]
    fn query_size_is_independent_of_tableau_size() {
        let small = Cfd::builder(cust_schema(), ["CC", "AC"], ["CT"])
            .pattern(["01", "215"], ["PHI"])
            .build()
            .unwrap();
        let mut builder = Cfd::builder(cust_schema(), ["CC", "AC"], ["CT"]);
        for i in 0..500 {
            builder = builder.pattern(["01", format!("{i:03}").as_str()], ["PHI"]);
        }
        let large = builder.build().unwrap();
        let q_small = qc_query(&small, "cust", "T");
        let q_large = qc_query(&large, "cust", "T");
        assert_eq!(
            q_small.where_clause.unwrap().atom_count(),
            q_large.where_clause.unwrap().atom_count()
        );
        assert_eq!(tableau_relation(&large, "T").len(), 500);
    }

    #[test]
    fn match_shorthands_render_as_expected() {
        assert_eq!(
            x_match("CC", "CC").to_string(),
            "t.CC = tp.CC OR tp.CC = '_' OR tp.CC = '@'"
        );
        assert_eq!(
            y_mismatch("CT", "CT").to_string(),
            "t.CT <> tp.CT AND tp.CT <> '_' AND tp.CT <> '@'"
        );
    }
}
