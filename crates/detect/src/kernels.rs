//! Vectorized columnar scan kernels: the block-at-a-time `QC`+`QV` engine
//! underneath [`DirectDetector`](crate::DirectDetector), the sharded
//! workers, and the adaptive planner.
//!
//! The row-at-a-time scan of the columnar era (`detect_rows` before this
//! module, kept as [`DirectDetector::detect_rowhash`](crate::DirectDetector::detect_rowhash)
//! for benchmarking) paid three per-row costs the struct-of-arrays layout
//! does not require: it materialized the `X` and `Y` projections into
//! scratch vectors, hashed an owned `Vec<ValueId>` key per group probe, and
//! **allocated a fresh key vector for every new LHS group**. The kernels
//! here restructure the scan around [`BLOCK`]-sized chunks of the raw
//! `&[ValueId]` column slices:
//!
//! * **Block key hashing** — the LHS key hash of a whole block is computed
//!   column-major into a reused scratch buffer: one pass per key column
//!   over contiguous `u32`s, not one gather per row.
//! * **Repr-row groups** — a group is represented by the index of its first
//!   row (`repr`), not by a materialized key. The group table maps
//!   `hash → arena chain`, and a probe verifies candidates by comparing the
//!   LHS columns at `repr` against the probe row directly. No key vector is
//!   ever allocated, for no group (the fix for the old per-new-key
//!   allocation), and the distinct-`Y` check compares `Y` columns at two row
//!   indices instead of materializing either projection.
//! * **Constant-prefilter `QC`** — pattern rows whose RHS holds no constant
//!   can never produce a single-tuple violation and are skipped outright;
//!   for the rest, the block's candidate rows are narrowed by scanning the
//!   LHS **constant** columns first (a selection vector per block), so the
//!   full per-row pattern evaluation runs only on rows that already match
//!   every LHS constant.
//! * **Fused same-LHS tableaux** — [`scan_group`] takes *several* CFDs
//!   sharing one LHS attribute list and detects them in a single pass: the
//!   hash, the group probe and the group table are paid once, per-CFD
//!   verdicts live in bitmasks ([`FUSE_MAX`] CFDs per call). This is the
//!   planner's "merged tableaux" execution mode — unlike the SQL merged
//!   plan of Section 4.2 it keeps every CFD's own `QV` key space, so its
//!   report stays byte-identical to the per-CFD paths.
//!
//! All scratch state lives in [`ScanScratch`], which callers reuse across
//! CFDs, blocks and detect calls; cleared containers keep their capacity, so
//! a steady-state scan performs **zero allocations per row and per group**
//! (pinned by the `scratch_reuse_allocates_nothing_in_steady_state` test).
//!
//! Reports are byte-identical to the row-at-a-time scan by construction:
//! [`Violations`] stores ordered sets, so only membership matters, and every
//! verdict below (pattern match, first-`Y` representative, distinct-`Y`
//! trip) mirrors the old scan's group-by-first-occurrence semantics.

use crate::report::Violations;
use cfd_core::{Cfd, PatternTuple};
use cfd_relation::{Relation, ValueId};
use std::collections::HashMap;

/// Rows per scan block: small enough that the per-block scratch (hashes,
/// row ids, selection vectors) stays in L1/L2, large enough to amortize the
/// per-block setup.
pub const BLOCK: usize = 2048;

/// Maximum CFDs one fused [`scan_group`] call accepts (per-CFD verdicts are
/// `u64` bitmasks).
pub const FUSE_MAX: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Arena chain terminator.
const NONE: u32 = u32::MAX;

/// One LHS group of the fused scan: represented by its first row, chained
/// per hash bucket, with per-CFD verdict bits.
#[derive(Debug, Clone, Copy)]
struct GroupEntry {
    /// First row of the group in scan order — the key representative *and*
    /// the first-`Y` representative (the old scan's `OneY` snapshot).
    repr: u32,
    /// Next arena index in this hash bucket's chain ([`NONE`] = end).
    next: u32,
    /// Bit `i` set ⇔ some pattern of CFD `i` matches this LHS key.
    matched: u64,
    /// Bit `i` set ⇔ CFD `i` has seen ≥ 2 distinct `Y` projections here.
    many: u64,
}

/// Reusable scratch state of the vectorized kernels. Construct once, pass
/// to every [`scan_group`] call: cleared maps and vectors keep their
/// capacity, so repeated scans over similar data allocate nothing.
#[derive(Debug, Default)]
pub struct ScanScratch {
    /// Per-block FNV-1a hashes of the LHS key, filled column-major.
    hashes: Vec<u64>,
    /// Per-block global row indices (identity for full scans, gathered for
    /// row subsets).
    rows: Vec<u32>,
    /// `QC` selection vector: block-local positions surviving the constant
    /// prefilter.
    sel: Vec<u32>,
    /// Block-local `QC` hit flags (one report entry per violating row, even
    /// when several patterns or CFDs flag it).
    qc_hit: Vec<bool>,
    /// Group table: key hash → head of the arena chain.
    map: HashMap<u64, u32>,
    /// Group arena, append-only during one scan.
    arena: Vec<GroupEntry>,
}

impl ScanScratch {
    /// Fresh scratch (allocates lazily on first use).
    pub fn new() -> Self {
        ScanScratch::default()
    }

    /// Number of distinct LHS groups the last scan saw (diagnostic).
    pub fn groups_seen(&self) -> usize {
        self.arena.len()
    }

    /// Capacity of the group arena (diagnostic — lets tests pin that
    /// steady-state rescans reuse the allocation instead of growing it).
    pub fn group_capacity(&self) -> usize {
        self.arena.capacity()
    }
}

/// Extends a running FNV-1a×4-fold hash with one interned cell. One xor +
/// one multiply per key column per row; collisions are resolved exactly by
/// the repr-row comparison, so mixing quality only affects bucket balance.
#[inline]
fn mix(h: u64, id: ValueId) -> u64 {
    (h ^ u64::from(id.raw())).wrapping_mul(FNV_PRIME)
}

/// Whether rows `a` and `b` agree on every column of `cols`.
#[inline]
fn rows_eq(cols: &[&[ValueId]], a: u32, b: u32) -> bool {
    cols.iter().all(|col| col[a as usize] == col[b as usize])
}

/// Whether some pattern of `cfd` LHS-matches row `row` (read directly from
/// the LHS column slices — no projection).
#[inline]
fn lhs_matches_at(cfd: &Cfd, xcols: &[&[ValueId]], row: u32) -> bool {
    cfd.tableau().iter().any(|p| {
        p.lhs()
            .iter()
            .zip(xcols)
            .all(|(cell, col)| cell.matches_id(col[row as usize]))
    })
}

/// One pattern row's compiled `QC` shape: the LHS constants to prefilter on
/// and the RHS constants whose contradiction *is* the violation. Patterns
/// without RHS constants produce no entry — they cannot be `QC`-violated.
struct QcPattern {
    /// `(column position within the CFD's LHS, required id)`.
    lhs_consts: Vec<(usize, ValueId)>,
    /// `(column position within the CFD's RHS, required id)`.
    rhs_consts: Vec<(usize, ValueId)>,
}

impl QcPattern {
    fn compile(pattern: &PatternTuple) -> Option<QcPattern> {
        let rhs_consts: Vec<(usize, ValueId)> = pattern
            .rhs()
            .iter()
            .enumerate()
            .filter_map(|(i, cell)| cell.const_id().map(|id| (i, id)))
            .collect();
        if rhs_consts.is_empty() {
            // Wildcard/don't-care RHS matches everything: never a violation.
            return None;
        }
        let lhs_consts = pattern
            .lhs()
            .iter()
            .enumerate()
            .filter_map(|(i, cell)| cell.const_id().map(|id| (i, id)))
            .collect();
        Some(QcPattern {
            lhs_consts,
            rhs_consts,
        })
    }
}

/// Detects `cfds` (all sharing one LHS attribute list, at most [`FUSE_MAX`]
/// of them) over `rel` in a single fused block scan, adding findings to
/// `out`. `rows` restricts the scan to a row subset (the sharded workers'
/// partitions); `None` scans everything.
///
/// The report contribution is byte-identical to running
/// [`DirectDetector::detect`](crate::DirectDetector::detect) per CFD and
/// merging — the differential harness pins this for every workload.
pub fn scan_group(
    cfds: &[&Cfd],
    rel: &Relation,
    rows: Option<&[u32]>,
    scratch: &mut ScanScratch,
    out: &mut Violations,
) {
    let Some(first) = cfds.first() else {
        return;
    };
    assert!(
        cfds.len() <= FUSE_MAX,
        "scan_group fuses at most {FUSE_MAX} CFDs per call"
    );
    let lhs = first.lhs();
    debug_assert!(
        cfds.iter().all(|c| c.lhs() == lhs),
        "fused CFDs must share one LHS attribute list"
    );
    let xcols = rel.columns_for(lhs);
    let ycols: Vec<Vec<&[ValueId]>> = cfds.iter().map(|c| rel.columns_for(c.rhs())).collect();
    let qc: Vec<Vec<QcPattern>> = cfds
        .iter()
        .map(|c| c.tableau().iter().filter_map(QcPattern::compile).collect())
        .collect();

    scratch.map.clear();
    scratch.arena.clear();

    let total = rows.map_or(rel.len(), <[u32]>::len);
    let mut start = 0;
    while start < total {
        let end = (start + BLOCK).min(total);
        let n = end - start;

        // Block row ids: identity for full scans, the subset slice otherwise.
        scratch.rows.clear();
        match rows {
            Some(subset) => scratch.rows.extend_from_slice(&subset[start..end]),
            None => scratch.rows.extend(start as u32..end as u32),
        }

        // Column-major block hash of the LHS key.
        scratch.hashes.clear();
        scratch.hashes.resize(n, FNV_OFFSET);
        for col in &xcols {
            for (h, &row) in scratch.hashes.iter_mut().zip(&scratch.rows) {
                *h = mix(*h, col[row as usize]);
            }
        }

        // QV grouping: probe/insert each row's group, trip per-CFD `many`
        // bits on a second distinct Y projection.
        for j in 0..n {
            let row = scratch.rows[j];
            let h = scratch.hashes[j];
            let mut found = NONE;
            let mut slot = scratch.map.get(&h).copied().unwrap_or(NONE);
            while slot != NONE {
                let entry = scratch.arena[slot as usize];
                if rows_eq(&xcols, entry.repr, row) {
                    found = slot;
                    break;
                }
                slot = entry.next;
            }
            if found == NONE {
                let mut matched = 0u64;
                for (i, cfd) in cfds.iter().enumerate() {
                    if lhs_matches_at(cfd, &xcols, row) {
                        matched |= 1 << i;
                    }
                }
                let idx = scratch.arena.len() as u32;
                let head = scratch.map.entry(h).or_insert(NONE);
                scratch.arena.push(GroupEntry {
                    repr: row,
                    next: *head,
                    matched,
                    many: 0,
                });
                *head = idx;
            } else {
                let entry = &mut scratch.arena[found as usize];
                let mut pending = entry.matched & !entry.many;
                while pending != 0 {
                    let i = pending.trailing_zeros() as usize;
                    pending &= pending - 1;
                    if !rows_eq(&ycols[i], entry.repr, row) {
                        entry.many |= 1 << i;
                    }
                }
            }
        }

        // QC: per compiled pattern, narrow the block by the LHS constant
        // columns, then test the RHS constants on the survivors.
        scratch.qc_hit.clear();
        scratch.qc_hit.resize(n, false);
        for (ci, patterns) in qc.iter().enumerate() {
            for pattern in patterns {
                scratch.sel.clear();
                match pattern.lhs_consts.split_first() {
                    None => scratch.sel.extend(0..n as u32),
                    Some((&(c0, id0), rest)) => {
                        let col = xcols[c0];
                        scratch
                            .sel
                            .extend(scratch.rows.iter().enumerate().filter_map(|(j, &row)| {
                                (col[row as usize] == id0).then_some(j as u32)
                            }));
                        for &(c, id) in rest {
                            let col = xcols[c];
                            let block_rows = &scratch.rows;
                            scratch
                                .sel
                                .retain(|&j| col[block_rows[j as usize] as usize] == id);
                        }
                    }
                }
                for &j in &scratch.sel {
                    let row = scratch.rows[j as usize] as usize;
                    if pattern
                        .rhs_consts
                        .iter()
                        .any(|&(c, id)| ycols[ci][c][row] != id)
                    {
                        scratch.qc_hit[j as usize] = true;
                    }
                }
            }
        }
        for (j, &hit) in scratch.qc_hit.iter().enumerate() {
            if hit {
                let row = scratch.rows[j] as usize;
                // wslint: allow(panic_path, "scratch.rows holds row ids copied from this relation's scan")
                out.add_constant_violation(rel.row(row).expect("row in range").to_values());
            }
        }

        start = end;
    }

    // Multi-tuple keys: every fused CFD shares the LHS, so a group tripped
    // by any CFD contributes the same key exactly once.
    for entry in &scratch.arena {
        if entry.many != 0 {
            out.add_multi_tuple_key(
                xcols
                    .iter()
                    .map(|col| col[entry.repr as usize].resolve().clone())
                    .collect(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectDetector;
    use cfd_datagen::cust::{cust_instance, phi1, phi2, phi3_with_fd, phi5};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};

    fn scan_one(cfd: &Cfd, rel: &Relation) -> Violations {
        let mut scratch = ScanScratch::new();
        let mut out = Violations::new();
        scan_group(&[cfd], rel, None, &mut scratch, &mut out);
        out
    }

    #[test]
    fn matches_the_rowhash_scan_on_the_running_example() {
        let rel = cust_instance();
        for cfd in [phi1(), phi2(), phi3_with_fd(), phi5()] {
            let vectorized = scan_one(&cfd, &rel);
            let rowhash = DirectDetector::new().detect_rowhash(&cfd, &rel);
            assert_eq!(vectorized, rowhash, "{:?}", cfd.name());
            assert_eq!(vectorized.canonical_bytes(), rowhash.canonical_bytes());
        }
    }

    #[test]
    fn matches_the_rowhash_scan_on_a_noisy_workload() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 3_000,
            noise_percent: 7.0,
            seed: 77,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(5);
        for (fd, tab, consts) in [
            (EmbeddedFd::ZipToState, 60, 80.0),
            (EmbeddedFd::AreaToCity, 90, 50.0),
            (EmbeddedFd::StateMaritalToExemption, 40, 0.0),
        ] {
            let cfd = workload.single(fd, tab, consts);
            let vectorized = scan_one(&cfd, &noisy);
            let rowhash = DirectDetector::new().detect_rowhash(&cfd, &noisy);
            assert!(!vectorized.is_clean() || rowhash.is_clean());
            assert_eq!(vectorized, rowhash, "{fd:?}");
        }
    }

    #[test]
    fn row_subsets_cover_exactly_the_given_rows() {
        // A subset scan must agree with a gathered sub-relation scan.
        let noisy = TaxGenerator::new(TaxConfig {
            size: 900,
            noise_percent: 10.0,
            seed: 3,
        })
        .generate()
        .relation;
        let cfd = CfdWorkload::new(1).single(EmbeddedFd::ZipToState, 30, 60.0);
        let subset: Vec<u32> = (0..900).filter(|i| i % 3 != 1).collect();
        let mut out = Violations::new();
        scan_group(
            &[&cfd],
            &noisy,
            Some(&subset),
            &mut ScanScratch::new(),
            &mut out,
        );
        let gathered = noisy.gather_rows(&subset.iter().map(|&i| i as usize).collect::<Vec<_>>());
        let expect = DirectDetector::new().detect(&cfd, &gathered);
        assert_eq!(out, expect);
    }

    #[test]
    fn fused_scan_equals_per_cfd_merge() {
        // Two CFDs over the same LHS with different tableaux/RHS.
        let noisy = TaxGenerator::new(TaxConfig {
            size: 2_500,
            noise_percent: 9.0,
            seed: 12,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(8);
        let a = workload.single(EmbeddedFd::ZipToState, 50, 70.0);
        let b = workload.single(EmbeddedFd::ZipToState, 25, 20.0);
        assert_eq!(a.lhs(), b.lhs());
        let mut fused = Violations::new();
        scan_group(&[&a, &b], &noisy, None, &mut ScanScratch::new(), &mut fused);
        let per_cfd = DirectDetector::new().detect_set(&[a, b], &noisy);
        assert_eq!(fused, per_cfd);
        assert_eq!(fused.canonical_bytes(), per_cfd.canonical_bytes());
    }

    #[test]
    fn empty_inputs_are_clean() {
        let rel = cust_instance();
        let mut out = Violations::new();
        scan_group(&[], &rel, None, &mut ScanScratch::new(), &mut out);
        assert!(out.is_clean());
        let empty = Relation::new(rel.schema().clone());
        let cfd = phi2();
        let mut out = Violations::new();
        scan_group(&[&cfd], &empty, None, &mut ScanScratch::new(), &mut out);
        assert!(out.is_clean());
    }

    #[test]
    fn scratch_reuse_allocates_nothing_in_steady_state() {
        // The old scan allocated one key vector per new LHS group. The
        // kernel's group table is repr-row based: after a warm-up scan over
        // the same data shape, a rescan reuses every container — capacities
        // (and the arena's address) must not change.
        let noisy = TaxGenerator::new(TaxConfig {
            size: 5_000,
            noise_percent: 6.0,
            seed: 42,
        })
        .generate()
        .relation;
        let cfd = CfdWorkload::new(2).single(EmbeddedFd::ZipToState, 40, 50.0);
        let mut scratch = ScanScratch::new();
        let mut out = Violations::new();
        scan_group(&[&cfd], &noisy, None, &mut scratch, &mut out);
        let groups = scratch.groups_seen();
        assert!(groups > 0);
        let arena_cap = scratch.group_capacity();
        let arena_ptr = scratch.arena.as_ptr();
        let map_cap = scratch.map.capacity();
        let hashes_cap = scratch.hashes.capacity();
        let sel_cap = scratch.sel.capacity();
        let mut out2 = Violations::new();
        scan_group(&[&cfd], &noisy, None, &mut scratch, &mut out2);
        assert_eq!(out, out2);
        assert_eq!(scratch.groups_seen(), groups);
        assert_eq!(scratch.group_capacity(), arena_cap);
        assert_eq!(scratch.arena.as_ptr(), arena_ptr, "arena must not move");
        assert_eq!(scratch.map.capacity(), map_cap);
        assert_eq!(scratch.hashes.capacity(), hashes_cap);
        assert_eq!(scratch.sel.capacity(), sel_cap);
        // And the per-block buffers never exceed one block.
        assert!(scratch.hashes.capacity() <= BLOCK.next_power_of_two());
    }

    #[test]
    fn fuse_width_is_enforced() {
        let result = std::panic::catch_unwind(|| {
            let rel = cust_instance();
            let cfd = phi2();
            let refs: Vec<&Cfd> = std::iter::repeat_n(&cfd, FUSE_MAX + 1).collect();
            let mut out = Violations::new();
            scan_group(&refs, &rel, None, &mut ScanScratch::new(), &mut out);
        });
        assert!(result.is_err());
    }
}
