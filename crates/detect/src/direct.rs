//! A direct, hash-based violation detector.
//!
//! This detector computes exactly what the `QC`/`QV` SQL queries of Section 4
//! compute, but without going through the SQL layer: it groups tuples in one
//! pass per CFD. It serves two purposes:
//!
//! * it is an **independent oracle** for the SQL-based
//!   [`Detector`](crate::Detector) — the property tests assert that both
//!   return identical reports on arbitrary data;
//! * it is the non-SQL fast path used by the repair algorithm, which needs to
//!   know the violating row indices rather than tuple values.

use crate::report::Violations;
use cfd_core::Cfd;
use cfd_relation::{Relation, Tuple, Value, ValueId};
use std::collections::{HashMap, HashSet};

/// The combined `QC`+`QV` scan over an arbitrary subset of tuples — the
/// shared core of [`DirectDetector::detect`] (all rows) and the per-shard
/// workers of [`ShardedDetector`](crate::ShardedDetector) (one hash
/// partition each). Single pass: the LHS projection is computed once per
/// tuple and reused for the constant check and as the group key. Keeping
/// both callers on this one function is what makes the sharded determinism
/// contract ("byte-identical to the direct path") hold by construction.
pub(crate) fn detect_tuples<'a>(cfd: &Cfd, tuples: impl Iterator<Item = &'a Tuple>) -> Violations {
    let lhs = cfd.lhs();
    let rhs = cfd.rhs();
    let mut out = Violations::new();
    let mut groups: HashMap<Vec<ValueId>, HashSet<Vec<ValueId>>> = HashMap::new();
    let mut matched_cache: HashMap<Vec<ValueId>, bool> = HashMap::new();
    for tuple in tuples {
        let x_vals = tuple.project_ids(lhs);
        let y_vals = tuple.project_ids(rhs);
        // QC: matches a pattern on X but contradicts one of its constants on Y.
        for pattern in cfd.tableau().iter() {
            if pattern.lhs_matches_ids(&x_vals) && !pattern.rhs_matches_ids(&y_vals) {
                out.add_constant_violation(tuple.to_values());
                break;
            }
        }
        // QV: group by X among pattern-matched keys, compare distinct Y.
        // Whether an X value matches some pattern depends on the X value
        // only, so the check is memoized per key.
        let matched = *matched_cache
            .entry(x_vals.clone())
            .or_insert_with(|| cfd.tableau().iter().any(|p| p.lhs_matches_ids(&x_vals)));
        if matched {
            groups.entry(x_vals).or_default().insert(y_vals);
        }
    }
    for (key, y_projs) in groups {
        if y_projs.len() > 1 {
            out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
        }
    }
    out
}

/// Stateless direct detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectDetector;

impl DirectDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        DirectDetector
    }

    /// Detects violations of one CFD, reporting the same items as the SQL
    /// query pair: full tuples for single-tuple violations, `X`-projection
    /// keys for multi-tuple violations.
    ///
    /// Entirely interned: pattern matching, grouping and the distinct-`Y`
    /// sets all work on [`ValueId`]s (`u32` compares and hashes); values are
    /// resolved only when a finding enters the report. The scan itself is
    /// [`detect_tuples`], shared with the sharded workers.
    pub fn detect(&self, cfd: &Cfd, rel: &Relation) -> Violations {
        detect_tuples(cfd, rel.rows().iter())
    }

    /// The pre-interning reference implementation: identical semantics to
    /// [`DirectDetector::detect`], but comparing resolved [`Value`]s (string
    /// compares, owned-value hash keys) instead of dictionary ids.
    ///
    /// Kept for two purposes: the detector-equivalence tests prove the
    /// interned path returns byte-identical [`Violations`], and the
    /// `merged_cfds` bench uses it as the "naive" baseline for the interned
    /// hot path.
    pub fn detect_value_path(&self, cfd: &Cfd, rel: &Relation) -> Violations {
        let mut out = Violations::new();
        let lhs = cfd.lhs();
        let rhs = cfd.rhs();

        for (_, tuple) in rel.iter() {
            let x_vals = tuple.project_ref(lhs);
            let y_vals = tuple.project_ref(rhs);
            for pattern in cfd.tableau().iter() {
                if pattern.lhs_matches(&x_vals) && !pattern.rhs_matches(&y_vals) {
                    out.add_constant_violation(tuple.to_values());
                    break;
                }
            }
        }

        let mut groups: HashMap<Vec<Value>, HashSet<Vec<Value>>> = HashMap::new();
        let mut matched_cache: HashMap<Vec<Value>, bool> = HashMap::new();
        for (_, tuple) in rel.iter() {
            let key = tuple.project(lhs);
            let matched = *matched_cache.entry(key.clone()).or_insert_with(|| {
                let refs: Vec<&Value> = key.iter().collect();
                cfd.tableau().iter().any(|p| p.lhs_matches(&refs))
            });
            if matched {
                groups.entry(key).or_default().insert(tuple.project(rhs));
            }
        }
        for (key, y_projs) in groups {
            if y_projs.len() > 1 {
                out.add_multi_tuple_key(key);
            }
        }
        out
    }

    /// Detects violations of a set of CFDs by running [`DirectDetector::detect`]
    /// per CFD and merging the reports.
    pub fn detect_set(&self, cfds: &[Cfd], rel: &Relation) -> Violations {
        let mut out = Violations::new();
        for cfd in cfds {
            out.merge(self.detect(cfd, rel));
        }
        out
    }

    /// Row indices involved in any violation of `cfd` (both kinds). This is
    /// the form the repair algorithm consumes.
    pub fn violating_rows(&self, cfd: &Cfd, rel: &Relation) -> Vec<usize> {
        let mut rows: HashSet<usize> = HashSet::new();
        for witness in cfd.violations(rel) {
            rows.extend(witness.rows.iter().copied());
        }
        let mut out: Vec<usize> = rows.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, phi1, phi2, phi3_with_fd};
    use cfd_relation::AttrId;

    #[test]
    fn example_4_1_qc_part() {
        let v = DirectDetector::new().detect(&phi2(), &cust_instance());
        // t1 and t2 are the constant violations (city should be MH for 908).
        assert_eq!(v.constant_violations().len(), 2);
        assert!(v
            .constant_violations()
            .iter()
            .all(|t| t.contains(&Value::from("908")) && t.contains(&Value::from("NYC"))));
        // No group with the same (CC, AC, PN) has two distinct (STR, CT, ZIP).
        assert!(v.multi_tuple_keys().is_empty());
    }

    #[test]
    fn multi_tuple_group_detection() {
        let mut rel = cust_instance();
        // Give Rick a different street: the (01, 908, 1111111) group now has
        // two distinct Y projections.
        rel.rows_mut()[1].set(AttrId(4), Value::from("Other Ave."));
        let v = DirectDetector::new().detect(&phi2(), &rel);
        assert_eq!(v.multi_tuple_keys().len(), 1);
        let key = v.multi_tuple_keys().iter().next().unwrap();
        assert_eq!(
            key,
            &vec![
                Value::from("01"),
                Value::from("908"),
                Value::from("1111111")
            ]
        );
    }

    #[test]
    fn clean_cfds_report_nothing() {
        let rel = cust_instance();
        assert!(DirectDetector::new().detect(&phi1(), &rel).is_clean());
        assert!(DirectDetector::new()
            .detect(&phi3_with_fd(), &rel)
            .is_clean());
    }

    #[test]
    fn detect_set_merges_reports() {
        let rel = cust_instance();
        let v = DirectDetector::new().detect_set(&[phi1(), phi2(), phi3_with_fd()], &rel);
        assert_eq!(v.constant_violations().len(), 2);
    }

    #[test]
    fn violating_rows_lists_indices() {
        let rel = cust_instance();
        let rows = DirectDetector::new().violating_rows(&phi2(), &rel);
        assert_eq!(rows, vec![0, 1]);
        assert!(DirectDetector::new()
            .violating_rows(&phi1(), &rel)
            .is_empty());
    }
}
