//! A direct, hash-based violation detector.
//!
//! This detector computes exactly what the `QC`/`QV` SQL queries of Section 4
//! compute, but without going through the SQL layer: it groups tuples in one
//! pass per CFD. It serves two purposes:
//!
//! * it is an **independent oracle** for the SQL-based
//!   [`Detector`](crate::Detector) — the property tests assert that both
//!   return identical reports on arbitrary data;
//! * it is the non-SQL fast path used by the repair algorithm, which needs to
//!   know the violating row indices rather than tuple values.

use crate::kernels::{scan_group, ScanScratch};
use crate::report::Violations;
use cfd_core::Cfd;
use cfd_relation::{project_cols_into, Index, Relation, Tuple, Value, ValueId};
use std::collections::{HashMap, HashSet};

/// Per-LHS-key state of the columnar scan, fused so each row costs a single
/// hash lookup: the memoized "matches some pattern" verdict and the
/// distinct-`Y` tracking (we only ever need to know whether a group has
/// *more than one* distinct `Y` projection, so the first projection plus a
/// tripped flag replaces a whole `HashSet`).
enum GroupState {
    /// No pattern row matches this LHS key — `QV` never applies.
    Unmatched,
    /// Matched; every row so far shares this one `Y` projection.
    OneY(Vec<ValueId>),
    /// Matched; at least two distinct `Y` projections seen — a violation.
    ManyY,
}

/// The combined `QC`+`QV` columnar scan over a subset of rows (`None` = all
/// rows) — the shared core of [`DirectDetector::detect`] and the per-shard
/// workers of [`ShardedDetector`](crate::ShardedDetector) (one hash
/// partition each). Since the vectorized kernels landed this is a thin
/// wrapper over [`scan_group`](crate::kernels::scan_group) with a
/// call-local scratch; callers that scan repeatedly (set detection, the
/// planner) hold a [`ScanScratch`](crate::kernels::ScanScratch) and call
/// the kernel directly. Keeping every caller on the one kernel is what
/// makes the sharded determinism contract ("byte-identical to the direct
/// path") hold by construction.
pub(crate) fn detect_rows(cfd: &Cfd, rel: &Relation, rows: Option<&[u32]>) -> Violations {
    let mut out = Violations::new();
    scan_group(&[cfd], rel, rows, &mut ScanScratch::new(), &mut out);
    out
}

/// The row-at-a-time hash scan the vectorized kernels replaced: projects
/// `X`/`Y` into scratch vectors per row and keys the group table by owned
/// `Vec<ValueId>` (one allocation per new LHS group). Kept as the reference
/// and benchmark baseline — the kernel tests pin byte-identical reports,
/// and the `columnar` bench measures the speedup at 100k rows.
pub(crate) fn detect_rows_rowhash(cfd: &Cfd, rel: &Relation, rows: Option<&[u32]>) -> Violations {
    let xcols = rel.columns_for(cfd.lhs());
    let ycols = rel.columns_for(cfd.rhs());
    let mut out = Violations::new();
    let mut groups: HashMap<Vec<ValueId>, GroupState> = HashMap::new();
    let mut x_scratch: Vec<ValueId> = Vec::with_capacity(xcols.len());
    let mut y_scratch: Vec<ValueId> = Vec::with_capacity(ycols.len());
    let mut scan = |i: usize| {
        project_cols_into(&xcols, i, &mut x_scratch);
        project_cols_into(&ycols, i, &mut y_scratch);
        // QC: matches a pattern on X but contradicts one of its constants on Y.
        for pattern in cfd.tableau().iter() {
            if pattern.lhs_matches_ids(&x_scratch) && !pattern.rhs_matches_ids(&y_scratch) {
                // wslint: allow(panic_path, "i < rel.len() scan-loop bound makes row(i) infallible")
                out.add_constant_violation(rel.row(i).expect("row in range").to_values());
                break;
            }
        }
        // QV: group by X among pattern-matched keys, compare distinct Y.
        // Whether an X value matches some pattern depends on the X value
        // only, so the verdict lives in the group entry itself.
        match groups.get_mut(x_scratch.as_slice()) {
            Some(state) => {
                if let GroupState::OneY(first) = state {
                    if *first != y_scratch {
                        *state = GroupState::ManyY;
                    }
                }
            }
            None => {
                let matched = cfd.tableau().iter().any(|p| p.lhs_matches_ids(&x_scratch));
                let state = if matched {
                    GroupState::OneY(y_scratch.clone())
                } else {
                    GroupState::Unmatched
                };
                groups.insert(x_scratch.clone(), state);
            }
        }
    };
    match rows {
        Some(rows) => rows.iter().for_each(|&i| scan(i as usize)),
        None => (0..rel.len()).for_each(scan),
    }
    for (key, state) in groups {
        if matches!(state, GroupState::ManyY) {
            out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
        }
    }
    out
}

/// The group-driven `QC`+`QV` scan over a **prebuilt** LHS [`Index`] — the
/// prepared-engine counterpart of [`DirectDetector::detect`], consumed by a serving
/// session that builds its per-CFD indexes once and shares them between
/// detection and the repair engine's dirty-group tracking.
///
/// Semantics are identical to [`DirectDetector::detect`] (the
/// detector-equivalence tests pin byte-identical [`Violations`]): per index
/// group, the pattern match on `X` is decided once per *key* instead of once
/// per row, `QC` violators contribute their full tuples and groups with more
/// than one distinct `Y` projection contribute their key. Grouping therefore
/// costs nothing at detection time — it was paid once when the index was
/// built — so a repeated detection over an unchanged instance is
/// `O(|Tp| × #groups + |I_matched|)` with no hashing at all.
///
/// When **every** pattern row is constant on the whole LHS, only the keys
/// spelled out in the tableau can match any pattern at all, so the scan
/// probes those keys directly instead of iterating the index —
/// `O(|Tp| + |I_matched|)`, independent of the group count.
///
/// # Contract
///
/// * `index` must cover `cfd.lhs()` in LHS order and be in sync with `rel`
///   (same rows, maintained through [`Index::insert_row`] /
///   [`Index::remove_row`] across edits).
/// * `cfd` must not contain the don't-care symbol `@` (merged tableaux group
///   by *effective* attribute subsets a full-LHS index cannot reproduce);
///   callers fall back to [`DirectDetector::detect`] for those.
pub fn detect_with_index(cfd: &Cfd, rel: &Relation, index: &Index) -> Violations {
    debug_assert!(
        !cfd.has_dont_care(),
        "detect_with_index groups by the full LHS; don't-care tableaux need detect_rows"
    );
    debug_assert_eq!(
        index.attrs(),
        cfd.lhs(),
        "the index must cover the CFD's LHS attributes in order"
    );
    let ycols = rel.columns_for(cfd.rhs());
    let mut out = Violations::new();
    let mut matching: Vec<&cfd_core::PatternTuple> = Vec::new();
    // Reused across every group and row: no per-row allocation anywhere in
    // the loop (the `Y` projection is gathered into this one buffer, and
    // the distinct-`Y` check compares column cells at two row indices).
    let mut y_scratch: Vec<ValueId> = Vec::with_capacity(ycols.len());
    let mut check_group = |key: &[ValueId], rows: &[usize], out: &mut Violations| {
        matching.clear();
        matching.extend(cfd.tableau().iter().filter(|p| p.lhs_matches_ids(key)));
        if matching.is_empty() {
            return;
        }
        let mut first_row: Option<usize> = None;
        let mut multi = false;
        for &row in rows {
            project_cols_into(&ycols, row, &mut y_scratch);
            if matching.iter().any(|p| !p.rhs_matches_ids(&y_scratch)) {
                // wslint: allow(panic_path, "rows come from the relation's own LHS index, always in range")
                out.add_constant_violation(rel.row(row).expect("row in range").to_values());
            }
            match first_row {
                None => first_row = Some(row),
                Some(first) => {
                    if !multi && ycols.iter().any(|col| col[first] != col[row]) {
                        multi = true;
                    }
                }
            }
        }
        if multi {
            out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
        }
    };
    let all_const = cfd
        .tableau()
        .iter()
        .all(|p| p.lhs().iter().all(cfd_core::PatternValue::is_const));
    if all_const {
        // Probe path: only the tableau's own keys can match any pattern —
        // look them up instead of walking every group (duplicate keys are
        // skipped; re-checking one would only re-insert into the report's
        // ordered sets, but the work is pointless).
        let mut probed: Vec<Vec<ValueId>> = Vec::with_capacity(cfd.tableau().len());
        for pattern in cfd.tableau().iter() {
            let key: Vec<ValueId> = pattern
                .lhs()
                .iter()
                // wslint: allow(panic_path, "index-driven path is only selected for all-constant-LHS tableaux")
                .map(|c| c.const_id().expect("all-constant LHS"))
                .collect();
            if probed.contains(&key) {
                continue;
            }
            let rows = index.lookup_ids(&key);
            if !rows.is_empty() {
                check_group(&key, rows, &mut out);
            }
            probed.push(key);
        }
    } else {
        for (key, rows) in index.iter() {
            check_group(key, rows, &mut out);
        }
    }
    out
}

/// The row-store era `QC`+`QV` scan over owned tuples: identical semantics
/// to the columnar scan, but reading one heap-allocated [`Tuple`] per row. It
/// is kept as the reference/baseline path — the detector-equivalence tests
/// prove the columnar scan returns byte-identical [`Violations`], and the
/// `columnar` bench measures the struct-of-arrays layout against it.
pub fn detect_tuples<'a>(cfd: &Cfd, tuples: impl Iterator<Item = &'a Tuple>) -> Violations {
    let lhs = cfd.lhs();
    let rhs = cfd.rhs();
    let mut out = Violations::new();
    let mut groups: HashMap<Vec<ValueId>, HashSet<Vec<ValueId>>> = HashMap::new();
    let mut matched_cache: HashMap<Vec<ValueId>, bool> = HashMap::new();
    for tuple in tuples {
        let x_vals = tuple.project_ids(lhs);
        let y_vals = tuple.project_ids(rhs);
        for pattern in cfd.tableau().iter() {
            if pattern.lhs_matches_ids(&x_vals) && !pattern.rhs_matches_ids(&y_vals) {
                out.add_constant_violation(tuple.to_values());
                break;
            }
        }
        let matched = *matched_cache
            .entry(x_vals.clone())
            .or_insert_with(|| cfd.tableau().iter().any(|p| p.lhs_matches_ids(&x_vals)));
        if matched {
            groups.entry(x_vals).or_default().insert(y_vals);
        }
    }
    for (key, y_projs) in groups {
        if y_projs.len() > 1 {
            out.add_multi_tuple_key(key.iter().map(|id| id.resolve().clone()).collect());
        }
    }
    out
}

/// Stateless direct detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectDetector;

impl DirectDetector {
    /// Creates a detector.
    pub fn new() -> Self {
        DirectDetector
    }

    /// Detects violations of one CFD, reporting the same items as the SQL
    /// query pair: full tuples for single-tuple violations, `X`-projection
    /// keys for multi-tuple violations.
    ///
    /// Entirely interned and columnar: pattern matching, grouping and the
    /// distinct-`Y` tracking all work on [`ValueId`]s (`u32` compares and
    /// hashes) read straight from the `X ∪ Y` column slices; values are
    /// resolved only when a finding enters the report. The scan itself is
    /// the vectorized block kernel
    /// ([`scan_group`]), shared with the
    /// sharded workers and the adaptive planner.
    pub fn detect(&self, cfd: &Cfd, rel: &Relation) -> Violations {
        detect_rows(cfd, rel, None)
    }

    /// The row-at-a-time hash scan the vectorized kernels replaced (owned
    /// `Vec<ValueId>` group keys, one allocation per new LHS group) — the
    /// performance baseline of the `columnar` bench. Returns the same
    /// report as [`DirectDetector::detect`].
    pub fn detect_rowhash(&self, cfd: &Cfd, rel: &Relation) -> Violations {
        detect_rows_rowhash(cfd, rel, None)
    }

    /// The row-store era scan ([`detect_tuples`]) over pre-materialized
    /// tuples: the baseline the `columnar` bench compares the
    /// struct-of-arrays layout against. Returns the same report as
    /// [`DirectDetector::detect`] on `rel.to_tuples()`.
    pub fn detect_row_era(&self, cfd: &Cfd, rows: &[Tuple]) -> Violations {
        detect_tuples(cfd, rows.iter())
    }

    /// The pre-interning reference implementation: identical semantics to
    /// [`DirectDetector::detect`], but comparing resolved [`Value`]s (string
    /// compares, owned-value hash keys) instead of dictionary ids.
    ///
    /// Kept for two purposes: the detector-equivalence tests prove the
    /// interned path returns byte-identical [`Violations`], and the
    /// `merged_cfds` bench uses it as the "naive" baseline for the interned
    /// hot path.
    pub fn detect_value_path(&self, cfd: &Cfd, rel: &Relation) -> Violations {
        let mut out = Violations::new();
        let lhs = cfd.lhs();
        let rhs = cfd.rhs();

        for (_, tuple) in rel.iter() {
            let x_vals = tuple.project_ref(lhs);
            let y_vals = tuple.project_ref(rhs);
            for pattern in cfd.tableau().iter() {
                if pattern.lhs_matches(&x_vals) && !pattern.rhs_matches(&y_vals) {
                    out.add_constant_violation(tuple.to_values());
                    break;
                }
            }
        }

        let mut groups: HashMap<Vec<Value>, HashSet<Vec<Value>>> = HashMap::new();
        let mut matched_cache: HashMap<Vec<Value>, bool> = HashMap::new();
        for (_, tuple) in rel.iter() {
            let key = tuple.project(lhs);
            let matched = *matched_cache.entry(key.clone()).or_insert_with(|| {
                let refs: Vec<&Value> = key.iter().collect();
                cfd.tableau().iter().any(|p| p.lhs_matches(&refs))
            });
            if matched {
                groups.entry(key).or_default().insert(tuple.project(rhs));
            }
        }
        for (key, y_projs) in groups {
            if y_projs.len() > 1 {
                out.add_multi_tuple_key(key);
            }
        }
        out
    }

    /// Detects violations of a set of CFDs by running the vectorized scan
    /// per CFD into one report, reusing one
    /// [`ScanScratch`] across the whole set —
    /// equal to merging per-CFD [`DirectDetector::detect`] reports.
    pub fn detect_set(&self, cfds: &[Cfd], rel: &Relation) -> Violations {
        let mut out = Violations::new();
        let mut scratch = ScanScratch::new();
        for cfd in cfds {
            scan_group(&[cfd], rel, None, &mut scratch, &mut out);
        }
        out
    }

    /// Row indices involved in any violation of `cfd` (both kinds). This is
    /// the form the repair algorithm consumes.
    pub fn violating_rows(&self, cfd: &Cfd, rel: &Relation) -> Vec<usize> {
        let mut rows: HashSet<usize> = HashSet::new();
        for witness in cfd.violations(rel) {
            rows.extend(witness.rows.iter().copied());
        }
        let mut out: Vec<usize> = rows.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, phi1, phi2, phi3_with_fd};
    use cfd_relation::AttrId;

    #[test]
    fn example_4_1_qc_part() {
        let v = DirectDetector::new().detect(&phi2(), &cust_instance());
        // t1 and t2 are the constant violations (city should be MH for 908).
        assert_eq!(v.constant_violations().len(), 2);
        assert!(v
            .constant_violations()
            .iter()
            .all(|t| t.contains(&Value::from("908")) && t.contains(&Value::from("NYC"))));
        // No group with the same (CC, AC, PN) has two distinct (STR, CT, ZIP).
        assert!(v.multi_tuple_keys().is_empty());
    }

    #[test]
    fn multi_tuple_group_detection() {
        let mut rel = cust_instance();
        // Give Rick a different street: the (01, 908, 1111111) group now has
        // two distinct Y projections.
        rel.set_value(1, AttrId(4), Value::from("Other Ave."));
        let v = DirectDetector::new().detect(&phi2(), &rel);
        assert_eq!(v.multi_tuple_keys().len(), 1);
        let key = v.multi_tuple_keys().iter().next().unwrap();
        assert_eq!(
            key,
            &vec![
                Value::from("01"),
                Value::from("908"),
                Value::from("1111111")
            ]
        );
    }

    #[test]
    fn clean_cfds_report_nothing() {
        let rel = cust_instance();
        assert!(DirectDetector::new().detect(&phi1(), &rel).is_clean());
        assert!(DirectDetector::new()
            .detect(&phi3_with_fd(), &rel)
            .is_clean());
    }

    #[test]
    fn detect_set_merges_reports() {
        let rel = cust_instance();
        let v = DirectDetector::new().detect_set(&[phi1(), phi2(), phi3_with_fd()], &rel);
        assert_eq!(v.constant_violations().len(), 2);
    }

    #[test]
    fn index_driven_detection_matches_the_row_scan() {
        use cfd_datagen::records::{TaxConfig, TaxGenerator};
        use cfd_datagen::{CfdWorkload, EmbeddedFd};
        let noisy = TaxGenerator::new(TaxConfig {
            size: 700,
            noise_percent: 9.0,
            seed: 51,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(2);
        for (fd, tab, consts) in [
            (EmbeddedFd::ZipToState, 80, 100.0),
            (EmbeddedFd::AreaToCity, 60, 40.0),
            (EmbeddedFd::StateMaritalToExemption, 40, 0.0),
        ] {
            let cfd = workload.single(fd, tab, consts);
            let index = noisy.build_index(cfd.lhs());
            let via_index = detect_with_index(&cfd, &noisy, &index);
            let via_scan = DirectDetector::new().detect(&cfd, &noisy);
            assert_eq!(via_index, via_scan, "{fd:?}");
            assert_eq!(via_index.canonical_bytes(), via_scan.canonical_bytes());
        }
        // And on the running example, multi-tuple keys included.
        let mut rel = cust_instance();
        rel.set_value(1, AttrId(4), Value::from("Other Ave."));
        let cfd = phi2();
        let index = rel.build_index(cfd.lhs());
        assert_eq!(
            detect_with_index(&cfd, &rel, &index),
            DirectDetector::new().detect(&cfd, &rel)
        );
    }

    #[test]
    fn all_constant_tableaux_probe_instead_of_iterating() {
        // Every pattern row fully constant on the LHS: the index path must
        // take the key-probe branch — including duplicate tableau keys and
        // constants absent from the data — and still report byte-identically
        // to the full scan.
        let rel = cust_instance();
        let schema = rel.schema().clone();
        let cfd = Cfd::builder(schema, ["CC", "ZIP"], ["STR", "CT"])
            .pattern(["01", "07974"], ["_", "NJC"])
            .pattern(["01", "07974"], ["Tree Ave.", "_"]) // duplicate key
            .pattern(["01", "99999"], ["_", "AK"]) // key not in the data
            .pattern(["44", "EH4 1DT"], ["_", "EDI"])
            .build()
            .unwrap();
        assert!(cfd
            .tableau()
            .iter()
            .all(|p| p.lhs().iter().all(cfd_core::PatternValue::is_const)));
        let index = rel.build_index(cfd.lhs());
        let probed = detect_with_index(&cfd, &rel, &index);
        let scanned = DirectDetector::new().detect(&cfd, &rel);
        assert_eq!(probed, scanned);
        assert_eq!(probed.canonical_bytes(), scanned.canonical_bytes());
    }

    #[test]
    fn index_driven_detection_tracks_maintained_indexes() {
        // Edit a cell, maintain the index, re-detect through the same index.
        let mut rel = cust_instance();
        let cfd = phi2();
        let mut index = rel.build_index(cfd.lhs());
        assert_eq!(
            detect_with_index(&cfd, &rel, &index)
                .constant_violations()
                .len(),
            2
        );
        let ct = rel.schema().resolve("CT").unwrap();
        for row in [0usize, 1] {
            let old = rel.row(row).unwrap().to_ids();
            rel.set_value(row, ct, Value::from("MH"));
            let new = rel.row(row).unwrap().to_ids();
            index.remove_row(row, &old);
            index.insert_row(row, &new);
        }
        assert!(detect_with_index(&cfd, &rel, &index).is_clean());
    }

    #[test]
    fn violating_rows_lists_indices() {
        let rel = cust_instance();
        let rows = DirectDetector::new().violating_rows(&phi2(), &rel);
        assert_eq!(rows, vec![0, 1]);
        assert!(DirectDetector::new()
            .violating_rows(&phi1(), &rel)
            .is_empty());
    }
}
