//! Sharded parallel violation detection.
//!
//! The detection queries of Section 4 are embarrassingly partitionable by the
//! LHS pattern key: a single-tuple (`QC`) violation depends on one tuple
//! only, and a multi-tuple (`QV`) violation is confined to the set of tuples
//! sharing one `t[X]` projection. Hash-partitioning the rows by their
//! interned LHS key therefore co-locates every `GROUP BY X` group in exactly
//! one shard, and the shards can be detected on independent worker threads
//! with **no cross-shard communication**.
//!
//! [`ShardedDetector`] does exactly that: one cheap sequential pass assigns
//! each row to `hash(t[X]) mod N`, `N` scoped worker threads
//! ([`std::thread::scope`]) run the combined `QC`+`QV` scan over their shard,
//! and the per-shard [`Violations`] are folded into one report.
//!
//! # Determinism contract
//!
//! The report is **byte-identical** to [`DirectDetector`]'s, for every shard
//! count, every thread interleaving, and across runs:
//!
//! * Shard assignment is a pure function of the row's interned LHS key: a
//!   fixed FNV-1a hash over the `ValueId` cells (no `RandomState`, no
//!   address-dependent seeds). Re-running with the same data and shard count
//!   reproduces the same partition.
//! * Per-shard reports are merged in ascending shard order; since
//!   [`Violations`] stores ordered sets ([`std::collections::BTreeSet`] keyed
//!   by resolved [`cfd_relation::Value`]s, i.e. stable tuple order — never
//!   intern order), the fold is order-insensitive and equals the single-shard
//!   report element for element, byte for byte under [`std::fmt::Display`].
//! * `NULL` cells keep their CFD semantics across shards: every `NULL` is
//!   the one interned [`cfd_relation::ValueId::NULL`], so two tuples whose
//!   keys contain `NULL` in the same position hash identically, land in the
//!   same shard, and group together there — `NULL = NULL`, and `NULL`
//!   matches no pattern constant, exactly as in the unsharded paths.
//! * A group's `QV` verdict needs the *whole* group: the partition key is
//!   the full LHS projection, so the co-location above is what makes the
//!   per-shard scans exhaustive. Sharding by anything finer (e.g. row ranges)
//!   would split groups and lose violations.

use crate::direct::{detect_rows, DirectDetector};
use crate::report::Violations;
use cfd_core::Cfd;
use cfd_relation::{Relation, ValueId};
use std::num::NonZeroUsize;

/// Hash-sharded parallel detector (see the module docs for the contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedDetector {
    shards: usize,
}

/// The machine's available parallelism (≥ 1) — the one source both
/// [`ShardedDetector::default`] and the adaptive planner derive worker
/// counts from. Falls back to 1 when the runtime cannot tell.
///
/// Cached after the first call: `std::thread::available_parallelism` reads
/// cgroup quota files on Linux (tens of µs per call), which would otherwise
/// tax every planner construction on the serving path.
pub fn available_cores() -> usize {
    static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Spawn-amortization floor: a worker thread needs at least this many rows
/// (of scan-grade work) before spawn and partitioning overhead can
/// amortize. The **one** such threshold in the workspace — the detection
/// planner's shard-count rule and the parallel repair engine's
/// sequential-fallback rule both derive from it, so 1-core hosts and tiny
/// workloads never pay thread setup on either path.
pub const MIN_ROWS_PER_WORKER: usize = 8_192;

/// FNV-1a over the little-endian bytes of the interned LHS key, read
/// column-wise (`lhs_cols` are the LHS column slices in key order). Fixed
/// offset basis and prime: the partition is reproducible across runs and
/// platforms. Shared with the planner's sharded execution of fused
/// same-LHS steps.
pub(crate) fn shard_of(lhs_cols: &[&[ValueId]], row: usize, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for col in lhs_cols {
        for byte in col[row].raw().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % shards as u64) as usize
}

impl ShardedDetector {
    /// A detector with the given shard/worker count (clamped to ≥ 1).
    pub fn new(shards: usize) -> Self {
        ShardedDetector {
            shards: shards.max(1),
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Detects violations of one CFD, returning the same report as
    /// [`DirectDetector::detect`] (see the module-level determinism
    /// contract).
    pub fn detect(&self, cfd: &Cfd, rel: &Relation) -> Violations {
        // Sharding pays for itself only when each worker gets real work;
        // degenerate inputs go through the single-threaded oracle unchanged
        // (identical output by the contract, so callers can't tell).
        if self.shards == 1 || rel.len() < self.shards * 2 {
            return DirectDetector::new().detect(cfd, rel);
        }
        // Partition pass: row indices by hash of the interned LHS key, read
        // straight from the LHS columns — the pass touches |X| column
        // slices, nothing else. (Buckets built per bucket — `vec![..; n]`
        // clones, and clones don't keep the pre-allocated capacity.)
        let lhs_cols = rel.columns_for(cfd.lhs());
        let mut buckets: Vec<Vec<u32>> = (0..self.shards)
            .map(|_| Vec::with_capacity(rel.len() / self.shards + 1))
            .collect();
        for i in 0..rel.len() {
            buckets[shard_of(&lhs_cols, i, self.shards)].push(i as u32);
        }

        // One scoped worker per shard; panics propagate (a lost shard must
        // never silently produce a partial report).
        let reports = std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .iter()
                .map(|bucket| scope.spawn(move || detect_shard(cfd, rel, bucket)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect::<Vec<_>>()
        });

        // Deterministic merge: ascending shard order into ordered sets.
        let mut out = Violations::new();
        for shard_report in reports {
            out.merge(shard_report);
        }
        out
    }

    /// Detects violations of a set of CFDs, merging per-CFD reports in input
    /// order — the sharded counterpart of [`DirectDetector::detect_set`].
    pub fn detect_set(&self, cfds: &[Cfd], rel: &Relation) -> Violations {
        let mut out = Violations::new();
        for cfd in cfds {
            out.merge(self.detect(cfd, rel));
        }
        out
    }
}

impl Default for ShardedDetector {
    /// One shard per available core ([`available_cores`] — the same source
    /// the planner sizes shard counts from), down to a single shard on
    /// 1-core hosts: spawning a second worker there pays thread overhead
    /// with zero overlap, contradicting the planner's own
    /// never-spawn-when-unamortizable rule (at one shard, [`detect`]
    /// degenerates to the direct scan). Explicit counts remain honored
    /// through [`ShardedDetector::new`].
    ///
    /// [`detect`]: ShardedDetector::detect
    fn default() -> Self {
        ShardedDetector::new(available_cores())
    }
}

/// One shard's work: the shared columnar `QC`+`QV` scan ([`detect_rows`] —
/// the same function the direct path runs over all rows) restricted to the
/// shard's row indices.
fn detect_shard(cfd: &Cfd, rel: &Relation, rows: &[u32]) -> Violations {
    detect_rows(cfd, rel, Some(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, fig2_cfd_set, phi1, phi2, phi3_with_fd, phi5};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::{AttrId, Schema, Tuple, Value};

    #[test]
    fn byte_identical_to_direct_on_the_running_example() {
        let rel = cust_instance();
        for cfd in [phi1(), phi2(), phi3_with_fd(), phi5()] {
            let direct = DirectDetector::new().detect(&cfd, &rel);
            for shards in [1, 2, 4, 7] {
                let sharded = ShardedDetector::new(shards).detect(&cfd, &rel);
                assert_eq!(sharded, direct, "{} shards, {:?}", shards, cfd.name());
                assert_eq!(
                    sharded.to_string(),
                    direct.to_string(),
                    "rendered reports must be byte-identical"
                );
            }
        }
    }

    #[test]
    fn byte_identical_to_direct_on_a_generated_workload() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 2_000,
            noise_percent: 8.0,
            seed: 91,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(13);
        let cfds = vec![
            workload.single(EmbeddedFd::ZipToState, 80, 70.0),
            workload.single(EmbeddedFd::AreaToCity, 80, 50.0),
        ];
        let direct = DirectDetector::new().detect_set(&cfds, &noisy);
        assert!(!direct.is_clean(), "workload must catch injected noise");
        let sharded = ShardedDetector::new(4).detect_set(&cfds, &noisy);
        assert_eq!(sharded, direct);
        assert_eq!(sharded.to_string(), direct.to_string());
    }

    #[test]
    fn groups_with_nulls_stay_whole_across_shards() {
        // Tuples whose keys contain NULL must land in one shard and group
        // together there (NULL = NULL), producing the same multi-tuple key
        // as the direct path.
        let schema = Schema::builder("r").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema.clone());
        for row in [
            vec![Value::Null, Value::from("k"), Value::from("x")],
            vec![Value::Null, Value::from("k"), Value::from("y")],
            vec![Value::from("a"), Value::from("k"), Value::from("z")],
        ] {
            rel.push(Tuple::new(row)).unwrap();
        }
        // Pad so sharding actually engages (len >= 2 * shards).
        for i in 0..30 {
            rel.push(Tuple::new(vec![
                Value::from(format!("p{i}")),
                Value::from("k"),
                Value::from("x"),
            ]))
            .unwrap();
        }
        let cfd = cfd_core::Cfd::fd(schema, ["A", "B"], ["C"]).unwrap();
        let direct = DirectDetector::new().detect(&cfd, &rel);
        assert_eq!(direct.multi_tuple_keys().len(), 1);
        assert_eq!(
            direct.multi_tuple_keys().iter().next().unwrap()[0],
            Value::Null
        );
        for shards in [2, 4, 8] {
            assert_eq!(ShardedDetector::new(shards).detect(&cfd, &rel), direct);
        }
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        let rel = cust_instance();
        let lhs: Vec<AttrId> = (0..2).map(AttrId).collect();
        let cols = rel.columns_for(&lhs);
        for i in 0..rel.len() {
            assert_eq!(shard_of(&cols, i, 5), shard_of(&cols, i, 5));
        }
        // Rows with identical LHS keys land in the same shard.
        assert_eq!(shard_of(&cols, 0, 5), shard_of(&cols, 1, 5));
    }

    #[test]
    fn degenerate_inputs_fall_back_to_the_oracle() {
        let schema = cust_instance().schema().clone();
        let empty = Relation::new(schema);
        let v = ShardedDetector::new(4).detect(&phi2(), &empty);
        assert!(v.is_clean());
        // Tiny relation: fewer rows than 2×shards still reports correctly.
        let rel = cust_instance();
        let v = ShardedDetector::new(64).detect(&phi2(), &rel);
        assert_eq!(v, DirectDetector::new().detect(&phi2(), &rel));
        assert_eq!(ShardedDetector::new(0).shards(), 1);
    }

    #[test]
    fn default_matches_the_available_cores() {
        // One shard per core, never a forced minimum of 2: on a 1-core host
        // the default must not pay spawn overhead for zero overlap.
        assert_eq!(ShardedDetector::default().shards(), available_cores());
        assert!(ShardedDetector::default().shards() >= 1);
        // Explicit counts are still honored verbatim (clamped to >= 1).
        assert_eq!(ShardedDetector::new(7).shards(), 7);
    }

    #[test]
    fn detect_set_merges_in_input_order_like_direct() {
        let rel = cust_instance();
        let cfds: Vec<_> = fig2_cfd_set().into_iter().collect();
        let direct = DirectDetector::new().detect_set(&cfds, &rel);
        let sharded = ShardedDetector::new(3).detect_set(&cfds, &rel);
        assert_eq!(sharded, direct);
    }
}
