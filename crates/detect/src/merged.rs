//! The single query pair validating a whole set of CFDs (Section 4.2.2).
//!
//! Both queries join the data relation with the merged tableaux of
//! [`crate::merge::MergedTableaux`] and use `CASE` expressions to mask
//! attributes whose pattern cell is the don't-care symbol `@`, so that the
//! `GROUP BY` of `QV_Σ` effectively groups each pattern row only by the
//! attributes it constrains (Fig. 8's `Macro` relation).
//!
//! Two formulations are provided:
//!
//! * the **paper form** joins the data relation with `T^X_Σ` and `T^Y_Σ` on
//!   the pattern id, exactly as printed in the paper — useful for inspecting
//!   the generated SQL and for small data;
//! * the **execution form** joins the data relation with the pre-joined
//!   `T^X_Σ ⋈ T^Y_Σ` relation (one row per pattern id, `X_`/`Y_`-prefixed
//!   columns). It is what [`crate::Detector`] runs: the id join is 1:1, so
//!   pre-computing it avoids a quadratic nested loop in the in-memory
//!   executor without changing the result.

use crate::merge::MergedTableaux;
use cfd_sql::ast::{Expr, SelectItem, SelectQuery, TableRef};

/// Alias of the data relation in merged queries.
pub const DATA_ALIAS: &str = "t";
/// Alias of the pre-joined tableau in execution-form queries.
pub const JOINED_ALIAS: &str = "tp";
/// Alias of `T^X_Σ` in paper-form queries.
pub const TX_ALIAS: &str = "txp";
/// Alias of `T^Y_Σ` in paper-form queries.
pub const TY_ALIAS: &str = "typ";

/// `t[Xi] ≍ tp[Xi]` with don't-care: `(t.Xi = <cell> OR <cell> = '_' OR <cell> = '@')`.
fn x_match(data_attr: &str, tableau_alias: &str, tableau_col: &str) -> Expr {
    Expr::or(vec![
        Expr::col(DATA_ALIAS, data_attr).eq(Expr::col(tableau_alias, tableau_col)),
        Expr::col(tableau_alias, tableau_col).eq(Expr::str("_")),
        Expr::col(tableau_alias, tableau_col).eq(Expr::str("@")),
    ])
}

/// `t[Yj] ≭ tp[Yj]` with don't-care: `(t.Yj <> <cell> AND <cell> <> '_' AND <cell> <> '@')`.
fn y_mismatch(data_attr: &str, tableau_alias: &str, tableau_col: &str) -> Expr {
    Expr::and(vec![
        Expr::col(DATA_ALIAS, data_attr).ne(Expr::col(tableau_alias, tableau_col)),
        Expr::col(tableau_alias, tableau_col).ne(Expr::str("_")),
        Expr::col(tableau_alias, tableau_col).ne(Expr::str("@")),
    ])
}

/// `CASE <tableau cell> WHEN '@' THEN '@' ELSE t.<attr> END` — the masking
/// expression of the `Macro` relation.
fn mask(data_attr: &str, tableau_alias: &str, tableau_col: &str) -> Expr {
    Expr::case(
        Expr::col(tableau_alias, tableau_col),
        vec![(Expr::str("@"), Expr::str("@"))],
        Expr::col(DATA_ALIAS, data_attr),
    )
}

/// `CASE <tableau Y cell> WHEN '@' THEN '@' ELSE '+' END` — an indicator of
/// which Y attributes a pattern row constrains.
///
/// The paper's printed `QV_Σ` groups only by the masked `X` attributes. When
/// two CFDs in `Σ` have the *same* LHS attribute set but different RHS
/// attribute sets, their pattern rows produce identical masked-`X` group keys
/// while masking `Y` differently, and a single pair of (tuple, pattern-row)
/// matches would then be counted as two distinct `Y` projections — a false
/// positive. Adding these indicator columns to the GROUP BY keeps every group
/// homogeneous in its `Y` mask, which restores exactness without changing the
/// query's size bound (one extra column per RHS attribute of the embedded
/// FDs). See DESIGN.md, "Deviations".
fn y_mask_signature(tableau_alias: &str, tableau_col: &str) -> Expr {
    Expr::case(
        Expr::col(tableau_alias, tableau_col),
        vec![(Expr::str("@"), Expr::str("@"))],
        Expr::str("+"),
    )
}

/// `QC_Σ` in execution form (data ⋈ pre-joined tableau).
pub fn qc_merged(merged: &MergedTableaux, data_name: &str, joined_name: &str) -> SelectQuery {
    let mut conjuncts: Vec<Expr> = merged
        .x_attrs()
        .iter()
        .map(|a| x_match(a, JOINED_ALIAS, &format!("X_{a}")))
        .collect();
    let mismatches: Vec<Expr> = merged
        .y_attrs()
        .iter()
        .map(|a| y_mismatch(a, JOINED_ALIAS, &format!("Y_{a}")))
        .collect();
    conjuncts.push(Expr::or(mismatches));
    SelectQuery::new()
        .item(SelectItem::wildcard(DATA_ALIAS))
        .from(TableRef::aliased(data_name, DATA_ALIAS))
        .from(TableRef::aliased(joined_name, JOINED_ALIAS))
        .filter(Expr::and(conjuncts))
}

/// `QV_Σ` in execution form: groups by the masked X attributes and counts
/// distinct masked Y projections.
pub fn qv_merged(merged: &MergedTableaux, data_name: &str, joined_name: &str) -> SelectQuery {
    let conjuncts: Vec<Expr> = merged
        .x_attrs()
        .iter()
        .map(|a| x_match(a, JOINED_ALIAS, &format!("X_{a}")))
        .collect();
    let mut query = SelectQuery::new()
        .distinct()
        .from(TableRef::aliased(data_name, DATA_ALIAS))
        .from(TableRef::aliased(joined_name, JOINED_ALIAS));
    for a in merged.x_attrs() {
        let m = mask(a, JOINED_ALIAS, &format!("X_{a}"));
        query = query
            .item(SelectItem::aliased(m.clone(), a.clone()))
            .group(m);
    }
    for a in merged.y_attrs() {
        query = query.group(y_mask_signature(JOINED_ALIAS, &format!("Y_{a}")));
    }
    let distinct_y: Vec<Expr> = merged
        .y_attrs()
        .iter()
        .map(|a| mask(a, JOINED_ALIAS, &format!("Y_{a}")))
        .collect();
    query
        .filter(Expr::and(conjuncts))
        .having_count_distinct_gt(distinct_y, 1)
}

/// `QC_Σ` exactly as printed in the paper: data ⋈ `T^X_Σ` ⋈ `T^Y_Σ` on id.
pub fn qc_merged_paper(
    merged: &MergedTableaux,
    data_name: &str,
    tx_name: &str,
    ty_name: &str,
) -> SelectQuery {
    let mut conjuncts: Vec<Expr> = vec![Expr::col(TX_ALIAS, "id").eq(Expr::col(TY_ALIAS, "id"))];
    conjuncts.extend(merged.x_attrs().iter().map(|a| x_match(a, TX_ALIAS, a)));
    let mismatches: Vec<Expr> = merged
        .y_attrs()
        .iter()
        .map(|a| y_mismatch(a, TY_ALIAS, a))
        .collect();
    conjuncts.push(Expr::or(mismatches));
    SelectQuery::new()
        .item(SelectItem::wildcard(DATA_ALIAS))
        .from(TableRef::aliased(data_name, DATA_ALIAS))
        .from(TableRef::aliased(tx_name, TX_ALIAS))
        .from(TableRef::aliased(ty_name, TY_ALIAS))
        .filter(Expr::and(conjuncts))
}

/// `QV_Σ` exactly as printed in the paper (modulo flattening the `Macro`
/// sub-query into the grouped query, which commercial engines do as well).
pub fn qv_merged_paper(
    merged: &MergedTableaux,
    data_name: &str,
    tx_name: &str,
    ty_name: &str,
) -> SelectQuery {
    let mut conjuncts: Vec<Expr> = vec![Expr::col(TX_ALIAS, "id").eq(Expr::col(TY_ALIAS, "id"))];
    conjuncts.extend(merged.x_attrs().iter().map(|a| x_match(a, TX_ALIAS, a)));
    let mut query = SelectQuery::new()
        .distinct()
        .from(TableRef::aliased(data_name, DATA_ALIAS))
        .from(TableRef::aliased(tx_name, TX_ALIAS))
        .from(TableRef::aliased(ty_name, TY_ALIAS));
    for a in merged.x_attrs() {
        let m = mask(a, TX_ALIAS, a);
        query = query
            .item(SelectItem::aliased(m.clone(), a.clone()))
            .group(m);
    }
    for a in merged.y_attrs() {
        query = query.group(y_mask_signature(TY_ALIAS, a));
    }
    let distinct_y: Vec<Expr> = merged
        .y_attrs()
        .iter()
        .map(|a| mask(a, TY_ALIAS, a))
        .collect();
    query
        .filter(Expr::and(conjuncts))
        .having_count_distinct_gt(distinct_y, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, phi2, phi3_with_fd, phi5};
    use cfd_relation::Value;
    use cfd_sql::{Catalog, Executor, Strategy};

    fn merged_phi3_phi5() -> MergedTableaux {
        MergedTableaux::build(&[phi3_with_fd(), phi5()]).unwrap()
    }

    fn catalog_for(merged: &MergedTableaux) -> Catalog {
        let mut c = Catalog::new();
        c.register(cust_instance());
        c.register_as("TXY", merged.joined_relation("TXY"));
        c.register_as("TX", merged.x_relation("TX"));
        c.register_as("TY", merged.y_relation("TY"));
        c
    }

    #[test]
    fn merged_query_text_contains_case_masking() {
        let merged = merged_phi3_phi5();
        let sql = qv_merged(&merged, "cust", "TXY").to_string();
        assert!(sql.contains("CASE tp.X_CC WHEN '@' THEN '@' ELSE t.CC END"));
        assert!(sql.contains("GROUP BY"));
        assert!(sql.contains("count(distinct CASE tp.Y_CT WHEN '@' THEN '@' ELSE t.CT END"));
        let paper = qv_merged_paper(&merged, "cust", "TX", "TY").to_string();
        assert!(paper.contains("txp.id = typ.id"));
        assert!(paper.contains("FROM cust t, TX txp, TY typ"));
    }

    #[test]
    fn query_size_bounded_by_embedded_fds_not_tableau() {
        let merged = merged_phi3_phi5();
        let qc = qc_merged(&merged, "cust", "TXY");
        // 3 X attrs * 3 atoms + 2 Y attrs * 3 atoms.
        assert_eq!(qc.where_clause.unwrap().atom_count(), 3 * 3 + 2 * 3);
    }

    #[test]
    fn fig8_example_qv_flags_the_nyc_tuples() {
        // ϕ5 = [CT] → [AC] is violated by Fig. 1: NYC has two area codes.
        let merged = merged_phi3_phi5();
        let catalog = catalog_for(&merged);
        let exec = Executor::new(&catalog);
        let result = exec.run(&qv_merged(&merged, "cust", "TXY")).unwrap();
        // The NYC group (masked key (@, @, NYC)) is reported.
        let keys: Vec<&Vec<Value>> = result.rows().iter().collect();
        assert!(
            keys.iter()
                .any(|k| k.contains(&Value::from("NYC")) && k.contains(&Value::from("@"))),
            "expected a masked NYC group key, got {keys:?}"
        );
    }

    #[test]
    fn exec_form_and_paper_form_agree() {
        let merged = MergedTableaux::build(&[phi2(), phi3_with_fd(), phi5()]).unwrap();
        let catalog = catalog_for(&merged);
        for strategy in [Strategy::dnf(), Strategy::cnf()] {
            let exec = Executor::new(&catalog).with_strategy(strategy);
            let qc_a = exec.run(&qc_merged(&merged, "cust", "TXY")).unwrap();
            let qc_b = exec
                .run(&qc_merged_paper(&merged, "cust", "TX", "TY"))
                .unwrap();
            let mut rows_a = qc_a.rows().to_vec();
            let mut rows_b = qc_b.rows().to_vec();
            rows_a.sort();
            rows_a.dedup();
            rows_b.sort();
            rows_b.dedup();
            assert_eq!(rows_a, rows_b, "QC forms disagree under {strategy:?}");

            let qv_a = exec.run(&qv_merged(&merged, "cust", "TXY")).unwrap();
            let qv_b = exec
                .run(&qv_merged_paper(&merged, "cust", "TX", "TY"))
                .unwrap();
            let mut rows_a = qv_a.rows().to_vec();
            let mut rows_b = qv_b.rows().to_vec();
            rows_a.sort();
            rows_b.sort();
            assert_eq!(rows_a, rows_b, "QV forms disagree under {strategy:?}");
        }
    }

    #[test]
    fn merged_qc_finds_the_phi2_constant_violations() {
        let merged = MergedTableaux::build(&[phi2()]).unwrap();
        let catalog = catalog_for(&merged);
        let exec = Executor::new(&catalog);
        let result = exec.run(&qc_merged(&merged, "cust", "TXY")).unwrap();
        let names = result.column_values("NM").unwrap();
        assert!(names.contains(&Value::from("Mike")));
        assert!(names.contains(&Value::from("Rick")));
        assert_eq!(names.len(), 2);
    }
}
