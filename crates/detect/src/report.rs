//! Violation reports.

use cfd_relation::Value;
use std::collections::BTreeSet;
use std::fmt;

/// The result of running the detection queries of Section 4.
///
/// * `constant_violations` are full data tuples returned by the `QC` query:
///   each matches some pattern row on `X` but contradicts a constant on `Y`.
/// * `multi_tuple_keys` are the `X`-projections returned by the `QV` query:
///   groups of tuples that agree (and match a pattern) on `X` but disagree on
///   `Y`. As in the paper, the keys are reported rather than the full tuples;
///   the tuples are recoverable with one more (simple) query.
///
/// Both components are kept as ordered sets so reports are deterministic and
/// directly comparable across detection strategies (SQL vs direct, per-CFD vs
/// merged).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Violations {
    constant_violations: BTreeSet<Vec<Value>>,
    multi_tuple_keys: BTreeSet<Vec<Value>>,
}

impl Violations {
    /// An empty report.
    pub fn new() -> Self {
        Violations::default()
    }

    /// Records a single-tuple (constant) violation.
    pub fn add_constant_violation(&mut self, tuple: Vec<Value>) {
        self.constant_violations.insert(tuple);
    }

    /// Records a multi-tuple violation key.
    pub fn add_multi_tuple_key(&mut self, key: Vec<Value>) {
        self.multi_tuple_keys.insert(key);
    }

    /// The single-tuple violations (full tuples), ordered.
    pub fn constant_violations(&self) -> &BTreeSet<Vec<Value>> {
        &self.constant_violations
    }

    /// The multi-tuple violation keys (`X` projections), ordered.
    pub fn multi_tuple_keys(&self) -> &BTreeSet<Vec<Value>> {
        &self.multi_tuple_keys
    }

    /// Total number of reported items.
    pub fn total(&self) -> usize {
        self.constant_violations.len() + self.multi_tuple_keys.len()
    }

    /// Whether no violation was found.
    pub fn is_clean(&self) -> bool {
        self.constant_violations.is_empty() && self.multi_tuple_keys.is_empty()
    }

    /// Merges another report into this one (used when validating a set of
    /// CFDs one by one).
    pub fn merge(&mut self, other: Violations) {
        self.constant_violations.extend(other.constant_violations);
        self.multi_tuple_keys.extend(other.multi_tuple_keys);
    }

    /// Iterates the report as typed [`ViolationItem`]s — single-tuple
    /// violations first, then multi-tuple keys, both in their ordered-set
    /// order. This is the form a session's `explain` accessor consumes, so
    /// report iteration and provenance lookup fuse into one loop:
    ///
    /// ```ignore
    /// for item in session.detect()?.items() {
    ///     for explanation in session.explain(&item)? { /* … */ }
    /// }
    /// ```
    pub fn items(&self) -> impl Iterator<Item = ViolationItem> + '_ {
        self.constant_violations
            .iter()
            .map(|t| ViolationItem::Constant(t.clone()))
            .chain(
                self.multi_tuple_keys
                    .iter()
                    .map(|k| ViolationItem::MultiTupleKey(k.clone())),
            )
    }

    /// The canonical serialized form of the report: the [`fmt::Display`]
    /// rendering as bytes. Equal reports always render to equal bytes; the
    /// converse does *not* hold (rendering erases value types — `Int(5)` and
    /// `Str("5")` print alike), so the differential harness asserts `Eq`
    /// **and** byte equality: the former catches typed divergences, the
    /// latter pins the user-visible rendering.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }
}

/// One finding of a [`Violations`] report, tagged with its kind — the unit
/// of iteration [`Violations::items`] yields and a session's `explain`
/// provenance accessor takes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationItem {
    /// A single-tuple (`QC`) violation: the full violating tuple.
    Constant(Vec<Value>),
    /// A multi-tuple (`QV`) violation: the `X`-projection key of a group
    /// with more than one distinct `Y` projection.
    MultiTupleKey(Vec<Value>),
}

impl ViolationItem {
    /// The carried values (the full tuple or the group key).
    pub fn values(&self) -> &[Value] {
        match self {
            ViolationItem::Constant(t) => t,
            ViolationItem::MultiTupleKey(k) => k,
        }
    }
}

impl fmt::Display for Violations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} single-tuple violation(s), {} multi-tuple group key(s)",
            self.constant_violations.len(),
            self.multi_tuple_keys.len()
        )?;
        for t in &self.constant_violations {
            writeln!(
                f,
                "  QC: ({})",
                t.iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        for k in &self.multi_tuple_keys {
            writeln!(
                f,
                "  QV: ({})",
                k.iter()
                    .map(Value::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_clean() {
        let v = Violations::new();
        assert!(v.is_clean());
        assert_eq!(v.total(), 0);
    }

    #[test]
    fn duplicates_are_collapsed() {
        let mut v = Violations::new();
        v.add_constant_violation(vec![Value::from("a")]);
        v.add_constant_violation(vec![Value::from("a")]);
        v.add_multi_tuple_key(vec![Value::from("k")]);
        assert_eq!(v.total(), 2);
        assert!(!v.is_clean());
    }

    #[test]
    fn merge_unions_both_components() {
        let mut a = Violations::new();
        a.add_constant_violation(vec![Value::from("x")]);
        let mut b = Violations::new();
        b.add_constant_violation(vec![Value::from("x")]);
        b.add_multi_tuple_key(vec![Value::from("y")]);
        a.merge(b);
        assert_eq!(a.constant_violations().len(), 1);
        assert_eq!(a.multi_tuple_keys().len(), 1);
    }

    #[test]
    fn canonical_bytes_match_iff_reports_are_equal() {
        let mut a = Violations::new();
        a.add_constant_violation(vec![Value::from("x")]);
        a.add_multi_tuple_key(vec![Value::from("k")]);
        // Same content inserted in the opposite order: identical bytes.
        let mut b = Violations::new();
        b.add_multi_tuple_key(vec![Value::from("k")]);
        b.add_constant_violation(vec![Value::from("x")]);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        b.add_constant_violation(vec![Value::from("y")]);
        assert_ne!(a.canonical_bytes(), b.canonical_bytes());
    }

    #[test]
    fn items_iterate_both_kinds_in_order() {
        let mut v = Violations::new();
        v.add_multi_tuple_key(vec![Value::from("k")]);
        v.add_constant_violation(vec![Value::from("x"), Value::from("y")]);
        let items: Vec<ViolationItem> = v.items().collect();
        assert_eq!(
            items,
            vec![
                ViolationItem::Constant(vec![Value::from("x"), Value::from("y")]),
                ViolationItem::MultiTupleKey(vec![Value::from("k")]),
            ]
        );
        assert_eq!(items[0].values().len(), 2);
        assert_eq!(items[1].values(), &[Value::from("k")]);
    }

    #[test]
    fn display_lists_both_kinds() {
        let mut v = Violations::new();
        v.add_constant_violation(vec![Value::from("01"), Value::from("908")]);
        v.add_multi_tuple_key(vec![Value::from("01")]);
        let text = v.to_string();
        assert!(text.contains("QC: (01, 908)"));
        assert!(text.contains("QV: (01)"));
        assert!(text.contains("1 single-tuple violation(s)"));
    }
}
