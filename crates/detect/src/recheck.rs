//! Narrow per-group re-checking — the incremental-violation-maintenance
//! entry point consumed by `cfd-repair`.
//!
//! After a repair engine edits a handful of cells, re-running a full
//! detection pass per CFD (as the pass-loop heuristic does) costs
//! `O(passes × |Σ| × |I|)`. But a cell edit can only create or resolve
//! violations inside the `GROUP BY X` groups it touches: the group the row
//! left, the group it joined (when an `X` attribute changed), or the group it
//! already sat in (when a `Y` attribute changed). Given an [`Index`] over the
//! CFD's LHS attributes, those groups are a hash lookup away — so re-checking
//! after an edit is `O(|touched groups|)` instead of `O(|I|)`.
//!
//! [`recheck_lhs_key`] is that re-check: it evaluates exactly the `QC`/`QV`
//! semantics of [`Cfd::violations`] restricted to one LHS group, via the
//! columnar machinery (`Y` column slices, interned-id pattern matches).
//! [`recheck_lhs_keys`] is its **batched** form: one call re-checks a whole
//! round's worth of dirtied groups through the [`BLOCK`]-chunked column
//! access of the vectorized kernels, resolving the RHS column slices once
//! per batch (not once per key), deciding the pattern-independent
//! multi-tuple verdict in one column-major pass per group, and reusing a
//! caller-held [`RecheckScratch`] so the steady state allocates nothing per
//! key — the entry point the parallel repair engine fans out over worker
//! threads.
//!
//! # Contract
//!
//! * `index` must cover `cfd.lhs()` **in LHS order** and be in sync with
//!   `rel` (maintained through [`Index::insert_row`] / [`Index::remove_row`]
//!   as cells are edited).
//! * `cfd` must not contain the don't-care symbol `@` (merged-tableaux CFDs
//!   group by *effective* attribute subsets, which a full-LHS index cannot
//!   reproduce; callers fall back to [`Cfd::violations`] for those — checked
//!   by a `debug_assert`).
//! * The returned witnesses are exactly the subset of [`Cfd::violations`]
//!   whose group key equals `key`, in the same deterministic
//!   `(pattern_index, rows, kind)` order — byte-determinism of repair rests
//!   on this. [`recheck_lhs_keys`] emits each key's witnesses in the order
//!   the keys were given, each key's block internally in that same order,
//!   so batching a sorted key list is byte-identical to looping
//!   [`recheck_lhs_key`] over it.

use crate::kernels::BLOCK;
use cfd_core::{Cfd, ViolationKind, ViolationWitness};
use cfd_relation::{Index, Relation, ValueId};

/// Reusable buffers for [`recheck_lhs_keys`]: cleared between groups but
/// never shrunk, so repeated batched re-checks (one per repair round, or one
/// per worker chunk) allocate nothing per key in the steady state — the same
/// arena discipline as the kernels' `ScanScratch`.
#[derive(Debug, Default)]
pub struct RecheckScratch {
    /// Sorted row ids of the group under check.
    rows: Vec<usize>,
}

impl RecheckScratch {
    /// Fresh scratch (allocates lazily on first use).
    pub fn new() -> Self {
        RecheckScratch::default()
    }
}

/// Re-checks one `GROUP BY X` group of `cfd` for violations.
///
/// `key` is the group's interned LHS projection (in `cfd.lhs()` order);
/// the group's rows are resolved through `index`. Returns the violation
/// witnesses of that group only — see the [module docs](self) for the full
/// contract. Equivalent to a one-key [`recheck_lhs_keys`] batch.
pub fn recheck_lhs_key(
    cfd: &Cfd,
    rel: &Relation,
    index: &Index,
    key: &[ValueId],
) -> Vec<ViolationWitness> {
    recheck_lhs_keys(cfd, rel, index, &[key], &mut RecheckScratch::new())
}

/// Re-checks a batch of `GROUP BY X` groups of `cfd` in one call.
///
/// Byte-identical to flat-mapping [`recheck_lhs_key`] over `keys` in order,
/// but vectorized: the RHS column slices are resolved once per batch, each
/// group's rows are gathered into the reusable `scratch` (no per-key
/// allocation in steady state), the group's Y cells are compared
/// column-major in [`BLOCK`]-sized chunks, and the pattern-independent
/// multi-tuple verdict is decided once per group instead of once per
/// pattern. See the [module docs](self) for the full contract.
pub fn recheck_lhs_keys<K: AsRef<[ValueId]>>(
    cfd: &Cfd,
    rel: &Relation,
    index: &Index,
    keys: &[K],
    scratch: &mut RecheckScratch,
) -> Vec<ViolationWitness> {
    debug_assert!(
        !cfd.has_dont_care(),
        "recheck groups by the full LHS; don't-care tableaux need Cfd::violations"
    );
    debug_assert_eq!(
        index.attrs(),
        cfd.lhs(),
        "the index must cover the CFD's LHS attributes in order"
    );
    let mut out = Vec::new();
    if keys.is_empty() {
        return out;
    }
    let rhs_cols = rel.columns_for(cfd.rhs());
    for key in keys {
        let key = key.as_ref();
        let posting = index.lookup_ids(key);
        if posting.is_empty() {
            continue;
        }
        // Index posting lists can lose row order across remove/insert
        // cycles; witnesses carry sorted rows (matching Cfd::violations).
        scratch.rows.clear();
        scratch.rows.extend_from_slice(posting);
        scratch.rows.sort_unstable();
        let rows = &scratch.rows;
        let group_start = out.len();

        // The multi-tuple verdict does not depend on the pattern (only its
        // emission does): one block-chunked column-major pass against the
        // first row's Y representative decides it for every pattern, with no
        // per-row Y projection materialized.
        let first = rows[0];
        let mut multi = false;
        'scan: for chunk in rows[1..].chunks(BLOCK) {
            for &row in chunk {
                if !rhs_cols.iter().all(|col| col[row] == col[first]) {
                    multi = true;
                    break 'scan;
                }
            }
        }

        for (pattern_idx, pattern) in cfd.tableau().iter().enumerate() {
            if !pattern.lhs_matches_ids(key) {
                continue;
            }
            for chunk in rows.chunks(BLOCK) {
                for &row in chunk {
                    let clean = pattern
                        .rhs()
                        .iter()
                        .zip(&rhs_cols)
                        .all(|(cell, col)| cell.matches_id(col[row]));
                    if !clean {
                        out.push(ViolationWitness {
                            pattern_index: pattern_idx,
                            kind: ViolationKind::SingleTuple,
                            rows: vec![row],
                        });
                    }
                }
            }
            if multi {
                out.push(ViolationWitness {
                    pattern_index: pattern_idx,
                    kind: ViolationKind::MultiTuple,
                    rows: rows.clone(),
                });
            }
        }
        out[group_start..].sort_by(ViolationWitness::deterministic_cmp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_datagen::cust::{cust_instance, phi2, phi3};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::Value;
    use std::collections::BTreeSet;

    /// Rechecking every group of an instance must reproduce Cfd::violations
    /// exactly (same witnesses, same per-group order).
    fn assert_recheck_covers_full_detection(cfd: &Cfd, rel: &Relation, label: &str) {
        let index = rel.build_index(cfd.lhs());
        let mut keys: BTreeSet<Vec<ValueId>> = BTreeSet::new();
        for (key, _) in index.iter() {
            keys.insert(key.clone());
        }
        let mut rechecked: Vec<ViolationWitness> = keys
            .iter()
            .flat_map(|key| recheck_lhs_key(cfd, rel, &index, key))
            .collect();
        rechecked.sort_by(ViolationWitness::deterministic_cmp);
        assert_eq!(rechecked, cfd.violations(rel), "{label}");
    }

    #[test]
    fn recheck_agrees_with_full_detection_on_the_running_example() {
        let rel = cust_instance();
        assert_recheck_covers_full_detection(&phi2(), &rel, "phi2");
        assert_recheck_covers_full_detection(&phi3(), &rel, "phi3");
    }

    #[test]
    fn recheck_agrees_with_full_detection_on_noisy_tax_data() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 500,
            noise_percent: 10.0,
            seed: 7,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(3);
        for (fd, tab, consts) in [
            (EmbeddedFd::ZipToState, 60, 100.0),
            (EmbeddedFd::AreaToCity, 80, 40.0),
            (EmbeddedFd::StateMaritalToExemption, 40, 60.0),
        ] {
            let cfd = workload.single(fd, tab, consts);
            assert_recheck_covers_full_detection(&cfd, &noisy, &format!("{fd:?}"));
        }
    }

    #[test]
    fn recheck_of_a_clean_or_absent_group_is_empty() {
        let rel = cust_instance();
        let cfd = phi2();
        let index = rel.build_index(cfd.lhs());
        // A clean group: Ben's (01, 215, 3333333).
        let clean_key: Vec<ValueId> = ["01", "215", "3333333"]
            .iter()
            .map(|s| ValueId::of(&Value::from(*s)))
            .collect();
        assert!(recheck_lhs_key(&cfd, &rel, &index, &clean_key).is_empty());
        // A key no row carries.
        let absent: Vec<ValueId> = ["99", "999", "0000000"]
            .iter()
            .map(|s| ValueId::of(&Value::from(*s)))
            .collect();
        assert!(recheck_lhs_key(&cfd, &rel, &index, &absent).is_empty());
    }

    /// The batched form must be byte-identical to flat-mapping the one-key
    /// form over the same key list — including witness order — with one
    /// scratch reused across the whole batch.
    #[test]
    fn batched_recheck_equals_the_per_key_loop() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 800,
            noise_percent: 12.0,
            seed: 21,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(5);
        for (fd, tab, consts) in [
            (EmbeddedFd::ZipToState, 60, 100.0),
            (EmbeddedFd::AreaToCity, 80, 40.0),
        ] {
            let cfd = workload.single(fd, tab, consts);
            let index = noisy.build_index(cfd.lhs());
            let keys: BTreeSet<Vec<ValueId>> = index.iter().map(|(k, _)| k.clone()).collect();
            let keys: Vec<Vec<ValueId>> = keys.into_iter().collect();
            let looped: Vec<ViolationWitness> = keys
                .iter()
                .flat_map(|key| recheck_lhs_key(&cfd, &noisy, &index, key))
                .collect();
            let mut scratch = RecheckScratch::new();
            let batched = recheck_lhs_keys(&cfd, &noisy, &index, &keys, &mut scratch);
            assert_eq!(batched, looped, "{fd:?}: whole-key-space batch");
            // Arbitrary sub-batches through the same scratch agree too.
            let mut chunked = Vec::new();
            for chunk in keys.chunks(7) {
                chunked.extend(recheck_lhs_keys(&cfd, &noisy, &index, chunk, &mut scratch));
            }
            assert_eq!(chunked, looped, "{fd:?}: chunked batches, reused scratch");
        }
    }

    /// A batch containing clean and absent keys contributes nothing for
    /// them, exactly like the one-key form.
    #[test]
    fn batched_recheck_skips_clean_and_absent_groups() {
        let rel = cust_instance();
        let cfd = phi2();
        let index = rel.build_index(cfd.lhs());
        let dirty: Vec<ValueId> = ["01", "908", "1111111"]
            .iter()
            .map(|s| ValueId::of(&Value::from(*s)))
            .collect();
        let clean: Vec<ValueId> = ["01", "215", "3333333"]
            .iter()
            .map(|s| ValueId::of(&Value::from(*s)))
            .collect();
        let absent: Vec<ValueId> = ["99", "999", "0000000"]
            .iter()
            .map(|s| ValueId::of(&Value::from(*s)))
            .collect();
        let batch = [clean.clone(), dirty.clone(), absent.clone()];
        let got = recheck_lhs_keys(&cfd, &rel, &index, &batch, &mut RecheckScratch::new());
        assert_eq!(got, recheck_lhs_key(&cfd, &rel, &index, &dirty));
        assert!(recheck_lhs_keys(
            &cfd,
            &rel,
            &index,
            &[clean, absent],
            &mut RecheckScratch::new()
        )
        .is_empty());
    }

    #[test]
    fn recheck_tracks_index_maintenance_after_an_edit() {
        // Fix t1's city through the columnar edit path, maintain the index,
        // and observe the group's violation set shrink.
        let mut rel = cust_instance();
        let cfd = phi2();
        let mut index = rel.build_index(cfd.lhs());
        let key: Vec<ValueId> = ["01", "908", "1111111"]
            .iter()
            .map(|s| ValueId::of(&Value::from(*s)))
            .collect();
        let before = recheck_lhs_key(&cfd, &rel, &index, &key);
        assert_eq!(before.len(), 2, "t1 and t2 both violate the 908 pattern");

        let ct = rel.schema().resolve("CT").unwrap();
        for row in [0usize, 1] {
            let old = rel.row(row).unwrap().to_ids();
            rel.set_value(row, ct, Value::from("MH"));
            let new = rel.row(row).unwrap().to_ids();
            // CT is not an LHS attribute of phi2, so the index is unchanged —
            // but exercise the maintenance calls anyway.
            index.remove_row(row, &old);
            index.insert_row(row, &new);
        }
        assert!(recheck_lhs_key(&cfd, &rel, &index, &key).is_empty());
    }
}
