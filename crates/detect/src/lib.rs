//! # cfd-detect — detecting CFD violations with SQL (Section 4)
//!
//! Given an instance `I` and a set `Σ` of CFDs, detection finds all the
//! inconsistent tuples — the tuples that (alone or together with others)
//! violate some CFD in `Σ`. The paper's key idea is that detection can be
//! pushed into a pair of SQL queries per CFD:
//!
//! * `QC` finds *single-tuple* violations: tuples matching a pattern row on
//!   the `X` attributes but contradicting one of its constants on `Y`;
//! * `QV` finds *multi-tuple* violations with a
//!   `GROUP BY X HAVING COUNT(DISTINCT Y) > 1`;
//!
//! and that a whole set of CFDs can be validated with a **single** query pair
//! by merging the pattern tableaux into union-compatible `T^X_Σ` / `T^Y_Σ`
//! tables (padding missing attributes with the don't-care symbol `@`) and
//! masking don't-care cells with SQL `CASE` expressions — keeping the query
//! size bounded by the embedded FDs and the number of passes over the data
//! at two.
//!
//! This crate provides:
//!
//! * [`single`] — `QC`/`QV` generation for one CFD (Fig. 5),
//! * [`merge`] — tableau merging with `@` and tuple ids (Fig. 6/7),
//! * [`merged`] — the merged query pair with `CASE` masking (Section 4.2.2),
//! * [`detector`] — the high-level [`Detector`] that runs those queries on
//!   the in-memory SQL engine (per-CFD, merged, or in parallel), and the
//!   [`DetectorKind`] selector dispatching over every engine,
//! * [`direct`] — an independent hash-based detector used as a test oracle
//!   and as a non-SQL fast path,
//! * [`sharded`] — the [`ShardedDetector`]: rows hash-partitioned by interned
//!   LHS key and scanned on scoped worker threads, byte-identical reports to
//!   the direct path (extension beyond the paper),
//! * [`incremental`] — the [`IncrementalDetector`] stream engine: batched
//!   insert/delete maintenance with group-local index updates (extension
//!   beyond the paper),
//! * [`recheck`] — [`recheck_lhs_key`]: per-`GROUP BY X`-group violation
//!   re-checking through a maintained LHS [`cfd_relation::Index`], the
//!   incremental-maintenance entry point the repair engine drives after
//!   each applied edit (extension beyond the paper).
//!
//! ```
//! use cfd_datagen::cust::{cust_instance, phi2};
//! use cfd_detect::Detector;
//!
//! let violations = Detector::new().detect(&phi2(), &cust_instance()).unwrap();
//! // t1 and t2 of Fig. 1 violate the (01, 908, _ ‖ _, MH, _) pattern.
//! assert_eq!(violations.constant_violations().len(), 2);
//! ```

pub mod detector;
pub mod direct;
pub mod incremental;
pub mod kernels;
pub mod merge;
pub mod merged;
pub mod planner;
pub mod recheck;
pub mod report;
pub mod sharded;
pub mod single;

pub use detector::{DetectStats, Detector, DetectorKind};
pub use direct::{detect_with_index, DirectDetector};
pub use incremental::{BatchOp, IncrementalDetector};
pub use kernels::{scan_group, ScanScratch};
pub use merge::MergedTableaux;
pub use planner::{DetectionPlan, PlanStep, Planner, StepStrategy};
pub use recheck::{recheck_lhs_key, recheck_lhs_keys, RecheckScratch};
pub use report::{ViolationItem, Violations};
pub use sharded::{available_cores, ShardedDetector, MIN_ROWS_PER_WORKER};
