//! The cost-based adaptive detection planner behind
//! [`DetectorKind::Auto`](crate::DetectorKind::Auto).
//!
//! The paper's Fig. 9 experiments show that no static detection strategy
//! wins everywhere: merged tableaux beat per-CFD passes only past a
//! tableau-size threshold, sharding only pays when LHS groups are numerous
//! and cores are available, and index-driven detection only pays when the
//! grouping work it skips dominates. [`Planner`] makes that choice per CFD
//! from two inputs:
//!
//! * **data statistics** ([`RelationStats`], the `cfd-relation` stats
//!   layer): row count, per-column distinct values (pattern-constant
//!   selectivity) and group cardinalities of the LHS attribute sets;
//! * **rule shape**: tableau size, constants vs wildcards per pattern row,
//!   LHS/RHS arity, don't-care presence.
//!
//! Candidate strategies per plan step (costed in comparable abstract units,
//! roughly nanoseconds of the vectorized kernels):
//!
//! * [`StepStrategy::Direct`] — the single-threaded block scan
//!   ([`scan_group`]);
//! * [`StepStrategy::Sharded`] — the same scan hash-partitioned over worker
//!   threads; the shard count comes from the data size and
//!   [`available_cores`] (the same source as
//!   [`ShardedDetector::default`](crate::ShardedDetector));
//! * [`StepStrategy::Merged`] — several CFDs with **identical LHS
//!   attribute lists** fused into one scan that pays hashing and grouping
//!   once (the planner's merged-tableaux mode; unlike the SQL merged plan
//!   of Section 4.2 it preserves each CFD's own `QV` key space, so reports
//!   stay byte-identical to the per-CFD paths);
//! * [`StepStrategy::IndexDriven`] — the group-driven scan over a prebuilt
//!   LHS [`Index`] ([`detect_with_index`]), considered when an index can be
//!   reused across detections (a serving `Session`) and the CFD has no
//!   don't-care cells.
//!
//! # Never worse than static, by intent
//!
//! The planner's goal is that `DetectorKind::Auto` never loses
//! meaningfully to the best static engine and avoids the worst one: every
//! candidate it chooses from **is** one of the static paths, planning reads
//! cached statistics (collected in one cheap pass per snapshot), and the
//! cost model only has to rank strategies, not predict absolute runtimes.
//! When estimates are off the penalty is bounded by the best static
//! engine's own cost profile — the differential harness pins that the
//! *report* is byte-identical to [`DirectDetector`](crate::DirectDetector)
//! regardless.
//!
//! Plans are inspectable: [`DetectionPlan`] records, per step, the chosen
//! strategy and every candidate's estimated cost ([`PlanStep::candidates`]),
//! and renders a human-readable summary via `Display`.

use crate::direct::detect_with_index;
use crate::kernels::{scan_group, ScanScratch, FUSE_MAX};
use crate::report::Violations;
use crate::sharded::{available_cores, shard_of, MIN_ROWS_PER_WORKER};
use cfd_core::Cfd;
use cfd_relation::{Index, Relation, RelationStats};
use std::fmt;

// Abstract cost units (≈ ns of the vectorized kernels on one core).
/// Hashing one key column cell into the block hash.
const HASH: f64 = 2.0;
/// Group-table probe per row.
const PROBE: f64 = 6.0;
/// Comparing one `Y` column cell.
const YCMP: f64 = 1.0;
/// Evaluating one pattern cell.
const CELL: f64 = 1.0;
/// Creating one group entry.
const GROUP_NEW: f64 = 10.0;
/// Partitioning one key column cell (sharded pre-pass).
const PARTITION: f64 = 2.0;
/// Spawning and joining one worker thread.
const SPAWN: f64 = 60_000.0;
/// Scanning one row in a `QC` constant prefilter (a branch-predictable
/// slice compare, cheaper than a hash).
const QC_SCAN: f64 = 0.5;
/// Per-row overhead of the index-driven scan (the `Y` scratch gather).
const INDEX_ROW: f64 = 2.0;
/// Per matched pattern row, the per-data-row RHS check of the index-driven
/// scan — the term that prices index iteration out for wildcard-heavy
/// tableaux, where every row is re-checked against every matching pattern.
const PATTERN_CMP: f64 = 2.0;
/// Per-group overhead of iterating a hash index (pointer chasing).
const INDEX_ITER: f64 = 32.0;

/// How one plan step executes (see the module docs for when each wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStrategy {
    /// Single-threaded vectorized block scan.
    Direct,
    /// Hash-partitioned parallel block scan.
    Sharded {
        /// Worker/shard count the cost model settled on.
        shards: usize,
    },
    /// Fused same-LHS multi-CFD scan (`shards == 1` runs single-threaded).
    Merged {
        /// Worker/shard count the cost model settled on.
        shards: usize,
    },
    /// Group-driven scan over a prebuilt LHS index.
    IndexDriven,
}

impl fmt::Display for StepStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepStrategy::Direct => write!(f, "direct"),
            StepStrategy::Sharded { shards } => write!(f, "sharded({shards})"),
            StepStrategy::Merged { shards } if *shards > 1 => write!(f, "merged({shards})"),
            StepStrategy::Merged { .. } => write!(f, "merged"),
            StepStrategy::IndexDriven => write!(f, "index"),
        }
    }
}

/// One step of a [`DetectionPlan`]: the CFDs it covers (indices into the
/// planned set — more than one only for [`StepStrategy::Merged`]), the
/// chosen strategy, and the cost estimates behind the choice.
#[derive(Debug, Clone)]
pub struct PlanStep {
    cfds: Vec<usize>,
    strategy: StepStrategy,
    candidates: Vec<(StepStrategy, f64)>,
    est_groups: f64,
    tableau_rows: usize,
}

impl PlanStep {
    /// Indices (into the planned CFD set) this step detects.
    pub fn cfds(&self) -> &[usize] {
        &self.cfds
    }

    /// The strategy the cost model chose.
    pub fn strategy(&self) -> StepStrategy {
        self.strategy
    }

    /// Every candidate the cost model considered, with its estimated cost
    /// (abstract units; lower is better). The chosen strategy is the
    /// minimum.
    pub fn candidates(&self) -> &[(StepStrategy, f64)] {
        &self.candidates
    }

    /// Estimated number of LHS groups (`GROUP BY X` keys) of this step.
    pub fn est_groups(&self) -> f64 {
        self.est_groups
    }

    /// Total pattern-tableau rows across the step's CFDs.
    pub fn tableau_rows(&self) -> usize {
        self.tableau_rows
    }
}

/// An executable detection plan with full provenance — obtain via
/// [`Planner::plan`], inspect via [`DetectionPlan::steps`] or `Display`,
/// run via [`Planner::execute`].
#[derive(Debug, Clone)]
pub struct DetectionPlan {
    steps: Vec<PlanStep>,
    rows: usize,
    parallelism: usize,
}

impl DetectionPlan {
    /// The plan's steps, in execution order.
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// Rows of the snapshot the plan was made for.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The parallelism budget the planner assumed.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Whether any step wants a prebuilt LHS index.
    pub fn needs_indexes(&self) -> bool {
        self.steps
            .iter()
            .any(|s| s.strategy == StepStrategy::IndexDriven)
    }

    /// The strategy chosen for one CFD (by index into the planned set).
    pub fn strategy_for(&self, cfd_index: usize) -> Option<StepStrategy> {
        self.steps
            .iter()
            .find(|s| s.cfds.contains(&cfd_index))
            .map(|s| s.strategy)
    }
}

impl fmt::Display for DetectionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "detection plan: {} rows, parallelism {}",
            self.rows, self.parallelism
        )?;
        for step in &self.steps {
            write!(
                f,
                "  cfds {:?} -> {} (groups~{:.0}, tableau {}; candidates:",
                step.cfds, step.strategy, step.est_groups, step.tableau_rows
            )?;
            for (strategy, cost) in &step.candidates {
                write!(f, " {strategy}={cost:.0}")?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

/// Per-CFD rule-shape features the cost model consumes (derived once per
/// plan call — all O(tableau) to compute).
struct RuleShape {
    arity: usize,
    rhs_arity: usize,
    tableau_rows: usize,
    keyed: bool,
}

impl RuleShape {
    fn of(cfd: &Cfd) -> RuleShape {
        RuleShape {
            arity: cfd.lhs().len(),
            rhs_arity: cfd.rhs().len(),
            tableau_rows: cfd.tableau().len(),
            keyed: !cfd.has_dont_care(),
        }
    }
}

/// The adaptive planner. Construct with [`Planner::new`] (machine
/// parallelism) or [`Planner::with_parallelism`] (tests, capped serving).
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    parallelism: usize,
}

impl Default for Planner {
    fn default() -> Self {
        Planner::new()
    }
}

impl Planner {
    /// A planner budgeting [`available_cores`] worker threads — the same
    /// parallelism source as [`ShardedDetector::default`](crate::ShardedDetector).
    pub fn new() -> Self {
        Planner {
            parallelism: available_cores(),
        }
    }

    /// A planner with an explicit worker budget (≥ 1). Shard counts never
    /// exceed it; `1` disables sharded candidates entirely.
    pub fn with_parallelism(parallelism: usize) -> Self {
        Planner {
            parallelism: parallelism.max(1),
        }
    }

    /// The worker budget.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Plans the detection of `cfds` over `rel`, reading (and lazily
    /// filling) `stats`. `index_reusable` says whether a prebuilt LHS index
    /// would amortize across detections — `true` for a serving `Session`
    /// that caches indexes per snapshot, `false` for one-shot detection
    /// (where building an index costs more than the scan it replaces, so
    /// index-driven steps are never chosen).
    pub fn plan(
        &self,
        cfds: &[Cfd],
        rel: &Relation,
        stats: &mut RelationStats,
        index_reusable: bool,
    ) -> DetectionPlan {
        let rows = rel.len();
        let shapes: Vec<RuleShape> = cfds.iter().map(RuleShape::of).collect();

        // Fuse CFDs with identical LHS attribute lists (preserving set
        // order): they share hash, probe and group table in one scan.
        let mut fused: Vec<Vec<usize>> = Vec::new();
        for (i, cfd) in cfds.iter().enumerate() {
            match fused
                .iter_mut()
                .find(|g| cfds[g[0]].lhs() == cfd.lhs() && g.len() < FUSE_MAX)
            {
                Some(group) => group.push(i),
                None => fused.push(vec![i]),
            }
        }

        let mut steps = Vec::with_capacity(fused.len());
        for group in fused {
            let groups_est = stats.group_stats(rel, cfds[group[0]].lhs()).keys;
            let scan = self.scan_cost(&group, cfds, &shapes, rel, stats, groups_est);

            let mut candidates: Vec<(StepStrategy, f64)> = Vec::new();
            let single = group.len() == 1;
            let direct_like = if single {
                StepStrategy::Direct
            } else {
                StepStrategy::Merged { shards: 1 }
            };
            candidates.push((direct_like, scan));
            if !single {
                // Unfused per-CFD scans, for provenance: what merging saves.
                let per_cfd: f64 = group
                    .iter()
                    .map(|&i| self.scan_cost(&[i], cfds, &shapes, rel, stats, groups_est))
                    .sum();
                candidates.push((StepStrategy::Direct, per_cfd));
            }
            if let Some(shards) = self.shard_count(rows) {
                let arity = shapes[group[0]].arity as f64;
                let cost =
                    PARTITION * rows as f64 * arity + scan / shards as f64 + SPAWN * shards as f64;
                let strategy = if single {
                    StepStrategy::Sharded { shards }
                } else {
                    StepStrategy::Merged { shards }
                };
                candidates.push((strategy, cost));
            }
            if single && index_reusable && shapes[group[0]].keyed {
                let cost = self.index_cost(group[0], cfds, &shapes, rel, stats, groups_est);
                candidates.push((StepStrategy::IndexDriven, cost));
            }

            // `candidates` always holds the Direct entry pushed above, but
            // the planner must not be able to panic: fall back to Direct
            // rather than unwrap.
            let (strategy, _) = candidates
                .iter()
                .copied()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap_or((StepStrategy::Direct, f64::INFINITY));
            let tableau_rows = group.iter().map(|&i| shapes[i].tableau_rows).sum();
            steps.push(PlanStep {
                cfds: group,
                strategy,
                candidates,
                est_groups: groups_est,
                tableau_rows,
            });
        }

        DetectionPlan {
            steps,
            rows,
            parallelism: self.parallelism,
        }
    }

    /// Executes a plan produced by [`Planner::plan`] over the same CFD set
    /// and snapshot. `indexes` supplies prebuilt per-CFD LHS indexes
    /// (`None` slots for unkeyed CFDs); index-driven steps build their own
    /// when absent. The report is byte-identical to
    /// [`DirectDetector::detect_set`](crate::DirectDetector::detect_set) —
    /// every strategy is one of the
    /// proven-equivalent paths.
    pub fn execute(
        &self,
        plan: &DetectionPlan,
        cfds: &[Cfd],
        rel: &Relation,
        indexes: Option<&[Option<Index>]>,
    ) -> Violations {
        let mut out = Violations::new();
        let mut scratch = ScanScratch::new();
        for step in &plan.steps {
            let refs: Vec<&Cfd> = step.cfds.iter().map(|&i| &cfds[i]).collect();
            match step.strategy {
                StepStrategy::Direct | StepStrategy::Merged { shards: 1 } => {
                    scan_group(&refs, rel, None, &mut scratch, &mut out);
                }
                StepStrategy::Sharded { shards } | StepStrategy::Merged { shards } => {
                    scan_group_sharded(&refs, rel, shards, &mut out);
                }
                StepStrategy::IndexDriven => {
                    let cfd_index = step.cfds[0];
                    let cfd = &cfds[cfd_index];
                    let prebuilt = indexes
                        .and_then(|slots| slots.get(cfd_index))
                        .and_then(Option::as_ref);
                    match prebuilt {
                        Some(index) => out.merge(detect_with_index(cfd, rel, index)),
                        None => {
                            let index = rel.build_index(cfd.lhs());
                            out.merge(detect_with_index(cfd, rel, &index));
                        }
                    }
                }
            }
        }
        out
    }

    /// One-shot adaptive detection: collect stats, plan (without reusable
    /// indexes), execute. This is what [`DetectorKind::Auto`](crate::DetectorKind::Auto)
    /// dispatches to outside a serving session.
    pub fn detect_set(&self, cfds: &[Cfd], rel: &Relation) -> Violations {
        let mut stats = RelationStats::new(rel);
        let plan = self.plan(cfds, rel, &mut stats, false);
        self.execute(&plan, cfds, rel, None)
    }

    /// Shard-count proposal for `rows`, or `None` when sharding cannot pay
    /// (single worker budget, or too few rows per worker).
    fn shard_count(&self, rows: usize) -> Option<usize> {
        if self.parallelism < 2 || rows < 2 * MIN_ROWS_PER_WORKER {
            return None;
        }
        Some(self.parallelism.min(rows / MIN_ROWS_PER_WORKER).max(2))
    }

    /// Estimated cost of one fused block scan over `group`.
    fn scan_cost(
        &self,
        group: &[usize],
        cfds: &[Cfd],
        shapes: &[RuleShape],
        rel: &Relation,
        stats: &mut RelationStats,
        groups_est: f64,
    ) -> f64 {
        let n = stats.rows() as f64;
        let arity = shapes[group[0]].arity as f64;
        let mut cost = n * (arity * HASH + PROBE) + groups_est * GROUP_NEW;
        for &i in group {
            let shape = &shapes[i];
            cost += n * shape.rhs_arity as f64 * YCMP;
            cost += groups_est * shape.tableau_rows as f64 * arity * CELL;
            cost += self.qc_cost(&cfds[i], rel, stats);
        }
        cost
    }

    /// Estimated cost of the constant-prefilter `QC` kernel for one CFD:
    /// per pattern row with RHS constants, one column scan plus the
    /// surviving fraction (from column distinct counts) times the residual
    /// per-row work.
    fn qc_cost(&self, cfd: &Cfd, rel: &Relation, stats: &mut RelationStats) -> f64 {
        let n = stats.rows() as f64;
        let mut cost = 0.0;
        for pattern in cfd.tableau().iter() {
            let rhs_consts = pattern.rhs().iter().filter(|c| c.is_const()).count();
            if rhs_consts == 0 {
                continue; // never QC-violated, skipped by the kernel too
            }
            let lhs_consts: Vec<_> = pattern
                .lhs()
                .iter()
                .zip(cfd.lhs())
                .filter(|(cell, _)| cell.is_const())
                .collect();
            match lhs_consts.split_first() {
                None => cost += n * rhs_consts as f64 * YCMP,
                Some(((_, &attr), rest)) => {
                    let ndv = stats.column_stats(rel, attr).ndv.max(1.0);
                    let survivors = n / ndv;
                    cost +=
                        n * QC_SCAN + survivors * (rest.len() as f64 + rhs_consts as f64) * YCMP;
                }
            }
        }
        cost
    }

    /// Estimated cost of the index-driven scan (index already built): per
    /// visited group, iteration plus tableau matching; per row of *matched*
    /// groups, the `Y` gather plus one RHS check per pattern the group
    /// matches. Two selectivity figures drive it:
    ///
    /// * the **matched fraction** (capped sum of the per-pattern
    ///   LHS-constant selectivities) bounds the rows visited at all — a
    ///   tableau of selective constants touches a fraction of the data no
    ///   full scan can skip;
    /// * the **expected match count** (the same sum, uncapped) prices the
    ///   per-row pattern re-checks — wildcard rows match every group, so a
    ///   wildcard-heavy tableau makes every data row pay `|Tp|` RHS checks
    ///   here where the block scan pays a hash and one probe.
    ///
    /// An all-constant-LHS tableau flips [`detect_with_index`] into its
    /// key-probe mode, visiting at most `|Tp|` groups regardless of the
    /// group count.
    fn index_cost(
        &self,
        cfd_index: usize,
        cfds: &[Cfd],
        shapes: &[RuleShape],
        rel: &Relation,
        stats: &mut RelationStats,
        groups_est: f64,
    ) -> f64 {
        let cfd = &cfds[cfd_index];
        let shape = &shapes[cfd_index];
        let n = stats.rows() as f64;
        let mut matched_fraction: f64 = 0.0;
        let mut expected_matches: f64 = 0.0;
        let mut all_const = true;
        for pattern in cfd.tableau().iter() {
            let mut sel = 1.0;
            for (cell, &attr) in pattern.lhs().iter().zip(cfd.lhs()) {
                if cell.is_const() {
                    sel /= stats.column_stats(rel, attr).ndv.max(1.0);
                } else {
                    all_const = false;
                }
            }
            matched_fraction = (matched_fraction + sel).min(1.0);
            expected_matches += sel;
        }
        let tableau_rows = shape.tableau_rows as f64;
        let groups_visited = if all_const {
            tableau_rows.min(groups_est)
        } else {
            groups_est
        };
        let rows_touched = n * matched_fraction;
        let per_row = INDEX_ROW + shape.rhs_arity as f64 * (YCMP + expected_matches * PATTERN_CMP);
        groups_visited * (INDEX_ITER + tableau_rows * shape.arity as f64 * CELL)
            + rows_touched * per_row
    }
}

/// Sharded execution of one fused step: partition rows by the shared LHS
/// key ([`shard_of`] — the same hash as [`ShardedDetector`](crate::ShardedDetector)),
/// scan each bucket on a scoped worker with its own scratch, merge in
/// ascending shard order. Byte-identical to the unsharded fused scan for
/// the same reasons the sharded detector is byte-identical to the direct
/// one: groups never straddle shards, and reports are ordered sets.
fn scan_group_sharded(cfds: &[&Cfd], rel: &Relation, shards: usize, out: &mut Violations) {
    let shards = shards.max(1);
    if shards == 1 || rel.len() < shards * 2 {
        scan_group(cfds, rel, None, &mut ScanScratch::new(), out);
        return;
    }
    let Some(first) = cfds.first() else {
        return;
    };
    let lhs_cols = rel.columns_for(first.lhs());
    let mut buckets: Vec<Vec<u32>> = (0..shards)
        .map(|_| Vec::with_capacity(rel.len() / shards + 1))
        .collect();
    for i in 0..rel.len() {
        buckets[shard_of(&lhs_cols, i, shards)].push(i as u32);
    }
    let reports = std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .iter()
            .map(|bucket| {
                scope.spawn(move || {
                    let mut shard_out = Violations::new();
                    scan_group(
                        cfds,
                        rel,
                        Some(bucket),
                        &mut ScanScratch::new(),
                        &mut shard_out,
                    );
                    shard_out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect::<Vec<_>>()
    });
    for report in reports {
        out.merge(report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectDetector;
    use cfd_core::Cfd;
    use cfd_datagen::cust::{cust_instance, fig2_cfd_set, phi2};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::{Relation, Schema, Value};

    /// `rows` rows over (A, B, C) with `distinct_a` distinct A values.
    fn synthetic(rows: usize, distinct_a: usize) -> Relation {
        let schema = Schema::builder("r").text("A").text("B").text("C").build();
        let mut rel = Relation::new(schema);
        for i in 0..rows {
            rel.push_values(vec![
                Value::from(format!("a{}", i % distinct_a)),
                Value::from(format!("b{}", i % 7)),
                Value::from(format!("c{}", i % 3)),
            ])
            .unwrap();
        }
        rel
    }

    fn fd_a_to_b(rel: &Relation) -> Cfd {
        Cfd::fd(rel.schema().clone(), ["A"], ["B"]).unwrap()
    }

    #[test]
    fn tiny_tableau_small_data_plans_direct() {
        let rel = synthetic(500, 50);
        let cfd = fd_a_to_b(&rel);
        for parallelism in [1, 8] {
            let planner = Planner::with_parallelism(parallelism);
            let mut stats = RelationStats::new(&rel);
            let plan = planner.plan(std::slice::from_ref(&cfd), &rel, &mut stats, false);
            assert_eq!(plan.steps().len(), 1);
            assert_eq!(plan.strategy_for(0), Some(StepStrategy::Direct));
        }
    }

    #[test]
    fn many_groups_on_many_cores_plan_sharded() {
        // Every row its own group: per-group work scales with N and the
        // scan parallelizes well.
        let rel = synthetic(40_000, 40_000);
        let cfd = fd_a_to_b(&rel);
        let planner = Planner::with_parallelism(8);
        let mut stats = RelationStats::new(&rel);
        let plan = planner.plan(std::slice::from_ref(&cfd), &rel, &mut stats, false);
        assert!(
            matches!(plan.strategy_for(0), Some(StepStrategy::Sharded { shards }) if shards >= 2),
            "{plan}"
        );
        // A single-core budget must never shard.
        let single = Planner::with_parallelism(1);
        let mut stats = RelationStats::new(&rel);
        let plan = single.plan(&[cfd], &rel, &mut stats, false);
        assert_eq!(plan.strategy_for(0), Some(StepStrategy::Direct), "{plan}");
    }

    #[test]
    fn same_lhs_large_tableaux_plan_merged() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 4_000,
            noise_percent: 5.0,
            seed: 9,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(3);
        let cfds = vec![
            workload.single(EmbeddedFd::ZipToState, 120, 80.0),
            workload.single(EmbeddedFd::ZipToState, 90, 40.0),
        ];
        let planner = Planner::with_parallelism(1);
        let mut stats = RelationStats::new(&noisy);
        let plan = planner.plan(&cfds, &noisy, &mut stats, false);
        assert_eq!(plan.steps().len(), 1, "{plan}");
        assert_eq!(plan.steps()[0].cfds(), &[0, 1]);
        assert!(
            matches!(plan.steps()[0].strategy(), StepStrategy::Merged { .. }),
            "{plan}"
        );
        // Provenance records what fusing saved over per-CFD scans.
        let step = &plan.steps()[0];
        let merged_cost = step
            .candidates()
            .iter()
            .find(|(s, _)| matches!(s, StepStrategy::Merged { shards: 1 }))
            .unwrap()
            .1;
        let per_cfd_cost = step
            .candidates()
            .iter()
            .find(|(s, _)| *s == StepStrategy::Direct)
            .unwrap()
            .1;
        assert!(merged_cost < per_cfd_cost);
    }

    #[test]
    fn few_groups_with_reusable_indexes_plan_index_driven() {
        // 8k rows, 80 groups: group-driven iteration skips per-row hashing.
        let rel = synthetic(8_000, 80);
        let cfd = fd_a_to_b(&rel);
        let planner = Planner::with_parallelism(1);
        let mut stats = RelationStats::new(&rel);
        let plan = planner.plan(std::slice::from_ref(&cfd), &rel, &mut stats, true);
        assert_eq!(
            plan.strategy_for(0),
            Some(StepStrategy::IndexDriven),
            "{plan}"
        );
        assert!(plan.needs_indexes());
        // One-shot (no reusable index): the same profile scans directly.
        let mut stats = RelationStats::new(&rel);
        let plan = planner.plan(std::slice::from_ref(&cfd), &rel, &mut stats, false);
        assert_eq!(plan.strategy_for(0), Some(StepStrategy::Direct), "{plan}");
        // All-distinct keys: index iteration overhead loses to the scan
        // even with a reusable index — the stats flip the choice.
        let unique = synthetic(8_000, 8_000);
        let cfd = fd_a_to_b(&unique);
        let mut stats = RelationStats::new(&unique);
        let plan = planner.plan(&[cfd], &unique, &mut stats, true);
        assert_eq!(plan.strategy_for(0), Some(StepStrategy::Direct), "{plan}");
    }

    #[test]
    fn dont_care_cfds_never_plan_index_driven() {
        let schema = Schema::builder("r").text("A").text("B").text("C").build();
        let cfd = Cfd::builder(schema.clone(), ["A", "B"], ["C"])
            .pattern(["_", "@"], ["_"])
            .build()
            .unwrap();
        let mut rel = Relation::new(schema);
        for i in 0..64 {
            rel.push_values(vec![
                Value::from(format!("a{}", i % 4)),
                Value::from("b"),
                Value::from(format!("c{i}")),
            ])
            .unwrap();
        }
        let planner = Planner::with_parallelism(1);
        let mut stats = RelationStats::new(&rel);
        let plan = planner.plan(&[cfd], &rel, &mut stats, true);
        assert_eq!(plan.strategy_for(0), Some(StepStrategy::Direct), "{plan}");
    }

    #[test]
    fn plans_are_deterministic() {
        let rel = cust_instance();
        let cfds: Vec<Cfd> = fig2_cfd_set().into_iter().collect();
        let planner = Planner::with_parallelism(4);
        let mut stats_a = RelationStats::new(&rel);
        let mut stats_b = RelationStats::new(&rel);
        let a = planner.plan(&cfds, &rel, &mut stats_a, true);
        let b = planner.plan(&cfds, &rel, &mut stats_b, true);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn execute_matches_direct_for_every_strategy() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 20_000,
            noise_percent: 6.0,
            seed: 31,
        })
        .generate()
        .relation;
        let workload = CfdWorkload::new(7);
        let cfds = vec![
            workload.single(EmbeddedFd::ZipToState, 60, 70.0),
            workload.single(EmbeddedFd::ZipToState, 30, 30.0),
            workload.single(EmbeddedFd::AreaToCity, 40, 50.0),
            workload.single(EmbeddedFd::StateMaritalToExemption, 20, 0.0),
        ];
        let reference = DirectDetector::new().detect_set(&cfds, &noisy);
        assert!(!reference.is_clean());
        for parallelism in [1, 4] {
            for index_reusable in [false, true] {
                let planner = Planner::with_parallelism(parallelism);
                let mut stats = RelationStats::new(&noisy);
                let plan = planner.plan(&cfds, &noisy, &mut stats, index_reusable);
                let got = planner.execute(&plan, &cfds, &noisy, None);
                assert_eq!(
                    got, reference,
                    "parallelism={parallelism} reusable={index_reusable}\n{plan}"
                );
                assert_eq!(got.canonical_bytes(), reference.canonical_bytes());
            }
        }
    }

    #[test]
    fn one_shot_detect_set_matches_direct() {
        let rel = cust_instance();
        let cfds: Vec<Cfd> = fig2_cfd_set().into_iter().collect();
        let auto = Planner::new().detect_set(&cfds, &rel);
        let direct = DirectDetector::new().detect_set(&cfds, &rel);
        assert_eq!(auto, direct);
        // And single-CFD.
        let auto = Planner::new().detect_set(std::slice::from_ref(&phi2()), &rel);
        assert_eq!(auto, DirectDetector::new().detect(&phi2(), &rel));
    }

    #[test]
    fn display_renders_choice_and_candidates() {
        let rel = synthetic(1_000, 10);
        let cfd = fd_a_to_b(&rel);
        let planner = Planner::with_parallelism(2);
        let mut stats = RelationStats::new(&rel);
        let plan = planner.plan(&[cfd], &rel, &mut stats, true);
        let text = plan.to_string();
        assert!(text.contains("detection plan: 1000 rows"), "{text}");
        assert!(text.contains("candidates:"), "{text}");
        assert!(text.contains("index") || text.contains("direct"), "{text}");
    }

    #[test]
    fn empty_rule_sets_plan_nothing() {
        let rel = cust_instance();
        let planner = Planner::new();
        let mut stats = RelationStats::new(&rel);
        let plan = planner.plan(&[], &rel, &mut stats, false);
        assert!(plan.steps().is_empty());
        assert!(!plan.needs_indexes());
        assert!(planner.execute(&plan, &[], &rel, None).is_clean());
    }
}
