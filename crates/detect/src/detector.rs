//! The high-level detector: runs the generated SQL queries on the in-memory
//! engine, per CFD, merged, or across threads — plus the [`DetectorKind`]
//! selector dispatching over every detection path of the crate.

use crate::direct::DirectDetector;
use crate::merge::MergedTableaux;
use crate::merged;
use crate::report::Violations;
use crate::sharded::ShardedDetector;
use crate::single;
use cfd_core::Cfd;
use cfd_relation::Relation;
use cfd_sql::{Catalog, ExecStats, Executor, SelectQuery, SqlError, Strategy};
use std::sync::Arc;

/// Result alias: detection surfaces SQL-layer errors unchanged.
pub type Result<T> = std::result::Result<T, SqlError>;

/// Selects one of the crate's detection engines behind a single entry point
/// ([`DetectorKind::detect_set`]). All variants report identical violation
/// sets, with one documented exception: [`DetectorKind::SqlMerged`] reports
/// multi-tuple keys over the *merged* `X`-attribute union (Section 4.2) when
/// given more than one CFD, so its `QV` key space differs from the per-CFD
/// paths' — its `QC` component and its emptiness still agree exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorKind {
    /// The single-threaded hash-based oracle ([`DirectDetector`]).
    Direct,
    /// One SQL `QC`/`QV` query pair per CFD ([`Detector::detect_set`]).
    Sql,
    /// The single merged SQL query pair of Section 4.2
    /// ([`Detector::detect_set_merged`]).
    SqlMerged,
    /// One SQL query pair per CFD, spread over worker threads
    /// ([`Detector::detect_set_parallel`]).
    SqlParallel {
        /// Worker thread count (clamped to the CFD count).
        threads: usize,
    },
    /// Hash-sharded parallel detection ([`ShardedDetector`]): rows are
    /// partitioned by interned LHS key and scanned on scoped worker threads.
    Sharded {
        /// Shard/worker count (clamped to ≥ 1).
        shards: usize,
    },
    /// Cost-based adaptive detection ([`Planner`](crate::Planner)): a
    /// per-CFD strategy (direct / sharded / merged / index-driven) chosen
    /// from data statistics and rule shape. Reports are byte-identical to
    /// [`DetectorKind::Direct`] — only the execution path adapts.
    Auto,
}

impl DetectorKind {
    /// Detects the violations of `cfds` on `data` with the selected engine.
    pub fn detect_set(&self, cfds: &[Cfd], data: Arc<Relation>) -> Result<Violations> {
        match self {
            DetectorKind::Direct => Ok(DirectDetector::new().detect_set(cfds, &data)),
            DetectorKind::Sql => Detector::new().detect_set(cfds, data),
            DetectorKind::SqlMerged => Detector::new().detect_set_merged(cfds, data),
            DetectorKind::SqlParallel { threads } => {
                Detector::new().detect_set_parallel(cfds, data, *threads)
            }
            DetectorKind::Sharded { shards } => {
                Ok(ShardedDetector::new(*shards).detect_set(cfds, &data))
            }
            DetectorKind::Auto => Ok(crate::Planner::new().detect_set(cfds, &data)),
        }
    }

    /// Every selectable engine, for exhaustive differential sweeps.
    pub fn all(parallelism: usize) -> [DetectorKind; 6] {
        [
            DetectorKind::Direct,
            DetectorKind::Sql,
            DetectorKind::SqlMerged,
            DetectorKind::SqlParallel {
                threads: parallelism,
            },
            DetectorKind::Sharded {
                shards: parallelism,
            },
            DetectorKind::Auto,
        ]
    }
}

/// Execution counters for one detection run (one CFD or one merged set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectStats {
    /// Counters of the `QC` (constant-violation) query.
    pub qc: ExecStats,
    /// Counters of the `QV` (multi-tuple) query.
    pub qv: ExecStats,
}

/// Internal catalog names used by the detector.
const DATA_NAME: &str = "__data";
const TABLEAU_NAME: &str = "__tableau";
const JOINED_NAME: &str = "__tableau_xy";
const TX_NAME: &str = "__tableau_x";
const TY_NAME: &str = "__tableau_y";

/// SQL-based CFD violation detector (Section 4).
#[derive(Debug, Clone, Copy)]
pub struct Detector {
    strategy: Strategy,
}

impl Detector {
    /// A detector using the default (DNF + indexes) evaluation strategy.
    pub fn new() -> Self {
        Detector {
            strategy: Strategy::default(),
        }
    }

    /// Sets the SQL evaluation strategy (CNF vs DNF — the Fig. 9(a)/(b) knob).
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Detects violations of a single CFD. Convenience wrapper that clones
    /// the relation into the internal catalog; use [`Detector::detect_shared`]
    /// when the relation is already shared.
    pub fn detect(&self, cfd: &Cfd, rel: &Relation) -> Result<Violations> {
        self.detect_shared(cfd, Arc::new(rel.clone()))
            .map(|(v, _)| v)
    }

    /// Detects violations of a single CFD, returning execution counters too.
    pub fn detect_shared(
        &self,
        cfd: &Cfd,
        data: Arc<Relation>,
    ) -> Result<(Violations, DetectStats)> {
        let mut catalog = Catalog::new();
        catalog.register_arc(DATA_NAME, data);
        catalog.register_as(TABLEAU_NAME, single::tableau_relation(cfd, TABLEAU_NAME));
        let executor = Executor::new(&catalog).with_strategy(self.strategy);

        let mut stats = DetectStats::default();
        let mut violations = Violations::new();
        let (qc_rows, qc_stats) =
            executor.run_with_stats(&single::qc_query(cfd, DATA_NAME, TABLEAU_NAME))?;
        stats.qc = qc_stats;
        for row in qc_rows.rows() {
            violations.add_constant_violation(row.clone());
        }
        let (qv_rows, qv_stats) =
            executor.run_with_stats(&single::qv_query(cfd, DATA_NAME, TABLEAU_NAME))?;
        stats.qv = qv_stats;
        for row in qv_rows.rows() {
            violations.add_multi_tuple_key(row.clone());
        }
        Ok((violations, stats))
    }

    /// Runs only the `QC` query of one CFD (used by the Fig. 9(c) split).
    pub fn qc_only(&self, cfd: &Cfd, data: Arc<Relation>) -> Result<(Violations, ExecStats)> {
        self.run_one(cfd, data, true)
    }

    /// Runs only the `QV` query of one CFD (used by the Fig. 9(c) split).
    pub fn qv_only(&self, cfd: &Cfd, data: Arc<Relation>) -> Result<(Violations, ExecStats)> {
        self.run_one(cfd, data, false)
    }

    fn run_one(
        &self,
        cfd: &Cfd,
        data: Arc<Relation>,
        constant_side: bool,
    ) -> Result<(Violations, ExecStats)> {
        let mut catalog = Catalog::new();
        catalog.register_arc(DATA_NAME, data);
        catalog.register_as(TABLEAU_NAME, single::tableau_relation(cfd, TABLEAU_NAME));
        let executor = Executor::new(&catalog).with_strategy(self.strategy);
        let query = if constant_side {
            single::qc_query(cfd, DATA_NAME, TABLEAU_NAME)
        } else {
            single::qv_query(cfd, DATA_NAME, TABLEAU_NAME)
        };
        let (rows, stats) = executor.run_with_stats(&query)?;
        let mut violations = Violations::new();
        for row in rows.rows() {
            if constant_side {
                violations.add_constant_violation(row.clone());
            } else {
                violations.add_multi_tuple_key(row.clone());
            }
        }
        Ok((violations, stats))
    }

    /// Validates a set of CFDs with one query pair per CFD (the naive
    /// `2 × |Σ|`-pass approach of Section 4.2).
    // Arc by value: every detection entry point shares the same signature
    // shape so callers hand out snapshots uniformly, even where this
    // particular path only clones.
    #[allow(clippy::needless_pass_by_value)]
    pub fn detect_set(&self, cfds: &[Cfd], data: Arc<Relation>) -> Result<Violations> {
        let mut out = Violations::new();
        for cfd in cfds {
            let (v, _) = self.detect_shared(cfd, Arc::clone(&data))?;
            out.merge(v);
        }
        Ok(out)
    }

    /// Validates a set of CFDs with a single merged query pair (two passes,
    /// Section 4.2). The multi-tuple keys are reported over the merged `X`
    /// attribute union, with `@` masking don't-care positions.
    pub fn detect_set_merged(&self, cfds: &[Cfd], data: Arc<Relation>) -> Result<Violations> {
        let merged = MergedTableaux::build(cfds)
            .map_err(|e| SqlError::Unsupported(format!("cannot merge tableaux: {e}")))?;
        let mut catalog = Catalog::new();
        catalog.register_arc(DATA_NAME, data);
        catalog.register_as(JOINED_NAME, merged.joined_relation(JOINED_NAME));
        let executor = Executor::new(&catalog).with_strategy(self.strategy);

        let mut out = Violations::new();
        let qc = executor.run(&merged::qc_merged(&merged, DATA_NAME, JOINED_NAME))?;
        for row in qc.rows() {
            out.add_constant_violation(row.clone());
        }
        let qv = executor.run(&merged::qv_merged(&merged, DATA_NAME, JOINED_NAME))?;
        for row in qv.rows() {
            out.add_multi_tuple_key(row.clone());
        }
        Ok(out)
    }

    /// Like [`Detector::detect_set_merged`] but executing the queries in the
    /// exact three-table form printed in the paper (data ⋈ `T^X_Σ` ⋈ `T^Y_Σ`
    /// on id). Intended for small instances and for inspecting plans; the
    /// pre-joined form is preferred for large data.
    pub fn detect_set_merged_paper_form(
        &self,
        cfds: &[Cfd],
        data: Arc<Relation>,
    ) -> Result<Violations> {
        let merged = MergedTableaux::build(cfds)
            .map_err(|e| SqlError::Unsupported(format!("cannot merge tableaux: {e}")))?;
        let mut catalog = Catalog::new();
        catalog.register_arc(DATA_NAME, data);
        catalog.register_as(TX_NAME, merged.x_relation(TX_NAME));
        catalog.register_as(TY_NAME, merged.y_relation(TY_NAME));
        let executor = Executor::new(&catalog).with_strategy(self.strategy);

        let mut out = Violations::new();
        let qc = executor.run(&merged::qc_merged_paper(
            &merged, DATA_NAME, TX_NAME, TY_NAME,
        ))?;
        for row in qc.rows() {
            out.add_constant_violation(row.clone());
        }
        let qv = executor.run(&merged::qv_merged_paper(
            &merged, DATA_NAME, TX_NAME, TY_NAME,
        ))?;
        for row in qv.rows() {
            out.add_multi_tuple_key(row.clone());
        }
        Ok(out)
    }

    /// Validates a set of CFDs with one query pair per CFD, spreading the
    /// CFDs over `threads` worker threads (an extension beyond the paper —
    /// the per-CFD query pairs are embarrassingly parallel).
    // Arc by value: same signature-uniformity rationale as `detect_set`.
    #[allow(clippy::needless_pass_by_value)]
    pub fn detect_set_parallel(
        &self,
        cfds: &[Cfd],
        data: Arc<Relation>,
        threads: usize,
    ) -> Result<Violations> {
        if cfds.is_empty() {
            return Ok(Violations::new());
        }
        let threads = threads.max(1).min(cfds.len());
        let chunk_size = cfds.len().div_ceil(threads);
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in cfds.chunks(chunk_size) {
                let data = Arc::clone(&data);
                let detector = *self;
                handles.push(scope.spawn(move || detector.detect_set(chunk, data)));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect::<Vec<_>>()
        });

        let mut out = Violations::new();
        for r in results {
            out.merge(r?);
        }
        Ok(out)
    }

    /// The SQL text of the query pair for one CFD, for inspection and
    /// documentation (Fig. 5).
    pub fn sql_for(&self, cfd: &Cfd, data_name: &str) -> (SelectQuery, SelectQuery) {
        (
            single::qc_query(cfd, data_name, "Tp"),
            single::qv_query(cfd, data_name, "Tp"),
        )
    }
}

impl Default for Detector {
    fn default() -> Self {
        Detector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectDetector;
    use cfd_datagen::cust::{cust_instance, fig2_cfd_set, phi1, phi2, phi3_with_fd, phi5};
    use cfd_datagen::records::{TaxConfig, TaxGenerator};
    use cfd_datagen::{CfdWorkload, EmbeddedFd};
    use cfd_relation::Value;

    #[test]
    fn example_4_1_detection_via_sql() {
        let v = Detector::new().detect(&phi2(), &cust_instance()).unwrap();
        assert_eq!(v.constant_violations().len(), 2);
        assert!(v.multi_tuple_keys().is_empty());
        let clean = Detector::new().detect(&phi1(), &cust_instance()).unwrap();
        assert!(clean.is_clean());
    }

    #[test]
    fn sql_and_direct_detectors_agree_on_the_running_example() {
        let rel = cust_instance();
        for cfd in [phi1(), phi2(), phi3_with_fd(), phi5()] {
            let sql = Detector::new().detect(&cfd, &rel).unwrap();
            let direct = DirectDetector::new().detect(&cfd, &rel);
            assert_eq!(sql, direct, "detectors disagree on {:?}", cfd.name());
        }
    }

    #[test]
    fn cnf_and_dnf_strategies_agree() {
        let rel = Arc::new(cust_instance());
        for cfd in [phi2(), phi3_with_fd(), phi5()] {
            let dnf = Detector::new()
                .with_strategy(Strategy::dnf())
                .detect_shared(&cfd, Arc::clone(&rel))
                .unwrap()
                .0;
            let cnf = Detector::new()
                .with_strategy(Strategy::cnf())
                .detect_shared(&cfd, Arc::clone(&rel))
                .unwrap()
                .0;
            assert_eq!(dnf, cnf);
        }
    }

    #[test]
    fn qc_and_qv_split_match_the_combined_run() {
        let rel = Arc::new(cust_instance());
        let cfd = phi2();
        let (combined, stats) = Detector::new()
            .detect_shared(&cfd, Arc::clone(&rel))
            .unwrap();
        let (qc, qc_stats) = Detector::new().qc_only(&cfd, Arc::clone(&rel)).unwrap();
        let (qv, qv_stats) = Detector::new().qv_only(&cfd, Arc::clone(&rel)).unwrap();
        assert_eq!(qc.constant_violations(), combined.constant_violations());
        assert_eq!(qv.multi_tuple_keys(), combined.multi_tuple_keys());
        assert_eq!(qc_stats.output_rows, stats.qc.output_rows);
        assert_eq!(qv_stats.output_rows, stats.qv.output_rows);
    }

    #[test]
    fn per_cfd_merged_and_parallel_set_detection_agree_on_qc() {
        let rel = Arc::new(cust_instance());
        let cfds: Vec<_> = fig2_cfd_set().into_iter().collect();
        let per_cfd = Detector::new().detect_set(&cfds, Arc::clone(&rel)).unwrap();
        let merged = Detector::new()
            .detect_set_merged(&cfds, Arc::clone(&rel))
            .unwrap();
        let parallel = Detector::new()
            .detect_set_parallel(&cfds, Arc::clone(&rel), 3)
            .unwrap();
        // Constant violations are full tuples in every scheme, so they agree
        // exactly; multi-tuple keys use different key spaces (per-CFD X vs the
        // merged X union), so only their emptiness is compared here.
        assert_eq!(per_cfd.constant_violations(), merged.constant_violations());
        assert_eq!(per_cfd, parallel);
        assert_eq!(
            per_cfd.multi_tuple_keys().is_empty(),
            merged.multi_tuple_keys().is_empty()
        );
    }

    #[test]
    fn merged_paper_form_agrees_with_exec_form() {
        let rel = Arc::new(cust_instance());
        let cfds = vec![phi2(), phi3_with_fd(), phi5()];
        let exec_form = Detector::new()
            .detect_set_merged(&cfds, Arc::clone(&rel))
            .unwrap();
        let paper_form = Detector::new()
            .detect_set_merged_paper_form(&cfds, Arc::clone(&rel))
            .unwrap();
        assert_eq!(exec_form, paper_form);
    }

    #[test]
    fn detection_on_generated_tax_workload_finds_only_noise() {
        let clean = TaxGenerator::new(TaxConfig {
            size: 800,
            noise_percent: 0.0,
            seed: 21,
        })
        .generate();
        let noisy = TaxGenerator::new(TaxConfig {
            size: 800,
            noise_percent: 10.0,
            seed: 21,
        })
        .generate();
        let cfd = CfdWorkload::new(5).single(EmbeddedFd::ZipToState, 200, 100.0);
        let detector = Detector::new();
        assert!(detector.detect(&cfd, &clean.relation).unwrap().is_clean());
        let report = detector.detect(&cfd, &noisy.relation).unwrap();
        assert!(!report.is_clean(), "noise must be detected");
        // Every reported constant violation is indeed a dirty row.
        let schema = noisy.relation.schema().clone();
        let zip = schema.resolve("ZIP").unwrap();
        let st = schema.resolve("ST").unwrap();
        for tuple in report.constant_violations() {
            let zip_v = tuple[zip.index()].clone();
            let st_v = tuple[st.index()].clone();
            let true_state = cfd_datagen::geo::state_of_zip(zip_v.as_str().unwrap()).unwrap();
            assert_ne!(
                st_v,
                Value::from(true_state),
                "reported tuple is actually clean"
            );
        }
    }

    #[test]
    fn sql_and_direct_agree_on_the_tax_workload() {
        let noisy = TaxGenerator::new(TaxConfig {
            size: 600,
            noise_percent: 8.0,
            seed: 33,
        })
        .generate();
        let workload = CfdWorkload::new(9);
        for fd in [
            EmbeddedFd::ZipToState,
            EmbeddedFd::ZipCityToState,
            EmbeddedFd::AreaToCity,
        ] {
            let cfd = workload.single(fd, 120, 60.0);
            let sql = Detector::new().detect(&cfd, &noisy.relation).unwrap();
            let direct = DirectDetector::new().detect(&cfd, &noisy.relation);
            assert_eq!(sql, direct, "detectors disagree on {fd:?}");
        }
    }

    #[test]
    fn parallel_detection_handles_edge_cases() {
        let rel = Arc::new(cust_instance());
        let none = Detector::new()
            .detect_set_parallel(&[], Arc::clone(&rel), 4)
            .unwrap();
        assert!(none.is_clean());
        let one = Detector::new()
            .detect_set_parallel(&[phi2()], Arc::clone(&rel), 16)
            .unwrap();
        assert_eq!(one.constant_violations().len(), 2);
    }

    #[test]
    fn detector_kind_dispatches_every_engine() {
        let rel = Arc::new(cust_instance());
        let cfds = vec![phi2(), phi3_with_fd(), phi5()];
        let reference = DirectDetector::new().detect_set(&cfds, &rel);
        for kind in DetectorKind::all(3) {
            let got = kind.detect_set(&cfds, Arc::clone(&rel)).unwrap();
            // SqlMerged reports QV keys over the merged X union; the other
            // engines must agree byte for byte.
            if kind == DetectorKind::SqlMerged {
                assert_eq!(got.constant_violations(), reference.constant_violations());
                assert_eq!(got.is_clean(), reference.is_clean());
            } else {
                assert_eq!(got, reference, "kind {kind:?}");
            }
        }
    }

    #[test]
    fn sql_for_returns_the_query_pair() {
        let (qc, qv) = Detector::new().sql_for(&phi2(), "cust");
        assert!(qc.to_string().contains("SELECT t.* FROM cust t, Tp tp"));
        assert!(qv.to_string().contains("HAVING count(distinct"));
    }
}
