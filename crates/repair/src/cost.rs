//! The weighted cost model for repairs.
//!
//! Following the cost-based framework of Bohannon et al. (SIGMOD 2005) that
//! Section 6 builds on, the cost of a repair is the sum over modified cells
//! of `weight(tuple) × dist(old, new)`:
//!
//! * **`weight(tuple)`** comes from a per-row [`TupleWeights`] sidecar
//!   (default 1.0 for every row) — tuples with provenance/accuracy backing
//!   get large weights and become expensive to touch;
//! * **`dist(old, new)`** is a pluggable [`ValueDistance`]:
//!   [`UnitDistance`] (any change costs 1 — pure edit counting on interned
//!   ids) or [`NormalizedEditDistance`] (Levenshtein over resolved strings,
//!   normalized to `[0, 1]`, so fixing a typo is cheaper than rewriting the
//!   value); custom metrics plug in through the same trait.
//!
//! Fresh placeholders minted for LHS edits (see
//! [`cfd_relation::placeholder`]) are priced by a separate (higher) distance
//! — no meaningful value distance exists to a value invented from thin air,
//! and the surcharge biases engines towards staying inside the active
//! domain.
//!
//! A repair's total cost prices the **net** per-cell change (first `old` →
//! final `new`), not the raw modification log: a cell that oscillates across
//! passes before settling is charged once, and a cell that returns to its
//! original value is not charged at all. See
//! [`RepairResult::cost`](crate::RepairResult::cost).

use cfd_relation::{placeholder, AttrId, Relation, TupleWeights, Value, ValueId};
use std::fmt;
use std::sync::Arc;

/// A distance between two attribute values, used to price replacing one with
/// the other. Implementations must return `0.0` for equal values and a
/// positive number otherwise; keeping the range within `[0, 1]` makes
/// distances comparable across metrics.
pub trait ValueDistance: fmt::Debug + Send + Sync {
    /// `dist(old, new)`.
    fn distance(&self, old: &Value, new: &Value) -> f64;
}

/// Exact/unit distance: every change costs 1 — equality on interned ids is
/// all that matters. This is the default and reproduces plain edit counting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitDistance;

impl ValueDistance for UnitDistance {
    fn distance(&self, old: &Value, new: &Value) -> f64 {
        if old == new {
            0.0
        } else {
            1.0
        }
    }
}

/// Levenshtein distance over resolved strings, normalized by the longer
/// length to `[0, 1]`. Non-string pairs (and mixed types) fall back to unit
/// distance — there is no meaningful edit distance between an integer and a
/// string.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NormalizedEditDistance;

impl ValueDistance for NormalizedEditDistance {
    fn distance(&self, old: &Value, new: &Value) -> f64 {
        if old == new {
            return 0.0;
        }
        match (old, new) {
            (Value::Str(a), Value::Str(b)) => {
                let la = a.chars().count();
                let lb = b.chars().count();
                let longest = la.max(lb);
                if longest == 0 {
                    0.0
                } else {
                    levenshtein(a, b) as f64 / longest as f64
                }
            }
            _ => 1.0,
        }
    }
}

/// Plain two-row Levenshtein over `char`s.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Reusable buffers for repeated [`CostModel::class_target_with`] calls.
/// Cleared between classes but never shrunk, so a planning worker selecting
/// targets for a whole component chunk allocates nothing per class in the
/// steady state (the kernels-style arena discipline).
#[derive(Debug, Default)]
pub struct TargetScratch {
    /// `(row, current id)` per cell of the class under selection.
    current: Vec<(usize, ValueId)>,
    /// Sorted, deduplicated candidate ids.
    candidates: Vec<ValueId>,
}

impl TargetScratch {
    /// Fresh scratch (allocates lazily on first use).
    pub fn new() -> Self {
        TargetScratch::default()
    }
}

/// Weights and distances used to price a repair.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Per-row tuple weights (`w(t)` of the SIGMOD 2005 framework). The
    /// default weighs every row 1.0.
    pub weights: TupleWeights,
    /// Scale applied to concrete replacements (on top of the value
    /// distance).
    pub replace_distance: f64,
    /// Distance charged for replacing a value with a fresh placeholder (an
    /// LHS edit that removes the tuple from a pattern's scope). Placeholder
    /// edits bypass the value-distance metric.
    pub placeholder_distance: f64,
    /// The value-distance metric for concrete replacements.
    pub distance: Arc<dyn ValueDistance>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            weights: TupleWeights::default(),
            replace_distance: 1.0,
            placeholder_distance: 1.5,
            distance: Arc::new(UnitDistance),
        }
    }
}

impl CostModel {
    /// A cost model using [`NormalizedEditDistance`] for replacements.
    pub fn with_edit_distance() -> Self {
        CostModel {
            distance: Arc::new(NormalizedEditDistance),
            ..CostModel::default()
        }
    }

    /// The weight of `row`.
    pub fn weight(&self, row: usize) -> f64 {
        self.weights.get(row)
    }

    /// The weighted cost-minimal target of an equivalence class of cells:
    /// among the values the `(row, attribute)` cells currently hold in
    /// `rel`, the candidate minimizing
    /// `Σ weight(row) × dist(current, candidate)` over the disagreeing
    /// cells, with cost ties broken on the smallest resolved [`Value`].
    /// Returns the chosen target and that minimal selection cost, or `None`
    /// for an empty class.
    ///
    /// This is the exact target-selection rule of the equivalence-class
    /// repair engine (which delegates here), exposed so a session's
    /// `explain` accessor can report the class target a repair *would*
    /// choose — with its cost — without running the repair.
    pub fn class_target(
        &self,
        rel: &Relation,
        cells: &[(usize, AttrId)],
    ) -> Option<(ValueId, f64)> {
        self.class_target_with(rel, cells, &mut TargetScratch::new())
    }

    /// [`CostModel::class_target`] with caller-held [`TargetScratch`]: the
    /// selection is identical, but the working buffers are reused across
    /// calls — the form the repair engine's planning workers drive so
    /// steady-state target selection allocates nothing per class.
    pub fn class_target_with(
        &self,
        rel: &Relation,
        cells: &[(usize, AttrId)],
        scratch: &mut TargetScratch,
    ) -> Option<(ValueId, f64)> {
        scratch.current.clear();
        scratch.current.extend(
            cells
                .iter()
                .map(|&(row, attr)| (row, rel.column(attr)[row])),
        );
        let current = &scratch.current;
        scratch.candidates.clear();
        scratch.candidates.extend(current.iter().map(|&(_, id)| id));
        scratch.candidates.sort_unstable();
        scratch.candidates.dedup();

        let mut best: Option<(f64, &'static Value, ValueId)> = None;
        for &cand in &scratch.candidates {
            let cand_value = cand.resolve();
            let cost: f64 = current
                .iter()
                .filter(|&&(_, cur)| cur != cand)
                .map(|&(row, cur)| {
                    self.weight(row) * self.distance.distance(cur.resolve(), cand_value)
                })
                .sum();
            let better = match &best {
                None => true,
                Some((best_cost, best_value, _)) => {
                    cost + 1e-12 < *best_cost
                        || ((cost - best_cost).abs() <= 1e-12 && cand_value < best_value)
                }
            };
            if better {
                best = Some((cost, cand_value, cand));
            }
        }
        best.map(|(cost, _, id)| (id, cost))
    }

    /// The cost of changing `old` into `new` in `row`:
    /// `weight(row) × dist(old, new)` (scaled by
    /// [`CostModel::replace_distance`]), or
    /// `weight(row) × placeholder_distance` when `new` is a minted
    /// placeholder. Identical values cost nothing.
    pub fn change_cost(&self, row: usize, old: &Value, new: &Value) -> f64 {
        if old == new {
            0.0
        } else if placeholder::is_placeholder_value(new) {
            self.weight(row) * self.placeholder_distance
        } else {
            self.weight(row) * self.replace_distance * self.distance.distance(old, new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::AttrType;

    #[test]
    fn identical_values_cost_nothing() {
        let m = CostModel::default();
        assert_eq!(m.change_cost(0, &Value::from("a"), &Value::from("a")), 0.0);
    }

    #[test]
    fn replacement_and_placeholder_costs() {
        let m = CostModel::default();
        assert_eq!(m.change_cost(0, &Value::from("a"), &Value::from("b")), 1.0);
        let ph = placeholder::mint(AttrType::Text).resolve();
        assert_eq!(m.change_cost(0, &Value::from("a"), ph), 1.5);
    }

    #[test]
    fn per_row_weights_scale_costs() {
        let mut weights = TupleWeights::uniform(2.0);
        weights.set(3, 0.25);
        let m = CostModel {
            weights,
            ..CostModel::default()
        };
        assert_eq!(m.change_cost(0, &Value::from("a"), &Value::from("b")), 2.0);
        assert_eq!(m.change_cost(3, &Value::from("a"), &Value::from("b")), 0.25);
    }

    #[test]
    fn unit_distance_is_all_or_nothing() {
        let d = UnitDistance;
        assert_eq!(d.distance(&Value::from("abc"), &Value::from("abc")), 0.0);
        assert_eq!(d.distance(&Value::from("abc"), &Value::from("abd")), 1.0);
        assert_eq!(d.distance(&Value::Int(1), &Value::Int(2)), 1.0);
    }

    #[test]
    fn edit_distance_scales_with_similarity() {
        let d = NormalizedEditDistance;
        assert_eq!(d.distance(&Value::from("NYC"), &Value::from("NYC")), 0.0);
        // One substitution out of three characters.
        let typo = d.distance(&Value::from("NYC"), &Value::from("NYA"));
        assert!((typo - 1.0 / 3.0).abs() < 1e-9, "got {typo}");
        // A full rewrite costs 1.
        assert_eq!(d.distance(&Value::from("abc"), &Value::from("xyz")), 1.0);
        // Mixed types fall back to unit distance.
        assert_eq!(d.distance(&Value::Int(5), &Value::from("5")), 1.0);
        assert_eq!(d.distance(&Value::Int(5), &Value::Int(6)), 1.0);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("07974", "07975"), 1);
    }

    #[test]
    fn edit_distance_model_prices_typos_cheaper() {
        let m = CostModel::with_edit_distance();
        let typo = m.change_cost(0, &Value::from("07974"), &Value::from("07975"));
        let rewrite = m.change_cost(0, &Value::from("07974"), &Value::from("EH4 1DT"));
        assert!(typo < rewrite, "typo {typo} vs rewrite {rewrite}");
    }
}
