//! The cost model for repairs.
//!
//! Following the cost-based framework of Bohannon et al. (SIGMOD 2005) that
//! Section 6 builds on, the cost of a repair is the sum over modified cells
//! of `weight(tuple) × distance(old, new)`. Tuple weights default to 1 (no
//! provenance/accuracy information); the distance is 1 for changing a value
//! and a configurable (cheaper) cost for inventing a fresh placeholder, which
//! biases the heuristic towards value modifications that stay inside the
//! active domain.

use cfd_relation::Value;

/// Weights and distances used to price a repair.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Default weight of a tuple (all tuples share it unless overridden).
    pub tuple_weight: f64,
    /// Distance charged for replacing a value with a different concrete value.
    pub replace_distance: f64,
    /// Distance charged for replacing a value with a fresh placeholder
    /// (an LHS edit that removes the tuple from a pattern's scope).
    pub placeholder_distance: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            tuple_weight: 1.0,
            replace_distance: 1.0,
            placeholder_distance: 1.5,
        }
    }
}

impl CostModel {
    /// The cost of changing `old` into `new` in a tuple of weight
    /// [`CostModel::tuple_weight`]. Identical values cost nothing.
    pub fn change_cost(&self, old: &Value, new: &Value) -> f64 {
        if old == new {
            0.0
        } else if is_placeholder(new) {
            self.tuple_weight * self.placeholder_distance
        } else {
            self.tuple_weight * self.replace_distance
        }
    }
}

/// Whether a value is one of the fresh placeholders introduced by LHS edits.
pub fn is_placeholder(v: &Value) -> bool {
    matches!(v, Value::Str(s) if s.starts_with("__unknown_"))
}

/// Builds the `i`-th fresh placeholder value.
pub fn placeholder(i: usize) -> Value {
    Value::Str(format!("__unknown_{i}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_values_cost_nothing() {
        let m = CostModel::default();
        assert_eq!(m.change_cost(&Value::from("a"), &Value::from("a")), 0.0);
    }

    #[test]
    fn replacement_and_placeholder_costs() {
        let m = CostModel::default();
        assert_eq!(m.change_cost(&Value::from("a"), &Value::from("b")), 1.0);
        assert_eq!(m.change_cost(&Value::from("a"), &placeholder(3)), 1.5);
    }

    #[test]
    fn weights_scale_costs() {
        let m = CostModel {
            tuple_weight: 2.0,
            ..CostModel::default()
        };
        assert_eq!(m.change_cost(&Value::from("a"), &Value::from("b")), 2.0);
    }

    #[test]
    fn placeholder_detection() {
        assert!(is_placeholder(&placeholder(0)));
        assert!(!is_placeholder(&Value::from("ordinary")));
        assert!(!is_placeholder(&Value::Int(7)));
    }
}
