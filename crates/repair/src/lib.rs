//! # cfd-repair — cost-based repair of CFD violations (Section 6)
//!
//! The paper shows that finding a minimal repair w.r.t. a set of CFDs is
//! NP-complete (Theorem 6.1) and observes that, unlike standard FDs, CFD
//! violations cannot always be resolved by editing right-hand-side attributes
//! only: sometimes an attribute on the *left-hand side* of an embedded FD
//! must change. The repair algorithm itself is deferred in the paper ("we
//! defer report on the heuristic"); this crate implements the approach the
//! paper sketches — cost-based attribute-value modification in the framework
//! of Bohannon et al. (SIGMOD 2005) extended to pattern tableaux — as two
//! engines behind the [`RepairKind`] selector:
//!
//! * [`RepairKind::EquivClass`] (default) — explicit **cell equivalence
//!   classes** ([`classes`]): a union-find over `(row, attribute)` cells
//!   forced equal by multi-tuple witnesses or pinned by pattern constants,
//!   class targets chosen by minimizing the **weighted cost**
//!   `Σ weight(row) × dist(current, candidate)` under a pluggable
//!   [`ValueDistance`] metric, and **incremental violation maintenance**:
//!   after the single seeding detection pass, each applied edit re-checks
//!   only the `GROUP BY X` groups it touched (via
//!   [`cfd_detect::recheck_lhs_key`] over maintained LHS indexes). Pin
//!   conflicts — the cross-CFD interaction that forces LHS edits — are
//!   detected structurally and resolved with fresh typed placeholders
//!   ([`cfd_relation::placeholder`]).
//! * [`RepairKind::Heuristic`] — the pass-loop reference engine: re-detect
//!   everything every pass, resolve witnesses one by one, LHS-edit on
//!   stall. Kept for differential testing against the class engine.
//!
//! Both engines are **deterministic** (witnesses sorted, ties broken on
//! resolved values, no hash-order dependence) and both report the full
//! modification log plus its **net** cost under the configured [`CostModel`]
//! — each modified cell priced once from its original to its final value.

pub mod class_engine;
pub mod classes;
pub mod cost;
pub mod parallel;
pub mod repair;

pub use classes::Components;
pub use cost::{CostModel, NormalizedEditDistance, TargetScratch, UnitDistance, ValueDistance};
pub use repair::{Modification, RepairConfig, RepairKind, RepairResult, Repairer};
