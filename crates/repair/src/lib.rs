//! # cfd-repair — heuristic repair of CFD violations (Section 6)
//!
//! The paper shows that finding a minimal repair w.r.t. a set of CFDs is
//! NP-complete (Theorem 6.1) and observes that, unlike standard FDs, CFD
//! violations cannot always be resolved by editing right-hand-side attributes
//! only: sometimes an attribute on the *left-hand side* of an embedded FD
//! must change. The repair algorithm itself is deferred in the paper ("we
//! defer report on the heuristic"); this crate implements the approach the
//! paper sketches — cost-based attribute-value modification in the style of
//! Bohannon et al. (SIGMOD 2005) extended to pattern tableaux:
//!
//! 1. single-tuple violations are resolved by overwriting the offending RHS
//!    attribute with the pattern constant;
//! 2. multi-tuple violations are resolved per equivalence class (tuples that
//!    agree and match a pattern on `X`) by moving the minority to the
//!    plurality `Y` value;
//! 3. when neither step makes progress (the cross-CFD interaction the paper
//!    uses to motivate LHS edits), one LHS attribute of a violating tuple is
//!    set to a fresh value, which removes it from the pattern's scope.
//!
//! The result carries the full modification list and its cost under a
//! configurable [`CostModel`], and is re-verified against the input CFDs.

pub mod cost;
pub mod repair;

pub use cost::CostModel;
pub use repair::{Modification, RepairConfig, RepairResult, Repairer};
