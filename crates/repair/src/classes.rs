//! Cell equivalence classes — the union-find core of the class-based repair
//! engine.
//!
//! Repairing a set of violation witnesses is a constraint problem over
//! *cells* `(row, attribute)`:
//!
//! * a multi-tuple witness forces the witness rows' cells of each
//!   (effective, non-constant) RHS attribute to **agree** — they join one
//!   equivalence class and will receive a single target value;
//! * an RHS pattern constant **pins** a cell's class to that constant;
//! * two different pins reaching the same class are a **conflict**: no
//!   assignment of RHS values can satisfy both, which is exactly the
//!   cross-CFD interaction Section 6 uses to motivate LHS edits — the engine
//!   resolves a conflicted class by editing an LHS attribute of one involved
//!   row instead.
//!
//! The classes are built with a sparse union-find (only cells that occur in
//! witnesses are materialized), with the **smallest cell as the root** of
//! every class, and finalized into a sorted [`CellClass`] list — given the
//! same union/pin call sequence the output is fully deterministic, and the
//! engine feeds calls in sorted witness order.

use cfd_relation::{AttrId, ValueId};
use std::collections::HashMap;

/// A cell: one attribute of one row.
pub type Cell = (usize, AttrId);

/// A pin: a cell whose class must take `target`, with provenance (which CFD
/// and pattern row demanded it) so conflict fallbacks know which constraint
/// to break.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pin {
    /// The pinned-to constant.
    pub target: ValueId,
    /// The row whose cell was pinned.
    pub row: usize,
    /// The pinned attribute.
    pub attr: AttrId,
    /// Index of the CFD (in the engine's input order) that demanded the pin.
    pub cfd: usize,
    /// Index of the pattern row within that CFD's tableau.
    pub pattern: usize,
}

/// Two pins with different targets reaching one class. `kept` landed first
/// (in sorted witness order), `conflicting` second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinConflict {
    /// The pin that arrived first and is kept on the class.
    pub kept: Pin,
    /// The later, incompatible pin.
    pub conflicting: Pin,
}

/// One finalized equivalence class of cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellClass {
    /// The member cells, sorted by `(row, attr)`.
    pub cells: Vec<Cell>,
    /// The class's pin, when exactly one target was demanded.
    pub pin: Option<Pin>,
    /// The first conflict observed, when incompatible targets were demanded.
    pub conflict: Option<PinConflict>,
}

/// Union-find over cells with pin tracking. See the [module docs](self).
#[derive(Debug, Default)]
pub struct CellClasses {
    arity: usize,
    /// Sparse parent map over flattened cell keys; roots map to themselves.
    parent: HashMap<u64, u64>,
    /// Root → the first pin that reached the class.
    pins: HashMap<u64, Pin>,
    /// Root → the first conflict that reached the class.
    conflicts: HashMap<u64, PinConflict>,
}

impl CellClasses {
    /// Classes over cells of a relation with the given schema arity.
    pub fn new(arity: usize) -> Self {
        CellClasses {
            arity: arity.max(1),
            ..CellClasses::default()
        }
    }

    fn key(&self, cell: Cell) -> u64 {
        cell.0 as u64 * self.arity as u64 + cell.1.index() as u64
    }

    fn cell_of(&self, key: u64) -> Cell {
        (
            (key / self.arity as u64) as usize,
            AttrId((key % self.arity as u64) as usize),
        )
    }

    /// Find with path halving; first touch makes the cell its own root.
    fn find(&mut self, key: u64) -> u64 {
        let mut k = *self.parent.entry(key).or_insert(key);
        while k != self.parent[&k] {
            let grandparent = self.parent[&self.parent[&k]];
            self.parent.insert(k, grandparent);
            k = grandparent;
        }
        // Path-halve the entry point too.
        self.parent.insert(key, k);
        k
    }

    /// Merges the classes of `a` and `b`. The smaller cell key becomes the
    /// root; pins and conflicts migrate to it (first pin wins, incompatible
    /// pins record a conflict).
    pub fn union(&mut self, a: Cell, b: Cell) {
        let ra = self.find(self.key(a));
        let rb = self.find(self.key(b));
        if ra == rb {
            return;
        }
        let (root, child) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(child, root);
        if let Some(child_pin) = self.pins.remove(&child) {
            match self.pins.get(&root) {
                Some(root_pin) if root_pin.target != child_pin.target => {
                    let conflict = PinConflict {
                        kept: *root_pin,
                        conflicting: child_pin,
                    };
                    self.conflicts.entry(root).or_insert(conflict);
                }
                Some(_) => {}
                None => {
                    self.pins.insert(root, child_pin);
                }
            }
        }
        if let Some(child_conflict) = self.conflicts.remove(&child) {
            self.conflicts.entry(root).or_insert(child_conflict);
        }
    }

    /// Pins the class of `(row, attr)` to `target` (provenance: CFD `cfd`,
    /// pattern row `pattern`). A second, different target records a conflict.
    pub fn pin(&mut self, row: usize, attr: AttrId, target: ValueId, cfd: usize, pattern: usize) {
        let root = self.find(self.key((row, attr)));
        let pin = Pin {
            target,
            row,
            attr,
            cfd,
            pattern,
        };
        match self.pins.get(&root) {
            Some(existing) if existing.target != target => {
                let conflict = PinConflict {
                    kept: *existing,
                    conflicting: pin,
                };
                self.conflicts.entry(root).or_insert(conflict);
            }
            Some(_) => {}
            None => {
                self.pins.insert(root, pin);
            }
        }
    }

    /// Finalizes into the canonical [`Components`] partition view — the
    /// connected components of the cell-equivalence graph in canonical
    /// order, ready for contiguous chunking across planning workers.
    pub fn into_components(self) -> Components {
        Components {
            classes: self.into_classes(),
        }
    }

    /// Finalizes into the class list, sorted by each class's smallest cell;
    /// member cells sorted by `(row, attr)`.
    pub fn into_classes(mut self) -> Vec<CellClass> {
        let keys: Vec<u64> = self.parent.keys().copied().collect();
        let mut members: HashMap<u64, Vec<u64>> = HashMap::new();
        for key in keys {
            let root = self.find(key);
            members.entry(root).or_default().push(key);
        }
        let mut classes: Vec<CellClass> = members
            .into_iter()
            .map(|(root, mut member_keys)| {
                member_keys.sort_unstable();
                CellClass {
                    cells: member_keys.iter().map(|&k| self.cell_of(k)).collect(),
                    pin: self.pins.get(&root).copied(),
                    conflict: self.conflicts.get(&root).copied(),
                }
            })
            .collect();
        classes.sort_by(|a, b| a.cells.cmp(&b.cells));
        classes
    }
}

/// The connected components of the cell-equivalence graph, finalized in
/// **canonical order**: each component is identified by its smallest cell
/// (minimum row, then minimum attribute), and the list is sorted by that
/// identifier — the order [`CellClasses::into_classes`] guarantees.
///
/// Cells in different components never share a class target, so target
/// planning is embarrassingly parallel across components. The view hands
/// planning workers **contiguous** chunks of the canonical order
/// ([`Components::chunks`]); concatenating per-chunk plans in chunk order
/// therefore reproduces the sequential engine's class-iteration order
/// exactly, which is what keeps parallel repairs byte-identical at any
/// worker count.
#[derive(Debug)]
pub struct Components {
    classes: Vec<CellClass>,
}

impl Components {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether there are no components.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The components in canonical order.
    pub fn classes(&self) -> &[CellClass] {
        &self.classes
    }

    /// Total member-cell count across all components — the work-size
    /// measure chunking balances on (target selection is per cell, not per
    /// component).
    pub fn total_cells(&self) -> usize {
        self.classes.iter().map(|c| c.cells.len()).sum()
    }

    /// Splits the canonical order into at most `parts` **contiguous**
    /// chunks, balanced by member-cell count (components vary wildly in
    /// size; a component-count split could hand one worker all the large
    /// ones). Deterministic: chunk boundaries depend only on the component
    /// sizes and `parts`. Every chunk is non-empty.
    pub fn chunks(&self, parts: usize) -> Vec<&[CellClass]> {
        let n = self.classes.len();
        if n == 0 {
            return Vec::new();
        }
        let parts = parts.max(1).min(n);
        let total = self.total_cells();
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        let mut consumed = 0usize;
        for part in 0..parts {
            let remaining = parts - part;
            let end = if remaining == 1 {
                n
            } else {
                // Absorb an even share of the *remaining* cells, keep at
                // least one component, and leave one per later chunk.
                let quota = (total - consumed).div_ceil(remaining);
                let mut end = start;
                let mut cells = 0usize;
                while end < n && (cells < quota || end == start) {
                    cells += self.classes[end].cells.len();
                    end += 1;
                }
                end.min(n - (remaining - 1))
            };
            consumed += self.classes[start..end]
                .iter()
                .map(|c| c.cells.len())
                .sum::<usize>();
            out.push(&self.classes[start..end]);
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_relation::Value;

    fn id(s: &str) -> ValueId {
        ValueId::from_value(Value::from(s))
    }

    #[test]
    fn unions_form_transitive_classes() {
        let mut c = CellClasses::new(4);
        c.union((0, AttrId(1)), (1, AttrId(1)));
        c.union((1, AttrId(1)), (2, AttrId(1)));
        c.union((5, AttrId(2)), (6, AttrId(2)));
        let classes = c.into_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(
            classes[0].cells,
            vec![(0, AttrId(1)), (1, AttrId(1)), (2, AttrId(1))]
        );
        assert_eq!(classes[1].cells, vec![(5, AttrId(2)), (6, AttrId(2))]);
        assert!(classes.iter().all(|cl| cl.pin.is_none()));
        assert!(classes.iter().all(|cl| cl.conflict.is_none()));
    }

    #[test]
    fn pin_travels_to_the_merged_class() {
        let mut c = CellClasses::new(4);
        c.pin(1, AttrId(0), id("x"), 0, 0);
        c.union((0, AttrId(0)), (1, AttrId(0)));
        let classes = c.into_classes();
        assert_eq!(classes.len(), 1);
        let pin = classes[0].pin.expect("pin survives the union");
        assert_eq!(pin.target, id("x"));
        assert_eq!((pin.row, pin.attr), (1, AttrId(0)));
        assert!(classes[0].conflict.is_none());
    }

    #[test]
    fn agreeing_pins_do_not_conflict() {
        let mut c = CellClasses::new(4);
        c.union((0, AttrId(0)), (1, AttrId(0)));
        c.pin(0, AttrId(0), id("same"), 0, 0);
        c.pin(1, AttrId(0), id("same"), 1, 3);
        let classes = c.into_classes();
        assert!(classes[0].conflict.is_none());
        assert_eq!(classes[0].pin.unwrap().target, id("same"));
    }

    #[test]
    fn incompatible_pins_record_a_conflict_with_provenance() {
        // The Section 6 example shape: one class, two different constants.
        let mut c = CellClasses::new(3);
        c.pin(0, AttrId(1), id("b1"), 1, 0);
        c.pin(1, AttrId(1), id("b2"), 1, 1);
        c.union((0, AttrId(1)), (1, AttrId(1)));
        let classes = c.into_classes();
        assert_eq!(classes.len(), 1);
        let conflict = classes[0].conflict.expect("conflict must be recorded");
        assert_eq!(conflict.kept.target, id("b1"));
        assert_eq!(conflict.conflicting.target, id("b2"));
        assert_eq!(conflict.conflicting.row, 1);
        assert_eq!(conflict.conflicting.cfd, 1);
        assert_eq!(conflict.conflicting.pattern, 1);
    }

    #[test]
    fn conflict_via_late_pin_on_a_merged_class() {
        let mut c = CellClasses::new(3);
        c.union((0, AttrId(2)), (1, AttrId(2)));
        c.pin(0, AttrId(2), id("p"), 0, 0);
        c.pin(1, AttrId(2), id("q"), 0, 1);
        let classes = c.into_classes();
        let conflict = classes[0].conflict.unwrap();
        assert_eq!(conflict.kept.target, id("p"));
        assert_eq!(conflict.conflicting.target, id("q"));
    }

    #[test]
    fn component_chunks_are_contiguous_balanced_and_exhaustive() {
        // Components with wildly uneven sizes: 1+1+10+1+1+1 cells.
        let mut c = CellClasses::new(4);
        for row in 0..10 {
            c.union((10, AttrId(0)), (10 + row, AttrId(0)));
        }
        for row in [0, 5, 30, 40, 50] {
            c.union((row, AttrId(1)), (row, AttrId(1)));
        }
        // Self-unions only materialize the cell; use pin-free singletons.
        let components = c.into_components();
        assert_eq!(components.len(), 6);
        assert_eq!(components.total_cells(), 15);

        for parts in 1..=10 {
            let chunks = components.chunks(parts);
            assert!(!chunks.is_empty() && chunks.len() <= parts.max(1));
            assert!(chunks.iter().all(|c| !c.is_empty()), "no empty chunks");
            // Concatenating the chunks reproduces the canonical order.
            let flat: Vec<&CellClass> = chunks.iter().flat_map(|c| c.iter()).collect();
            let canonical: Vec<&CellClass> = components.classes().iter().collect();
            assert_eq!(flat.len(), canonical.len());
            assert!(flat.iter().zip(&canonical).all(|(a, b)| a == b));
        }
        // More parts than components clamps to one component per chunk.
        assert_eq!(components.chunks(100).len(), 6);
        assert!(components.chunks(0).len() == 1);

        let empty = CellClasses::new(4).into_components();
        assert!(empty.is_empty());
        assert!(empty.chunks(4).is_empty());
    }

    #[test]
    fn finalization_is_deterministic_regardless_of_insertion_batching() {
        let build = |order: &[(Cell, Cell)]| {
            let mut c = CellClasses::new(8);
            for &(a, b) in order {
                c.union(a, b);
            }
            c.into_classes()
        };
        let pairs: Vec<(Cell, Cell)> = vec![
            ((3, AttrId(1)), (0, AttrId(1))),
            ((0, AttrId(1)), (7, AttrId(1))),
            ((2, AttrId(0)), (9, AttrId(0))),
        ];
        let mut reversed = pairs.clone();
        reversed.reverse();
        assert_eq!(build(&pairs), build(&reversed));
    }
}
