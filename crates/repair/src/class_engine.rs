//! The equivalence-class repair engine with incremental violation
//! maintenance.
//!
//! # Algorithm
//!
//! 1. **Seed** — per-CFD LHS [`Index`]es are built once, and one detection
//!    pass per CFD yields the initial witness set. The pass is group-driven
//!    ([`cfd_detect::recheck_lhs_key`] over every index key): pattern
//!    matching on `X` is decided once per *group* instead of once per row,
//!    so seeding costs `O(|Tp| × #groups + |I|)` rather than the
//!    `O(|Tp| × |I|)` of the row-wise scan — the large-constant-tableau
//!    workloads of Section 5 have orders of magnitude fewer groups than
//!    rows. (CFDs with don't-care cells fall back to [`Cfd::violations`].)
//! 2. **Classes** — every witness contributes its cell obligations
//!    ([`Cfd::witness_cells`]): multi-tuple witnesses union the involved
//!    RHS cells into equivalence classes, RHS pattern constants pin classes
//!    (see [`crate::classes`]).
//! 3. **Targets** — each unpinned class takes the candidate value (among the
//!    values its cells currently hold) minimizing the weighted cost
//!    `Σ weight(row) × dist(current, candidate)` under the configured
//!    [`CostModel`](crate::cost::CostModel); ties break on the smallest
//!    resolved [`cfd_relation::Value`]. Pinned
//!    classes take their pin. Classes with *conflicting* pins cannot be
//!    satisfied by RHS edits (Section 6's motivating observation) — an LHS
//!    attribute of one involved row is overwritten with a fresh typed
//!    placeholder instead.
//! 4. **Incremental re-check** — applying an edit marks only the `GROUP BY
//!    X` groups it can affect as dirty (the group a row left/joined when an
//!    LHS attribute changed — tracked through [`Index::remove_row`] /
//!    [`Index::insert_row`] — or the row's current group when an RHS
//!    attribute changed). The next round re-detects **only those groups**
//!    via [`cfd_detect::recheck_lhs_key`]; nothing is ever re-scanned from
//!    scratch. A round whose exact witness signature was already seen is a
//!    proven cross-CFD oscillation and forces one LHS edit. Rounds continue
//!    until no witnesses remain, only unsatisfiable work is left with LHS
//!    edits disabled, or the round budget is exhausted.
//!
//! # Determinism
//!
//! Witnesses are processed in the sorted order [`Cfd::violations`] /
//! [`cfd_detect::recheck_lhs_key`] guarantee, dirty keys live in `BTreeSet`s,
//! classes finalize sorted, and target ties break on resolved values — no
//! hash-map iteration order or interner id numbering influences any choice,
//! so identical inputs produce identical modification sequences.
//!
//! # Parallelism
//!
//! Planning fans out over **connected components** of the cell-equivalence
//! graph (contiguous chunks of the canonical order), and seeding /
//! dirty-group re-checking / the final satisfaction sweep fan out over
//! sorted key batches via [`cfd_detect::recheck_lhs_keys`] — all on scoped
//! worker threads budgeted by [`RepairConfig::threads`] and clamped by the
//! spawn-amortization rule shared with the detection planner. The apply
//! phase stays a sequential single-writer merge. Results are byte-identical
//! at any thread count; [`crate::parallel`] states the full argument.
//!
//! CFDs whose tableaux contain the don't-care symbol `@` (merged tableaux)
//! group by effective attribute subsets that a full-LHS index cannot
//! reproduce; such CFDs are handled soundly by falling back to a full
//! [`Cfd::violations`] scan whenever an edit touches their scope.

use crate::classes::CellClasses;
use crate::parallel::{self, ParallelCtx};
use crate::repair::{
    lhs_edit_attr, mint_placeholder_for, Modification, RepairConfig, RepairResult,
};
use cfd_core::{Cfd, ViolationWitness};
use cfd_relation::{project_attrs, AttrId, Index, Relation, RelationStats, ValueId};
use std::collections::{BTreeSet, HashSet};

/// Entry point: repairs `rel` w.r.t. `cfds` under `config`.
pub(crate) fn repair(cfds: &[Cfd], rel: &Relation, config: &RepairConfig) -> RepairResult {
    Engine::new(cfds, rel, config, None).run()
}

/// Entry point with **prebuilt** per-CFD LHS indexes (one slot per CFD, in
/// CFD order; `None` slots — and don't-care CFDs, whose slot is ignored —
/// fall back to the engine's own handling). Each supplied index must cover
/// its CFD's LHS attributes in order and be in sync with `rel`; the engine
/// takes them over and maintains them across its edits. Results are
/// byte-identical to [`repair`] — seeding visits index keys in sorted order,
/// so index provenance never influences a choice.
pub(crate) fn repair_with_indexes(
    cfds: &[Cfd],
    rel: &Relation,
    config: &RepairConfig,
    indexes: Vec<Option<Index>>,
) -> RepairResult {
    Engine::new(cfds, rel, config, Some(indexes)).run()
}

/// One witness's identity within a round signature:
/// `(cfd index, pattern index, kind, rows)`.
type WitnessSig = (usize, usize, u8, Vec<usize>);

struct Engine<'a> {
    cfds: &'a [Cfd],
    config: &'a RepairConfig,
    rel: Relation,
    /// Whether CFD `i` supports keyed re-checking (no don't-care cells).
    keyed: Vec<bool>,
    /// Per-CFD LHS index (only for keyed CFDs), maintained across edits.
    indexes: Vec<Option<Index>>,
    /// Per-CFD dirty LHS keys accumulated since the last re-check.
    dirty: Vec<BTreeSet<Vec<ValueId>>>,
    /// Per-CFD "needs a full re-scan" flag (don't-care CFDs only).
    scan_all: Vec<bool>,
    modifications: Vec<Modification>,
    /// Run-scoped placeholder candidate number (reproducibility across
    /// runs — see [`mint_placeholder_for`]).
    placeholder_counter: u64,
    /// Per-phase spawn decisions (thread budget + amortization clamps) of
    /// the component-parallel paths — see [`crate::parallel`].
    ctx: ParallelCtx,
    /// Seed-time mean `GROUP BY X` group size per keyed CFD (from the
    /// [`RelationStats`] sketch), sizing the dirty-recheck fan-out: a dirty
    /// round's work is roughly `#dirty keys × mean group size`. Estimates
    /// only steer spawn decisions, never results.
    mean_rows: Vec<f64>,
}

impl<'a> Engine<'a> {
    fn new(
        cfds: &'a [Cfd],
        rel: &Relation,
        config: &'a RepairConfig,
        prebuilt: Option<Vec<Option<Index>>>,
    ) -> Self {
        let rel = rel.clone();
        let keyed: Vec<bool> = cfds.iter().map(|c| !c.has_dont_care()).collect();
        let mut prebuilt = prebuilt
            .map(|v| {
                debug_assert_eq!(v.len(), cfds.len(), "one index slot per CFD");
                v.into_iter().map(Some).collect::<Vec<_>>()
            })
            .unwrap_or_else(|| vec![None; cfds.len()]);
        let ctx = ParallelCtx::new(config.threads, rel.len(), config.force_parallel);
        let mut indexes: Vec<Option<Index>> = cfds
            .iter()
            .zip(&keyed)
            .enumerate()
            .map(|(i, (c, &k))| {
                if !k {
                    return None;
                }
                let index = prebuilt.get_mut(i).and_then(Option::take).flatten()?;
                debug_assert_eq!(
                    index.attrs(),
                    c.lhs(),
                    "prebuilt index must cover the CFD's LHS in order"
                );
                Some(index)
            })
            .collect();
        // Build the missing keyed indexes — in parallel when the instance
        // warrants it (builds are independent; provenance never influences
        // repair choices, since seeding visits keys in sorted order).
        let pending: Vec<Option<&[AttrId]>> = cfds
            .iter()
            .zip(&keyed)
            .zip(&indexes)
            .map(|((c, &k), slot)| (k && slot.is_none()).then(|| c.lhs()))
            .collect();
        for (slot, built) in indexes
            .iter_mut()
            .zip(parallel::build_indexes(&rel, pending, ctx))
        {
            if slot.is_none() {
                *slot = built;
            }
        }
        let mean_rows: Vec<f64> = if ctx.budget > 1 {
            let mut stats = RelationStats::new(&rel);
            cfds.iter()
                .zip(&keyed)
                .map(|(c, &k)| {
                    if k {
                        stats.group_stats(&rel, c.lhs()).mean_group_size()
                    } else {
                        0.0
                    }
                })
                .collect()
        } else {
            vec![0.0; cfds.len()]
        };
        Engine {
            cfds,
            config,
            rel,
            keyed,
            indexes,
            dirty: vec![BTreeSet::new(); cfds.len()],
            scan_all: vec![false; cfds.len()],
            modifications: Vec::new(),
            placeholder_counter: 0,
            ctx,
            mean_rows,
        }
    }

    fn run(mut self) -> RepairResult {
        // Seed the dirty set from one (group-driven) detection pass.
        let mut witnesses = self.seed_witnesses();

        let mut rounds = 0usize;
        // Witness signatures of every round seen so far: a round whose exact
        // violation scope reappeared is a proven oscillation (the b1→b2→b1
        // cross-CFD cycles of Section 6), the only situation that warrants a
        // forced LHS edit. A count-based stall check would compare different
        // scopes (full seed set vs dirty groups only) and could destroy a
        // correct LHS cell on a transiently-growing cascade that the next
        // round's RHS edits would have converged anyway.
        let mut seen_rounds: HashSet<Vec<WitnessSig>> = HashSet::new();
        while !witnesses.is_empty() && rounds < self.config.max_passes {
            rounds += 1;
            let mut signature: Vec<WitnessSig> = witnesses
                .iter()
                .map(|(i, w)| (*i, w.pattern_index, w.kind as u8, w.rows.clone()))
                .collect();
            signature.sort_unstable();
            let cycling = !seen_rounds.insert(signature);

            // Build the cell classes of this round's witnesses.
            let mut classes = CellClasses::new(self.rel.schema().arity());
            for (cfd_idx, w) in &witnesses {
                let cells = self.cfds[*cfd_idx].witness_cells(w);
                for (attr, rows) in &cells.merges {
                    for &row in rows.iter().skip(1) {
                        classes.union((rows[0], *attr), (row, *attr));
                    }
                }
                for &(row, attr, target) in &cells.pins {
                    classes.pin(row, attr, target, *cfd_idx, w.pattern_index);
                }
            }

            // Plan: RHS edits per class, LHS edits per conflicted class —
            // fanned out over contiguous chunks of the canonical component
            // order (byte-identical merge; see [`crate::parallel`]).
            let components = classes.into_components();
            let plan_workers = self.ctx.workers_for(
                components
                    .total_cells()
                    .saturating_mul(parallel::PLAN_CELL_COST),
                components.len(),
            );
            let plan = parallel::plan_components(
                &self.rel,
                &self.config.cost_model,
                &components,
                plan_workers,
            );
            let mut edits = plan.edits;
            let mut victims = plan.victims;
            let conflict_rows: BTreeSet<usize> = plan.conflict_rows.into_iter().collect();

            // Proven oscillation without pin conflicts (cross-CFD cycles):
            // force one LHS edit on the first open witness.
            if cycling && victims.is_empty() {
                if let Some((cfd_idx, w)) = witnesses.first() {
                    if let Some(&row) = w.rows.first() {
                        victims.push((*cfd_idx, w.pattern_index, row));
                    }
                }
            }
            if !self.config.allow_lhs_edits {
                victims.clear();
            }
            victims.sort_unstable();
            victims.dedup();

            if edits.is_empty() && victims.is_empty() {
                // Only unsatisfiable classes remain and LHS edits are off.
                break;
            }

            edits.sort_unstable_by_key(|&(row, attr, _)| (row, attr));
            for (row, attr, target) in edits {
                self.apply_edit(row, attr, target);
            }
            for (cfd_idx, pattern_idx, row) in victims {
                if let Some(attr) = lhs_edit_attr(&self.cfds[cfd_idx], pattern_idx) {
                    let ph = mint_placeholder_for(
                        &self.rel,
                        attr,
                        self.config.typed_placeholders,
                        &mut self.placeholder_counter,
                    );
                    self.apply_edit(row, attr, ph);
                }
            }
            // Conflicted classes resolved nothing: queue every group their
            // rows sit in (post-edit keys) so the surviving obligations are
            // re-derived next round.
            for row in conflict_rows {
                self.dirty_row_groups(row);
            }

            witnesses = self.collect_dirty_witnesses();
        }

        let satisfied = self.is_clean();
        let config = self.config;
        let Engine {
            rel, modifications, ..
        } = self;
        RepairResult::finish(rel, modifications, rounds, satisfied, &config.cost_model)
    }

    /// One full detection pass, group-driven through the LHS indexes where
    /// possible (see the [module docs](self)); don't-care CFDs take the
    /// row-wise scan. Keys are visited in sorted order, so the seed witness
    /// list is deterministic.
    fn seed_witnesses(&self) -> Vec<(usize, ViolationWitness)> {
        let mut out = Vec::new();
        for (cfd_idx, cfd) in self.cfds.iter().enumerate() {
            match &self.indexes[cfd_idx] {
                Some(index) => {
                    let mut keys: Vec<&[ValueId]> =
                        index.iter().map(|(k, _)| k.as_slice()).collect();
                    keys.sort_unstable();
                    let workers = self.ctx.workers_for(self.rel.len(), keys.len());
                    out.extend(
                        parallel::recheck_keys_sharded(cfd, &self.rel, index, &keys, workers)
                            .into_iter()
                            .map(|w| (cfd_idx, w)),
                    );
                }
                None => out.extend(cfd.violations(&self.rel).into_iter().map(|w| (cfd_idx, w))),
            }
        }
        out
    }

    /// Full-semantics satisfaction check, priced like the seed pass: every
    /// group of every keyed CFD is re-checked through its index (equivalent
    /// to `Cfd::satisfied_by`, proven by the recheck coverage tests);
    /// don't-care CFDs use the row-wise check.
    fn is_clean(&self) -> bool {
        self.cfds
            .iter()
            .enumerate()
            .all(|(cfd_idx, cfd)| match &self.indexes[cfd_idx] {
                Some(index) => {
                    let workers = self.ctx.workers_for(self.rel.len(), index.distinct_keys());
                    parallel::all_groups_clean(cfd, &self.rel, index, workers)
                }
                None => cfd.satisfied_by(&self.rel),
            })
    }

    /// Applies one cell edit: updates the relation, the per-CFD LHS indexes,
    /// the dirty-key sets and the modification log.
    fn apply_edit(&mut self, row: usize, attr: AttrId, new_id: ValueId) {
        // wslint: allow(panic_path, "edits target rows of this same relation; planner never emits an out-of-range row")
        let old_cells: Vec<ValueId> = self.rel.row(row).expect("edit row in range").to_ids();
        let old_id = old_cells[attr.index()];
        if old_id == new_id {
            return;
        }
        self.rel.set_id(row, attr, new_id);
        let mut new_cells = old_cells.clone();
        new_cells[attr.index()] = new_id;
        self.modifications.push(Modification {
            row,
            attr,
            old: old_id.resolve().clone(),
            new: new_id.resolve().clone(),
        });

        for (cfd_idx, cfd) in self.cfds.iter().enumerate() {
            let in_lhs = cfd.lhs().contains(&attr);
            let in_rhs = cfd.rhs().contains(&attr);
            if !in_lhs && !in_rhs {
                continue;
            }
            if !self.keyed[cfd_idx] {
                self.scan_all[cfd_idx] = true;
                continue;
            }
            if in_lhs {
                let index = self.indexes[cfd_idx]
                    .as_mut()
                    // wslint: allow(panic_path, "self.keyed[cfd_idx] was checked; keyed CFDs always carry an index")
                    .expect("keyed CFDs carry an index");
                index.remove_row(row, &old_cells);
                index.insert_row(row, &new_cells);
                self.dirty[cfd_idx].insert(project_attrs(&old_cells, cfd.lhs()));
            }
            // The row's current group needs a re-check in both cases.
            self.dirty[cfd_idx].insert(project_attrs(&new_cells, cfd.lhs()));
        }
    }

    /// Marks every CFD's group containing `row` (under its current key) for
    /// re-checking — used for the rows of conflicted classes, whose
    /// obligations were deliberately left unresolved this round.
    fn dirty_row_groups(&mut self, row: usize) {
        // wslint: allow(panic_path, "rows come from this engine's own conflict bookkeeping, always in range")
        let cells: Vec<ValueId> = self.rel.row(row).expect("row in range").to_ids();
        for (cfd_idx, cfd) in self.cfds.iter().enumerate() {
            if !self.keyed[cfd_idx] {
                self.scan_all[cfd_idx] = true;
                continue;
            }
            self.dirty[cfd_idx].insert(project_attrs(&cells, cfd.lhs()));
        }
    }

    /// Drains the dirty sets into the next round's witnesses: keyed CFDs
    /// re-check only their dirty groups, don't-care CFDs re-scan when
    /// touched.
    fn collect_dirty_witnesses(&mut self) -> Vec<(usize, ViolationWitness)> {
        let mut out = Vec::new();
        for (cfd_idx, cfd) in self.cfds.iter().enumerate() {
            if std::mem::take(&mut self.scan_all[cfd_idx]) {
                out.extend(cfd.violations(&self.rel).into_iter().map(|w| (cfd_idx, w)));
                continue;
            }
            let keys = std::mem::take(&mut self.dirty[cfd_idx]);
            let index = match &self.indexes[cfd_idx] {
                Some(index) => index,
                None => continue,
            };
            // `BTreeSet` iteration is sorted, so the batch visits keys in
            // the order the per-key loop used to; the re-check fan-out is
            // sized by the seed-time mean group size.
            let key_refs: Vec<&[ValueId]> = keys.iter().map(|k| k.as_slice()).collect();
            let units = (key_refs.len() as f64 * self.mean_rows[cfd_idx]).ceil() as usize;
            let workers = self.ctx.workers_for(units, key_refs.len());
            out.extend(
                parallel::recheck_keys_sharded(cfd, &self.rel, index, &key_refs, workers)
                    .into_iter()
                    .map(|w| (cfd_idx, w)),
            );
        }
        out
    }
}
