//! Component-parallel planning and batched group re-checking for the
//! equivalence-class repair engine.
//!
//! # Why components parallelize
//!
//! Cells in different connected components of the cell-equivalence graph
//! never share a class target — target selection, pin resolution and
//! conflict detection are all component-local. The planning phase of each
//! repair round is therefore embarrassingly parallel across components, and
//! the detection-side work (seeding, dirty-group re-checks, the final
//! satisfaction check) is embarrassingly parallel across `GROUP BY X`
//! groups. Only the **apply** phase — mutating the relation, maintaining
//! the LHS indexes, logging modifications — has cross-component effects; it
//! stays a sequential single-writer merge in the engine.
//!
//! # Determinism contract
//!
//! Parallel repairs are **byte-identical** to the sequential engine at any
//! worker count (pinned by the differential harness at 1/2/4/8 threads):
//!
//! * Planning workers receive **contiguous chunks of the canonical
//!   component order** ([`Components::chunks`]; canonical = sorted by each
//!   component's minimum `(row, attr)` cell). Concatenating per-chunk plans
//!   in chunk order reproduces the sequential class-iteration order
//!   exactly, so the merged edit list, victim list and conflict-row set are
//!   the very vectors the sequential loop would have produced.
//! * **Placeholder candidate numbers follow canonical component order**:
//!   LHS-edit victims are emitted per component in canonical order, merged
//!   in that same order, then sorted and deduplicated exactly as the
//!   sequential engine sorts its victim list — the engine's single-writer
//!   phase mints placeholders from that sorted list against one run-scoped
//!   counter, so the k-th placeholder of a round names the same cell and
//!   carries the same spelling regardless of worker count.
//! * Re-check fan-out splits the **sorted key list** into contiguous
//!   chunks; each worker runs [`cfd_detect::recheck_lhs_keys`] over its
//!   chunk (witnesses sorted within each group), and concatenating the
//!   per-chunk results in chunk order equals the sequential key-by-key
//!   sweep.
//!
//! # Spawn amortization
//!
//! Thread setup is only paid where it amortizes: the worker count of every
//! phase derives from the workspace-wide
//! [`cfd_detect::MIN_ROWS_PER_WORKER`] floor — the same rule the detection
//! planner's shard-count decision uses — scaled by [`PLAN_CELL_COST`] for
//! planning work (class-target selection is far heavier per unit than a
//! row scan). One-core hosts and tiny dirty sets run the sequential path
//! without ever constructing a scope. The differential harness overrides
//! the clamp (`RepairConfig::force_parallel`) so byte-identity is exercised
//! on small instances too.
//!
//! Workers hold their own [`TargetScratch`] / [`RecheckScratch`] arenas:
//! steady-state planning and re-checking allocate nothing per class or per
//! group beyond the result vectors, mirroring the kernels-crate arena
//! discipline.

use crate::classes::{CellClass, Components};
use crate::cost::{CostModel, TargetScratch};
use cfd_core::{Cfd, ViolationWitness};
use cfd_detect::{recheck_lhs_keys, RecheckScratch, MIN_ROWS_PER_WORKER};
use cfd_relation::{AttrId, Index, Relation, ValueId};

/// How many scan-grade work units one class-member cell is worth when
/// deciding the planning fan-out. Selecting a class target resolves values,
/// runs the distance metric and scans candidates — roughly this many times
/// the cost of one kernel row visit — so planning amortizes a worker thread
/// at `MIN_ROWS_PER_WORKER / PLAN_CELL_COST` cells rather than demanding a
/// full row quota of cells.
pub const PLAN_CELL_COST: usize = 16;

/// The per-phase spawn decision of the parallel repair engine.
///
/// Built once per repair run from the configured thread budget and the
/// instance size; every phase then asks [`ParallelCtx::workers_for`] with
/// its own work estimate. `budget` is the engine-level ceiling (never
/// exceeded), `force` is the differential-testing override that skips the
/// amortization clamps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ParallelCtx {
    /// Engine-level worker ceiling, ≥ 1.
    pub budget: usize,
    /// Skip amortization clamps (differential-testing override).
    pub force: bool,
}

impl ParallelCtx {
    /// Derives the engine-level budget from the configured thread count and
    /// the instance row count, mirroring the detection planner's shard-count
    /// rule: no parallelism below two threads or below
    /// `2 × MIN_ROWS_PER_WORKER` rows, otherwise at most one worker per
    /// `MIN_ROWS_PER_WORKER` rows. `force` keeps the configured count as-is
    /// so small differential workloads still exercise the parallel paths.
    pub fn new(threads: usize, rows: usize, force: bool) -> Self {
        let threads = threads.max(1);
        let budget = if force {
            threads
        } else if threads < 2 || rows < 2 * MIN_ROWS_PER_WORKER {
            1
        } else {
            threads.min(rows / MIN_ROWS_PER_WORKER).max(2)
        };
        ParallelCtx { budget, force }
    }

    /// Worker count for one phase processing `items` independent work items
    /// totalling `units` scan-grade work units: the budget, clamped so no
    /// worker is spawned for less than `MIN_ROWS_PER_WORKER` units of work
    /// and never more workers than items. Returns 1 (sequential) when the
    /// work cannot amortize a spawn.
    pub fn workers_for(&self, units: usize, items: usize) -> usize {
        let cap = self.budget.min(items.max(1));
        if cap < 2 {
            return 1;
        }
        if self.force {
            return cap;
        }
        if units < 2 * MIN_ROWS_PER_WORKER {
            return 1;
        }
        cap.min((units / MIN_ROWS_PER_WORKER).max(2))
    }
}

/// The merged output of the planning phase — exactly the three collections
/// the sequential class loop accumulates, in the same order.
#[derive(Debug, Default)]
pub(crate) struct PlanOutput {
    /// `(row, attr, target)` RHS edits in canonical component order.
    pub edits: Vec<(usize, AttrId, ValueId)>,
    /// `(cfd, pattern, row)` LHS-edit victims in canonical component order.
    pub victims: Vec<(usize, usize, usize)>,
    /// Rows of conflicted classes (unsorted; the engine folds them into its
    /// ordered set).
    pub conflict_rows: Vec<usize>,
}

impl PlanOutput {
    fn merge(parts: Vec<PlanOutput>) -> PlanOutput {
        let mut out = PlanOutput::default();
        for part in parts {
            out.edits.extend(part.edits);
            out.victims.extend(part.victims);
            out.conflict_rows.extend(part.conflict_rows);
        }
        out
    }
}

/// Plans one round's edits over the components: RHS targets per class, LHS
/// victims per conflicted class. With `workers < 2` (or fewer components
/// than workers would need) the chunk loop runs inline; otherwise each
/// contiguous canonical-order chunk is planned on its own scoped thread
/// with a worker-local [`TargetScratch`], and the per-chunk outputs are
/// concatenated in chunk order — see the [module docs](self) for why that
/// merge is byte-identical to the sequential loop.
pub(crate) fn plan_components(
    rel: &Relation,
    model: &CostModel,
    components: &Components,
    workers: usize,
) -> PlanOutput {
    let chunks = components.chunks(workers);
    if chunks.len() < 2 {
        let mut out = PlanOutput::default();
        let mut scratch = TargetScratch::new();
        plan_chunk(rel, model, components.classes(), &mut scratch, &mut out);
        return out;
    }
    let parts: Vec<PlanOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut out = PlanOutput::default();
                    let mut scratch = TargetScratch::new();
                    plan_chunk(rel, model, chunk, &mut scratch, &mut out);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
            .collect()
    });
    PlanOutput::merge(parts)
}

/// The sequential class loop over one contiguous chunk of the canonical
/// component order — the one copy of the planning logic both the inline and
/// the threaded path run.
fn plan_chunk(
    rel: &Relation,
    model: &CostModel,
    classes: &[CellClass],
    scratch: &mut TargetScratch,
    out: &mut PlanOutput,
) {
    for class in classes {
        if let Some(conflict) = class.conflict {
            // Conflicted class: break the later-arriving constraint with an
            // LHS edit; remember every involved row for next round.
            out.victims.push((
                conflict.conflicting.cfd,
                conflict.conflicting.pattern,
                conflict.conflicting.row,
            ));
            out.conflict_rows
                .extend(class.cells.iter().map(|&(row, _)| row));
            continue;
        }
        let target = match class.pin {
            Some(pin) => pin.target,
            None => {
                model
                    .class_target_with(rel, &class.cells, scratch)
                    // wslint: allow(panic_path, "classes are created non-empty and cells are only ever added")
                    .expect("a class always has at least one cell")
                    .0
            }
        };
        for &(row, attr) in &class.cells {
            if rel.column(attr)[row] != target {
                out.edits.push((row, attr, target));
            }
        }
    }
}

/// Re-checks a sorted batch of LHS keys, fanned out over `workers` scoped
/// threads when the batch warrants it. Keys are split into contiguous
/// chunks; each worker drives [`cfd_detect::recheck_lhs_keys`] with its own
/// [`RecheckScratch`], and the per-chunk witness lists are concatenated in
/// chunk order — identical to the sequential key-by-key sweep because the
/// batched recheck preserves key order and sorts witnesses within each
/// group.
pub(crate) fn recheck_keys_sharded(
    cfd: &Cfd,
    rel: &Relation,
    index: &Index,
    keys: &[&[ValueId]],
    workers: usize,
) -> Vec<ViolationWitness> {
    if workers < 2 || keys.len() < 2 {
        return recheck_lhs_keys(cfd, rel, index, keys, &mut RecheckScratch::new());
    }
    let chunk_size = keys.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    recheck_lhs_keys(cfd, rel, index, chunk, &mut RecheckScratch::new())
                })
            })
            .collect();
        let mut out = Vec::new();
        for handle in handles {
            out.extend(
                handle
                    .join()
                    .unwrap_or_else(|p| std::panic::resume_unwind(p)),
            );
        }
        out
    })
}

/// Whether every group of `index` satisfies `cfd` — the parallel form of
/// the engine's satisfaction sweep. Order-independent (a conjunction), so
/// the keys are taken in index-iteration order; each worker early-exits on
/// its first violating group.
pub(crate) fn all_groups_clean(cfd: &Cfd, rel: &Relation, index: &Index, workers: usize) -> bool {
    let keys: Vec<&[ValueId]> = index.iter().map(|(k, _)| k.as_slice()).collect();
    if workers < 2 || keys.len() < 2 {
        let mut scratch = RecheckScratch::new();
        return keys
            .iter()
            .all(|&key| recheck_lhs_keys(cfd, rel, index, &[key], &mut scratch).is_empty());
    }
    let chunk_size = keys.len().div_ceil(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = keys
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = RecheckScratch::new();
                    chunk.iter().all(|&key| {
                        recheck_lhs_keys(cfd, rel, index, &[key], &mut scratch).is_empty()
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .all(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
    })
}

/// Builds the missing per-CFD LHS indexes, in parallel when the instance
/// and budget warrant it. `slots[i]` is `Some(lhs)` when CFD `i` still
/// needs an index over those attributes; the result carries the built
/// index in the same slot. Builds are independent per CFD, and index
/// provenance never influences repair choices (seeding visits keys in
/// sorted order), so this fan-out needs no ordering argument at all.
pub(crate) fn build_indexes(
    rel: &Relation,
    slots: Vec<Option<&[AttrId]>>,
    ctx: ParallelCtx,
) -> Vec<Option<Index>> {
    let pending = slots.iter().filter(|s| s.is_some()).count();
    let workers = ctx.workers_for(rel.len().saturating_mul(pending), pending);
    if workers < 2 {
        return slots
            .into_iter()
            .map(|slot| slot.map(|lhs| rel.build_index(lhs)))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .into_iter()
            .map(|slot| slot.map(|lhs| scope.spawn(move || rel.build_index(lhs))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_budget_mirrors_the_planner_rule() {
        // Below two threads or below the row floor: sequential.
        assert_eq!(ParallelCtx::new(1, usize::MAX, false).budget, 1);
        assert_eq!(
            ParallelCtx::new(8, 2 * MIN_ROWS_PER_WORKER - 1, false).budget,
            1
        );
        // At the floor: at least two workers, at most one per work quota.
        assert_eq!(
            ParallelCtx::new(8, 2 * MIN_ROWS_PER_WORKER, false).budget,
            2
        );
        assert_eq!(ParallelCtx::new(8, 100_000, false).budget, 8);
        assert_eq!(ParallelCtx::new(4, 100_000, false).budget, 4);
        // Zero threads clamps to one.
        assert_eq!(ParallelCtx::new(0, 100_000, false).budget, 1);
        // Force keeps the configured count even on tiny instances.
        assert_eq!(ParallelCtx::new(8, 10, true).budget, 8);
    }

    #[test]
    fn phase_workers_respect_budget_items_and_amortization() {
        let ctx = ParallelCtx::new(8, 1_000_000, false);
        assert_eq!(ctx.budget, 8);
        // Tiny phases run sequentially even under a large budget.
        assert_eq!(ctx.workers_for(100, 50), 1);
        // Large phases use the full budget.
        assert_eq!(ctx.workers_for(1_000_000, 10_000), 8);
        // Work-quota clamp between the extremes.
        let w = ctx.workers_for(3 * MIN_ROWS_PER_WORKER, 10_000);
        assert_eq!(w, 3);
        // Never more workers than items.
        assert_eq!(ctx.workers_for(1_000_000, 3), 3);

        let forced = ParallelCtx {
            budget: 4,
            force: true,
        };
        assert_eq!(forced.workers_for(1, 100), 4);
        assert_eq!(forced.workers_for(1, 2), 2);
        assert_eq!(forced.workers_for(1, 1), 1);
    }
}
